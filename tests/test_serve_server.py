"""Tests for the JSON-lines serving front end.

:class:`~repro.serve.LiveSession` is a pure ``dict -> dict`` protocol
dispatcher, so most coverage drives it directly; a smaller set of
tests binds a real :class:`~repro.serve.LiveServer` on an ephemeral
port and exercises the socket path, including concurrent appends and
queries from separate connections and the ``repro serve`` CLI
entry point end to end.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading

from repro.serve import LiveEngine, LiveServer, LiveSession, serve
from repro.serve.server import request
from repro.streams import zipf_stream

N = 512


def make_session(**kwargs) -> LiveSession:
    kwargs.setdefault("n", N)
    kwargs.setdefault("epsilon", 0.2)
    kwargs.setdefault("seed", 1)
    kwargs.setdefault("snapshot_every", 256)
    return LiveSession(LiveEngine("count-min", **kwargs))


def ok(session: LiveSession, req: dict) -> dict:
    response, alive = session.handle(req)
    assert response["ok"], response
    assert alive
    return response


class TestLiveSessionVerbs:
    def test_append_then_query_round_trip(self):
        session = make_session()
        stream = list(zipf_stream(N, 1000, seed=2))
        response = ok(session, {"op": "append", "items": stream})
        assert response == {"ok": True, "appended": 1000, "head": 1000}
        answer = ok(
            session, {"op": "query", "kind": "point", "item": stream[0]}
        )
        assert answer["kind"] == "point"
        assert answer["value"] >= 1
        assert answer["snapshot_index"] == 768  # last cadence boundary
        assert answer["head"] == 1000
        assert answer["updates_behind"] == 232

    def test_query_refresh_hits_head(self):
        session = make_session()
        ok(session, {"op": "append", "items": list(range(300))})
        fresh = ok(
            session,
            {"op": "query", "kind": "point", "item": 5, "refresh": True},
        )
        assert fresh["updates_behind"] == 0
        assert fresh["snapshot_index"] == 300

    def test_query_max_staleness(self):
        session = make_session()
        ok(session, {"op": "append", "items": list(range(300))})
        bounded = ok(
            session,
            {
                "op": "query",
                "kind": "point",
                "item": 5,
                "max_staleness": 10,
            },
        )
        assert bounded["updates_behind"] <= 10

    def test_subscribe_and_series(self):
        session = make_session()
        sub = ok(session, {"op": "subscribe", "kind": "state-changes"})
        ok(
            session,
            {"op": "append", "items": list(zipf_stream(N, 600, seed=3))},
        )
        series = ok(session, {"op": "series", "id": sub["id"]})
        indexes = [index for index, _ in series["series"]]
        assert indexes == [256, 512]
        values = [value for _, value in series["series"]]
        assert values == sorted(values)

    def test_subscribe_query_kind(self):
        session = LiveSession(
            LiveEngine("exact", n=N, seed=1, snapshot_every=200)
        )
        sub = ok(session, {"op": "subscribe", "kind": "distinct"})
        ok(
            session,
            {"op": "append", "items": list(zipf_stream(N, 400, seed=4))},
        )
        series = ok(session, {"op": "series", "id": sub["id"]})
        assert len(series["series"]) == 2

    def test_snapshot_verb_defaults_to_refresh(self):
        session = make_session()
        ok(session, {"op": "append", "items": list(range(100))})
        snap = ok(session, {"op": "snapshot"})
        assert snap["snapshot_index"] == 100
        assert snap["head"] == 100
        assert snap["items"] == 100
        assert snap["state_changes"] > 0
        assert snap["peak_words"] > 0

    def test_stats_verb(self):
        session = make_session()
        ok(session, {"op": "append", "items": list(range(100))})
        stats = ok(session, {"op": "stats"})
        assert stats["sketch"] == "count-min"
        assert stats["head"] == 100
        assert stats["snapshot_every"] == 256
        assert stats["shards"] == 1
        assert "point" in stats["supports"]

    def test_shutdown_stops_serving(self):
        session = make_session()
        ok(session, {"op": "append", "items": [1, 2, 3]})
        response, alive = session.handle({"op": "shutdown"})
        assert response == {"ok": True, "head": 3}
        assert not alive

    def test_verbs_listing(self):
        assert LiveSession.verbs() == [
            "append",
            "query",
            "query-batch",
            "series",
            "shutdown",
            "snapshot",
            "stats",
            "subscribe",
        ]


class TestLiveSessionErrors:
    def error(self, session, req) -> str:
        response, alive = session.handle(req)
        assert response["ok"] is False
        assert alive  # errors never kill the session
        return response["error"]

    def test_unknown_op(self):
        message = self.error(make_session(), {"op": "drop-tables"})
        assert "unknown op" in message
        assert "append" in message

    def test_missing_op(self):
        assert "unknown op" in self.error(make_session(), {})

    def test_non_object_request(self):
        assert "object" in self.error(make_session(), [1, 2, 3])

    def test_append_without_items(self):
        assert "items" in self.error(make_session(), {"op": "append"})

    def test_append_non_integer_items(self):
        message = self.error(
            make_session(), {"op": "append", "items": ["a", "b"]}
        )
        assert "integers" in message

    def test_query_unknown_kind(self):
        message = self.error(
            make_session(), {"op": "query", "kind": "median"}
        )
        assert "unknown query kind" in message

    def test_point_query_without_item(self):
        message = self.error(
            make_session(), {"op": "query", "kind": "point"}
        )
        assert "item" in message

    def test_unsupported_query_reports_capabilities(self):
        # count-min declares point estimates only.
        message = self.error(
            make_session(), {"op": "query", "kind": "entropy"}
        )
        assert "entropy" in message

    def test_series_unknown_id(self):
        message = self.error(
            make_session(), {"op": "series", "id": 99}
        )
        assert "subscribe first" in message

    def test_error_leaves_engine_usable(self):
        session = make_session()
        self.error(session, {"op": "append", "items": "nope"})
        assert ok(session, {"op": "append", "items": [1]})["head"] == 1


class TestSocketServer:
    def test_round_trip_on_ephemeral_port(self):
        engine = LiveEngine(
            "count-min", n=N, epsilon=0.2, seed=5, snapshot_every=128
        )
        ready = threading.Event()
        bound: list[tuple[str, int]] = []

        def on_ready(address):
            bound.append(address)
            ready.set()

        thread = threading.Thread(
            target=serve,
            args=(engine,),
            kwargs={"port": 0, "ready": on_ready},
            daemon=True,
        )
        thread.start()
        assert ready.wait(5.0)
        host, port = bound[0]

        stream = list(zipf_stream(N, 500, seed=6))
        appended = request(host, port, {"op": "append", "items": stream})
        assert appended == {"ok": True, "appended": 500, "head": 500}
        answer = request(
            host, port, {"op": "query", "kind": "point", "item": stream[0]}
        )
        assert answer["ok"] and answer["value"] >= 1
        goodbye = request(host, port, {"op": "shutdown"})
        assert goodbye == {"ok": True, "head": 500}
        thread.join(5.0)
        assert not thread.is_alive()

    def test_bad_json_gets_error_line(self):
        engine = LiveEngine("count-min", n=N, seed=7)
        with LiveServer(engine, port=0) as server:
            thread = threading.Thread(
                target=server.serve_forever,
                kwargs={"poll_interval": 0.05},
                daemon=True,
            )
            thread.start()
            try:
                host, port = server.address
                with socket.create_connection(
                    (host, port), timeout=5.0
                ) as conn:
                    conn.sendall(b"this is not json\n")
                    reader = conn.makefile("r", encoding="utf-8")
                    response = json.loads(reader.readline())
                    assert response["ok"] is False
                    assert "bad JSON" in response["error"]
                    # Same connection keeps serving afterwards.
                    conn.sendall(
                        json.dumps({"op": "stats"}).encode() + b"\n"
                    )
                    assert json.loads(reader.readline())["ok"]
            finally:
                server.shutdown()
            thread.join(5.0)

    def test_concurrent_appends_and_queries(self):
        engine = LiveEngine(
            "count-min", n=N, epsilon=0.2, seed=8, snapshot_every=512
        )
        with LiveServer(engine, port=0) as server:
            thread = threading.Thread(
                target=server.serve_forever,
                kwargs={"poll_interval": 0.05},
                daemon=True,
            )
            thread.start()
            host, port = server.address
            stream = list(zipf_stream(N, 4000, seed=9))
            failures: list[str] = []

            def writer():
                for start in range(0, len(stream), 400):
                    response = request(
                        host,
                        port,
                        {
                            "op": "append",
                            "items": stream[start:start + 400],
                        },
                    )
                    if not response["ok"]:
                        failures.append(response["error"])

            def reader():
                for _ in range(20):
                    response = request(
                        host,
                        port,
                        {"op": "query", "kind": "point", "item": 0},
                    )
                    if not response["ok"]:
                        failures.append(response["error"])
                    elif response["updates_behind"] < 0:
                        failures.append("negative staleness")

            threads = [
                threading.Thread(target=writer),
                threading.Thread(target=reader),
                threading.Thread(target=reader),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30.0)
            try:
                assert failures == []
                stats = request(host, port, {"op": "stats"})
                assert stats["head"] == 4000
            finally:
                server.shutdown()
            thread.join(5.0)


class TestServeCli:
    def test_cli_serves_and_shuts_down(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--algorithm",
                "count-min",
                "--port",
                "0",
                "--snapshot-every",
                "128",
                "--n",
                "512",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            ready = process.stdout.readline()
            assert "serving count-min on" in ready
            address = ready.split(" on ", 1)[1].split(" ", 1)[0]
            host, port_text = address.rsplit(":", 1)
            port = int(port_text)
            appended = request(
                host, port, {"op": "append", "items": list(range(300))}
            )
            assert appended["head"] == 300
            answer = request(
                host, port, {"op": "query", "kind": "point", "item": 7}
            )
            assert answer["ok"] and answer["value"] >= 1
            goodbye = request(host, port, {"op": "shutdown"})
            assert goodbye == {"ok": True, "head": 300}
            out, _ = process.communicate(timeout=15)
            assert process.returncode == 0
            assert "shutdown: head=300" in out
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()

    def test_cli_rejects_unknown_algorithm(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--algorithm",
                "no-such-sketch",
            ],
            capture_output=True,
            env=env,
            text=True,
        )
        assert result.returncode != 0
