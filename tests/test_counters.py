"""Tests for exact / Morris / median-Morris counters (Theorem 1.5)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counters import (
    ExactCounter,
    MedianMorrisCounter,
    MorrisCounter,
)
from repro.state import StateTracker


class TestExactCounter:
    def test_counts_exactly(self):
        tracker = StateTracker()
        counter = ExactCounter(tracker)
        for _ in range(100):
            counter.add()
        assert counter.estimate == 100

    def test_every_increment_is_a_write(self):
        tracker = StateTracker()
        counter = ExactCounter(tracker)
        for _ in range(50):
            counter.add()
            tracker.tick()
        assert tracker.state_changes == 50

    def test_weighted_add(self):
        counter = ExactCounter(StateTracker())
        counter.add(2.5)
        counter.add(0.5)
        assert counter.estimate == 3.0

    def test_zero_add_is_free(self):
        tracker = StateTracker()
        counter = ExactCounter(tracker)
        counter.add(0)
        assert tracker.total_writes == 0

    def test_negative_add_raises(self):
        with pytest.raises(ValueError):
            ExactCounter(StateTracker()).add(-1)

    def test_release_frees_word(self):
        tracker = StateTracker()
        counter = ExactCounter(tracker)
        counter.release()
        assert tracker.current_words == 0


class TestMorrisCounter:
    def test_unbiased_mean(self):
        """Average of many independent counters approaches the truth."""
        rng = random.Random(0)
        n, copies = 500, 400
        total = 0.0
        for _ in range(copies):
            counter = MorrisCounter(StateTracker(), a=0.5, rng=rng)
            for _ in range(n):
                counter.add()
            total += counter.estimate
        assert total / copies == pytest.approx(n, rel=0.1)

    def test_few_state_changes(self):
        tracker = StateTracker()
        counter = MorrisCounter(tracker, a=0.5, rng=random.Random(1))
        n = 100_000
        for _ in range(n):
            counter.add()
            tracker.tick()
        # Level grows like log_{1.5}(a*n) ~ 27; allow generous slack.
        assert tracker.state_changes < 100
        assert counter.estimate == pytest.approx(n, rel=0.5)

    def test_accuracy_parameterization(self):
        counter = MorrisCounter.with_accuracy(
            StateTracker(), epsilon=0.1, delta=0.1, rng=random.Random(2)
        )
        assert counter.a == pytest.approx(2 * 0.1**2 * 0.1)

    def test_with_accuracy_rejects_bad_args(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            MorrisCounter.with_accuracy(StateTracker(), 0, 0.1, rng)
        with pytest.raises(ValueError):
            MorrisCounter.with_accuracy(StateTracker(), 0.1, 0, rng)
        with pytest.raises(ValueError):
            MorrisCounter.with_accuracy(StateTracker(), 0.1, 1.0, rng)

    def test_weighted_add_unbiased(self):
        rng = random.Random(3)
        total_weight = 0.0
        estimates = 0.0
        copies = 400
        for _ in range(copies):
            counter = MorrisCounter(StateTracker(), a=0.3, rng=rng)
            for w in (0.2, 1.7, 3.1, 0.05, 10.0):
                counter.add(w)
            total_weight = 15.05
            estimates += counter.estimate
        assert estimates / copies == pytest.approx(total_weight, rel=0.15)

    def test_large_weight_climbs_levels_deterministically(self):
        counter = MorrisCounter(StateTracker(), a=0.5, rng=random.Random(4))
        counter.add(1e6)
        assert counter.estimate == pytest.approx(1e6, rel=0.5)
        assert counter.level > 10

    def test_invalid_a_raises(self):
        with pytest.raises(ValueError):
            MorrisCounter(StateTracker(), a=0, rng=random.Random(0))

    def test_negative_weight_raises(self):
        counter = MorrisCounter(StateTracker(), a=0.5, rng=random.Random(0))
        with pytest.raises(ValueError):
            counter.add(-2)

    def test_zero_weight_noop(self):
        tracker = StateTracker()
        counter = MorrisCounter(tracker, a=0.5, rng=random.Random(0))
        counter.add(0)
        assert counter.level == 0
        assert tracker.total_writes == 0

    def test_estimate_zero_initially(self):
        counter = MorrisCounter(StateTracker(), a=0.5, rng=random.Random(0))
        assert counter.estimate == 0.0

    @given(st.integers(min_value=1, max_value=2000))
    @settings(max_examples=25, deadline=None)
    def test_estimate_within_chebyshev_band_mostly(self, n):
        """With a = 2*eps^2*delta (eps=0.5, delta=0.2) the estimate is
        within 50% of n with probability >= 0.8; a single trial at fixed
        derived seed must stay within a much looser 5x band."""
        counter = MorrisCounter.with_accuracy(
            StateTracker(), epsilon=0.5, delta=0.2, rng=random.Random(n)
        )
        for _ in range(n):
            counter.add()
        assert counter.estimate <= 6 * n + 10
        assert counter.estimate >= n / 6 - 10


class TestMedianMorrisCounter:
    def test_odd_number_of_copies(self):
        counter = MedianMorrisCounter(
            StateTracker(), epsilon=0.3, delta=0.05, rng=random.Random(0)
        )
        assert counter.num_copies % 2 == 1
        assert counter.num_copies >= 3

    def test_median_is_accurate(self):
        counter = MedianMorrisCounter(
            StateTracker(), epsilon=0.2, delta=0.01, rng=random.Random(1)
        )
        n = 5000
        for _ in range(n):
            counter.add()
        assert counter.estimate == pytest.approx(n, rel=0.5)

    def test_space_scales_with_copies(self):
        tracker = StateTracker()
        counter = MedianMorrisCounter(
            tracker, epsilon=0.3, delta=0.001, rng=random.Random(2)
        )
        assert tracker.current_words == counter.num_copies
        counter.release()
        assert tracker.current_words == 0

    def test_invalid_delta_raises(self):
        with pytest.raises(ValueError):
            MedianMorrisCounter(
                StateTracker(), epsilon=0.3, delta=0, rng=random.Random(0)
            )
