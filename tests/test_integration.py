"""Cross-module integration tests: one pass, many answers; NVM wiring;
determinism; the full pipeline a downstream user would run."""

import random

import pytest

from repro import (
    FrequencyVector,
    FullSampleAndHold,
    HeavyHitters,
    SampleAndHold,
    SampleAndHoldParams,
    planted_heavy_hitter_stream,
    zipf_stream,
)
from repro.baselines import MisraGries
from repro.nvm import PCM, NVMDevice


class TestOnePassManyAnswers:
    """A single HeavyHitters pass answers point queries, the heavy-
    hitter list, the Fp moment, the norm, and the audit."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        n, m = 512, 12000
        stream = planted_heavy_hitter_stream(n, m, {3: 4000}, seed=0)
        # repetitions=1 keeps the fixture fast but carries the
        # single-copy estimator's constant failure probability; the
        # seed is pinned to a draw where the v2 default protocol
        # lands inside the rel=0.8 moment tolerance.
        algo = HeavyHitters(
            n=n, m=m, p=2, epsilon=0.5, seed=2,
            inner_kwargs={"repetitions": 1},
        )
        algo.process_stream(stream)
        return algo, FrequencyVector.from_stream(stream)

    def test_point_query(self, pipeline):
        algo, f = pipeline
        assert algo.estimate(3) == pytest.approx(f[3], rel=0.5)

    def test_heavy_hitter_list(self, pipeline):
        algo, f = pipeline
        assert 3 in algo.heavy_hitters()

    def test_moment_and_norm_consistent(self, pipeline):
        algo, f = pipeline
        assert algo.norm_estimate() == pytest.approx(
            algo.fp_estimate() ** 0.5
        )
        assert algo.fp_estimate() == pytest.approx(f.fp_moment(2), rel=0.8)

    def test_audit_totals_consistent(self, pipeline):
        algo, f = pipeline
        report = algo.report()
        assert report.stream_length == f.stream_length
        assert report.state_changes <= report.total_writes
        assert report.total_writes <= report.total_write_attempts
        assert sum(report.cell_writes.values()) == report.total_writes


class TestNVMIntegration:
    def test_device_observes_exact_write_count(self):
        n, m = 256, 5000
        algo = FullSampleAndHold(
            n=n, m=m, p=2, epsilon=0.5, seed=1, repetitions=1
        )
        device = NVMDevice(512, PCM, wear_leveling="round-robin")
        device.attach(algo.tracker)
        algo.process_stream(zipf_stream(n, m, seed=1))
        assert device.total_writes == algo.report().total_writes

    def test_multiple_devices_one_trace(self):
        algo = MisraGries(k=8)
        devices = [
            NVMDevice(64, PCM, wear_leveling=policy, seed=2)
            for policy in ("none", "round-robin", "random")
        ]
        for device in devices:
            device.attach(algo.tracker)
        algo.process_stream(zipf_stream(100, 3000, seed=2))
        writes = {device.total_writes for device in devices}
        assert len(writes) == 1  # all saw the same trace


class TestDeterminism:
    def test_sample_and_hold_deterministic_given_seed(self):
        n, m = 256, 8000
        stream = zipf_stream(n, m, seed=3)
        params = SampleAndHoldParams.from_problem(n=n, m=m, p=2, epsilon=0.5)
        runs = []
        for _ in range(2):
            algo = SampleAndHold(params, rng=random.Random(42))
            algo.process_stream(stream)
            runs.append((algo.estimates(), algo.state_changes))
        assert runs[0] == runs[1]

    def test_full_stack_deterministic_given_seed(self):
        n, m = 128, 3000
        stream = zipf_stream(n, m, seed=4)
        results = []
        for _ in range(2):
            algo = HeavyHitters(
                n=n, m=m, p=2, epsilon=0.5, seed=7,
                inner_kwargs={"repetitions": 1},
            )
            algo.process_stream(stream)
            results.append((algo.fp_estimate(), algo.state_changes))
        assert results[0] == results[1]

    def test_different_seeds_differ(self):
        n, m = 128, 3000
        stream = zipf_stream(n, m, seed=5)
        changes = set()
        for seed in (1, 2, 3):
            algo = FullSampleAndHold(
                n=n, m=m, p=2, epsilon=0.5, seed=seed, repetitions=1
            )
            algo.process_stream(stream)
            changes.add(algo.state_changes)
        assert len(changes) > 1


class TestIncrementalProcessing:
    def test_interleaved_queries_do_not_mutate(self):
        """Queries are reads: issuing them mid-stream must not change
        the audit."""
        n, m = 128, 2000
        stream = zipf_stream(n, m, seed=6)
        algo = FullSampleAndHold(
            n=n, m=m, p=2, epsilon=0.5, seed=6, repetitions=1
        )
        for i, item in enumerate(stream):
            algo.process(item)
            if i % 500 == 0:
                before = algo.state_changes
                algo.estimates()
                assert algo.state_changes == before

    def test_prefix_suffix_equals_whole(self):
        """process_stream is just repeated process()."""
        stream = zipf_stream(64, 1000, seed=7)
        whole = FullSampleAndHold(
            n=64, m=1000, p=2, epsilon=0.5, seed=8, repetitions=1
        )
        split = FullSampleAndHold(
            n=64, m=1000, p=2, epsilon=0.5, seed=8, repetitions=1
        )
        whole.process_stream(stream)
        split.process_stream(stream[:400])
        split.process_stream(stream[400:])
        assert whole.estimates() == split.estimates()
        assert whole.state_changes == split.state_changes
