"""Tests for trace file I/O."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.traceio import read_trace, write_trace


class TestRoundTrip:
    def test_simple(self, tmp_path):
        path = tmp_path / "t.txt"
        stream = [1, 5, 2, 2, 9]
        assert write_trace(path, stream) == 5
        assert read_trace(path) == stream

    @given(st.lists(st.integers(0, 10**9), max_size=100))
    @settings(max_examples=40)
    def test_roundtrip_property(self, stream):
        import tempfile

        with tempfile.NamedTemporaryFile("w", suffix=".txt") as handle:
            write_trace(handle.name, stream)
            assert read_trace(handle.name) == stream

    def test_empty(self, tmp_path):
        path = tmp_path / "t.txt"
        write_trace(path, [])
        assert read_trace(path) == []


class TestValidation:
    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("1\n\n 2 \n\n")
        assert read_trace(path) == [1, 2]

    def test_malformed_raises_with_location(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("1\nhello\n")
        with pytest.raises(ValueError, match=":2:"):
            read_trace(path)

    def test_negative_raises(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("1\n-4\n")
        with pytest.raises(ValueError, match="negative"):
            read_trace(path)
