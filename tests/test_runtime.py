"""Tests for the sharded batch-ingest runtime and checkpointing."""

from __future__ import annotations

import pytest

from repro import registry
from repro.runtime import Checkpoint, ShardedRunner
from repro.state import NotMergeableError
from repro.streams import zipf_stream

N, M = 2048, 32768


class TestShardedRunner:
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 8])
    def test_hash_partitioned_count_min_matches_single(self, num_shards):
        stream = zipf_stream(N, M, skew=1.2, seed=1)
        single = registry.create("count-min", n=N, m=M, epsilon=0.05, seed=2)
        single.process_many(stream)
        runner = ShardedRunner.from_registry(
            "count-min", num_shards, n=N, m=M, epsilon=0.05, seed=2
        )
        result = runner.run(stream)
        for item in range(128):
            assert result.merged.estimate(item) == single.estimate(item)
        assert result.merged_report.state_changes == sum(
            report.state_changes for report in result.shard_reports
        )
        assert result.merged_report.stream_length == len(stream)
        assert sum(result.shard_items) == len(stream)

    def test_hash_partition_colocates_items(self):
        runner = ShardedRunner.from_registry("count-min", 4, seed=3)
        for item in range(100):
            assert runner.shard_of(item) == runner.shard_of(item)

    def test_round_robin_balances_perfectly(self):
        stream = zipf_stream(N, 4096, skew=1.5, seed=4)
        runner = ShardedRunner.from_registry(
            "count-min", 4, n=N, m=4096, seed=4, partition="round-robin"
        )
        result = runner.run(stream)
        assert result.skew == 1.0
        assert max(result.shard_items) - min(result.shard_items) <= 1

    def test_skew_reported_for_hash_partition(self):
        # A single-item stream must land on one shard: maximal skew.
        runner = ShardedRunner.from_registry("count-min", 4, seed=5)
        runner.ingest([7] * 1000)
        assert runner.skew() == pytest.approx(4.0)

    def test_skew_on_degenerate_streams(self):
        # Regression: empty and single-item streams must report a
        # well-defined skew, not divide by zero.
        empty = ShardedRunner.from_registry("count-min", 4, seed=5).run([])
        assert empty.skew == 1.0
        single = ShardedRunner.from_registry("count-min", 4, seed=5).run([9])
        assert single.skew == pytest.approx(4.0)
        assert single.summary()  # skew renders in the summary line

    def test_small_batches_flush_incrementally(self):
        stream = zipf_stream(256, 1000, skew=1.1, seed=6)
        runner = ShardedRunner.from_registry(
            "count-min", 2, n=256, m=1000, seed=6, batch_size=16
        )
        runner.ingest(iter(stream))  # works on a pure iterator
        assert sum(runner.shard_items) == len(stream)

    def test_ingest_after_merge_rejected(self):
        runner = ShardedRunner.from_registry("count-min", 2, seed=7)
        runner.ingest([1, 2, 3])
        runner.merge()
        with pytest.raises(RuntimeError):
            runner.ingest([4])

    def test_merge_idempotent(self):
        runner = ShardedRunner.from_registry("count-min", 4, seed=8)
        runner.ingest(range(100))
        assert runner.merge() is runner.merge()

    def test_non_mergeable_sketch_rejected(self):
        with pytest.raises(NotMergeableError):
            ShardedRunner.from_registry(
                "sample-and-hold", 2, n=256, m=1024, seed=0
            )

    def test_single_shard_allows_non_mergeable(self):
        runner = ShardedRunner.from_registry(
            "sample-and-hold", 1, n=256, m=1024, seed=0
        )
        runner.ingest(zipf_stream(256, 1024, seed=0))
        assert runner.merge().items_processed == 1024

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            ShardedRunner.from_registry("count-min", 0)
        with pytest.raises(ValueError):
            ShardedRunner.from_registry("count-min", 2, partition="range")
        tracker_shared = registry.create("count-min", seed=0)
        with pytest.raises(ValueError):
            ShardedRunner(lambda i: tracker_shared, num_shards=2)


class TestMergedSnapshot:
    def test_snapshot_leaves_shards_ingestable(self):
        stream = zipf_stream(N, 8192, seed=11)
        runner = ShardedRunner.from_registry(
            "count-min", 4, n=N, epsilon=0.1, seed=11
        )
        runner.ingest(stream[:4096])
        snapshot = runner.merged_snapshot()
        assert snapshot.items_processed == 4096
        # The runner keeps ingesting; the snapshot does not move.
        runner.ingest(stream[4096:])
        assert snapshot.items_processed == 4096
        assert sum(runner.shard_items) == 8192

    def test_snapshot_is_bit_identical_to_merge(self):
        import json

        stream = zipf_stream(N, 8192, seed=12)
        runner = ShardedRunner.from_registry(
            "count-min", 4, n=N, epsilon=0.1, seed=12
        )
        runner.ingest(stream)
        snapshot = runner.merged_snapshot()
        merged = runner.merge()
        assert json.dumps(
            snapshot.to_state(), sort_keys=True
        ) == json.dumps(merged.to_state(), sort_keys=True)

    def test_snapshot_matches_fresh_batch_over_prefix(self):
        import json

        stream = zipf_stream(N, 8192, seed=13)
        live = ShardedRunner.from_registry(
            "misra-gries", 2, n=N, epsilon=0.4, seed=13
        )
        live.ingest(stream[:3000])
        snapshot = live.merged_snapshot()
        batch = ShardedRunner.from_registry(
            "misra-gries", 2, n=N, epsilon=0.4, seed=13
        )
        batch.ingest(stream[:3000])
        assert json.dumps(
            snapshot.to_state(), sort_keys=True
        ) == json.dumps(batch.merge().to_state(), sort_keys=True)

    def test_repeated_snapshots_are_independent(self):
        stream = zipf_stream(N, 4096, seed=14)
        runner = ShardedRunner.from_registry("exact", 2, n=N, seed=14)
        runner.ingest(stream[:2048])
        first = runner.merged_snapshot()
        second = runner.merged_snapshot()
        assert first is not second
        assert first.report().state_changes == second.report().state_changes
        runner.ingest(stream[2048:])
        third = runner.merged_snapshot()
        assert third.report().state_changes > first.report().state_changes

    def test_snapshot_does_not_disturb_shard_audits(self):
        stream = zipf_stream(N, 4096, seed=15)
        runner = ShardedRunner.from_registry("count-min", 4, n=N, seed=15)
        runner.ingest(stream)
        before = [r.state_changes for r in runner.shard_reports()]
        runner.merged_snapshot()
        after = [r.state_changes for r in runner.shard_reports()]
        assert before == after

    def test_snapshot_after_merge_rejected(self):
        runner = ShardedRunner.from_registry("count-min", 2, seed=16)
        runner.ingest([1, 2, 3])
        runner.merge()
        with pytest.raises(RuntimeError, match="already merged"):
            runner.merged_snapshot()

    def test_non_serializable_family_snapshots_via_deepcopy(self):
        stream = zipf_stream(N, 2048, seed=17)
        runner = ShardedRunner.from_registry(
            "reservoir", 1, n=N, epsilon=0.5, seed=17
        )
        runner.ingest(stream[:1024])
        snapshot = runner.merged_snapshot()
        held = list(snapshot.sample)
        runner.ingest(stream[1024:])
        # The copy froze the sample at the cut; the live shard moved on.
        assert list(snapshot.sample) == held
        assert snapshot.items_processed == 1024

    def test_process_executor_snapshot_then_ingest_rejected(self):
        stream = zipf_stream(N, 2048, seed=18)
        runner = ShardedRunner.from_registry(
            "count-min", 2, n=N, seed=18, executor="process",
            max_workers=2,
        )
        runner.ingest(stream)
        snapshot = runner.merged_snapshot()  # triggers the one-shot pool
        assert snapshot.items_processed == 2048
        with pytest.raises(RuntimeError, match="already executed"):
            runner.ingest(stream)


class TestCheckpoint:
    def test_file_round_trip(self, tmp_path):
        stream = zipf_stream(512, 4096, skew=1.2, seed=9)
        sketch = registry.create("count-min", n=512, m=4096, seed=10)
        sketch.process_many(stream)
        path = Checkpoint.save(tmp_path / "sketch.json", sketch)
        restored = Checkpoint.load(path)
        assert type(restored) is type(sketch)
        assert restored.report() == sketch.report()
        for item in range(64):
            assert restored.estimate(item) == sketch.estimate(item)

    def test_round_trip_of_merged_shard_run(self, tmp_path):
        stream = zipf_stream(512, 4096, skew=1.2, seed=11)
        result = ShardedRunner.from_registry(
            "misra-gries", 4, n=512, m=4096, epsilon=0.1, seed=12
        ).run(stream)
        path = Checkpoint.save(tmp_path / "merged.json", result.merged)
        restored = Checkpoint.load(path)
        assert restored.report() == result.merged_report
        assert restored.estimates() == result.merged.estimates()

    def test_unknown_class_rejected(self):
        with pytest.raises(KeyError):
            Checkpoint.loads('{"algorithm": "NoSuchSketch"}')


class TestPostMergeObservation:
    def test_shard_reports_stable_after_merge(self):
        # Regression: the reduce folds shard trackers into the merge
        # root; post-merge reports must be the pre-merge snapshots,
        # not double-counted live trackers.
        runner = ShardedRunner.from_registry("count-min", 4, seed=13)
        runner.ingest(range(1000))
        pre = runner.shard_reports()
        merged = runner.merge()
        assert runner.shard_reports() == pre
        assert sum(r.state_changes for r in pre) == (
            merged.report().state_changes
        )

    def test_shard_of_is_pure_under_round_robin(self):
        # Regression: peeking at routing must not advance the cursor.
        runner = ShardedRunner.from_registry(
            "count-min", 2, partition="round-robin", seed=14
        )
        assert [runner.shard_of(9) for _ in range(3)] == [0, 0, 0]
        runner.ingest([5])
        assert runner.shard_items == (1, 0)
