"""Tests for k-wise hashing and nested subsampling."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import (
    MERSENNE_P,
    KWiseHash,
    NestedStreamSampler,
    NestedUniverseSampler,
    hash_to_unit,
)


class TestKWiseHash:
    def test_deterministic_for_equal_seeds(self):
        h1, h2 = KWiseHash(4, seed=7), KWiseHash(4, seed=7)
        assert [h1(x) for x in range(100)] == [h2(x) for x in range(100)]

    def test_different_seeds_differ(self):
        h1, h2 = KWiseHash(2, seed=1), KWiseHash(2, seed=2)
        assert [h1(x) for x in range(50)] != [h2(x) for x in range(50)]

    def test_output_range(self):
        h = KWiseHash(3, seed=0)
        for x in range(1000):
            assert 0 <= h(x) < MERSENNE_P

    def test_unit_in_interval(self):
        h = KWiseHash(2, seed=3)
        for x in range(1000):
            assert 0.0 <= h.unit(x) < 1.0

    def test_bucket_range(self):
        h = KWiseHash(2, seed=5)
        for x in range(500):
            assert 0 <= h.bucket(x, 17) < 17

    def test_bucket_roughly_uniform(self):
        h = KWiseHash(2, seed=11)
        counts = [0] * 8
        for x in range(8000):
            counts[h.bucket(x, 8)] += 1
        assert min(counts) > 700  # expectation 1000

    def test_sign_balanced(self):
        h = KWiseHash(4, seed=13)
        total = sum(h.sign(x) for x in range(10000))
        assert abs(total) < 500

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            KWiseHash(0)

    def test_invalid_bucket_raises(self):
        with pytest.raises(ValueError):
            KWiseHash(2, seed=0).bucket(5, 0)

    def test_description_words(self):
        assert KWiseHash(6, seed=0).description_words == 6

    @given(st.integers(min_value=0, max_value=MERSENNE_P - 1))
    @settings(max_examples=50)
    def test_hash_is_pure(self, x):
        h = KWiseHash(3, seed=42)
        assert h(x) == h(x)


class TestHashToUnit:
    def test_deterministic(self):
        assert hash_to_unit(1, 2, 3) == hash_to_unit(1, 2, 3)

    def test_varies_with_parts(self):
        values = {hash_to_unit(0, i) for i in range(100)}
        assert len(values) == 100

    def test_in_unit_interval(self):
        for i in range(200):
            assert 0.0 <= hash_to_unit(9, i) < 1.0


class TestNestedUniverseSampler:
    def test_level_one_contains_everything(self):
        sampler = NestedUniverseSampler(num_levels=10, seed=0)
        assert all(sampler.contains(j, 1) for j in range(500))

    def test_nesting(self):
        sampler = NestedUniverseSampler(num_levels=12, seed=1)
        for j in range(2000):
            deepest = sampler.level_of(j)
            for level in range(1, deepest + 1):
                assert sampler.contains(j, level)
            for level in range(deepest + 1, sampler.num_levels + 1):
                assert not sampler.contains(j, level)

    def test_survival_rate_halves_per_level(self):
        sampler = NestedUniverseSampler(num_levels=15, seed=2)
        n = 40000
        for level in (2, 3, 4):
            survivors = sum(sampler.contains(j, level) for j in range(n))
            expected = n * 2.0 ** (1 - level)
            assert abs(survivors - expected) < 5 * math.sqrt(expected)

    def test_consistency_across_calls(self):
        sampler = NestedUniverseSampler(num_levels=8, seed=3)
        assert [sampler.level_of(j) for j in range(100)] == [
            sampler.level_of(j) for j in range(100)
        ]

    def test_rate(self):
        sampler = NestedUniverseSampler(num_levels=5, seed=0)
        assert sampler.rate(1) == 1.0
        assert sampler.rate(3) == 0.25

    def test_invalid_level_raises(self):
        sampler = NestedUniverseSampler(num_levels=5, seed=0)
        with pytest.raises(ValueError):
            sampler.contains(1, 0)
        with pytest.raises(ValueError):
            sampler.contains(1, 6)

    def test_invalid_num_levels_raises(self):
        with pytest.raises(ValueError):
            NestedUniverseSampler(num_levels=0)


class TestNestedStreamSampler:
    def test_levels_in_range(self):
        sampler = NestedStreamSampler(num_levels=9, rng=random.Random(0))
        for _ in range(1000):
            assert 1 <= sampler.draw_level() <= 9

    def test_geometric_distribution(self):
        sampler = NestedStreamSampler(num_levels=20, rng=random.Random(1))
        draws = [sampler.draw_level() for _ in range(40000)]
        at_least_3 = sum(level >= 3 for level in draws)
        expected = 40000 * 0.25
        assert abs(at_least_3 - expected) < 5 * math.sqrt(expected)

    def test_invalid_num_levels_raises(self):
        with pytest.raises(ValueError):
            NestedStreamSampler(num_levels=0, rng=random.Random(0))
