"""Tests for the extension experiments (A4, E10) at small sizes."""

from repro.experiments.extensions import (
    format_kmv,
    format_sketch_hybrid,
    kmv_experiment,
    sketch_hybrid_comparison,
)


class TestSketchHybrid:
    def test_rows_cover_all_combinations(self):
        rows = sketch_hybrid_comparison(
            n_skewed=32, n_uniform=5000, m=5000, seed=0
        )
        assert len(rows) == 6
        workloads = {row.workload for row in rows}
        assert len(workloads) == 2

    def test_exact_countmin_is_linear(self):
        rows = sketch_hybrid_comparison(
            n_skewed=32, n_uniform=5000, m=5000, seed=1
        )
        for row in rows:
            if row.algorithm.startswith("CountMin (exact"):
                assert row.change_fraction > 0.95

    def test_morris_cells_help_more_on_skew(self):
        rows = sketch_hybrid_comparison(
            n_skewed=32, n_uniform=20000, m=20000, seed=2
        )
        morris = {
            row.workload: row.change_fraction
            for row in rows
            if "Morris" in row.algorithm
        }
        skewed = next(v for k, v in morris.items() if "skew" in k)
        uniform = next(v for k, v in morris.items() if "uniform" in k)
        assert skewed < uniform

    def test_format(self):
        rows = sketch_hybrid_comparison(
            n_skewed=32, n_uniform=1000, m=1000, seed=3
        )
        assert "A4" in format_sketch_hybrid(rows)


class TestKMVExperiment:
    def test_result_shape(self):
        result = kmv_experiment(
            n=2000, ms=(1000, 4000), k=64, trials=2, seed=0
        )
        assert set(result.mean_state_changes_by_m) == {1000, 4000}
        assert result.median_rel_error < 0.5

    def test_state_changes_grow_slowly(self):
        result = kmv_experiment(
            n=5000, ms=(2000, 8000), k=64, trials=3, seed=1
        )
        changes = result.mean_state_changes_by_m
        assert changes[8000] < 2.5 * changes[2000]

    def test_format(self):
        result = kmv_experiment(n=500, ms=(500,), k=16, trials=2, seed=2)
        assert "E10" in format_kmv(result)
