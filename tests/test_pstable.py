"""Tests for p-stable variate generation (Definition 3.1)."""

import math

import numpy as np
import pytest

from repro.hashing import (
    DerandomizedStable,
    sample_pstable,
    sample_pstable_array,
    stable_abs_median,
)


class TestSamplePStable:
    def test_p1_is_cauchy_tan(self):
        assert sample_pstable(1.0, 0.5, 0.3) == pytest.approx(math.tan(0.5))

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            sample_pstable(0.0, 0.1, 0.5)
        with pytest.raises(ValueError):
            sample_pstable(2.5, 0.1, 0.5)

    def test_p2_is_gaussian_scale(self):
        # For p=2 the CMS transform yields N(0, 2) (variance 2).
        rng = np.random.default_rng(0)
        draws = sample_pstable_array(2.0, 100_000, rng)
        assert np.std(draws) == pytest.approx(math.sqrt(2.0), rel=0.02)
        assert np.mean(draws) == pytest.approx(0.0, abs=0.02)


class TestStabilityProperty:
    @pytest.mark.parametrize("p", [0.5, 1.0, 1.5])
    def test_sum_scales_like_lp_norm(self, p):
        """sum_i Z_i x_i ~ ||x||_p Z: compare |.|-medians of both sides."""
        rng = np.random.default_rng(42)
        x = np.array([3.0, 4.0, 1.0, 2.0])
        lp = float(np.sum(np.abs(x) ** p)) ** (1.0 / p)
        trials = 60_000
        z = sample_pstable_array(p, trials * len(x), rng).reshape(trials, len(x))
        combo_median = float(np.median(np.abs(z @ x)))
        single_median = stable_abs_median(p) * lp
        assert combo_median == pytest.approx(single_median, rel=0.05)


class TestStableAbsMedian:
    def test_cauchy_median_is_one(self):
        assert stable_abs_median(1.0) == 1.0

    def test_gaussian_case_exact(self):
        assert stable_abs_median(2.0) == pytest.approx(
            math.sqrt(2.0) * 0.674489750196, rel=1e-9
        )

    def test_monte_carlo_case_reproducible(self):
        assert stable_abs_median(0.5) == stable_abs_median(0.5)
        assert stable_abs_median(0.5) > 0


class TestDerandomizedStable:
    def test_deterministic_per_cell(self):
        gen = DerandomizedStable(0.5, seed=7)
        assert gen.variate(3, 100) == gen.variate(3, 100)

    def test_varies_across_cells(self):
        gen = DerandomizedStable(0.5, seed=7)
        values = {gen.variate(r, i) for r in range(5) for i in range(5)}
        assert len(values) == 25

    def test_distribution_matches_direct_sampling(self):
        gen = DerandomizedStable(1.0, seed=3)
        draws = np.array([gen.variate(0, i) for i in range(50_000)])
        # Cauchy |.|-median is 1.
        assert float(np.median(np.abs(draws))) == pytest.approx(1.0, rel=0.05)

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            DerandomizedStable(3.0, seed=0)
