"""Tests for the NVM cost model and wear simulator."""

import pytest

from repro.nvm import DRAM, NAND_FLASH, PCM, NVMCostModel, NVMDevice
from repro.state import StateTracker, TrackedValue


class TestCostModel:
    def test_presets_are_asymmetric(self):
        assert PCM.write_read_energy_ratio > 10
        assert NAND_FLASH.write_read_energy_ratio > 10
        assert DRAM.write_read_energy_ratio == 1.0

    def test_energy_accounts_reads_and_writes(self):
        tracker = StateTracker()
        cell = TrackedValue(tracker, "c", 0)
        for i in range(10):
            cell.set(i + 1)
            tracker.tick()
        report = tracker.report()
        energy = PCM.energy_nj(report, reads_per_update=2.0)
        assert energy == pytest.approx(10 * 2 * 1.0 + 10 * 30.0)

    def test_latency(self):
        tracker = StateTracker()
        cell = TrackedValue(tracker, "c", 0)
        cell.set(1)
        tracker.tick()
        report = tracker.report()
        assert DRAM.latency_ns(report, reads_per_update=1.0) == pytest.approx(20.0)

    def test_invalid_model_raises(self):
        with pytest.raises(ValueError):
            NVMCostModel("bad", 0.0, 1.0, 1.0, 1.0, 1.0)


class TestDevicePlacement:
    def _tracker_with_writes(self, pattern):
        tracker = StateTracker()
        device_writes = []
        for cell_id in pattern:
            tracker.record_write(cell_id, mutated=True)
        return tracker

    def test_direct_mapping_concentrates_wear(self):
        device = NVMDevice(8, PCM, wear_leveling="none")
        for _ in range(100):
            device.on_write(0, "hot", True)
        assert device.max_wear == 100
        assert device.wear_imbalance == pytest.approx(8.0)

    def test_round_robin_levels_wear(self):
        device = NVMDevice(8, PCM, wear_leveling="round-robin")
        for _ in range(800):
            device.on_write(0, "hot", True)
        assert device.max_wear == 100
        assert device.wear_imbalance == pytest.approx(1.0)

    def test_random_roughly_levels(self):
        device = NVMDevice(4, PCM, wear_leveling="random", seed=0)
        for _ in range(4000):
            device.on_write(0, "hot", True)
        assert device.wear_imbalance < 1.2

    def test_silent_writes_skipped_by_default(self):
        device = NVMDevice(4, PCM)
        device.on_write(0, "c", False)
        assert device.total_writes == 0

    def test_silent_writes_counted_when_configured(self):
        device = NVMDevice(4, PCM, count_silent_writes=True)
        device.on_write(0, "c", False)
        assert device.total_writes == 1

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            NVMDevice(0, PCM)
        with pytest.raises(ValueError):
            NVMDevice(4, PCM, wear_leveling="magic")


class TestLifetime:
    def test_fresh_device_infinite_lifetime(self):
        device = NVMDevice(4, PCM)
        assert device.lifetime_workloads() == float("inf")
        assert not device.is_worn_out

    def test_lifetime_scales_with_endurance(self):
        nand = NVMDevice(4, NAND_FLASH, wear_leveling="round-robin")
        pcm = NVMDevice(4, PCM, wear_leveling="round-robin")
        for _ in range(400):
            nand.on_write(0, "c", True)
            pcm.on_write(0, "c", True)
        assert pcm.lifetime_workloads() > nand.lifetime_workloads()

    def test_worn_out_detection(self):
        tiny = NVMCostModel("tiny", 1, 2, 1, 1, endurance=10)
        device = NVMDevice(1, tiny)
        for _ in range(11):
            device.on_write(0, "c", True)
        assert device.is_worn_out


class TestTrackerIntegration:
    def test_attach_consumes_algorithm_writes(self):
        from repro.baselines import MisraGries
        from repro.streams import zipf_stream

        algo = MisraGries(k=10)
        device = NVMDevice(64, PCM, wear_leveling="round-robin")
        device.attach(algo.tracker)
        stream = zipf_stream(100, 2000, seed=0)
        algo.process_stream(stream)
        assert device.total_writes == algo.report().total_writes
        assert device.total_writes > 0

    def test_wear_leveling_extends_lifetime_on_real_trace(self):
        from repro.baselines import SpaceSaving
        from repro.streams import zipf_stream

        stream = zipf_stream(200, 4000, skew=1.4, seed=1)
        lifetimes = {}
        for policy in ("none", "round-robin"):
            algo = SpaceSaving(k=8)
            device = NVMDevice(256, PCM, wear_leveling=policy, seed=2)
            device.attach(algo.tracker)
            algo.process_stream(stream)
            lifetimes[policy] = device.lifetime_workloads()
        assert lifetimes["round-robin"] > lifetimes["none"]
