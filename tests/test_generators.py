"""Tests for workload generators."""

import pytest

from repro.streams import (
    FrequencyVector,
    bursty_stream,
    permutation_stream,
    phase_shift_stream,
    planted_heavy_hitter_stream,
    round_robin_stream,
    uniform_stream,
    zipf_stream,
)


class TestBursty:
    def test_length_universe_and_reproducibility(self):
        a = bursty_stream(100, 2000, seed=4)
        b = bursty_stream(100, 2000, seed=4)
        assert a == b
        assert len(a) == 2000
        assert all(0 <= x < 100 for x in a)

    def test_zero_bursts_is_pure_background(self):
        assert bursty_stream(100, 500, num_bursts=0, seed=2) == zipf_stream(
            100, 500, skew=1.1, seed=2
        )

    def test_bursts_concentrate_mass(self):
        calm = bursty_stream(4096, 4000, burst_fraction=0.0, seed=3)
        stormy = bursty_stream(
            4096, 4000, num_bursts=1, burst_fraction=0.5,
            burst_intensity=1.0, seed=3,
        )
        def max_count(stream):
            return max(
                count
                for _, count in FrequencyVector.from_stream(stream).items()
            )

        top = max_count(stormy)
        assert top >= max_count(calm)
        assert top >= 0.4 * 4000 / 2  # the flash item dominates its window

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            bursty_stream(0, 10)
        with pytest.raises(ValueError):
            bursty_stream(10, 10, num_bursts=-1)
        with pytest.raises(ValueError):
            bursty_stream(10, 10, burst_fraction=1.5)
        with pytest.raises(ValueError):
            bursty_stream(10, 10, burst_intensity=-0.1)


class TestPhaseShift:
    def test_length_universe_and_reproducibility(self):
        a = phase_shift_stream(64, 999, phases=3, seed=5)
        b = phase_shift_stream(64, 999, phases=3, seed=5)
        assert a == b
        assert len(a) == 999
        assert all(0 <= x < 64 for x in a)

    def test_single_phase_keeps_one_ranking(self):
        stream = phase_shift_stream(256, 3000, phases=1, skew=1.5, seed=6)
        assert len(stream) == 3000

    def test_heavy_item_changes_across_phases(self):
        stream = phase_shift_stream(256, 9000, phases=3, skew=1.5, seed=7)
        tops = set()
        for phase in range(3):
            block = stream[phase * 3000:(phase + 1) * 3000]
            f = FrequencyVector.from_stream(block)
            tops.add(max(f.items(), key=lambda kv: kv[1])[0])
        assert len(tops) > 1

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            phase_shift_stream(0, 10)
        with pytest.raises(ValueError):
            phase_shift_stream(10, 10, phases=0)


class TestZipf:
    def test_length_and_universe(self):
        stream = zipf_stream(100, 1000, seed=0)
        assert len(stream) == 1000
        assert all(0 <= x < 100 for x in stream)

    def test_skew_concentrates_mass(self):
        stream = zipf_stream(1000, 20000, skew=1.5, seed=1)
        f = FrequencyVector.from_stream(stream)
        assert f[0] > f[100]
        assert f[0] > 0.05 * len(stream)

    def test_reproducible(self):
        assert zipf_stream(50, 500, seed=9) == zipf_stream(50, 500, seed=9)

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            zipf_stream(0, 10)
        with pytest.raises(ValueError):
            zipf_stream(10, -1)
        with pytest.raises(ValueError):
            zipf_stream(10, 10, skew=0)


class TestUniform:
    def test_length_and_universe(self):
        stream = uniform_stream(64, 640, seed=0)
        assert len(stream) == 640
        assert all(0 <= x < 64 for x in stream)

    def test_roughly_flat(self):
        f = FrequencyVector.from_stream(uniform_stream(10, 10000, seed=2))
        counts = [f[i] for i in range(10)]
        assert max(counts) < 2 * min(counts)

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            uniform_stream(0, 10)


class TestPermutation:
    def test_is_permutation(self):
        stream = permutation_stream(128, seed=3)
        assert sorted(stream) == list(range(128))

    def test_all_frequencies_one(self):
        f = FrequencyVector.from_stream(permutation_stream(50, seed=4))
        assert all(count == 1 for _, count in f.items())
        assert f.fp_moment(2) == 50

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            permutation_stream(0)


class TestRoundRobin:
    def test_cycles(self):
        assert round_robin_stream(3, 7) == [0, 1, 2, 0, 1, 2, 0]

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            round_robin_stream(0, 5)


class TestPlantedHeavyHitters:
    def test_exact_planted_counts(self):
        stream = planted_heavy_hitter_stream(
            1000, 5000, {7: 300, 8: 150}, seed=5
        )
        f = FrequencyVector.from_stream(stream)
        assert f[7] == 300
        assert f[8] == 150
        assert len(stream) == 5000

    def test_zipf_background(self):
        stream = planted_heavy_hitter_stream(
            500, 2000, {3: 100}, background="zipf", seed=6
        )
        assert FrequencyVector.from_stream(stream)[3] == 100

    def test_overfull_raises(self):
        with pytest.raises(ValueError):
            planted_heavy_hitter_stream(10, 5, {1: 10})

    def test_bad_item_raises(self):
        with pytest.raises(ValueError):
            planted_heavy_hitter_stream(10, 100, {50: 5})
        with pytest.raises(ValueError):
            planted_heavy_hitter_stream(10, 100, {5: 0})

    def test_unknown_background_raises(self):
        with pytest.raises(ValueError):
            planted_heavy_hitter_stream(10, 100, {5: 5}, background="pareto")

    def test_reproducible(self):
        a = planted_heavy_hitter_stream(100, 400, {1: 50}, seed=8)
        b = planted_heavy_hitter_stream(100, 400, {1: 50}, seed=8)
        assert a == b
