"""Unit tests for the state-change accounting substrate."""

import pytest

from repro.state import StateTracker


class TestClock:
    def test_tick_without_writes_is_not_a_state_change(self):
        tracker = StateTracker()
        assert tracker.tick() is False
        assert tracker.state_changes == 0
        assert tracker.timestep == 1

    def test_mutating_write_marks_one_state_change_per_tick(self):
        tracker = StateTracker()
        tracker.record_write("c", mutated=True)
        tracker.record_write("d", mutated=True)
        assert tracker.tick() is True
        assert tracker.state_changes == 1  # two writes, one timestep
        assert tracker.total_writes == 2

    def test_silent_write_is_not_a_state_change(self):
        tracker = StateTracker()
        tracker.record_write("c", mutated=False)
        assert tracker.tick() is False
        assert tracker.state_changes == 0
        report = tracker.report()
        assert report.total_write_attempts == 1
        assert report.total_writes == 0

    def test_dirty_flag_resets_between_ticks(self):
        tracker = StateTracker()
        tracker.record_write("c", mutated=True)
        tracker.tick()
        assert tracker.tick() is False
        assert tracker.state_changes == 1

    def test_mark_dirty_forces_state_change(self):
        tracker = StateTracker()
        tracker.mark_dirty()
        assert tracker.tick() is True


class TestSpaceAccounting:
    def test_peak_tracks_high_water_mark(self):
        tracker = StateTracker()
        tracker.allocate(10)
        tracker.free(4)
        tracker.allocate(2)
        assert tracker.current_words == 8
        assert tracker.peak_words == 10

    def test_free_more_than_live_raises(self):
        tracker = StateTracker()
        tracker.allocate(3)
        with pytest.raises(ValueError):
            tracker.free(5)

    def test_negative_allocation_raises(self):
        tracker = StateTracker()
        with pytest.raises(ValueError):
            tracker.allocate(-1)
        with pytest.raises(ValueError):
            tracker.free(-1)


class TestCellHistogram:
    def test_per_cell_writes_recorded(self):
        tracker = StateTracker()
        for _ in range(3):
            tracker.record_write("hot", mutated=True)
        tracker.record_write("cold", mutated=True)
        report = tracker.report()
        assert report.cell_writes == {"hot": 3, "cold": 1}
        assert report.max_cell_wear == 3

    def test_record_cells_false_skips_histogram(self):
        tracker = StateTracker(record_cells=False)
        tracker.record_write("c", mutated=True)
        assert tracker.report().cell_writes == {}
        assert tracker.total_writes == 1


class TestListeners:
    def test_listener_sees_all_write_attempts(self):
        tracker = StateTracker()
        events = []
        tracker.add_listener(lambda t, cell, mutated: events.append((t, cell, mutated)))
        tracker.record_write("a", mutated=True)
        tracker.tick()
        tracker.record_write("a", mutated=False)
        assert events == [(0, "a", True), (1, "a", False)]

    def test_removed_listener_stops_receiving(self):
        tracker = StateTracker()
        events = []
        listener = lambda t, cell, mutated: events.append(cell)  # noqa: E731
        tracker.add_listener(listener)
        tracker.record_write("a", mutated=True)
        tracker.remove_listener(listener)
        tracker.record_write("b", mutated=True)
        assert events == ["a"]


class TestReport:
    def test_state_change_fraction(self):
        tracker = StateTracker()
        tracker.record_write("c", mutated=True)
        tracker.tick()
        for _ in range(3):
            tracker.tick()
        report = tracker.report()
        assert report.stream_length == 4
        assert report.state_change_fraction == pytest.approx(0.25)

    def test_empty_report_fraction_zero(self):
        report = StateTracker().report()
        assert report.state_change_fraction == 0.0
        assert report.max_cell_wear == 0

    def test_summary_mentions_key_numbers(self):
        tracker = StateTracker()
        tracker.record_write("c", mutated=True)
        tracker.tick()
        text = tracker.report().summary()
        assert "state_changes=1" in text
        assert "m=1" in text
