"""Backend architecture tests: aggregate/trace/budget equivalence,
budget policy enforcement, and snapshot round trips.

The compatibility contract under test: all three tracker backends
report identical :class:`StateChangeReport` aggregate fields and
bit-identical query answers on identical seeded runs (an unlimited
budget denies nothing), including across the process-executor
serialization round trip.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import registry
from repro.query import (
    AllEstimates,
    Distinct,
    Entropy,
    HeavyHitters,
    Moment,
    PointQuery,
    QueryKind,
)
from repro.runtime.parallel import ingest_shard
from repro.runtime.sharded import ShardedRunner
from repro.state import (
    AggregateBackend,
    BudgetBackend,
    Sketch,
    StateTracker,
    TraceBackend,
    TrackedDict,
    TrackedValue,
    WriteBudget,
    WriteBudgetExceededError,
    make_tracker,
    tracker_from_state,
)

#: Aggregate audit fields every backend must agree on exactly.
AUDIT_FIELDS = (
    "stream_length",
    "state_changes",
    "total_writes",
    "total_write_attempts",
    "peak_words",
    "current_words",
)

#: One parameter-free query per kind (points get item 1).
QUERY_FOR_KIND = {
    QueryKind.POINT: lambda: PointQuery(1),
    QueryKind.ALL_ESTIMATES: AllEstimates,
    QueryKind.HEAVY_HITTERS: HeavyHitters,
    QueryKind.MOMENT: Moment,
    QueryKind.DISTINCT: Distinct,
    QueryKind.ENTROPY: Entropy,
}


def aggregate_fields(sketch: Sketch) -> tuple:
    report = sketch.report()
    return tuple(getattr(report, field) for field in AUDIT_FIELDS)


def all_answers(sketch: Sketch) -> list:
    return [
        sketch.query(QUERY_FOR_KIND[kind]())
        for kind in sorted(sketch.supports, key=str)
    ]


class WriteScript(Sketch):
    """Minimal sketch: one tracked word plus a small tracked table.

    ``_update(item)`` writes ``item`` to the word and bumps the
    table entry ``item % 4``, so every distinct consecutive item is a
    state change and the budget policies have something to deny.
    """

    def __init__(self, tracker=None):
        super().__init__(tracker)
        self._word = TrackedValue(self.tracker, "word", 0)
        self._table = TrackedDict(self.tracker, "table")

    def _update(self, item: int) -> None:
        self._word.set(item)
        key = item % 4
        self._table[key] = self._table.get(key, 0) + 1


class TestBackendBasics:
    def test_aggregate_has_no_listener_machinery(self):
        tracker = AggregateBackend()
        assert not hasattr(tracker, "add_listener")
        assert tracker.needs_cell_ids is False

    def test_aggregate_report_has_no_cells(self):
        sketch = WriteScript(AggregateBackend())
        sketch.process_many([1, 2, 3])
        report = sketch.report()
        assert report.cell_writes == {}
        assert report.total_writes > 0

    def test_state_tracker_is_the_trace_backend(self):
        assert StateTracker is TraceBackend
        assert StateTracker().needs_cell_ids is True

    def test_trace_and_aggregate_same_scripted_counts(self):
        trace, agg = WriteScript(TraceBackend()), WriteScript(
            AggregateBackend()
        )
        for sketch in (trace, agg):
            sketch.process_many([5, 5, 7, 5, 7, 7])
        assert aggregate_fields(trace) == aggregate_fields(agg)
        assert trace.report().cell_writes != {}

    def test_make_tracker_modes(self):
        assert isinstance(make_tracker("aggregate"), AggregateBackend)
        assert isinstance(make_tracker("trace"), TraceBackend)
        assert isinstance(make_tracker("budget"), BudgetBackend)
        assert isinstance(
            make_tracker(budget=WriteBudget(5)), BudgetBackend
        )
        with pytest.raises(ValueError):
            make_tracker("nope")
        with pytest.raises(ValueError):
            make_tracker("trace", budget=WriteBudget(5))


class TestWriteBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            WriteBudget(5, policy="nope")
        with pytest.raises(ValueError):
            WriteBudget(-1)
        with pytest.raises(ValueError):
            WriteBudget(2.5)
        assert WriteBudget(math.inf).unlimited

    def test_even_split_sums_to_global_limit(self):
        parts = WriteBudget(10, "freeze").split(3)
        assert [int(p.limit) for p in parts] == [4, 3, 3]
        assert all(p.policy == "freeze" for p in parts)

    def test_replicate_split_keeps_full_limit(self):
        parts = WriteBudget(10).split(3, how="replicate")
        assert [int(p.limit) for p in parts] == [10, 10, 10]

    def test_unlimited_split(self):
        assert all(p.unlimited for p in WriteBudget(math.inf).split(4))


class TestBudgetPolicies:
    def test_raise_aborts_at_limit_plus_one(self):
        sketch = WriteScript(BudgetBackend(WriteBudget(3, "raise")))
        sketch.process_many([1, 2, 3])  # exactly the budget
        with pytest.raises(WriteBudgetExceededError):
            sketch.process(4)

    def test_freeze_stops_mutations_and_counts_denials(self):
        tracker = BudgetBackend(WriteBudget(3, "freeze"))
        sketch = WriteScript(tracker)
        sketch.process_many(range(10))
        report = sketch.report()
        assert report.state_changes == 3
        assert report.stream_length == 10  # the clock kept ticking
        assert sketch.items_processed == 10
        budget = tracker.budget_report()
        assert budget.exhausted and budget.denied == 7
        assert budget.remaining == 0
        # frozen state: the word still holds the last admitted value
        assert sketch._word.value == 2

    def test_degrade_admits_thinning_trickle(self):
        tracker = BudgetBackend(WriteBudget(3, "degrade"))
        sketch = WriteScript(tracker)
        sketch.process_many(range(20))
        report = sketch.report()
        # 3 budgeted + admissions after 1, 2, 4, ... denials
        assert 3 < report.state_changes < 10
        assert tracker.budget_report().denied > 0

    def test_unlimited_budget_denies_nothing(self):
        tracker = BudgetBackend()
        sketch = WriteScript(tracker)
        sketch.process_many(range(50))
        budget = tracker.budget_report()
        assert not budget.exhausted and budget.denied == 0
        assert budget.remaining == math.inf


class TestBackendSnapshots:
    def test_budget_remainder_survives_round_trip(self):
        tracker = BudgetBackend(WriteBudget(30, "freeze"))
        sketch = registry.create("exact", tracker=tracker)
        sketch.process_many(range(20))
        state = json.loads(json.dumps(sketch.to_state()))
        restored = type(sketch).from_state(state)
        assert isinstance(restored.tracker, BudgetBackend)
        assert restored.tracker.budget_report() == tracker.budget_report()
        # the restored run resumes enforcement where the original left off
        restored.process_many(range(100, 200))
        original = registry.create(
            "exact", tracker=BudgetBackend(WriteBudget(30, "freeze"))
        )
        original.process_many(list(range(20)) + list(range(100, 200)))
        assert aggregate_fields(restored) == aggregate_fields(original)
        assert (
            restored.tracker.budget_report()
            == original.tracker.budget_report()
        )

    def test_aggregate_round_trip_keeps_backend(self):
        sketch = registry.create(
            "count-min", tracker=make_tracker("aggregate")
        )
        sketch.process_many([1, 2, 3, 1])
        restored = type(sketch).from_state(sketch.to_state())
        assert isinstance(restored.tracker, AggregateBackend)
        assert aggregate_fields(restored) == aggregate_fields(sketch)

    def test_legacy_snapshot_defaults_to_trace(self):
        state = StateTracker().to_state()
        del state["backend"]  # pre-backend-architecture snapshot
        assert isinstance(tracker_from_state(state), TraceBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            tracker_from_state({"backend": "nope"})


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(registry.names()),
    stream=st.lists(st.integers(min_value=0, max_value=63), max_size=120),
    seed=st.integers(min_value=0, max_value=5),
)
def test_backend_equivalence_sweep(name, stream, seed):
    """Aggregate, trace, and unlimited-budget backends agree exactly —
    on every aggregate audit field and every query answer — for every
    registered family, including across the process-executor
    serialization round trip (``ingest_shard`` is the worker's exact
    code path)."""
    sketches = {}
    for mode in ("aggregate", "trace", "budget"):
        sketch = registry.create(
            name, n=64, m=max(1, len(stream)), epsilon=0.5, seed=seed,
            tracker=make_tracker(mode),
        )
        sketch.process_many(stream)
        sketches[mode] = sketch

    audits = {mode: aggregate_fields(s) for mode, s in sketches.items()}
    assert audits["aggregate"] == audits["trace"] == audits["budget"]
    answers = {mode: all_answers(s) for mode, s in sketches.items()}
    assert answers["aggregate"] == answers["trace"] == answers["budget"]

    # Process-executor round trip: ship an *empty* snapshot plus the
    # items through the worker entry point, exactly as the pool does.
    if registry.spec(name).cls._config_state is not Sketch._config_state:
        for mode in ("aggregate", "trace", "budget"):
            empty = registry.create(
                name, n=64, m=max(1, len(stream)), epsilon=0.5, seed=seed,
                tracker=make_tracker(mode),
            )
            _, state = ingest_shard((0, empty.to_state(), list(stream)))
            worker = type(empty).from_state(state)
            assert type(worker.tracker) is type(sketches[mode].tracker)
            assert aggregate_fields(worker) == audits[mode]
            assert all_answers(worker) == answers[mode]


@pytest.mark.parametrize("tracking", ["aggregate", "trace", "budget"])
@pytest.mark.parametrize("name", ["count-min", "misra-gries", "kmv"])
def test_process_executor_identity_per_backend(name, tracking):
    """Serial and process-pool sharded runs stay bit-identical under
    every tracking mode (the pool really forks here)."""
    from repro.streams import zipf_stream

    stream = zipf_stream(64, 2_000, skew=1.2, seed=5)

    def run(executor):
        runner = ShardedRunner.from_registry(
            name, 2, n=64, m=2_000, epsilon=0.3, seed=5,
            executor=executor, tracking=tracking,
        )
        return runner.run(stream)

    serial, process = run("serial"), run("process")
    assert json.dumps(serial.merged.to_state(), sort_keys=True) == (
        json.dumps(process.merged.to_state(), sort_keys=True)
    )
    assert serial.shard_reports == process.shard_reports
    assert serial.budget_reports == process.budget_reports


def test_sharded_budget_enforced_per_shard():
    """A global freeze budget split over shards caps each shard."""
    from repro.streams import zipf_stream

    stream = zipf_stream(64, 3_000, skew=1.1, seed=2)
    runner = ShardedRunner.from_registry(
        "count-min", 4, n=64, m=3_000, epsilon=0.3, seed=2,
        budget=WriteBudget(101, "freeze"),
    )
    result = runner.run(stream)
    budgets = [b for b in result.budget_reports if b is not None]
    assert len(budgets) == 4
    assert sum(int(b.limit) for b in budgets) == 101
    for budget in budgets:
        assert budget.state_changes <= budget.limit
    assert result.merged_report.state_changes <= 101


class TestReviewRegressions:
    def test_budget_error_pickles_round_trip(self):
        """A raise-policy abort inside a pool worker must unpickle in
        the parent, or the pool's result handler dies and the run
        hangs."""
        import pickle

        error = WriteBudgetExceededError(10, 25)
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, WriteBudgetExceededError)
        assert clone.limit == 10 and clone.timestep == 25
        assert str(clone) == str(error)

    def test_budget_raise_propagates_from_real_pool(self):
        """Force an actual multiprocessing pool (two tasks, two
        workers) and check the abort surfaces as the typed error."""
        runner = ShardedRunner.from_registry(
            "exact", 2, n=64, m=2_000, seed=2,
            executor="process", max_workers=2,
            budget=WriteBudget(50, "raise"),
        )
        from repro.streams import zipf_stream

        with pytest.raises(WriteBudgetExceededError):
            runner.run(zipf_stream(64, 2_000, seed=2))

    def test_engine_rejects_trace_tracking_with_budget(self):
        from repro.api import Engine

        engine = Engine("count-min", n=64, m=256, epsilon=0.3, seed=1)
        with pytest.raises(ValueError, match="budget"):
            engine.run(
                [1, 2, 3], queries=(), tracking="trace",
                budget=WriteBudget(5, "freeze"),
            )

    def test_record_cells_false_survives_round_trip(self):
        tracker = make_tracker("trace", record_cells=False)
        tracker.record_write("hot", mutated=True)
        tracker.tick()
        restored = tracker_from_state(tracker.to_state())
        restored.load_state(tracker.to_state())
        restored.record_write("hot", mutated=True)
        assert restored.report().cell_writes == {}
        assert restored.report().state_changes == 1

    def test_merged_budget_value_matches_folded_limit(self):
        left = BudgetBackend(WriteBudget(10, "freeze"))
        right = BudgetBackend(WriteBudget(10, "freeze"))
        left.merge_child(right)
        assert left.budget == WriteBudget(20, "freeze")
        assert left.budget_report().limit == 20
