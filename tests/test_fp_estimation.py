"""Tests for Algorithm 3 (FpEstimator) and the heavy-hitter API."""

import pytest

from repro.core import FpEstimator, HeavyHitters
from repro.streams import (
    FrequencyVector,
    planted_heavy_hitter_stream,
    uniform_stream,
    zipf_stream,
)


class TestConstruction:
    def test_rejects_p_below_one(self):
        with pytest.raises(ValueError):
            FpEstimator(n=10, m=10, p=0.5, epsilon=0.5)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            FpEstimator(n=10, m=10, p=2, epsilon=0)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            FpEstimator(n=10, m=10, p=2, epsilon=0.5, backend="magic")

    def test_even_repetitions_rounded_up(self):
        algo = FpEstimator(
            n=100, m=100, p=2, epsilon=0.5, repetitions=2, backend="oracle"
        )
        assert algo.repetitions == 3


class TestOracleBackend:
    """Validates the level-set machinery with exact per-level tables."""

    def test_single_dominant_item_exact_band(self):
        m = 4096
        algo = FpEstimator(
            n=64, m=m, p=2, epsilon=0.5, backend="oracle", seed=0
        )
        algo.process_stream([5] * m)
        assert algo.fp_estimate() == pytest.approx(float(m) ** 2, rel=0.01)

    @pytest.mark.parametrize("p", [1.0, 1.5, 2.0, 3.0])
    def test_zipf_accuracy(self, p):
        n, m = 2048, 16384
        stream = zipf_stream(n, m, skew=1.1, seed=1)
        truth = FrequencyVector.from_stream(stream).fp_moment(p)
        algo = FpEstimator(
            n=n, m=m, p=p, epsilon=0.5, backend="oracle", seed=1
        )
        algo.process_stream(stream)
        assert algo.fp_estimate() == pytest.approx(truth, rel=0.5)

    def test_f1_on_uniform(self):
        n, m = 1024, 8192
        stream = uniform_stream(n, m, seed=2)
        algo = FpEstimator(
            n=n, m=m, p=1, epsilon=0.5, backend="oracle", seed=2
        )
        algo.process_stream(stream)
        # F1 = m exactly.
        assert algo.fp_estimate() == pytest.approx(m, rel=0.5)

    def test_band_levels_monotone(self):
        algo = FpEstimator(
            n=256, m=256, p=2, epsilon=0.5, backend="oracle", seed=3
        )
        levels = [algo.level_for_band(i) for i in range(1, 20)]
        assert levels == sorted(levels)
        assert levels[0] == 1


class TestSampleHoldBackend:
    def test_skewed_stream_within_constant_factor(self):
        n, m = 512, 8192
        stream = planted_heavy_hitter_stream(
            n, m, {1: 2500, 2: 1200}, seed=4
        )
        truth = FrequencyVector.from_stream(stream).fp_moment(2)
        algo = FpEstimator(
            n=n,
            m=m,
            p=2,
            epsilon=0.5,
            seed=4,
            inner_kwargs={"repetitions": 1},
        )
        algo.process_stream(stream)
        estimate = algo.fp_estimate()
        assert truth / 4 <= estimate <= 4 * truth

    def test_sublinear_state_changes(self):
        n, m = 1024, 30000
        stream = zipf_stream(n, m, skew=1.3, seed=5)
        algo = FpEstimator(
            n=n,
            m=m,
            p=2,
            epsilon=1.0,
            seed=5,
            inner_kwargs={"repetitions": 1},
        )
        algo.process_stream(stream)
        assert algo.state_changes < m

    def test_lp_norm_is_root_of_moment(self):
        algo = FpEstimator(
            n=64, m=1000, p=2, epsilon=0.5, backend="oracle", seed=6
        )
        algo.process_stream([3] * 1000)
        assert algo.lp_norm_estimate() == pytest.approx(
            algo.fp_estimate() ** 0.5
        )


class TestHeavyHittersAPI:
    @pytest.fixture(scope="class")
    def planted(self):
        n, m = 512, 10000
        heavy = {1: 3000, 2: 1800}
        stream = planted_heavy_hitter_stream(n, m, heavy, seed=7)
        algo = HeavyHitters(
            n=n,
            m=m,
            p=2,
            epsilon=0.5,
            seed=7,
            inner_kwargs={"repetitions": 1},
        )
        algo.process_stream(stream)
        return algo, FrequencyVector.from_stream(stream), heavy

    def test_report_contains_true_heavy_hitters(self, planted):
        algo, f, heavy = planted
        report = algo.heavy_hitters()
        for item in heavy:
            assert item in report

    def test_report_excludes_forbidden_items(self, planted):
        algo, f, heavy = planted
        report = algo.heavy_hitters()
        # No reported item may be far below the eps/4 line.
        floor = 0.125 * f.lp_norm(2)
        for item in report:
            assert f[item] >= floor / 2

    def test_norm_estimate_within_factor(self, planted):
        algo, f, heavy = planted
        assert f.lp_norm(2) / 3 <= algo.norm_estimate() <= 3 * f.lp_norm(2)

    def test_estimates_accurate_for_heavy(self, planted):
        algo, f, heavy = planted
        for item, count in heavy.items():
            assert algo.estimate(item) == pytest.approx(count, rel=0.6)

    def test_invalid_report_epsilon_raises(self, planted):
        algo, _, _ = planted
        with pytest.raises(ValueError):
            algo.heavy_hitters(epsilon=0)

    def test_fp_estimate_exposed(self, planted):
        algo, f, _ = planted
        assert algo.fp_estimate() == pytest.approx(f.fp_moment(2), rel=0.8)
