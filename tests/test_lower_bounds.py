"""Tests for the distinguishing game (Theorems 1.2/1.4, empirically)."""

import random

import pytest

from repro.lower_bounds import (
    GameResult,
    SampledDistinguisher,
    run_distinguishing_game,
)
from repro.streams import lower_bound_pair


class TestSampledDistinguisher:
    def test_detects_obvious_duplicates(self):
        algo = SampledDistinguisher(budget=100, m=10, rng=random.Random(0))
        algo.process_stream([5] * 10)
        assert algo.saw_duplicate
        assert algo.guesses_s1()

    def test_no_duplicates_on_permutation(self):
        algo = SampledDistinguisher(budget=50, m=100, rng=random.Random(1))
        algo.process_stream(list(range(100)))
        assert not algo.saw_duplicate

    def test_state_changes_bounded_by_budget(self):
        m = 5000
        budget = 64
        algo = SampledDistinguisher(budget=budget, m=m, rng=random.Random(2))
        algo.process_stream(list(range(m)))
        # Each sampled distinct item costs one write; generous factor
        # for sampling variance.
        assert algo.state_changes <= 3 * budget

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            SampledDistinguisher(budget=0, m=10)
        with pytest.raises(ValueError):
            SampledDistinguisher(budget=1, m=0)


class TestGame:
    def test_large_budget_wins(self):
        """Budget >> n^{1-1/p} distinguishes reliably."""
        n, p = 1024, 2.0
        budget = int(8 * n ** (1 - 1 / p))  # 256
        result = run_distinguishing_game(
            algorithm_factory=lambda s: SampledDistinguisher(
                budget, n, rng=random.Random(s)
            ),
            decide=lambda algo: algo.guesses_s1(),
            n=n,
            p=p,
            trials=15,
            seed=3,
        )
        assert result.accuracy >= 0.8

    def test_tiny_budget_fails(self):
        """Budget << n^{1-1/p} cannot beat coin flipping by much."""
        n, p = 4096, 2.0
        budget = max(1, int(0.1 * n ** (1 - 1 / p)))  # ~6
        result = run_distinguishing_game(
            algorithm_factory=lambda s: SampledDistinguisher(
                budget, n, rng=random.Random(s)
            ),
            decide=lambda algo: algo.guesses_s1(),
            n=n,
            p=p,
            trials=15,
            seed=4,
        )
        assert result.accuracy <= 0.7

    def test_advantage_definition(self):
        result = GameResult(
            accuracy=0.75,
            mean_state_changes_s1=1.0,
            mean_state_changes_s2=1.0,
            trials=4,
        )
        assert result.advantage == pytest.approx(0.5)

    def test_state_changes_reported(self):
        n, p = 512, 2.0
        result = run_distinguishing_game(
            algorithm_factory=lambda s: SampledDistinguisher(
                32, n, rng=random.Random(s)
            ),
            decide=lambda algo: algo.guesses_s1(),
            n=n,
            p=p,
            trials=5,
            seed=5,
        )
        assert result.mean_state_changes_s1 > 0
        assert result.mean_state_changes_s2 > 0

    def test_invalid_trials_raise(self):
        with pytest.raises(ValueError):
            run_distinguishing_game(
                algorithm_factory=lambda s: SampledDistinguisher(1, 1),
                decide=lambda algo: True,
                n=64,
                p=2,
                trials=0,
            )

    def test_exact_moment_algorithm_distinguishes(self):
        """An exact F2 computation always wins the game (sanity)."""
        from repro.baselines import ExactFrequencyCounter

        n, p = 512, 2.0

        def decide(algo):
            f2 = sum(v**2 for v in algo.estimates().values())
            return f2 > 1.5 * n

        result = run_distinguishing_game(
            algorithm_factory=lambda s: ExactFrequencyCounter(),
            decide=decide,
            n=n,
            p=p,
            trials=8,
            seed=6,
        )
        assert result.accuracy == 1.0
        # ... but it pays Theta(m) state changes to do so.
        assert result.mean_state_changes_s1 >= n - 1


class TestHardInstanceGap:
    def test_fp_gap_requires_distinguishing(self):
        from repro.streams import FrequencyVector

        inst = lower_bound_pair(2048, p=3, seed=7)
        f1 = FrequencyVector.from_stream(inst.s1).fp_moment(3)
        f2 = FrequencyVector.from_stream(inst.s2).fp_moment(3)
        assert f1 / f2 > 1.8
