"""Tests for the name → factory sketch registry."""

from __future__ import annotations

import pytest

from repro import registry
from repro.state.algorithm import Sketch
from repro.streams import zipf_stream


class TestRegistry:
    def test_every_name_constructs_and_processes(self):
        stream = zipf_stream(128, 512, skew=1.2, seed=0)
        for name in registry.names():
            sketch = registry.create(name, n=128, m=512, epsilon=0.5, seed=0)
            assert isinstance(sketch, Sketch)
            sketch.process_many(stream)
            assert sketch.items_processed == len(stream)

    def test_mergeable_flag_matches_class(self):
        for name in registry.names():
            entry = registry.spec(name)
            assert entry.mergeable == bool(entry.cls.mergeable)
        assert "count-min" in registry.mergeable_names()
        assert "sample-and-hold" not in registry.mergeable_names()

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="count-min"):
            registry.create("quantum")

    def test_duplicate_registration_rejected(self):
        entry = registry.spec("count-min")
        with pytest.raises(ValueError):
            registry.register("count-min", entry.cls, entry.factory)

    def test_sketch_class_resolves_state_names(self):
        assert registry.sketch_class("CountMin") is registry.spec(
            "count-min"
        ).cls
        with pytest.raises(KeyError):
            registry.sketch_class("NoSuchSketch")

    def test_create_is_deterministic_given_seed(self):
        stream = zipf_stream(256, 2048, skew=1.2, seed=1)
        first = registry.create("sample-and-hold", n=256, m=2048, seed=7)
        second = registry.create("sample-and-hold", n=256, m=2048, seed=7)
        first.process_many(stream)
        second.process_many(stream)
        assert first.estimates() == second.estimates()
        # Cell ids come from a process-global counter, so compare the
        # id-free audit numbers rather than full reports.
        assert first.state_changes == second.state_changes
        assert first.report().peak_words == second.report().peak_words
