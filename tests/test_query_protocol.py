"""Capability-matrix tests for the unified query protocol.

For every registry name and every :class:`~repro.query.QueryKind`:

* a declared kind must answer through ``Sketch.query()`` and agree
  with the legacy method it delegates to;
* an undeclared kind must raise the typed ``UnsupportedQueryError``.

The matrix is exhaustive by construction (``registry.names() x
QueryKind``), so adding a sketch or a kind without wiring the protocol
fails here first.
"""

from __future__ import annotations

import math

import pytest

from repro import registry
from repro.query import (
    AllEstimates,
    Distinct,
    Entropy,
    HeavyHitters,
    MapAnswer,
    Moment,
    MomentAnswer,
    PointQuery,
    QueryKind,
    ScalarAnswer,
    UnsupportedQueryError,
)
from repro.streams import zipf_stream

N, M, EPSILON, SEED = 128, 1024, 0.5, 0

#: Parameter-free probe query per kind (point queries get an item).
PROBES = {
    QueryKind.POINT: PointQuery(3),
    QueryKind.ALL_ESTIMATES: AllEstimates(),
    QueryKind.HEAVY_HITTERS: HeavyHitters(),
    QueryKind.MOMENT: Moment(),
    QueryKind.ENTROPY: Entropy(),
    QueryKind.DISTINCT: Distinct(),
}


@pytest.fixture(scope="module")
def processed():
    """One processed sketch per registry name, built once."""
    stream = zipf_stream(N, M, skew=1.3, seed=SEED)
    sketches = {}
    for name in registry.names():
        sketch = registry.create(name, n=N, m=M, epsilon=EPSILON, seed=SEED)
        sketch.process_many(stream)
        sketches[name] = sketch
    return sketches


def _matrix():
    return [
        pytest.param(name, kind, id=f"{name}-{kind}")
        for name in registry.names()
        for kind in QueryKind
    ]


@pytest.mark.parametrize("name,kind", _matrix())
def test_capability_matrix(processed, name, kind):
    sketch = processed[name]
    spec = registry.spec(name)
    # The registry surfaces exactly the class declaration.
    assert spec.supports == sketch.supports

    if kind not in spec.supports:
        with pytest.raises(UnsupportedQueryError) as excinfo:
            sketch.query(PROBES[kind])
        assert excinfo.value.kind is kind
        assert excinfo.value.supports == spec.supports
        return

    answer = sketch.query(PROBES[kind])
    assert answer.kind is kind

    # Cross-check against the legacy method the protocol replaced.
    if kind is QueryKind.POINT:
        assert isinstance(answer, ScalarAnswer)
        assert answer.value == sketch.estimate(3)
    elif kind is QueryKind.ALL_ESTIMATES:
        assert isinstance(answer, MapAnswer)
        assert dict(answer.values) == sketch.estimates()
    elif kind is QueryKind.HEAVY_HITTERS:
        assert isinstance(answer, MapAnswer)
        assert dict(answer.values) == sketch.heavy_hitters()
    elif kind is QueryKind.MOMENT:
        assert isinstance(answer, MomentAnswer)
        assert answer.p > 0
        if hasattr(sketch, "f2_estimate"):
            assert answer.p == 2.0
            assert answer.value == sketch.f2_estimate()
        elif hasattr(sketch, "fp_estimate"):
            assert answer.p == sketch.p
            assert answer.value == sketch.fp_estimate()
        else:  # exact counter: recompute from its own frequencies
            expected = sum(
                count ** answer.p for count in sketch.estimates().values()
            )
            assert answer.value == pytest.approx(expected)
    elif kind is QueryKind.ENTROPY:
        assert isinstance(answer, ScalarAnswer)
        if hasattr(sketch, "entropy_estimate"):
            assert answer.value == sketch.entropy_estimate()
        else:  # exact counter: recompute Shannon entropy
            counts = sketch.estimates().values()
            total = sum(counts)
            expected = -sum(
                (c / total) * math.log2(c / total) for c in counts if c
            )
            assert answer.value == pytest.approx(expected)
    elif kind is QueryKind.DISTINCT:
        assert isinstance(answer, ScalarAnswer)
        if hasattr(sketch, "f0_estimate"):
            assert answer.value == sketch.f0_estimate()
        elif hasattr(sketch, "support"):
            assert answer.value == float(len(sketch.support()))
        else:
            assert answer.value == float(len(sketch.estimates()))


class TestDispatchSemantics:
    def test_moment_answer_resolves_order(self, processed):
        answer = processed["pstable-fp"].query(Moment())
        assert answer.p == processed["pstable-fp"].p
        fixed = processed["ams"].query(Moment(2.0))
        assert fixed.p == 2.0

    def test_fixed_order_sketch_rejects_other_orders(self, processed):
        with pytest.raises(ValueError, match="p=2"):
            processed["ams"].query(Moment(1.0))
        with pytest.raises(ValueError):
            processed["heavy-hitters"].query(Moment(0.5))

    def test_unsupported_error_is_typed_and_informative(self, processed):
        with pytest.raises(UnsupportedQueryError, match="point"):
            processed["kmv"].query(PointQuery(1))
        # It is a TypeError, so legacy except-clauses still catch it.
        with pytest.raises(TypeError):
            processed["kmv"].query(PointQuery(1))

    def test_reservoir_supports_nothing(self, processed):
        assert processed["reservoir"].supports == frozenset()
        for probe in PROBES.values():
            with pytest.raises(UnsupportedQueryError):
                processed["reservoir"].query(probe)

    def test_queries_are_immutable(self):
        query = PointQuery(7)
        with pytest.raises(Exception):
            query.item = 8

    def test_queries_are_pure_reads(self, processed):
        sketch = processed["misra-gries"]
        before = sketch.state_changes
        sketch.query(AllEstimates())
        sketch.query(HeavyHitters(0.1))
        sketch.query(PointQuery(0))
        assert sketch.state_changes == before

    @pytest.mark.parametrize("name", ["misra-gries", "space-saving"])
    def test_summary_heavy_hitters_have_no_false_negatives(self, name):
        # Misra-Gries underestimates by up to m/k, so its report
        # threshold must be (phi - 1/k)*m, not phi*m; SpaceSaving
        # overestimates and uses phi*m directly.  Either way every
        # true phi-heavy hitter must be reported.
        from repro.streams import FrequencyVector

        stream = zipf_stream(N, 2048, skew=1.2, seed=1)
        truth = FrequencyVector.from_stream(stream)
        sketch = registry.create(name, n=N, m=2048, epsilon=0.3, seed=1)
        sketch.process_many(stream)
        phi = 1.0 / sketch.k
        true_heavy = {
            item
            for item in truth.support
            if truth[item] >= phi * len(stream)
        }
        reported = set(sketch.query(HeavyHitters(phi)).values)
        assert true_heavy <= reported

    def test_supporting_enumerates_without_probes(self):
        point_capable = registry.supporting(QueryKind.POINT)
        assert "count-min" in point_capable
        assert "kmv" not in point_capable
        assert registry.supporting(
            QueryKind.POINT, QueryKind.HEAVY_HITTERS
        ) == ["heavy-hitters", "misra-gries", "space-saving"]
        matrix = registry.support_matrix()
        assert set(matrix) == set(registry.names())
        assert matrix["entropy"] == frozenset({QueryKind.ENTROPY})
