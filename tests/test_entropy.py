"""Tests for the HNO08 entropy estimator (Theorem 3.8)."""

import math

import pytest

from repro.core.entropy import (
    EntropyEstimator,
    hno08_nodes,
    lagrange_derivative_at,
)
from repro.streams import FrequencyVector, uniform_stream, zipf_stream


class TestNodes:
    def test_nodes_cluster_near_one(self):
        nodes = hno08_nodes(4, log_m=20.0)
        assert all(abs(node - 1.0) < 0.02 for node in nodes)

    def test_nodes_distinct_and_sorted_input(self):
        nodes = hno08_nodes(6, log_m=14.0)
        assert len(set(nodes)) == len(nodes)

    def test_one_node_above_one(self):
        """g(1) = ell/(2k^2+1) > 0, so p_0 lies slightly above 1."""
        nodes = hno08_nodes(4, log_m=20.0)
        assert max(nodes) > 1.0
        assert min(nodes) < 1.0

    def test_node_width_override(self):
        wide = hno08_nodes(3, log_m=20.0, node_width=0.3)
        narrow = hno08_nodes(3, log_m=20.0)
        assert max(wide) - min(wide) > max(narrow) - min(narrow)

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            hno08_nodes(0, log_m=10.0)
        with pytest.raises(ValueError):
            hno08_nodes(3, log_m=10.0, node_width=2.0)


class TestLagrangeDerivative:
    def test_exact_for_quadratic(self):
        nodes = [0.0, 1.0, 2.0]
        values = [x**2 for x in nodes]  # d/dx x^2 at 1.5 = 3
        assert lagrange_derivative_at(nodes, values, 1.5) == pytest.approx(3.0)

    def test_exact_for_cubic(self):
        nodes = [0.0, 0.5, 1.0, 2.0]
        values = [x**3 - x for x in nodes]
        assert lagrange_derivative_at(nodes, values, 1.0) == pytest.approx(2.0)

    def test_linear(self):
        assert lagrange_derivative_at([0.0, 1.0], [3.0, 5.0], 0.3) == pytest.approx(2.0)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            lagrange_derivative_at([0.0, 1.0], [1.0], 0.5)

    def test_duplicate_nodes_raise(self):
        with pytest.raises(ValueError):
            lagrange_derivative_at([1.0, 1.0], [1.0, 2.0], 0.5)


class TestOracleBackend:
    """Exact moments isolate the interpolation machinery."""

    @pytest.mark.parametrize(
        "make_stream, name",
        [
            (lambda: uniform_stream(256, 8192, seed=0), "uniform"),
            (lambda: zipf_stream(512, 8192, skew=1.3, seed=1), "zipf"),
            (lambda: [7] * 4096, "constant"),
        ],
    )
    def test_entropy_close_to_truth(self, make_stream, name):
        stream = make_stream()
        truth = FrequencyVector.from_stream(stream).shannon_entropy()
        algo = EntropyEstimator(m=len(stream), backend="oracle", seed=0)
        algo.process_stream(stream)
        assert algo.entropy_estimate() == pytest.approx(truth, abs=0.15)

    def test_uniform_entropy_is_log_n(self):
        # Each item exactly once: H = log2(m).
        m = 4096
        stream = list(range(m))
        algo = EntropyEstimator(m=m, backend="oracle", seed=1)
        algo.process_stream(stream)
        assert algo.entropy_estimate() == pytest.approx(math.log2(m), abs=0.1)


class TestPStableBackend:
    def test_streaming_entropy_reasonable(self):
        """The streaming estimator with widened nodes achieves coarse
        additive accuracy (the E6 bench quantifies this)."""
        n, m = 256, 6000
        stream = zipf_stream(n, m, skew=1.5, seed=2)
        truth = FrequencyVector.from_stream(stream).shannon_entropy()
        algo = EntropyEstimator(
            m=m, k=2, node_width=0.4, num_rows=150, seed=2
        )
        algo.process_stream(stream)
        assert algo.entropy_estimate() == pytest.approx(truth, abs=1.5)

    def test_estimate_clamped_to_valid_range(self):
        m = 2000
        algo = EntropyEstimator(m=m, k=2, node_width=0.4, num_rows=40, seed=3)
        algo.process_stream([5] * m)
        estimate = algo.entropy_estimate()
        assert 0.0 <= estimate <= math.log2(m) + 1

    def test_sublinear_state_changes(self):
        n, m = 128, 10000
        algo = EntropyEstimator(m=m, k=2, node_width=0.4, num_rows=30, seed=4)
        algo.process_stream(uniform_stream(n, m, seed=4))
        assert algo.state_changes < m


class TestValidation:
    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            EntropyEstimator(m=1)
        with pytest.raises(ValueError):
            EntropyEstimator(m=100, epsilon=0)
        with pytest.raises(ValueError):
            EntropyEstimator(m=100, backend="count")
