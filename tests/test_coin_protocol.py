"""Coin-protocol contract tests: golden fixtures and plumbing.

Two things are frozen against committed JSON (``tests/data/golden_v1.json``):

* **v1 run fingerprints** for the five randomized families.  v1 draws
  its coins from a shared sequential ``random.Random``, so any change
  to construction order, draw order, or seeding silently corrupts
  every pre-v2 snapshot on restore.  These fingerprints pin the exact
  sequences.
* **Raw v2 Philox draws.**  Under v2 every coin is a pure function of
  ``(seed, stream label, index)``; the sampled values must never
  change, or v2 snapshots (which store no RNG state at all) break.

Regenerate — only after an *intentional* protocol change — with::

    PYTHONPATH=src python -c \
        "import tests.test_coin_protocol as t; t.regenerate()"

The rest of the module covers the ``coin_protocol`` plumbing through
the registry, the sharded runtime, the Engine, and legacy-snapshot
restore.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro import registry
from repro.api import Engine
from repro.hashing.coins import PhiloxCoins
from repro.query import (
    AllEstimates,
    Distinct,
    Entropy,
    HeavyHitters,
    Moment,
    PointQuery,
    QueryKind,
)
from repro.runtime.sharded import ShardedRunner
from repro.state.tracker import make_tracker
from repro.streams.generators import _zipf_draws

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_v1.json"

N, M = 64, 240
ARR = _zipf_draws(N, M, 1.1, 5)

#: The five randomized families (the coin-protocol-aware composites —
#: heavy-hitters, adaptive — ride on these).
FAMILIES = (
    "count-min-morris",
    "entropy",
    "pstable-fp",
    "reservoir",
    "sample-and-hold",
)

_QUERY_FOR_KIND = {
    QueryKind.POINT: lambda: PointQuery(1),
    QueryKind.ALL_ESTIMATES: AllEstimates,
    QueryKind.HEAVY_HITTERS: HeavyHitters,
    QueryKind.MOMENT: Moment,
    QueryKind.DISTINCT: Distinct,
    QueryKind.ENTROPY: Entropy,
}


def _family_fingerprint(name: str) -> dict:
    """JSON-stable observables of one v1 run on the pinned stream."""
    sketch = registry.create(
        name, n=N, m=M, epsilon=0.3, seed=9,
        tracker=make_tracker("trace"), coin_protocol="v1",
    )
    sketch.process_many(ARR.tolist())
    report = sketch.report()
    answers = {
        str(kind): repr(sketch.query(_QUERY_FOR_KIND[kind]()))
        for kind in sorted(sketch.supports, key=str)
    }
    try:
        payload = json.dumps(sketch.to_state(), sort_keys=True)
        payload_sha = hashlib.sha256(payload.encode()).hexdigest()
    except TypeError:  # family without serialization hooks
        payload_sha = None
    return {
        "state_changes": report.state_changes,
        "total_writes": report.total_writes,
        "total_write_attempts": report.total_write_attempts,
        "peak_words": report.peak_words,
        "cell_writes_sha": hashlib.sha256(
            json.dumps(
                sorted(report.cell_writes.items()), sort_keys=True
            ).encode()
        ).hexdigest(),
        "answers": answers,
        "payload_sha": payload_sha,
    }


def _philox_samples() -> dict:
    """Raw v2 coin draws: pure functions of (seed, label, index)."""
    coins = PhiloxCoins(9, "golden")
    other = PhiloxCoins(9, "golden.other")
    return {
        "block_0_8": [repr(u) for u in coins.uniform_block(0, 8)],
        "index_1000": repr(coins.uniform(1000)),
        "index_2**40": repr(coins.uniform(2**40)),
        "other_label_0_4": [repr(u) for u in other.uniform_block(0, 4)],
    }


def _compute_golden() -> dict:
    return {
        "philox": _philox_samples(),
        "v1": {name: _family_fingerprint(name) for name in FAMILIES},
    }


def regenerate() -> None:  # pragma: no cover - manual tool
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(_compute_golden(), indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {GOLDEN_PATH}")


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenFixtures:
    @pytest.mark.parametrize("name", FAMILIES)
    def test_v1_sequences_are_frozen(self, golden, name):
        assert _family_fingerprint(name) == golden["v1"][name]

    def test_philox_draws_are_frozen(self, golden):
        assert _philox_samples() == golden["philox"]

    def test_philox_block_matches_single_draws(self):
        coins = PhiloxCoins(9, "golden")
        block = coins.uniform_block(123, 40)
        assert [coins.uniform(123 + i) for i in range(40)] == list(block)


class TestProtocolPlumbing:
    def test_registry_rejects_coin_free_families(self):
        with pytest.raises(ValueError, match="no coin protocol"):
            registry.create("count-min", coin_protocol="v2")

    def test_registry_aware_set_matches_class_capability(self):
        for name in registry.COIN_PROTOCOL_AWARE:
            sketch = registry.create(
                name, n=N, m=M, epsilon=0.5, seed=1, coin_protocol="v1"
            )
            assert sketch.coin_protocol == "v1"

    def test_engine_rejects_coin_free_families(self):
        with pytest.raises(ValueError, match="no coin protocol"):
            Engine("count-min", coin_protocol="v2")

    def test_engine_forwards_protocol_to_shards(self):
        def run(proto):
            engine = Engine(
                "pstable-fp", n=N, m=M, epsilon=0.5, seed=4,
                shards=2, coin_protocol=proto,
            )
            report = engine.run(ARR.copy(), queries=[Moment()])
            return report.audit, repr(report.answers)

        assert run("v1") != run("v2")
        assert run("v2") == run("v2")  # deterministic end to end

    def test_sharded_runner_forwards_protocol(self):
        runner = ShardedRunner.from_registry(
            "pstable-fp", 2, n=N, m=M, seed=3, coin_protocol="v1"
        )
        assert all(s.coin_protocol == "v1" for s in runner.shards)

    def test_composites_forward_protocol(self):
        for name in ("heavy-hitters", "adaptive-sample-and-hold"):
            sketch = registry.create(
                name, n=N, m=M, epsilon=0.8, seed=2, coin_protocol="v1"
            )
            assert sketch.coin_protocol == "v1"


class TestLegacySnapshots:
    # reservoir is coin-protocol aware but has no serialization
    # hooks, so only the two serializable families restore snapshots.
    @pytest.mark.parametrize("name", ["count-min-morris", "pstable-fp"])
    def test_pre_v2_snapshots_restore_as_v1(self, name):
        # Snapshots written before the protocol switch carry no
        # "coin_protocol" config key; splicing their sequential-RNG
        # history onto v2 coins would corrupt the run, so restore
        # must pin them to v1.
        sketch = registry.create(
            name, n=N, m=M, epsilon=0.3, seed=9, coin_protocol="v1"
        )
        sketch.process_many(ARR[:100].tolist())
        state = sketch.to_state()
        assert state["config"]["coin_protocol"] == "v1"
        legacy = json.loads(json.dumps(state))
        del legacy["config"]["coin_protocol"]
        restored = type(sketch).from_state(legacy)
        assert restored.coin_protocol == "v1"
        restored.process_many(ARR[100:].tolist())
        sketch.process_many(ARR[100:].tolist())
        assert json.dumps(
            restored.to_state()["payload"], sort_keys=True
        ) == json.dumps(sketch.to_state()["payload"], sort_keys=True)

    @pytest.mark.parametrize("name", ["count-min-morris", "pstable-fp"])
    def test_v2_snapshots_round_trip(self, name):
        sketch = registry.create(
            name, n=N, m=M, epsilon=0.3, seed=9, coin_protocol="v2"
        )
        sketch.process_many(ARR[:100].tolist())
        restored = type(sketch).from_state(
            json.loads(json.dumps(sketch.to_state()))
        )
        assert restored.coin_protocol == "v2"
        restored.process_many(ARR[100:].tolist())
        sketch.process_many(ARR[100:].tolist())
        assert json.dumps(
            restored.to_state(), sort_keys=True
        ) == json.dumps(sketch.to_state(), sort_keys=True)
