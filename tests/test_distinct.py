"""Tests for the KMV distinct-elements estimator."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distinct import KMVDistinctElements
from repro.streams import uniform_stream, zipf_stream


class TestExactRegime:
    def test_small_support_exact(self):
        algo = KMVDistinctElements(k=64, seed=0)
        algo.process_stream([1, 2, 3, 2, 1, 4] * 10)
        assert algo.f0_estimate() == 4.0

    def test_empty_stream(self):
        algo = KMVDistinctElements(k=8, seed=0)
        assert algo.f0_estimate() == 0.0

    @given(st.sets(st.integers(0, 10_000), max_size=30))
    @settings(max_examples=60)
    def test_exact_below_k(self, items):
        algo = KMVDistinctElements(k=32, seed=7)
        algo.process_stream(list(items) * 2)
        assert algo.f0_estimate() == len(items)


class TestEstimation:
    def test_large_support_accuracy(self):
        n, m = 20_000, 60_000
        algo = KMVDistinctElements(k=256, seed=1)
        stream = uniform_stream(n, m, seed=1)
        algo.process_stream(stream)
        true_f0 = len(set(stream))
        assert algo.f0_estimate() == pytest.approx(true_f0, rel=0.2)

    def test_for_accuracy_sizing(self):
        algo = KMVDistinctElements.for_accuracy(0.1, seed=2)
        assert algo.k == 100
        with pytest.raises(ValueError):
            KMVDistinctElements.for_accuracy(0)

    def test_skewed_stream(self):
        stream = zipf_stream(5000, 40_000, skew=1.2, seed=3)
        algo = KMVDistinctElements(k=256, seed=3)
        algo.process_stream(stream)
        assert algo.f0_estimate() == pytest.approx(len(set(stream)), rel=0.25)


class TestStateChanges:
    def test_duplicates_are_free(self):
        algo = KMVDistinctElements(k=16, seed=4)
        algo.process_stream([9] * 100_000)
        assert algo.state_changes == 1

    def test_sublinear_in_stream_length(self):
        """State changes ~ k log F0, independent of m."""
        n = 50_000
        counts = {}
        for m in (20_000, 80_000):
            algo = KMVDistinctElements(k=64, seed=5)
            algo.process_stream(uniform_stream(n, m, seed=5))
            counts[m] = algo.state_changes
        # Quadrupling m (F0 grows by < 2.7x) adds few record events.
        assert counts[80_000] < 1.6 * counts[20_000]

    def test_record_events_match_theory(self):
        """Expected records ~ k * (1 + ln(F0/k)) for a one-pass scan."""
        f0, k = 30_000, 64
        algo = KMVDistinctElements(k=k, seed=6)
        algo.process_stream(list(range(f0)))
        expected = k * (1 + math.log(f0 / k))
        assert algo.state_changes < 3 * expected

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            KMVDistinctElements(k=1)


class TestInvariants:
    def test_minima_stay_sorted(self):
        algo = KMVDistinctElements(k=32, seed=8)
        stream = uniform_stream(10_000, 5_000, seed=8)
        for item in stream:
            algo.process(item)
        values = list(algo._minima)
        assert values == sorted(values)

    def test_deterministic_given_seed(self):
        stream = uniform_stream(5000, 10_000, seed=9)
        a = KMVDistinctElements(k=64, seed=10)
        b = KMVDistinctElements(k=64, seed=10)
        a.process_stream(stream)
        b.process_stream(stream)
        assert a.f0_estimate() == b.f0_estimate()
        assert a.state_changes == b.state_changes