"""Tests for the Morris-celled CountMin hybrid."""

import pytest

from repro.baselines.count_min_morris import CountMinMorris
from repro.streams import FrequencyVector, uniform_stream, zipf_stream


class TestAccuracy:
    def test_heavy_item_estimated_within_noise(self):
        n, m = 500, 20000
        stream = zipf_stream(n, m, skew=1.5, seed=0)
        f = FrequencyVector.from_stream(stream)
        algo = CountMinMorris(width=256, depth=3, a=0.03, seed=0)
        algo.process_stream(stream)
        top = max(f.support, key=lambda i: f[i])
        assert algo.estimate(top) == pytest.approx(f[top], rel=0.4)

    def test_overestimates_in_expectation(self):
        """Cells aggregate colliding items, so estimates sit at or
        above the true count up to Morris noise."""
        n, m = 2000, 10000
        stream = uniform_stream(n, m, seed=1)
        f = FrequencyVector.from_stream(stream)
        algo = CountMinMorris(width=64, depth=3, a=0.03, seed=1)
        algo.process_stream(stream)
        sampled = list(f.support)[:100]
        below = sum(algo.estimate(i) < 0.5 * f[i] for i in sampled)
        assert below <= 10

    def test_for_accuracy_sizing(self):
        algo = CountMinMorris.for_accuracy(epsilon=0.1, delta=0.05)
        assert algo.width >= 27
        assert algo.depth >= 3

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            CountMinMorris(width=0, depth=2)


class TestStateChanges:
    def test_sublinear_on_skewed_streams(self):
        """Hot cells stop changing as their Morris level climbs."""
        n, m = 64, 50000
        stream = zipf_stream(n, m, skew=2.0, seed=2)
        algo = CountMinMorris(width=32, depth=2, a=0.25, seed=2)
        algo.process_stream(stream)
        assert algo.state_changes < 0.25 * m

    def test_still_linear_on_uniform_streams(self):
        """With many cold cells, most updates still mutate something —
        the separation from sample-and-hold the A4 ablation shows."""
        n, m = 50_000, 20_000
        stream = uniform_stream(n, m, seed=3)
        algo = CountMinMorris(width=4096, depth=2, a=0.25, seed=3)
        algo.process_stream(stream)
        assert algo.state_changes > 0.5 * m
