"""Tests for sparse support recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.support_recovery import SparseSupportRecovery
from repro.streams import uniform_stream


class TestSparseStreams:
    def test_recovers_exact_support(self):
        algo = SparseSupportRecovery(k=5)
        algo.process_stream([3, 1, 4, 1, 5, 3, 3, 1])
        assert algo.support() == {1, 3, 4, 5}
        assert algo.is_k_sparse()
        assert not algo.overflowed

    def test_state_changes_equal_distinct_items(self):
        algo = SparseSupportRecovery(k=10)
        stream = [7, 8, 9] * 1000
        algo.process_stream(stream)
        assert algo.state_changes == 3

    def test_repeats_are_free(self):
        algo = SparseSupportRecovery(k=2)
        algo.process_stream([42] * 100_000)
        assert algo.state_changes == 1
        assert algo.support() == {42}

    @given(st.lists(st.integers(0, 7), max_size=200))
    @settings(max_examples=80)
    def test_matches_set_semantics_when_sparse(self, stream):
        algo = SparseSupportRecovery(k=8)
        algo.process_stream(stream)
        assert algo.support() == set(stream)
        assert algo.state_changes == len(set(stream))


class TestOverflow:
    def test_non_sparse_stream_detected(self):
        algo = SparseSupportRecovery(k=4, capacity_factor=2)
        algo.process_stream(list(range(100)))
        assert algo.overflowed
        assert not algo.is_k_sparse()

    def test_state_changes_bounded_on_any_stream(self):
        k, factor = 8, 2
        algo = SparseSupportRecovery(k=k, capacity_factor=factor)
        algo.process_stream(uniform_stream(10_000, 50_000, seed=0))
        assert algo.state_changes <= factor * k + 1

    def test_frozen_after_overflow(self):
        algo = SparseSupportRecovery(k=2, capacity_factor=1)
        algo.process_stream(list(range(50)))
        changes = algo.state_changes
        algo.process_stream(list(range(50, 100)))
        assert algo.state_changes == changes  # no further writes

    def test_mild_violation_still_fully_reported(self):
        algo = SparseSupportRecovery(k=4, capacity_factor=2)
        algo.process_stream([0, 1, 2, 3, 4, 5])  # 6 distinct <= 8
        assert algo.support() == {0, 1, 2, 3, 4, 5}
        assert not algo.overflowed
        assert not algo.is_k_sparse()  # promise was k=4


class TestValidation:
    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            SparseSupportRecovery(k=0)
        with pytest.raises(ValueError):
            SparseSupportRecovery(k=3, capacity_factor=0)

    def test_space_bounded_by_capacity(self):
        algo = SparseSupportRecovery(k=4, capacity_factor=2)
        algo.process_stream(list(range(1000)))
        assert algo.report().peak_words <= 2 * 4 + 2
