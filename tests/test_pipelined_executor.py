"""The pipelined shared-memory executor and the parallel bug burn-down.

Four executors now exist — serial, thread, barrier process
(``pipeline_depth=0``), and pipelined process — and the contract is
unchanged from PRs 3/5: executors change wall-clock time, never
results.  These tests pin that down over chunked (columnar) streams,
both coin protocols, mid-chunk budget cutover, and checkpoint
round-trips, plus the failure contract (shard context on worker
errors, no silently merged partial results, no leaked shared-memory
segments) and the container-aware sizing / fork-safety policies.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import threading

import numpy as np
import pytest

from repro import registry
from repro.api import Engine
from repro.runtime.checkpoint import Checkpoint
from repro.runtime.parallel import (
    PipelinedShardPool,
    ShardIngestError,
    available_cpus,
    resolve_start_method,
    resolve_workers,
    wrap_shard_error,
)
from repro.runtime.sharded import ShardedRunner
from repro.state.budget import WriteBudget, WriteBudgetExceededError
from repro.streams import zipf_stream
from repro.streams.chunked import ChunkedStream

N, M = 512, 6000

#: (executor, extra runner kwargs) for every non-serial mode.
MODES = [
    ("thread", {}),
    ("process", {"pipeline_depth": 0}),
    ("process", {"pipeline_depth": 3}),
]
MODE_IDS = ["thread", "barrier", "pipelined"]


@pytest.fixture(scope="module")
def arr():
    return np.asarray(zipf_stream(N, M, skew=1.2, seed=3), dtype=np.int64)


def make_runner(name, executor, *, seed=7, shards=4, **kw):
    return ShardedRunner.from_registry(
        name, shards, n=N, m=M, epsilon=1.0, seed=seed,
        executor=executor, max_workers=2, **kw,
    )


def canonical(sketch) -> str:
    return json.dumps(sketch.to_state(), sort_keys=True)


def shm_segments() -> set[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return set()
    return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}


class TestChunkedGoldenEquivalence:
    @pytest.mark.parametrize("name", registry.mergeable_names())
    def test_all_executors_match_serial_on_chunked_streams(
        self, name, arr
    ):
        def run(executor, **kw):
            return make_runner(
                name, executor, chunk_size=1024, **kw
            ).run(ChunkedStream(arr))

        serial = run("serial")
        for (executor, kw), mode in zip(MODES, MODE_IDS):
            other = run(executor, **kw)
            assert canonical(other.merged) == canonical(serial.merged), mode
            assert other.shard_reports == serial.shard_reports, mode
            assert other.shard_items == serial.shard_items, mode
            assert other.budget_reports == serial.budget_reports, mode

    @pytest.mark.parametrize("protocol", ["v1", "v2"])
    @pytest.mark.parametrize("name", ["count-min-morris", "pstable-fp"])
    def test_coin_protocols_bit_identical_under_every_mode(
        self, name, protocol, arr
    ):
        def run(executor, **kw):
            return make_runner(
                name, executor, coin_protocol=protocol, **kw
            ).run(ChunkedStream(arr[:3000]))

        serial = run("serial")
        for (executor, kw), mode in zip(MODES, MODE_IDS):
            other = run(executor, **kw)
            assert canonical(other.merged) == canonical(serial.merged), (
                mode, protocol,
            )

    def test_tight_ring_backpressure_is_bit_neutral(self, arr):
        # depth=1 with a tiny slot: every submit wraps the ring and
        # blocks on the worker — maximum back-pressure, same bits.
        pipelined = ShardedRunner.from_registry(
            "count-min", 3, n=N, m=M, epsilon=0.5, seed=11,
            executor="process", max_workers=2,
            pipeline_depth=1, chunk_size=256,
        ).run(ChunkedStream(arr))
        serial = ShardedRunner.from_registry(
            "count-min", 3, n=N, m=M, epsilon=0.5, seed=11,
            chunk_size=256,
        ).run(ChunkedStream(arr))
        assert canonical(pipelined.merged) == canonical(serial.merged)

    def test_multiple_ingest_calls_share_one_pipeline(self, arr):
        runner = make_runner("count-min", "process", pipeline_depth=2)
        runner.ingest(arr[:2500])
        runner.ingest(arr[2500:])
        merged = runner.merge()
        serial = make_runner("count-min", "serial")
        serial.ingest(arr)
        assert canonical(merged) == canonical(serial.merge())

    def test_scalar_streams_flush_through_the_ring(self, arr):
        # Plain iterables batch at batch_size and flush into the ring;
        # the scalar → chunk conversion must stay bit-neutral.
        def run(executor, **kw):
            runner = ShardedRunner.from_registry(
                "misra-gries", 3, n=N, m=M, epsilon=0.5, seed=2,
                executor=executor, max_workers=2, batch_size=100, **kw,
            )
            runner.ingest(int(x) for x in arr[:2000])
            return runner.merge()

        serial = run("serial")
        for (executor, kw), mode in zip(MODES, MODE_IDS):
            assert canonical(run(executor, **kw)) == canonical(serial), mode

    def test_engine_answers_match_on_thread_and_pipelined(self, arr):
        def report(executor, **kw):
            return Engine(
                "count-min", n=N, m=M, epsilon=0.2, seed=9, shards=4,
                executor=executor, max_workers=2, **kw,
            ).run(arr)

        serial = report("serial")
        for executor, kw in (("thread", {}), ("process", {})):
            other = report(executor, **kw)
            assert [
                (type(q).__name__, a) for q, a in other.answers
            ] == [(type(q).__name__, a) for q, a in serial.answers]
            assert other.audit == serial.audit

    def test_checkpoint_round_trip_from_pipelined_merge(self, arr):
        merged = make_runner("kmv", "process", pipeline_depth=2).run(
            ChunkedStream(arr)
        ).merged
        restored = Checkpoint.loads(Checkpoint.dumps(merged))
        assert canonical(restored) == canonical(merged)
        serial = make_runner("kmv", "serial").run(ChunkedStream(arr))
        assert canonical(restored) == canonical(serial.merged)


class TestBudgetCutover:
    @pytest.mark.parametrize("policy", ["freeze", "degrade"])
    @pytest.mark.parametrize(
        ("executor", "kw"), MODES, ids=MODE_IDS
    )
    def test_mid_chunk_cutover_matches_serial(
        self, policy, executor, kw, arr
    ):
        # A limit that trips partway through a 1024-item chunk: the
        # cutover index must be exact in every executor.
        def run(mode_executor, **mode_kw):
            return ShardedRunner.from_registry(
                "count-min", 3, n=N, m=M, epsilon=0.5, seed=4,
                executor=mode_executor, max_workers=2,
                budget=WriteBudget(701, policy), chunk_size=1024,
                **mode_kw,
            ).run(ChunkedStream(arr))

        serial = run("serial")
        other = run(executor, **kw)
        assert canonical(other.merged) == canonical(serial.merged)
        assert other.budget_reports == serial.budget_reports
        assert other.shard_reports == serial.shard_reports

    @pytest.mark.parametrize(
        ("executor", "kw"), MODES, ids=MODE_IDS
    )
    def test_raise_policy_keeps_type_and_carries_shard_context(
        self, executor, kw, arr
    ):
        runner = ShardedRunner.from_registry(
            "count-min", 3, n=N, m=M, epsilon=0.5, seed=4,
            executor=executor, max_workers=2,
            budget=WriteBudget(90, "raise"), **kw,
        )
        with pytest.raises(WriteBudgetExceededError) as excinfo:
            runner.ingest(arr)
            runner.merge()
        context = excinfo.value.__cause__
        assert isinstance(context, ShardIngestError)
        assert 0 <= context.shard_index < 3
        assert context.offset >= 0
        assert isinstance(context.cause, WriteBudgetExceededError)
        # Partial results are latched dead, not silently merged.
        with pytest.raises(RuntimeError, match="failed"):
            runner.merge()
        with pytest.raises(RuntimeError, match="failed"):
            runner.shard_reports()


class TestFaultPaths:
    @staticmethod
    def _boom(self, chunk):
        raise ValueError("injected shard fault")

    def test_injected_fault_thread_executor(self, arr, monkeypatch):
        cls = registry.spec("count-min").cls
        runner = make_runner("count-min", "thread")
        runner.ingest(arr[:2000])
        monkeypatch.setattr(cls, "process_chunk", self._boom)
        with pytest.raises(ShardIngestError) as excinfo:
            runner.merge()
        assert excinfo.value.shard_index >= 0
        assert isinstance(excinfo.value.cause, ValueError)
        with pytest.raises(RuntimeError, match="failed"):
            runner.merged_snapshot()

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_injected_fault_pipelined_shuts_down_cleanly(
        self, arr, monkeypatch
    ):
        # Fork workers inherit the monkeypatch; the fault strikes
        # inside a worker, surfaces with shard context, kills the
        # pool, and unlinks every shared segment.
        before = shm_segments()
        cls = registry.spec("count-min").cls
        monkeypatch.setattr(cls, "process_chunk", self._boom)
        runner = make_runner(
            "count-min", "process", pipeline_depth=2,
            start_method="fork",
        )
        with pytest.raises(ShardIngestError) as excinfo:
            runner.ingest(arr)
            runner.merge()
        assert isinstance(excinfo.value.cause, ValueError)
        assert "injected shard fault" in str(excinfo.value)
        assert excinfo.value.worker_traceback  # crossed the boundary
        with pytest.raises(RuntimeError, match="failed"):
            runner.merge()
        assert shm_segments() <= before  # nothing leaked
        for child in multiprocessing.active_children():
            child.join(timeout=5.0)
        assert not multiprocessing.active_children()

    def test_budget_abort_leaves_no_segments(self, arr):
        before = shm_segments()
        runner = make_runner(
            "count-min", "process", pipeline_depth=2,
            budget=WriteBudget(60, "raise"),
        )
        with pytest.raises(WriteBudgetExceededError):
            runner.ingest(arr)
            runner.merge()
        assert shm_segments() <= before

    def test_successful_run_leaves_no_segments(self, arr):
        before = shm_segments()
        make_runner("count-min", "process", pipeline_depth=2).run(
            ChunkedStream(arr[:2000])
        )
        assert shm_segments() <= before

    def test_pool_close_is_idempotent(self):
        shard = registry.create("count-min", n=64, m=256, seed=1)
        pool = PipelinedShardPool(
            [(0, shard.to_state())], slot_items=64, depth=2,
            max_workers=1,
        )
        pool.submit(0, np.asarray([1, 2, 3], dtype=np.int64))
        results = list(pool.finish())
        assert len(results) == 1 and results[0][0] == 0
        pool.close()
        pool.close()


class TestShardIngestErrorContract:
    def test_pickles_round_trip(self):
        error = ShardIngestError(
            2, 150, WriteBudgetExceededError(10, 25), "tb text"
        )
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, ShardIngestError)
        assert clone.shard_index == 2
        assert clone.offset == 150
        assert isinstance(clone.cause, WriteBudgetExceededError)
        assert clone.worker_traceback == "tb text"
        assert "shard 2" in str(clone) and "150" in str(clone)

    def test_unpicklable_cause_replaced_with_repr(self):
        shard = registry.create("count-min", n=64, m=256, seed=1)
        nasty = ValueError(threading.Lock())  # locks cannot pickle
        wrapped = wrap_shard_error(1, shard, nasty)
        clone = pickle.loads(pickle.dumps(wrapped))
        assert isinstance(clone.cause, RuntimeError)
        assert "lock" in str(clone.cause)


class TestWorkerSizing:
    def test_available_cpus_prefers_process_cpu_count(self, monkeypatch):
        monkeypatch.setattr(
            os, "process_cpu_count", lambda: 3, raising=False
        )
        assert available_cpus() == 3

    def test_available_cpus_falls_back_to_affinity(self, monkeypatch):
        # Regression: a 48-core host with a 2-CPU affinity mask (the
        # container case) must size pools at 2, not 48.
        monkeypatch.delattr(os, "process_cpu_count", raising=False)
        monkeypatch.setattr(
            os, "sched_getaffinity", lambda pid: {0, 5}, raising=False
        )
        monkeypatch.setattr(os, "cpu_count", lambda: 48)
        assert available_cpus() == 2
        assert resolve_workers(8) == 2

    def test_available_cpus_last_resort_is_cpu_count(self, monkeypatch):
        monkeypatch.delattr(os, "process_cpu_count", raising=False)
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        assert available_cpus() == 6

    def test_explicit_max_workers_overrides_the_cap(self, monkeypatch):
        monkeypatch.setattr(
            os, "process_cpu_count", lambda: 1, raising=False
        )
        assert resolve_workers(8, max_workers=4) == 4


class TestStartMethodPolicy:
    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError, match="unknown start method"):
            resolve_start_method("threads")
        with pytest.raises(ValueError):
            ShardedRunner.from_registry(
                "count-min", 2, executor="process",
                start_method="threads",
            )
        with pytest.raises(ValueError):
            Engine("count-min", executor="process", start_method="nope")

    def test_explicit_override_wins(self):
        for method in multiprocessing.get_all_start_methods():
            if method in ("fork", "forkserver", "spawn"):
                assert resolve_start_method(method) == method

    def test_fork_refused_with_background_threads(self):
        # The LiveServer scenario: a handler thread is alive when the
        # pool launches; forking would copy its locks sans owner.
        stop = threading.Event()
        worker = threading.Thread(target=stop.wait, daemon=True)
        worker.start()
        try:
            assert resolve_start_method() != "fork"
        finally:
            stop.set()
            worker.join(timeout=5.0)

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_bit_identity_across_start_methods(self, method, arr):
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{method} unavailable")
        result = ShardedRunner.from_registry(
            "count-min", 2, n=N, m=M, epsilon=0.5, seed=6,
            executor="process", max_workers=2, pipeline_depth=2,
            start_method=method,
        ).run(ChunkedStream(arr[:2000]))
        serial = ShardedRunner.from_registry(
            "count-min", 2, n=N, m=M, epsilon=0.5, seed=6,
        ).run(ChunkedStream(arr[:2000]))
        assert canonical(result.merged) == canonical(serial.merged)
        assert result.shard_reports == serial.shard_reports


class TestCliFlags:
    def test_run_accepts_thread_executor(self, capsys):
        from repro.cli import main

        assert main([
            "run", "--algorithm", "count-min", "--workload", "zipf",
            "--shards", "2", "--executor", "thread",
            "--n", "64", "--m", "500",
        ]) == 0
        assert "count-min" in capsys.readouterr().out

    def test_run_accepts_pipeline_depth(self, capsys):
        from repro.cli import main

        assert main([
            "run", "--algorithm", "count-min", "--workload", "zipf",
            "--shards", "2", "--executor", "process",
            "--pipeline-depth", "2", "--n", "64", "--m", "500",
        ]) == 0
        assert "count-min" in capsys.readouterr().out
