"""Tests for the experiment harness (small parameterizations)."""

import pytest

from repro.experiments import (
    budget_advantage_curve,
    counter_ablation,
    eviction_ablation,
    format_budget_curve,
    format_counter_ablation,
    format_eviction_ablation,
    format_morris_tradeoff,
    format_nvm_wear,
    format_table1,
    heavy_hitter_scaling,
    loglog_slope,
    morris_tradeoff,
    nvm_wear_comparison,
    run_table1,
)


class TestLogLogSlope:
    def test_exact_power_law(self):
        xs = [10, 100, 1000]
        ys = [x**0.7 for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(0.7)

    def test_constant_is_slope_zero(self):
        assert loglog_slope([1, 10, 100], [5, 5, 5]) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            loglog_slope([1], [2])
        with pytest.raises(ValueError):
            loglog_slope([1, 2], [3])


class TestTable1:
    def test_ours_beats_baselines(self):
        rows = run_table1(n=2**12, m=2**15, seed=0)
        by_name = {row.algorithm: row for row in rows}
        ours = next(v for k, v in by_name.items() if "this paper" in k)
        for name, row in by_name.items():
            if "this paper" not in name:
                assert row.state_changes >= 0.99 * 2**15
                assert ours.state_changes < row.state_changes

    def test_format_contains_all_rows(self):
        rows = run_table1(n=2**10, m=2**12, seed=1)
        text = format_table1(rows, 2**10, 2**12)
        for row in rows:
            assert row.algorithm in text


class TestScaling:
    def test_heavy_hitter_scaling_result_shape(self):
        result = heavy_hitter_scaling(
            p=2.0, ns=(2**9, 2**11, 2**13), seed=0
        )
        assert len(result.state_changes) == 3
        assert result.theory_slope == pytest.approx(0.5)
        assert "slope" in result.format("E1")

    def test_state_changes_increase_with_n(self):
        result = heavy_hitter_scaling(
            p=2.0, ns=(2**9, 2**13), seed=1
        )
        assert result.state_changes[1] > result.state_changes[0]


class TestMorrisTradeoff:
    def test_monotone_tradeoff(self):
        rows = morris_tradeoff(count=20000, a_values=(0.5, 0.03), trials=4)
        coarse, fine = rows
        assert coarse.mean_state_changes < fine.mean_state_changes
        assert coarse.mean_rel_error > fine.mean_rel_error

    def test_format(self):
        rows = morris_tradeoff(count=1000, a_values=(0.5,), trials=2)
        assert "Morris" in format_morris_tradeoff(rows)


class TestLowerBoundCurve:
    def test_advantage_increases_with_budget(self):
        points = budget_advantage_curve(
            n=1024, p=2.0, budget_factors=(0.125, 8.0), trials=10, seed=0
        )
        assert points[1].accuracy > points[0].accuracy
        assert "lower-bound" in format_budget_curve(points, 1024, 2.0)


class TestAblations:
    def test_counter_ablation_tradeoff(self):
        rows = counter_ablation(n=512, m=10000, trials=2, seed=0)
        by_kind = {row.counter_kind: row for row in rows}
        assert (
            by_kind["morris"].mean_state_changes
            < by_kind["exact"].mean_state_changes
        )
        assert by_kind["exact"].mean_heavy_rel_error <= 0.01
        assert "A1" in format_counter_ablation(rows)

    def test_eviction_ablation_separates_policies(self):
        rows = eviction_ablation(trials=3, seed=0)
        by_policy = {row.policy: row for row in rows}
        paper = by_policy["age-bucketed (paper)"]
        naive = by_policy["global smallest (naive)"]
        assert paper.detection_rate > naive.detection_rate
        assert paper.mean_heavy_estimate > naive.mean_heavy_estimate
        assert "A2" in format_eviction_ablation(rows)

    def test_nvm_wear_comparison(self):
        rows = nvm_wear_comparison(n=512, m=2048, seed=0)
        assert any("FullSampleAndHold" in row.algorithm for row in rows)
        leveled = [r for r in rows if r.wear_policy == "round-robin"]
        direct = [r for r in rows if r.wear_policy == "none"]
        # Leveling never hurts the lifetime.
        for lev, dir_ in zip(leveled, direct):
            assert lev.lifetime_workloads >= dir_.lifetime_workloads
        assert "A3" in format_nvm_wear(rows)


class TestAmplifiedCounterexample:
    def test_structure(self):
        from repro.streams.adversarial import amplified_counterexample
        from repro.streams import FrequencyVector

        inst = amplified_counterexample(seed=0)
        f = FrequencyVector.from_stream(inst.stream)
        assert f[inst.heavy_item] == inst.heavy_frequency
        for item in inst.pseudo_heavy_items:
            assert f[item] == inst.pseudo_heavy_frequency
        assert inst.heavy_frequency > inst.pseudo_heavy_frequency

    def test_validation(self):
        from repro.streams.adversarial import amplified_counterexample

        with pytest.raises(ValueError):
            amplified_counterexample(num_pseudo=0)
        with pytest.raises(ValueError):
            amplified_counterexample(heavy_frequency=10, pseudo_frequency=60)
        with pytest.raises(ValueError):
            amplified_counterexample(trickle_gap=0)


class TestShardScaling:
    """The sharded-ingestion experiment across both query shapes."""

    def test_frequency_sketch_lossless_across_shards(self):
        from repro.experiments import shard_scaling

        rows = shard_scaling(
            "count-min", shard_counts=(1, 2, 4), n=256, m=2048,
            epsilon=0.2, seed=3,
        )
        for row in rows:
            assert row.max_dev_from_single == 0.0
            assert row.state_changes == row.sum_shard_state_changes

    @pytest.mark.parametrize("name", ["kmv", "pstable-fp"])
    def test_aggregate_estimator_sketches_supported(self, name):
        # Regression: sketches without per-item estimate(item) (AMS,
        # KMV, p-stable Fp) are scored on their scalar estimate and
        # must not crash the experiment.
        from repro.experiments import shard_scaling

        rows = shard_scaling(
            name, shard_counts=(1, 2), n=256, m=2048,
            epsilon=0.3, seed=4,
        )
        assert len(rows) == 2
        for row in rows:
            assert row.mean_abs_error >= 0.0
            assert row.state_changes == row.sum_shard_state_changes

    def test_kmv_merge_matches_single_instance(self):
        from repro.experiments import shard_scaling

        rows = shard_scaling(
            "kmv", shard_counts=(1, 4), n=512, m=4096,
            epsilon=0.3, seed=5,
        )
        # Same hash on every shard: the merged k smallest values of
        # the union equal the single instance's, so F0 agrees exactly.
        assert rows[-1].max_dev_from_single == 0.0
