"""Tests for the top-level ``Engine`` facade (``repro.api``)."""

from __future__ import annotations

import pytest

from repro import registry
from repro.api import Engine, RunReport
from repro.cli import main
from repro.query import (
    AllEstimates,
    Distinct,
    HeavyHitters,
    Moment,
    PointQuery,
    QueryKind,
    UnsupportedQueryError,
)
from repro.streams import zipf_stream

N, M = 256, 4096


@pytest.fixture(scope="module")
def stream():
    return zipf_stream(N, M, skew=1.3, seed=5)


class TestEngine:
    def test_run_matches_direct_sketch(self, stream):
        engine = Engine("count-min", n=N, m=M, epsilon=0.2, seed=5)
        report = engine.run(stream, queries=[PointQuery(0), PointQuery(1)])
        direct = registry.create("count-min", n=N, m=M, epsilon=0.2, seed=5)
        direct.process_many(stream)
        assert isinstance(report, RunReport)
        assert report.items_processed == len(stream)
        assert report.audit.state_changes == direct.state_changes
        assert report.answers[0][1].value == direct.estimate(0)
        assert report.answers[1][1].value == direct.estimate(1)
        assert report.num_shards == 1 and len(report.shard_reports) == 1
        assert report.wall_time_s > 0

    def test_default_queries_follow_capabilities(self, stream):
        engine = Engine("exact", n=N, m=M)
        kinds = [q.kind for q in engine.default_queries()]
        assert kinds == [
            QueryKind.ALL_ESTIMATES,
            QueryKind.MOMENT,
            QueryKind.DISTINCT,
            QueryKind.ENTROPY,
        ]
        report = engine.run(stream)  # queries=None -> defaults
        assert report.answer(QueryKind.DISTINCT).value == len(set(stream))

    def test_answer_lookup_by_kind(self, stream):
        engine = Engine("ams", n=N, m=M, epsilon=0.3, seed=1)
        report = engine.run(stream, queries=[Moment()])
        assert report.answer(QueryKind.MOMENT).p == 2.0
        with pytest.raises(KeyError):
            report.answer(QueryKind.ENTROPY)

    def test_sharded_run_exposes_per_shard_audits(self, stream):
        engine = Engine("count-min", n=N, m=M, epsilon=0.2, seed=5, shards=4)
        report = engine.run(stream, queries=())
        assert len(report.shard_reports) == 4
        assert report.audit.state_changes == sum(
            shard.state_changes for shard in report.shard_reports
        )
        assert report.skew >= 1.0

    def test_sharded_linear_sketch_matches_single(self, stream):
        single = Engine("count-min", n=N, m=M, epsilon=0.2, seed=5)
        single.run(stream, queries=())
        sharded = Engine(
            "count-min", n=N, m=M, epsilon=0.2, seed=5, shards=4
        )
        sharded.run(stream, queries=())
        for item in range(32):
            assert (
                single.query(PointQuery(item)).value
                == sharded.query(PointQuery(item)).value
            )

    def test_non_mergeable_cannot_shard(self):
        with pytest.raises(ValueError, match="not mergeable"):
            Engine("sample-and-hold", shards=2)

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError):
            Engine("quantum")

    def test_query_before_run_raises(self):
        engine = Engine("count-min")
        with pytest.raises(RuntimeError):
            engine.query(PointQuery(0))

    def test_process_executor_report_matches_serial(self, stream):
        def report(executor):
            return Engine(
                "count-min", n=N, m=M, epsilon=0.2, seed=5, shards=4,
                executor=executor, max_workers=2,
            ).run(stream)

        serial = report("serial")
        process = report("process")
        assert process.audit == serial.audit
        assert process.shard_reports == serial.shard_reports
        assert [a for _, a in process.answers] == [
            a for _, a in serial.answers
        ]
        assert process.executor == "process"
        assert "process" in process.summary()

    def test_can_answer_and_unsupported_query(self, stream):
        engine = Engine("kmv", n=N, m=M, epsilon=0.3, seed=2)
        assert engine.can_answer(Distinct())
        assert engine.can_answer(QueryKind.DISTINCT)
        assert not engine.can_answer(AllEstimates())
        engine.run(stream, queries=())
        with pytest.raises(UnsupportedQueryError):
            engine.query(HeavyHitters())


class TestSeedReproducibility:
    """Satellite: one seed threads registry ``create()`` into the
    shards, so runs are reproducible end to end."""

    @pytest.mark.parametrize(
        "name", ["count-min", "misra-gries", "kmv", "pstable-fp"]
    )
    def test_sharded_runs_identical_given_seed(self, stream, name):
        def run():
            engine = Engine(
                name, n=N, m=M, epsilon=0.3, seed=11, shards=4
            )
            report = engine.run(stream, queries=engine.default_queries())
            return engine, report

        first_engine, first = run()
        second_engine, second = run()
        assert first.audit.state_changes == second.audit.state_changes
        assert first.audit.peak_words == second.audit.peak_words
        assert first.skew == second.skew
        assert [
            shard.state_changes for shard in first.shard_reports
        ] == [shard.state_changes for shard in second.shard_reports]
        for (q1, a1), (q2, a2) in zip(first.answers, second.answers):
            assert q1 == q2
            assert a1 == a2
        if QueryKind.POINT in first_engine.supports:
            for item in range(16):
                assert (
                    first_engine.query(PointQuery(item)).value
                    == second_engine.query(PointQuery(item)).value
                )

    def test_rng_heavy_sketch_reproducible_unsharded(self, stream):
        reports = []
        estimates = []
        for _ in range(2):
            engine = Engine("sample-and-hold", n=N, m=M, epsilon=0.5, seed=7)
            report = engine.run(stream, queries=[AllEstimates()])
            reports.append(report)
            estimates.append(dict(report.answer(QueryKind.ALL_ESTIMATES).values))
        assert estimates[0] == estimates[1]
        assert (
            reports[0].audit.state_changes == reports[1].audit.state_changes
        )

    def test_shard_cli_output_reproducible(self, capsys):
        argv = [
            "shard", "--sketch", "count-min", "--shards", "1,2,4",
            "--n", "128", "--m", "1024", "--epsilon", "0.2", "--seed", "9",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "Sharded ingestion scaling" in first


class TestEngineAccounting:
    def test_default_tracking_is_aggregate(self, stream):
        report = Engine("count-min", n=N, m=M, epsilon=0.2, seed=5).run(
            stream, queries=()
        )
        assert report.tracking == "aggregate"
        assert report.audit.cell_writes == {}
        assert report.budget is None and report.nvm is None

    def test_trace_tracking_fills_cell_histogram(self, stream):
        report = Engine("count-min", n=N, m=M, epsilon=0.2, seed=5).run(
            stream, queries=(), tracking="trace"
        )
        assert report.tracking == "trace"
        assert report.audit.max_cell_wear > 0

    def test_tracking_modes_agree_on_audit_and_answers(self, stream):
        reports = {
            mode: Engine("count-min", n=N, m=M, epsilon=0.2, seed=5).run(
                stream, queries=[PointQuery(0), PointQuery(7)], tracking=mode
            )
            for mode in ("aggregate", "trace", "budget")
        }
        base = reports["aggregate"]
        for report in reports.values():
            assert report.audit.state_changes == base.audit.state_changes
            assert report.audit.total_writes == base.audit.total_writes
            assert report.audit.peak_words == base.audit.peak_words
            assert [a for _, a in report.answers] == [
                a for _, a in base.answers
            ]

    def test_freeze_budget_caps_state_changes(self, stream):
        from repro.state import WriteBudget

        report = Engine("count-min", n=N, m=M, epsilon=0.2, seed=5).run(
            stream, queries=(), budget=WriteBudget(100, "freeze")
        )
        assert report.tracking == "budget"
        assert report.audit.state_changes == 100
        assert report.budget.exhausted
        assert report.budget.denied == M - 100

    def test_int_budget_means_raise_policy(self, stream):
        from repro.state import WriteBudgetExceededError

        with pytest.raises(WriteBudgetExceededError):
            Engine("exact", n=N, m=M, seed=5).run(
                stream, queries=(), budget=10
            )

    def test_sharded_budget_even_split_sums(self, stream):
        from repro.state import WriteBudget

        report = Engine(
            "count-min", n=N, m=M, epsilon=0.2, seed=5, shards=4
        ).run(stream, queries=(), budget=WriteBudget(201, "freeze"))
        assert len(report.shard_budgets) == 4
        assert sum(int(b.limit) for b in report.shard_budgets) == 201
        assert report.budget.limit == 201
        assert report.audit.state_changes <= 201

    def test_replicate_split_gives_each_shard_full_limit(self, stream):
        from repro.state import WriteBudget

        report = Engine(
            "count-min", n=N, m=M, epsilon=0.2, seed=5, shards=2
        ).run(
            stream,
            queries=(),
            budget=WriteBudget(60, "freeze"),
            budget_split="replicate",
        )
        assert [int(b.limit) for b in report.shard_budgets] == [60, 60]

    def test_budget_identical_serial_vs_process(self, stream):
        from repro.state import WriteBudget

        def run(executor):
            return Engine(
                "count-min", n=N, m=M, epsilon=0.2, seed=5,
                shards=4, executor=executor,
            ).run(stream, queries=[PointQuery(0)],
                  budget=WriteBudget(300, "freeze"))

        serial, process = run("serial"), run("process")
        assert serial.audit == process.audit
        assert serial.shard_budgets == process.shard_budgets
        assert serial.answers == process.answers

    def test_nvm_run_prices_the_audit(self, stream):
        report = Engine("count-min", n=N, m=M, epsilon=0.2, seed=5).run(
            stream, queries=(), nvm="pcm"
        )
        assert report.nvm is not None
        assert report.nvm.model == "PCM"
        assert report.nvm.device_writes == report.audit.total_writes
        assert report.nvm.energy_nj > 0
        assert report.nvm.max_wear > 0
        assert report.tracking == "trace"

    def test_nvm_accepts_cost_model_instance(self, stream):
        from repro.nvm import NAND_FLASH

        report = Engine("count-min", n=N, m=M, epsilon=0.2, seed=5).run(
            stream, queries=(), nvm=NAND_FLASH
        )
        assert report.nvm.model == "NAND"

    def test_nvm_rejects_process_executor(self, stream):
        engine = Engine(
            "count-min", n=N, m=M, epsilon=0.2, seed=5, executor="process"
        )
        with pytest.raises(ValueError):
            engine.run(stream, queries=(), nvm="pcm")

    def test_nvm_rejects_budget_combination(self, stream):
        engine = Engine("count-min", n=N, m=M, epsilon=0.2, seed=5)
        with pytest.raises(ValueError):
            engine.run(stream, queries=(), nvm="pcm", budget=100)

    def test_unknown_tracking_and_nvm_rejected(self, stream):
        engine = Engine("count-min", n=N, m=M, epsilon=0.2, seed=5)
        with pytest.raises(ValueError):
            engine.run(stream, queries=(), tracking="nope")
        with pytest.raises(ValueError):
            engine.run(stream, queries=(), nvm="sram")
