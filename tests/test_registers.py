"""Unit tests for tracked registers (values, arrays, dicts)."""

import pytest

from repro.state import StateTracker, TrackedArray, TrackedDict, TrackedValue


class TestTrackedValue:
    def test_set_new_value_counts_state_change(self):
        tracker = StateTracker()
        cell = TrackedValue(tracker, "x", 0)
        assert cell.set(5) is True
        tracker.tick()
        assert tracker.state_changes == 1
        assert cell.value == 5

    def test_set_same_value_is_silent(self):
        tracker = StateTracker()
        cell = TrackedValue(tracker, "x", 7)
        assert cell.set(7) is False
        tracker.tick()
        assert tracker.state_changes == 0

    def test_allocation_and_release(self):
        tracker = StateTracker()
        cell = TrackedValue(tracker, "x", 0)
        assert tracker.current_words == 1
        cell.release()
        assert tracker.current_words == 0


class TestTrackedArray:
    def test_allocates_length_words(self):
        tracker = StateTracker()
        arr = TrackedArray(tracker, "q", 16, fill=-1)
        assert tracker.current_words == 16
        assert len(arr) == 16
        arr.release()
        assert tracker.current_words == 0

    def test_setitem_tracks_mutations_only(self):
        tracker = StateTracker()
        arr = TrackedArray(tracker, "q", 4, fill=0)
        arr[2] = 9
        arr[2] = 9  # silent
        tracker.tick()
        assert tracker.state_changes == 1
        assert tracker.total_writes == 1
        assert tracker.report().cell_writes == {"q[2]": 1}

    def test_index_of(self):
        tracker = StateTracker()
        arr = TrackedArray(tracker, "q", 3, fill=0)
        arr[1] = 42
        assert arr.index_of(42) == 1
        assert arr.index_of(99) is None

    def test_negative_length_raises(self):
        with pytest.raises(ValueError):
            TrackedArray(StateTracker(), "q", -1, fill=0)

    def test_iteration(self):
        tracker = StateTracker()
        arr = TrackedArray(tracker, "q", 3, fill=5)
        assert list(arr) == [5, 5, 5]


class TestTrackedDict:
    def test_insert_allocates_and_counts(self):
        tracker = StateTracker()
        table = TrackedDict(tracker, "ctr", entry_words=2)
        table[10] = 1
        assert tracker.current_words == 2
        assert 10 in table
        assert table[10] == 1

    def test_overwrite_same_value_is_silent(self):
        tracker = StateTracker()
        table = TrackedDict(tracker, "ctr")
        table[1] = 5
        tracker.tick()
        table[1] = 5
        tracker.tick()
        assert tracker.state_changes == 1

    def test_delete_frees_space_and_dirties(self):
        tracker = StateTracker()
        table = TrackedDict(tracker, "ctr", entry_words=3)
        table[1] = 5
        tracker.tick()
        del table[1]
        assert tracker.current_words == 0
        assert tracker.tick() is True

    def test_pop_returns_value(self):
        tracker = StateTracker()
        table = TrackedDict(tracker, "ctr")
        table[7] = 99
        assert table.pop(7) == 99
        assert 7 not in table

    def test_clear_frees_everything(self):
        tracker = StateTracker()
        table = TrackedDict(tracker, "ctr", entry_words=2)
        table[1] = 1
        table[2] = 2
        table.clear()
        assert len(table) == 0
        assert tracker.current_words == 0

    def test_clear_empty_dict_is_silent(self):
        tracker = StateTracker()
        table = TrackedDict(tracker, "ctr")
        table.clear()
        assert tracker.tick() is False

    def test_get_with_default(self):
        table = TrackedDict(StateTracker(), "ctr")
        assert table.get(3) is None
        assert table.get(3, 0) == 0

    def test_entry_words_must_be_positive(self):
        with pytest.raises(ValueError):
            TrackedDict(StateTracker(), "ctr", entry_words=0)

    def test_iteration_and_views(self):
        table = TrackedDict(StateTracker(), "ctr")
        table[1] = "a"
        table[2] = "b"
        assert sorted(table.keys()) == [1, 2]
        assert sorted(table.values()) == ["a", "b"]
        assert sorted(table.items()) == [(1, "a"), (2, "b")]
        assert sorted(iter(table)) == [1, 2]
        assert len(table) == 2
