"""Hypothesis stateful/model-based tests for the tracking substrate and
core invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.core import SampleAndHold, SampleAndHoldParams
from repro.state import StateTracker, TrackedDict


class TrackedDictModel(RuleBasedStateMachine):
    """TrackedDict must behave exactly like a plain dict, while its
    space accounting matches the live entry count."""

    def __init__(self):
        super().__init__()
        self.tracker = StateTracker()
        self.tracked = TrackedDict(self.tracker, "model", entry_words=2)
        self.model = {}

    keys = st.integers(0, 20)
    values = st.integers(-5, 5)

    @rule(key=keys, value=values)
    def put(self, key, value):
        self.tracked[key] = value
        self.model[key] = value

    @rule(key=keys)
    def delete(self, key):
        if key in self.model:
            del self.tracked[key]
            del self.model[key]

    @rule(key=keys)
    def pop_existing(self, key):
        if key in self.model:
            assert self.tracked.pop(key) == self.model.pop(key)

    @rule()
    def clear(self):
        self.tracked.clear()
        self.model.clear()

    @invariant()
    def contents_match(self):
        assert dict(self.tracked.items()) == self.model
        assert len(self.tracked) == len(self.model)

    @invariant()
    def space_matches_entries(self):
        assert self.tracker.current_words == 2 * len(self.model)

    @invariant()
    def peak_dominates_current(self):
        assert self.tracker.peak_words >= self.tracker.current_words


TestTrackedDictModel = TrackedDictModel.TestCase


class SampleAndHoldMachine(RuleBasedStateMachine):
    """SampleAndHold structural invariants under arbitrary updates."""

    def __init__(self):
        super().__init__()
        params = SampleAndHoldParams(
            sample_probability=0.3,
            kappa=4,
            budget_low=12,
            budget_high=14,
            counter_a=0.25,
        )
        self.algo = SampleAndHold(params, rng=random.Random(0))
        self.exact = {}

    @rule(item=st.integers(0, 40))
    def feed(self, item):
        self.algo.process(item)
        self.exact[item] = self.exact.get(item, 0) + 1

    @rule(items=st.lists(st.integers(0, 40), min_size=1, max_size=30))
    def feed_burst(self, items):
        for item in items:
            self.feed.__wrapped__(self, item)  # reuse logic without rule

    @invariant()
    def held_within_budget(self):
        assert self.algo.num_held <= self.algo.params.budget_high

    @invariant()
    def estimates_never_exceed_truth_by_much(self):
        # Morris noise can overshoot individual counts, but never by a
        # huge factor at these scales.
        for item, estimate in self.algo.estimates().items():
            assert estimate <= 6 * self.exact.get(item, 0) + 8

    @invariant()
    def audit_is_consistent(self):
        report = self.algo.report()
        assert report.state_changes <= report.stream_length
        assert report.state_changes <= report.total_writes


TestSampleAndHoldMachine = SampleAndHoldMachine.TestCase
TestSampleAndHoldMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)


class TestStatisticalProperties:
    @given(st.integers(10, 400))
    @settings(max_examples=20, deadline=None)
    def test_morris_mean_over_copies_near_truth(self, n):
        """Average over independent Morris counters concentrates."""
        from repro.core import MorrisCounter
        from repro.state import StateTracker

        rng = random.Random(n)
        copies = 150
        total = 0.0
        for _ in range(copies):
            counter = MorrisCounter(StateTracker(), a=0.25, rng=rng)
            for _ in range(n):
                counter.add()
            total += counter.estimate
        mean = total / copies
        assert abs(mean - n) < 0.35 * n + 6
