"""Tests for the adversarial instances from the paper's proofs."""

import math

import pytest

from repro.streams import (
    FrequencyVector,
    lower_bound_pair,
    pseudo_heavy_counterexample,
)


class TestLowerBoundPair:
    def test_stream_lengths_equal_n(self):
        inst = lower_bound_pair(256, p=2, seed=0)
        assert len(inst.s1) == 256
        assert len(inst.s2) == 256

    def test_s2_is_permutation(self):
        inst = lower_bound_pair(128, p=2, seed=1)
        assert sorted(inst.s2) == list(range(128))

    def test_s1_block_structure(self):
        inst = lower_bound_pair(512, p=2, seed=2)
        block = inst.s1[inst.block_start : inst.block_start + inst.block_length]
        assert all(x == inst.heavy_item for x in block)
        f = FrequencyVector.from_stream(inst.s1)
        assert f[inst.heavy_item] == inst.block_length
        # All other items distinct.
        others = [c for item, c in f.items() if item != inst.heavy_item]
        assert all(c == 1 for c in others)

    def test_block_length_scales_with_p(self):
        n = 4096
        inst2 = lower_bound_pair(n, p=2, seed=3)
        inst4 = lower_bound_pair(n, p=4, seed=3)
        assert inst2.block_length == pytest.approx(math.sqrt(n), rel=0.01)
        assert inst4.block_length < inst2.block_length

    def test_moment_gap_close_to_two(self):
        n = 10000
        inst = lower_bound_pair(n, p=2, seed=4)
        f1 = FrequencyVector.from_stream(inst.s1).fp_moment(2)
        f2 = FrequencyVector.from_stream(inst.s2).fp_moment(2)
        # Fp(S1) = 2n - n^{1/p}, Fp(S2) = n.
        assert f2 == n
        assert f1 / f2 == pytest.approx(2.0, rel=0.02)

    def test_epsilon_scales_block(self):
        inst_full = lower_bound_pair(4096, p=2, epsilon=1.0, seed=5)
        inst_half = lower_bound_pair(4096, p=2, epsilon=0.5, seed=5)
        assert inst_half.block_length == pytest.approx(
            inst_full.block_length / 2, abs=1
        )

    def test_heavy_item_is_heavy_hitter(self):
        inst = lower_bound_pair(4096, p=2, epsilon=0.5, seed=6)
        f = FrequencyVector.from_stream(inst.s1)
        # Block item has frequency eps*n^{1/2}; threshold eps/2*||f||_2
        # with ||f||_2 ~ sqrt(2n - sqrt(n)).
        assert f[inst.heavy_item] >= 0.25 * f.lp_norm(2)

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            lower_bound_pair(2, p=2)
        with pytest.raises(ValueError):
            lower_bound_pair(100, p=0.5)
        with pytest.raises(ValueError):
            lower_bound_pair(100, p=2, epsilon=0)

    def test_reproducible(self):
        a = lower_bound_pair(256, p=2, seed=7)
        b = lower_bound_pair(256, p=2, seed=7)
        assert a.s1 == b.s1
        assert a.s2 == b.s2


class TestPseudoHeavyCounterexample:
    def test_structure(self):
        inst = pseudo_heavy_counterexample(4096, seed=0)
        f = FrequencyVector.from_stream(inst.stream)
        assert f[inst.heavy_item] == inst.heavy_frequency
        # Heavy frequency ~ sqrt(n).
        assert inst.heavy_frequency >= 0.3 * math.sqrt(4096)
        for item in inst.pseudo_heavy_items:
            assert f[item] == inst.pseudo_heavy_frequency

    def test_heavy_is_the_unique_l2_heavy_hitter(self):
        inst = pseudo_heavy_counterexample(65536, seed=1)
        f = FrequencyVector.from_stream(inst.stream)
        l2 = f.lp_norm(2)
        assert f[inst.heavy_item] >= 0.3 * l2
        for item in inst.pseudo_heavy_items:
            assert f[item] < f[inst.heavy_item]

    def test_heavy_occurrences_spread_across_blocks(self):
        inst = pseudo_heavy_counterexample(4096, seed=2)
        positions = [
            t for t, item in enumerate(inst.stream) if item == inst.heavy_item
        ]
        spread = positions[-1] - positions[0]
        assert spread > len(inst.stream) // 8

    def test_too_small_n_raises(self):
        with pytest.raises(ValueError):
            pseudo_heavy_counterexample(100)

    def test_f2_is_theta_n(self):
        n = 16384
        inst = pseudo_heavy_counterexample(n, seed=3)
        f2 = FrequencyVector.from_stream(inst.stream).fp_moment(2)
        assert n * 0.5 <= f2 <= n * 20
