"""Tests for the workload subsystem (registry, spec, scenarios)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import workloads
from repro.api import Engine
from repro.streams import write_trace
from repro.workloads import Workload

BUILTIN = (
    "adversarial",
    "budget-stress",
    "bursty",
    "permutation",
    "phase-shift",
    "planted-hh",
    "round-robin",
    "trace-replay",
    "uniform",
    "zipf",
)


class TestRegistry:
    def test_builtin_scenarios_registered(self):
        assert workloads.scenario_names() == sorted(BUILTIN)

    def test_unknown_scenario_names_choices(self):
        with pytest.raises(KeyError, match="choose from"):
            workloads.scenario_spec("heavy-traffic")

    def test_unknown_parameter_rejected_with_knob_list(self):
        with pytest.raises(TypeError, match="tunable parameters"):
            workloads.generate("zipf", n=64, m=128, skw=2.0)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            workloads.register_scenario("zipf", lambda n, m, seed: [])

    def test_defaults_overridable(self):
        calm = workloads.generate(
            "bursty", n=64, m=512, seed=3, burst_intensity=0.0
        )
        stormy = workloads.generate(
            "bursty", n=64, m=512, seed=3, burst_intensity=1.0
        )
        assert len(calm) == len(stormy) == 512
        assert calm != stormy

    # trace-replay needs a trace file; adversarial allocates fresh
    # item ids beyond ``n`` and needs a long stream (dedicated class
    # below).
    @pytest.mark.parametrize(
        "name",
        [n for n in BUILTIN if n not in ("trace-replay", "adversarial")],
    )
    def test_every_synthetic_scenario_is_reproducible(self, name):
        first = workloads.generate(name, n=128, m=600, seed=11)
        second = workloads.generate(name, n=128, m=600, seed=11)
        assert first == second
        assert len(first) == 600
        assert all(0 <= item < 128 for item in first)


class TestAdversarialScenario:
    """The Section 1.4 counterexample wired as a named workload."""

    def test_reproducible_and_sized_to_m(self):
        first = workloads.generate("adversarial", n=128, m=12_000, seed=3)
        second = workloads.generate("adversarial", n=128, m=12_000, seed=3)
        assert first == second
        assert len(first) == 12_000

    def test_trickled_heavy_hitter_dominates(self):
        from collections import Counter

        stream = workloads.generate("adversarial", n=128, m=12_000, seed=3)
        counts = Counter(int(item) for item in stream)
        # Default knobs: 60 pseudo-heavy items at 60 occurrences each;
        # item 0 trickles one occurrence per 100 updates over the
        # remaining (12000 - 3600) budget.
        assert counts[0] == (12_000 - 60 * 60) // 100 == 84
        assert max(counts.values()) == counts[0]
        assert sum(1 for c in counts.values() if c == 60) >= 60

    def test_too_short_m_rejected_with_hint(self):
        with pytest.raises(ValueError, match="need m >="):
            workloads.generate("adversarial", n=128, m=600, seed=3)


class TestWorkloadSpec:
    def test_frozen_hashable_and_equal_by_value(self):
        a = Workload("zipf", n=64, m=128, seed=1, params={"skew": 1.5})
        b = Workload("zipf", n=64, m=128, seed=1, params={"skew": 1.5})
        assert a == b and hash(a) == hash(b)
        with pytest.raises(AttributeError):
            a.seed = 2

    def test_materialize_matches_registry_generate(self):
        spec = Workload("uniform", n=32, m=200, seed=9)
        assert spec.materialize() == workloads.generate(
            "uniform", n=32, m=200, seed=9
        )

    def test_bad_scenario_and_params_fail_at_construction(self):
        with pytest.raises(KeyError):
            Workload("nope")
        with pytest.raises(TypeError):
            Workload("uniform", params={"skew": 2.0})
        with pytest.raises(ValueError):
            Workload("uniform", n=0)

    def test_describe_names_everything(self):
        text = Workload(
            "bursty", n=64, m=128, seed=3, params={"num_bursts": 2}
        ).describe()
        assert "bursty" in text and "num_bursts=2" in text and "seed=3" in text

    @given(seed=st.integers(0, 2**20), m=st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_equal_specs_materialize_equal_streams(self, seed, m):
        left = Workload("phase-shift", n=32, m=m, seed=seed)
        right = Workload("phase-shift", n=32, m=m, seed=seed)
        assert left.materialize() == right.materialize()


class TestScenarioShapes:
    def test_phase_shift_changes_heavy_set(self):
        stream = workloads.generate(
            "phase-shift", n=256, m=9000, seed=4, phases=3
        )
        thirds = [stream[:3000], stream[3000:6000], stream[6000:]]

        def top(block):
            counts = {}
            for item in block:
                counts[item] = counts.get(item, 0) + 1
            return max(counts, key=counts.get)

        assert len({top(block) for block in thirds}) > 1

    def test_bursty_plants_a_flash_item(self):
        calm = workloads.generate(
            "bursty", n=4096, m=4000, seed=8, burst_fraction=0.0
        )
        stormy = workloads.generate(
            "bursty", n=4096, m=4000, seed=8,
            burst_fraction=0.5, burst_intensity=1.0, num_bursts=1,
        )

        def max_count(block):
            counts = {}
            for item in block:
                counts[item] = counts.get(item, 0) + 1
            return max(counts.values())

        assert max_count(stormy) > max_count(calm)

    def test_permutation_is_flat_per_window(self):
        stream = workloads.generate("permutation", n=50, m=125, seed=2)
        assert sorted(stream[:50]) == list(range(50))
        assert sorted(stream[50:100]) == list(range(50))
        assert len(stream) == 125

    def test_budget_stress_churn_prefix_then_skewed_tail(self):
        stream = workloads.generate(
            "budget-stress", n=40, m=200, seed=4, churn_fraction=0.5
        )
        assert len(stream) == 200
        # churn prefix: back-to-back permutations, every window distinct
        assert sorted(stream[:40]) == list(range(40))
        assert sorted(stream[40:80]) == list(range(40))
        # the tail repeats items (skewed draws), unlike the prefix
        assert len(set(stream[100:200])) < 100

    def test_budget_stress_validates_churn_fraction(self):
        with pytest.raises(ValueError):
            workloads.generate("budget-stress", n=8, m=16, churn_fraction=1.5)

    def test_budget_stress_exhausts_a_budget_early(self):
        from repro.state import WriteBudget

        report = Engine("exact", n=64, m=512, seed=1).run(
            workload="budget-stress",
            queries=(),
            budget=WriteBudget(32, "freeze"),
        )
        # the all-distinct prefix burns the budget within its window
        assert report.budget.exhausted
        assert report.audit.state_changes == 32

    def test_trace_replay_round_trip(self, tmp_path):
        path = tmp_path / "trace.txt"
        write_trace(path, [3, 1, 4, 1, 5, 9, 2, 6])
        replayed = workloads.generate(
            "trace-replay", n=10, m=0, seed=0, path=str(path)
        )
        assert replayed == [3, 1, 4, 1, 5, 9, 2, 6]
        truncated = workloads.generate(
            "trace-replay", n=10, m=3, seed=0, path=str(path)
        )
        assert truncated == [3, 1, 4]

    def test_trace_replay_validates_universe_and_path(self, tmp_path):
        path = tmp_path / "trace.txt"
        write_trace(path, [99])
        # The replay stream is lazy (constant-memory chunked reads),
        # so the universe check fires as the offending chunk is read.
        with pytest.raises(ValueError, match="universe"):
            workloads.generate(
                "trace-replay", n=10, seed=0, path=str(path)
            ).materialize()
        with pytest.raises(ValueError, match="path"):
            workloads.generate("trace-replay", n=10, seed=0)


class TestEngineIntegration:
    def test_run_with_named_workload_is_reproducible(self):
        def report():
            return Engine(
                "count-min", n=128, m=2000, epsilon=0.3, seed=6, shards=2
            ).run(workload="bursty")

        first, second = report(), report()
        assert first.workload == second.workload
        assert "bursty" in first.workload
        assert first.audit == second.audit
        assert [a for _, a in first.answers] == [a for _, a in second.answers]

    def test_run_with_pinned_spec(self):
        spec = Workload("planted-hh", n=128, m=1500, seed=13)
        report = Engine("exact", n=128, m=1500, seed=13).run(workload=spec)
        assert report.items_processed == 1500
        assert report.workload == spec.describe()

    def test_stream_and_workload_are_mutually_exclusive(self):
        engine = Engine("count-min", n=64, m=100)
        with pytest.raises(ValueError, match="exactly one"):
            engine.run([1, 2, 3], workload="zipf")
        with pytest.raises(ValueError, match="exactly one"):
            engine.run()

    def test_explicit_stream_reports_no_workload(self):
        report = Engine("count-min", n=64, m=100).run([1, 2, 3])
        assert report.workload is None
