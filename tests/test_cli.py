"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAudit:
    def test_audit_heavy_hitters(self, capsys):
        code = main([
            "audit", "--algorithm", "heavy-hitters",
            "--n", "256", "--m", "4096", "--seed", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "state_changes=" in out
        assert "heavy hitters:" in out

    @pytest.mark.parametrize(
        "algorithm",
        ["misra-gries", "space-saving", "count-min", "count-min-morris",
         "count-sketch", "exact", "sample-and-hold"],
    )
    def test_audit_each_algorithm(self, capsys, algorithm):
        code = main([
            "audit", "--algorithm", algorithm,
            "--n", "128", "--m", "1024", "--seed", "2",
        ])
        assert code == 0
        assert "audit:" in capsys.readouterr().out

    def test_audit_kmv(self, capsys):
        code = main([
            "audit", "--algorithm", "kmv",
            "--workload", "uniform", "--n", "512", "--m", "2048",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "distinct estimate:" in out

    def test_audit_with_truth(self, capsys):
        code = main([
            "audit", "--algorithm", "misra-gries",
            "--n", "64", "--m", "512", "--truth",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "ground truth:" in out

    def test_audit_from_file(self, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        trace.write_text("\n".join(["3"] * 50 + ["1", "2"]))
        code = main([
            "audit", "--algorithm", "exact", "--input", str(trace),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "3: 50" in out

    def test_unknown_algorithm_exits(self):
        with pytest.raises(SystemExit):
            main(["audit", "--algorithm", "quantum", "--m", "16"])


class TestShard:
    def test_shard_scaling_prints_table(self, capsys):
        code = main([
            "shard", "--sketch", "count-min", "--shards", "1,2",
            "--n", "256", "--m", "2048", "--epsilon", "0.2", "--seed", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Sharded ingestion scaling" in out
        assert "count-min" in out

    def test_round_robin_partition(self, capsys):
        code = main([
            "shard", "--sketch", "misra-gries", "--shards", "1,4",
            "--partition", "round-robin",
            "--n", "128", "--m", "1024",
        ])
        assert code == 0
        assert "round-robin" in capsys.readouterr().out

    def test_aggregate_estimator_sketch(self, capsys):
        # kmv has no per-item estimate(); scored on its F0 scalar.
        code = main([
            "shard", "--sketch", "kmv", "--shards", "1,2",
            "--n", "256", "--m", "1024", "--epsilon", "0.3",
        ])
        assert code == 0
        assert "kmv" in capsys.readouterr().out

    def test_non_mergeable_sketch_exits(self):
        with pytest.raises(SystemExit):
            main(["shard", "--sketch", "sample-and-hold", "--shards", "2"])

    def test_bad_shard_list_exits(self):
        with pytest.raises(SystemExit):
            main(["shard", "--shards", "two"])
        with pytest.raises(SystemExit):
            main(["shard", "--shards", "0"])

    def test_unknown_sketch_exits(self):
        with pytest.raises(SystemExit):
            main(["shard", "--sketch", "quantum"])


class TestTable1:
    def test_table1_prints(self, capsys):
        code = main(["table1", "--n", "1024", "--m", "4096"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Misra-Gries" in out
        assert "this paper" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
