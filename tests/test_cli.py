"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAudit:
    def test_audit_heavy_hitters(self, capsys):
        code = main([
            "audit", "--algorithm", "heavy-hitters",
            "--n", "256", "--m", "4096", "--seed", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "state_changes=" in out
        assert "heavy hitters:" in out

    @pytest.mark.parametrize(
        "algorithm",
        ["misra-gries", "space-saving", "count-min", "count-min-morris",
         "count-sketch", "exact", "sample-and-hold"],
    )
    def test_audit_each_algorithm(self, capsys, algorithm):
        code = main([
            "audit", "--algorithm", algorithm,
            "--n", "128", "--m", "1024", "--seed", "2",
        ])
        assert code == 0
        assert "audit:" in capsys.readouterr().out

    def test_audit_kmv(self, capsys):
        code = main([
            "audit", "--algorithm", "kmv",
            "--workload", "uniform", "--n", "512", "--m", "2048",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "distinct estimate:" in out

    def test_audit_with_truth(self, capsys):
        code = main([
            "audit", "--algorithm", "misra-gries",
            "--n", "64", "--m", "512", "--truth",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "ground truth:" in out

    def test_audit_from_file(self, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        trace.write_text("\n".join(["3"] * 50 + ["1", "2"]))
        code = main([
            "audit", "--algorithm", "exact", "--input", str(trace),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "3: 50" in out

    def test_unknown_algorithm_exits(self):
        with pytest.raises(SystemExit):
            main(["audit", "--algorithm", "quantum", "--m", "16"])

    def test_audit_workload_errors_exit_cleanly(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["audit", "--workload", "tsunami", "--m", "16"])
        with pytest.raises(SystemExit, match="trace-replay needs a file"):
            main(["audit", "--workload", "trace-replay", "--m", "16"])


class TestRun:
    def test_run_named_workload(self, capsys):
        code = main([
            "run", "--algorithm", "count-min", "--workload", "bursty",
            "--n", "256", "--m", "2000", "--epsilon", "0.3", "--seed", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "workload=bursty" in out
        assert "state_changes=" in out

    def test_run_sharded_process_executor(self, capsys):
        code = main([
            "run", "--algorithm", "count-min", "--workload", "phase-shift",
            "--shards", "4", "--executor", "process",
            "--n", "256", "--m", "2000", "--epsilon", "0.3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "(hash/process)" in out
        assert "skew=" in out

    def test_run_unknown_workload_names_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--workload", "tsunami", "--m", "64"])
        message = str(excinfo.value)
        assert "unknown workload 'tsunami'" in message
        assert "bursty" in message and "zipf" in message

    def test_run_non_mergeable_sharded_exits(self):
        with pytest.raises(SystemExit, match="not mergeable"):
            main([
                "run", "--algorithm", "sample-and-hold",
                "--shards", "2", "--m", "64",
            ])

    def test_run_trace_replay_workload(self, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        trace.write_text("\n".join(["3"] * 40 + ["1", "2"]))
        code = main([
            "run", "--algorithm", "exact", "--workload", "trace-replay",
            "--trace", str(trace), "--n", "8", "--m", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "items=42" in out

    def test_run_trace_replay_without_file_exits(self):
        with pytest.raises(SystemExit, match="trace-replay needs a file"):
            main(["run", "--workload", "trace-replay", "--m", "64"])

    def test_run_non_serializable_process_executor_exits(self):
        with pytest.raises(SystemExit, match="serialization"):
            main([
                "run", "--algorithm", "heavy-hitters",
                "--executor", "process", "--m", "64",
            ])


class TestShard:
    def test_shard_scaling_prints_table(self, capsys):
        code = main([
            "shard", "--sketch", "count-min", "--shards", "1,2",
            "--n", "256", "--m", "2048", "--epsilon", "0.2", "--seed", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Sharded ingestion scaling" in out
        assert "count-min" in out

    def test_round_robin_partition(self, capsys):
        code = main([
            "shard", "--sketch", "misra-gries", "--shards", "1,4",
            "--partition", "round-robin",
            "--n", "128", "--m", "1024",
        ])
        assert code == 0
        assert "round-robin" in capsys.readouterr().out

    def test_aggregate_estimator_sketch(self, capsys):
        # kmv has no per-item estimate(); scored on its F0 scalar.
        code = main([
            "shard", "--sketch", "kmv", "--shards", "1,2",
            "--n", "256", "--m", "1024", "--epsilon", "0.3",
        ])
        assert code == 0
        assert "kmv" in capsys.readouterr().out

    def test_process_executor_matches_serial_table(self, capsys):
        flags = [
            "shard", "--sketch", "count-min", "--shards", "1,2",
            "--n", "256", "--m", "2048", "--epsilon", "0.2", "--seed", "3",
        ]
        assert main(flags + ["--executor", "process"]) == 0
        process_table = capsys.readouterr().out
        assert main(flags + ["--executor", "serial"]) == 0
        serial_table = capsys.readouterr().out
        assert "Sharded ingestion scaling" in process_table
        # Process execution is bit-identical to serial, so the whole
        # printed sweep — including the deviation column — must match.
        assert process_table == serial_table

    def test_named_workload(self, capsys):
        code = main([
            "shard", "--sketch", "count-min", "--shards", "1,2",
            "--workload", "bursty",
            "--n", "128", "--m", "1024", "--epsilon", "0.3",
        ])
        assert code == 0
        assert "count-min" in capsys.readouterr().out

    def test_unknown_workload_exits(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["shard", "--workload", "tsunami", "--m", "64"])

    def test_non_mergeable_sketch_exits(self):
        with pytest.raises(SystemExit):
            main(["shard", "--sketch", "sample-and-hold", "--shards", "2"])

    def test_bad_shard_list_exits(self):
        with pytest.raises(SystemExit):
            main(["shard", "--shards", "two"])
        with pytest.raises(SystemExit):
            main(["shard", "--shards", "0"])

    def test_unknown_sketch_exits(self):
        with pytest.raises(SystemExit):
            main(["shard", "--sketch", "quantum"])

    def test_coin_protocol_flag_changes_randomized_sweep(self, capsys):
        flags = [
            "shard", "--sketch", "count-min-morris", "--shards", "1,2",
            "--n", "256", "--m", "2048", "--epsilon", "0.3", "--seed", "3",
        ]
        assert main(flags + ["--coin-protocol", "v1"]) == 0
        v1_table = capsys.readouterr().out
        assert main(flags + ["--coin-protocol", "v2"]) == 0
        v2_table = capsys.readouterr().out
        assert "count-min-morris" in v1_table
        # Different coin protocols draw different coins, so the
        # state-change columns must not be byte-identical.
        assert v1_table != v2_table

    def test_coin_protocol_on_coin_free_sketch_exits_cleanly(self):
        # Pinning a protocol on a deterministic family is a config
        # error (same contract as `repro run`), not a traceback.
        with pytest.raises(SystemExit, match="no coin protocol"):
            main([
                "shard", "--sketch", "count-min", "--shards", "1,2",
                "--n", "128", "--m", "1024", "--epsilon", "0.3",
                "--coin-protocol", "v2",
            ])

    def test_coin_protocol_rejects_unknown_value(self):
        with pytest.raises(SystemExit):
            main([
                "shard", "--sketch", "count-min-morris",
                "--coin-protocol", "v9",
            ])


class TestTable1:
    def test_table1_prints(self, capsys):
        code = main(["table1", "--n", "1024", "--m", "4096"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Misra-Gries" in out
        assert "this paper" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestVersion:
    def test_version_flag_prints_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.strip().split(" ", 1)[1]  # a non-empty version string


class TestRunAccounting:
    def test_run_with_freeze_budget_prints_budget_line(self, capsys):
        code = main([
            "run", "--algorithm", "count-min", "--workload", "zipf",
            "--n", "128", "--m", "1024", "--budget", "50",
            "--budget-policy", "freeze",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "budget=50 (freeze)" in out
        assert "state_changes=50" in out
        assert "exhausted=True" in out

    def test_run_with_raise_budget_aborts_cleanly(self):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "run", "--algorithm", "exact", "--workload", "zipf",
                "--n", "128", "--m", "1024", "--budget", "10",
            ])
        assert "write budget" in str(excinfo.value)

    def test_run_sharded_budget_prints_per_shard_budgets(self, capsys):
        code = main([
            "run", "--algorithm", "count-min", "--workload", "zipf",
            "--n", "128", "--m", "1024", "--shards", "2",
            "--budget", "41", "--budget-policy", "freeze",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "budgets=[" in out

    def test_run_with_nvm_prints_pricing(self, capsys):
        code = main([
            "run", "--algorithm", "count-min", "--workload", "zipf",
            "--n", "128", "--m", "1024", "--nvm", "pcm",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "nvm=PCM" in out
        assert "energy=" in out
        assert "lifetime=" in out

    def test_run_nvm_rejects_process_executor(self):
        with pytest.raises(SystemExit):
            main([
                "run", "--algorithm", "count-min", "--workload", "zipf",
                "--n", "128", "--m", "1024", "--nvm", "pcm",
                "--executor", "process",
            ])

    def test_run_negative_budget_exits(self):
        with pytest.raises(SystemExit):
            main([
                "run", "--algorithm", "count-min", "--workload", "zipf",
                "--budget", "-1",
            ])

    def test_run_tracking_trace_accepted(self, capsys):
        code = main([
            "run", "--algorithm", "count-min", "--workload", "zipf",
            "--n", "128", "--m", "1024", "--tracking", "trace",
        ])
        assert code == 0
        assert "state_changes" in capsys.readouterr().out
