"""Tests for the vectorized batch query plane.

The load-bearing contract: ``query_many`` over a
:class:`~repro.query.MultiPointQuery` is **bit-identical** to a loop
of scalar ``PointQuery`` dispatches — for every registered family,
under both coin protocols where the family has one, across tracker
backends, and through the serving snapshot path (``query_batch`` /
``queries`` on a :class:`~repro.serve.LiveEngine`).  On top of that
sit the serving-plane guarantees this PR adds: reads answer off the
ingest lock, multi-query reads observe one consistent cut, and the
snapshot-keyed answer cache never changes an answer.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import registry
from repro.api import Engine
from repro.query import (
    HeavyHitters,
    Moment,
    MultiPointQuery,
    PointQuery,
    QueryKind,
    UnsupportedQueryError,
)
from repro.serve import LiveEngine, LiveSession, generate_load
from repro.serve.engine import _AnswerCache
from repro.state.tracker import make_tracker
from repro.streams import zipf_stream

N, M = 256, 2048

POINT_FAMILIES = sorted(registry.supporting(QueryKind.POINT))
NON_POINT_FAMILIES = sorted(
    set(registry.names()) - set(POINT_FAMILIES)
)


def _protocols(name: str) -> tuple[str | None, ...]:
    if name in registry.COIN_PROTOCOL_AWARE:
        return ("v1", "v2")
    return (None,)


def _build(name, protocol, tracking="aggregate"):
    return registry.create(
        name,
        n=N,
        m=M,
        epsilon=0.3,
        seed=11,
        tracker=make_tracker(tracking),
        coin_protocol=protocol,
    )


class TestBatchScalarIdentity:
    """``query_many`` == the scalar loop, bit for bit."""

    @pytest.mark.parametrize("name", POINT_FAMILIES)
    @given(data=st.data())
    @settings(max_examples=8, deadline=None)
    def test_families_match_scalar_loop(self, name, data):
        stream = data.draw(
            st.lists(
                st.integers(0, 80), min_size=1, max_size=400
            ),
            label="stream",
        )
        # Probes mix present, absent, and duplicate items.
        probe = data.draw(
            st.lists(
                st.integers(0, 120), min_size=1, max_size=40
            ),
            label="probe",
        )
        protocol = data.draw(
            st.sampled_from(_protocols(name)), label="protocol"
        )
        sketch = _build(name, protocol)
        sketch.process_many(np.asarray(stream, dtype=np.int64))
        batch = sketch.query_many(MultiPointQuery(probe))
        scalar = tuple(
            sketch.query(PointQuery(item)) for item in probe
        )
        assert batch == scalar

    @pytest.mark.parametrize("name", POINT_FAMILIES)
    @pytest.mark.parametrize("tracking", ["aggregate", "trace"])
    def test_tracker_backends(self, name, tracking):
        stream = zipf_stream(N, M, skew=1.2, seed=4)
        probe = list(range(0, 300, 7))
        for protocol in _protocols(name):
            sketch = _build(name, protocol, tracking=tracking)
            sketch.process_many(stream)
            batch = sketch.query_many(MultiPointQuery(probe))
            scalar = tuple(
                sketch.query(PointQuery(item)) for item in probe
            )
            assert batch == scalar

    @pytest.mark.parametrize("name", POINT_FAMILIES)
    def test_large_batch_exercises_kernels(self, name):
        # Batches big enough to clear every small-batch guard, so the
        # vectorized gather (not the scalar fallback) is what answers.
        stream = zipf_stream(N, M, skew=1.4, seed=8)
        probe = [int(item) for item in np.arange(2000) % 500]
        sketch = _build(name, _protocols(name)[-1])
        sketch.process_many(stream)
        batch = sketch.query_many(MultiPointQuery(probe))
        scalar = tuple(
            sketch.query(PointQuery(item)) for item in probe
        )
        assert batch == scalar

    @pytest.mark.parametrize("name", NON_POINT_FAMILIES)
    def test_non_point_families_raise(self, name):
        sketch = _build(name, _protocols(name)[0])
        with pytest.raises(UnsupportedQueryError):
            sketch.query_many(MultiPointQuery((1, 2, 3)))

    def test_empty_batch(self):
        sketch = _build("count-min", None)
        assert sketch.query_many(MultiPointQuery(())) == ()

    def test_scalar_fallback_path(self):
        # A wide sketch and a tiny batch trips CountMin's guard onto
        # the base-class scalar loop — same answers either way.
        sketch = registry.create("count-min", epsilon=0.001, seed=2)
        sketch.process_many(np.arange(500, dtype=np.int64) % 37)
        probe = [0, 1, 36, 999]
        batch = sketch.query_many(MultiPointQuery(probe))
        assert batch == tuple(
            sketch.query(PointQuery(item)) for item in probe
        )

    def test_engine_facade_delegate(self):
        stream = zipf_stream(N, M, skew=1.3, seed=5)
        engine = Engine("count-sketch", n=N, m=M, epsilon=0.2, seed=5)
        engine.run(stream, queries=[])
        probe = list(range(50))
        assert engine.query_many(
            MultiPointQuery(probe)
        ) == tuple(engine.query(PointQuery(item)) for item in probe)


class TestMultiPointQuery:
    def test_items_normalize_to_python_ints(self):
        q = MultiPointQuery(np.arange(3, dtype=np.int64))
        assert q.items == (0, 1, 2)
        assert all(type(item) is int for item in q.items)

    def test_hashable_and_sized(self):
        a = MultiPointQuery((1, 2, 3))
        b = MultiPointQuery([1, 2, 3])
        assert a == b and hash(a) == hash(b)
        assert len(a) == 3
        assert a.kind is QueryKind.POINT


class TestServeSnapshotPath:
    """Batch reads through the live engine: same cut, same bits."""

    @pytest.mark.parametrize("name", POINT_FAMILIES)
    def test_query_batch_matches_scalar(self, name):
        stream = zipf_stream(N, M, skew=1.2, seed=13)
        for protocol in _protocols(name):
            engine = LiveEngine(
                name,
                n=N,
                m=M,
                epsilon=0.3,
                seed=11,
                snapshot_every=1024,
                coin_protocol=protocol,
            )
            engine.append(stream)
            probe = list(range(0, 200, 3))
            batch = engine.query_batch(probe)
            scalar = [engine.query(PointQuery(item)) for item in probe]
            assert [a.answer for a in batch] == [
                a.answer for a in scalar
            ]
            # One consistent cut: a single staleness triple.
            assert len(
                {(a.snapshot_index, a.head) for a in batch}
            ) == 1

    def test_queries_batches_point_misses(self):
        engine = LiveEngine(
            "count-min", n=N, m=M, epsilon=0.3, seed=11
        )
        engine.append(zipf_stream(N, M, skew=1.2, seed=13))
        qs = [PointQuery(1), Moment(), PointQuery(2), PointQuery(1)]
        with pytest.raises(UnsupportedQueryError):
            engine.queries(qs)  # count-min has no MOMENT
        qs = [PointQuery(1), PointQuery(2), PointQuery(1)]
        answers = engine.queries(qs)
        assert [a.answer for a in answers] == [
            engine.query(q).answer for q in qs
        ]
        assert len({a.snapshot_index for a in answers}) == 1

    def test_queries_mixed_kinds_share_cut(self):
        engine = LiveEngine(
            "heavy-hitters", n=N, m=M, epsilon=0.2, seed=3
        )
        engine.append([1] * 500 + [2] * 300 + list(range(100, 200)))
        qs = [PointQuery(1), HeavyHitters(), PointQuery(2)]
        answers = engine.queries(qs)
        assert [a.answer for a in answers] == [
            engine.query(q).answer for q in qs
        ]
        assert len({(a.snapshot_index, a.head) for a in answers}) == 1

    def test_off_lock_vs_locked_identity(self):
        # The off-lock read path must answer exactly what an
        # under-the-lock read at equal staleness would have.
        engine = LiveEngine(
            "count-min", n=N, m=M, epsilon=0.3, seed=11
        )
        engine.append(zipf_stream(N, M, skew=1.2, seed=13))
        probe = list(range(64))
        off_lock = engine.query_batch(probe)
        with engine._lock:
            snapshot = engine._snapshot
            locked = [snapshot.answer(PointQuery(i)) for i in probe]
        assert [a.answer for a in off_lock] == locked


class TestOffLockReads:
    """Regression: reads must not hold the ingest lock while
    answering (``queries`` used to re-enter ``query`` under it)."""

    def test_slow_query_does_not_block_append(self):
        engine = LiveEngine(
            "count-min",
            n=N,
            m=M,
            epsilon=0.3,
            seed=1,
            snapshot_every=512,
            answer_cache=0,
        )
        engine.append(list(range(512)))  # snapshot at 512
        snapshot = engine.snapshot()
        entered = threading.Event()
        release = threading.Event()
        original = type(snapshot.sketch).query

        def slow_query(self, q):
            entered.set()
            assert release.wait(timeout=10.0)
            return original(self, q)

        snapshot.sketch.query = slow_query.__get__(snapshot.sketch)
        done = []

        def reader():
            done.append(engine.query(PointQuery(3)))

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            assert entered.wait(timeout=10.0)
            # The reader is mid-answer; an append (which takes the
            # ingest lock and refreshes the snapshot) must complete.
            appender = threading.Thread(
                target=engine.append, args=([7] * 600,)
            )
            appender.start()
            appender.join(timeout=10.0)
            assert not appender.is_alive(), (
                "append blocked behind an in-flight query"
            )
        finally:
            release.set()
            thread.join(timeout=10.0)
        assert not thread.is_alive()
        # The reader answered from the cut it captured, unaffected by
        # the concurrent append.
        assert done[0].snapshot_index == 512
        assert done[0].head == 512

    def test_queries_one_cut_despite_concurrent_append(self):
        engine = LiveEngine(
            "count-min",
            n=N,
            m=M,
            epsilon=0.3,
            seed=1,
            snapshot_every=256,
            answer_cache=0,
        )
        engine.append(list(range(256)))
        snapshot = engine.snapshot()
        original = type(snapshot.sketch).query_many
        appended = []

        def appending_query_many(self, q):
            # An append lands while the batch is being answered; the
            # batch must keep answering from the cut it captured.
            if not appended:
                appended.append(engine.append([1] * 256))
            return original(self, q)

        snapshot.sketch.query_many = appending_query_many.__get__(
            snapshot.sketch
        )
        qs = [PointQuery(1), PointQuery(2), PointQuery(3)]
        answers = engine.queries(qs)
        assert appended == [256]
        assert engine.head == 512
        assert {(a.snapshot_index, a.head) for a in answers} == {
            (256, 256)
        }


class TestAnswerCache:
    def test_hit_returns_same_object(self):
        engine = LiveEngine("count-min", n=N, m=M, epsilon=0.3, seed=1)
        engine.append(list(range(100)))
        first = engine.query(PointQuery(5))
        second = engine.query(PointQuery(5))
        assert first.answer is second.answer
        cache = engine.answer_cache
        assert cache.hits == 1 and cache.misses == 1

    def test_refresh_invalidates(self):
        engine = LiveEngine(
            "count-min",
            n=N,
            m=M,
            epsilon=0.3,
            seed=1,
            snapshot_every=128,
        )
        engine.append(list(range(128)))
        engine.query(PointQuery(5))
        assert len(engine.answer_cache) == 1
        engine.append(list(range(128)))  # cadence refresh
        assert len(engine.answer_cache) == 0
        live = engine.query(PointQuery(5))
        assert live.snapshot_index == 256

    def test_batch_and_scalar_cache_coexist(self):
        engine = LiveEngine("count-min", n=N, m=M, epsilon=0.3, seed=1)
        engine.append(list(range(100)))
        batch = engine.query_batch([1, 2, 3])
        again = engine.query_batch([1, 2, 3])
        # The whole batch is one cache entry, hit on repeat.
        assert [a.answer for a in batch] == [a.answer for a in again]
        assert engine.answer_cache.hits >= 1

    def test_queries_seed_scalar_hits(self):
        engine = LiveEngine("count-min", n=N, m=M, epsilon=0.3, seed=1)
        engine.append(list(range(100)))
        engine.queries([PointQuery(9), PointQuery(10)])
        misses = engine.answer_cache.misses
        engine.query(PointQuery(9))
        assert engine.answer_cache.misses == misses
        assert engine.answer_cache.hits >= 1

    def test_capacity_evicts_fifo(self):
        cache = _AnswerCache(2)
        cache.put((0, PointQuery(1)), "a")
        cache.put((0, PointQuery(2)), "b")
        cache.put((0, PointQuery(3)), "c")
        assert len(cache) == 2
        assert cache.get((0, PointQuery(1))) is None
        assert cache.get((0, PointQuery(3))) == "c"

    def test_disabled_and_invalid(self):
        engine = LiveEngine(
            "count-min", n=N, m=M, epsilon=0.3, seed=1, answer_cache=0
        )
        assert engine.answer_cache is None
        engine.append(list(range(100)))
        cached = LiveEngine(
            "count-min", n=N, m=M, epsilon=0.3, seed=1
        )
        cached.append(list(range(100)))
        # Caching never changes an answer.
        assert (
            engine.query(PointQuery(5)).answer
            == cached.query(PointQuery(5)).answer
        )
        with pytest.raises(ValueError):
            LiveEngine("count-min", answer_cache=-1)
        with pytest.raises(ValueError):
            _AnswerCache(0)


class TestServerQueryBatchVerb:
    @pytest.fixture()
    def session(self):
        engine = LiveEngine(
            "count-min", n=N, m=M, epsilon=0.3, seed=7
        )
        session = LiveSession(engine)
        response, _ = session.handle(
            {"op": "append", "items": list(range(1000))}
        )
        assert response["ok"]
        return session

    def test_matches_scalar_query_verb(self, session):
        items = [1, 2, 999, 1]
        batch, _ = session.handle(
            {"op": "query-batch", "items": items}
        )
        assert batch["ok"]
        scalars = [
            session.handle(
                {"op": "query", "kind": "point", "item": item}
            )[0]
            for item in items
        ]
        assert [a["value"] for a in batch["answers"]] == [
            s["value"] for s in scalars
        ]
        assert {"snapshot_index", "head", "updates_behind"} <= set(
            batch
        )

    def test_empty_and_errors(self, session):
        empty, _ = session.handle({"op": "query-batch", "items": []})
        assert empty["ok"] and empty["answers"] == []
        for bad in (
            {"op": "query-batch"},
            {"op": "query-batch", "items": "nope"},
            {"op": "query-batch", "items": [1, "two"]},
        ):
            response, alive = session.handle(bad)
            assert not response["ok"] and alive

    def test_verb_listed_and_underscore_alias(self, session):
        assert "query-batch" in LiveSession.verbs()
        response, _ = session.handle(
            {"op": "query_batch", "items": [3]}
        )
        assert response["ok"] and len(response["answers"]) == 1

    def test_unsupported_family_errors_cleanly(self):
        session = LiveSession(
            LiveEngine("ams", n=N, m=M, epsilon=0.3, seed=7)
        )
        session.handle({"op": "append", "items": [1, 2, 3]})
        response, alive = session.handle(
            {"op": "query-batch", "items": [1]}
        )
        assert not response["ok"] and alive

    def test_stats_reports_cache(self, session):
        session.handle({"op": "query-batch", "items": [1, 2]})
        stats, _ = session.handle({"op": "stats"})
        cache = stats["answer_cache"]
        assert cache["capacity"] == 256
        assert cache["misses"] >= 1


class TestLoadgenBatchMode:
    def test_batch_answers_same_query_sequence(self):
        stream = zipf_stream(N, M, skew=1.2, seed=6)

        def run(batch_size):
            engine = LiveEngine(
                "count-min",
                n=N,
                m=M,
                epsilon=0.3,
                seed=6,
                snapshot_every=512,
            )
            return generate_load(
                engine,
                stream,
                append_size=512,
                queries_per_append=6,
                batch_size=batch_size,
                seed=2,
            )

        scalar = run(1)
        batched = run(3)
        assert scalar.queries == batched.queries
        assert scalar.mean_staleness == batched.mean_staleness
        assert scalar.max_staleness == batched.max_staleness
        assert batched.batch_size == 3

    def test_batch_size_validation(self):
        engine = LiveEngine("count-min", n=N, m=M, epsilon=0.3, seed=6)
        with pytest.raises(ValueError):
            generate_load(engine, [1, 2, 3], batch_size=0)
