"""Golden equivalence tests for the process-pool shard executor.

The contract under test: ``executor="process"`` changes wall-clock
time, never results.  For every mergeable family the merged sketch's
``to_state()`` must be *byte-identical* to the serial executor's on the
same seed — payload, configuration, RNG position, and the full
state-change audit — and the per-shard reports, routed item counts,
and query answers must match exactly.
"""

from __future__ import annotations

import json

import pytest

from repro import registry
from repro.api import Engine
from repro.runtime.parallel import ingest_shard, resolve_workers
from repro.runtime.sharded import ShardedRunner
from repro.state.algorithm import NotSerializableError
from repro.streams import zipf_stream

N, M = 512, 6000


@pytest.fixture(scope="module")
def stream():
    return zipf_stream(N, M, skew=1.2, seed=3)


def canonical(sketch) -> str:
    return json.dumps(sketch.to_state(), sort_keys=True)


class TestGoldenEquivalence:
    @pytest.mark.parametrize("name", registry.mergeable_names())
    def test_process_matches_serial_bit_for_bit(self, name, stream):
        def run(executor):
            return ShardedRunner.from_registry(
                name, 4, n=N, m=M, epsilon=1.0, seed=7,
                executor=executor, max_workers=2,
            ).run(stream)

        serial = run("serial")
        process = run("process")
        assert canonical(process.merged) == canonical(serial.merged)
        assert process.shard_reports == serial.shard_reports
        assert process.shard_items == serial.shard_items
        assert process.merged_report == serial.merged_report
        assert process.skew == serial.skew

    @pytest.mark.parametrize("name", ["count-min", "misra-gries"])
    def test_engine_answers_match_across_executors(self, name, stream):
        def report(executor):
            return Engine(
                name, n=N, m=M, epsilon=0.2, seed=9, shards=4,
                executor=executor, max_workers=2,
            ).run(stream)

        serial = report("serial")
        process = report("process")
        assert [
            (type(q).__name__, a) for q, a in process.answers
        ] == [(type(q).__name__, a) for q, a in serial.answers]
        assert process.audit == serial.audit
        assert process.shard_reports == serial.shard_reports
        assert process.executor == "process"

    def test_round_robin_partition_matches_too(self, stream):
        def run(executor):
            return ShardedRunner.from_registry(
                "count-min", 3, n=N, m=M, epsilon=0.3, seed=11,
                partition="round-robin", executor=executor, max_workers=2,
            ).run(stream)

        assert canonical(run("process").merged) == canonical(
            run("serial").merged
        )


class TestProcessExecutorBehaviour:
    def test_empty_stream(self):
        result = ShardedRunner.from_registry(
            "count-min", 4, seed=1, executor="process", max_workers=2
        ).run([])
        assert result.skew == 1.0
        assert result.merged.items_processed == 0

    def test_ingest_after_execution_rejected(self):
        runner = ShardedRunner.from_registry(
            "count-min", 2, seed=2, executor="process"
        )
        runner.ingest([1, 2, 3])
        runner.merge()
        with pytest.raises(RuntimeError):
            runner.ingest([4])

    def test_non_serializable_sketch_rejected(self):
        # heavy-hitters cannot use the process executor: it has no
        # state hooks, so the pool must fail with the typed error (on
        # a single shard; multi-shard already fails the mergeability
        # check).  The pipelined pool snapshots shards at the first
        # routed part, so the error may surface during ingest() rather
        # than at merge().
        runner = ShardedRunner.from_registry(
            "heavy-hitters", 1, n=64, m=256, executor="process"
        )
        with pytest.raises(NotSerializableError):
            runner.ingest([1, 2, 3])
            runner.merge()

    def test_non_serializable_sketch_fine_on_thread_executor(self):
        # The thread executor ingests the live objects — no state
        # round trip — so serial-only families parallelize under it.
        runner = ShardedRunner.from_registry(
            "heavy-hitters", 1, n=64, m=256, executor="thread"
        )
        runner.ingest([1, 2, 2, 3])
        assert runner.merge().items_processed == 4

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            ShardedRunner.from_registry("count-min", 2, executor="gpu")
        with pytest.raises(ValueError):
            Engine("count-min", executor="gpu")

    def test_engine_rejects_non_serializable_process_at_construction(self):
        with pytest.raises(ValueError, match="serialization"):
            Engine("heavy-hitters", executor="process")
        # The same family is fine on the serial executor.
        assert Engine("heavy-hitters", executor="serial")

    def test_worker_entry_point_round_trips(self):
        # The worker function itself, exercised in-process: it must
        # return a state equal to what local ingestion produces.
        shard = registry.create("count-min", n=64, m=256, seed=5)
        index, state = ingest_shard((3, shard.to_state(), [1, 2, 2, 7]))
        local = registry.create("count-min", n=64, m=256, seed=5)
        local.process_many([1, 2, 2, 7])
        assert index == 3
        assert state == local.to_state()

    def test_resolve_workers(self):
        assert resolve_workers(4, max_workers=2) == 2
        assert resolve_workers(1, max_workers=8) == 1
        assert resolve_workers(4) >= 1
        with pytest.raises(ValueError):
            resolve_workers(4, max_workers=0)


class TestSkewRegression:
    """``ShardedRunResult.skew`` on degenerate streams (regression)."""

    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_empty_stream_skew_is_one(self, executor):
        result = ShardedRunner.from_registry(
            "count-min", 4, seed=0, executor=executor, max_workers=2
        ).run([])
        assert result.skew == 1.0  # not a ZeroDivisionError

    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_single_item_stream_skew_is_num_shards(self, executor):
        result = ShardedRunner.from_registry(
            "count-min", 4, seed=0, executor=executor, max_workers=2
        ).run([5])
        assert result.skew == pytest.approx(4.0)
        assert sum(result.shard_items) == 1
