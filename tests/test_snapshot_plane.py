"""The incremental snapshot plane: memoized merge tree, clone protocol,
off-lock serving refresh.

The non-negotiable contract under test: an **incremental** snapshot
(memoized merge tree over ``Sketch.clone()`` leaf copies) is
bit-identical — payload, answers, audit — to a **full** rebuild
(serialization-round-trip copies, reduced from scratch) and to a
**fresh batch run** over the same stream prefix.  Hypothesis sweeps
the equivalence over every mergeable family, both coin protocols for
the randomized families, all tracker backends including budget
freeze/degrade, and checkpoint-resumed runners.

Alongside the equivalence sweep: the epoch-keyed cache invalidation
rules (ingest dirties exactly the touched leaves; ``merge()`` and the
failure latch drop everything), the clone protocol's round-trip
identity, the engine's lazy snapshot reports and refresh metrics, and
the server's in-band RuntimeError answers.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import registry
from repro.query import PointQuery
from repro.runtime.checkpoint import Checkpoint
from repro.runtime.sharded import ShardedRunner
from repro.serve.collectors import StateChangesCollector
from repro.serve.engine import LiveEngine
from repro.serve.server import LiveSession
from repro.state.algorithm import Sketch
from repro.state.budget import WriteBudget, WriteBudgetExceededError

N = 64  # universe for generated streams
SHARDS = 4

MERGEABLE = sorted(registry.mergeable_names())
#: Families whose merge/ingest flips coins (accept ``coin_protocol=``).
RANDOMIZED = ("count-min-morris", "pstable-fp")

streams = st.lists(st.integers(0, N - 1), max_size=40)


def make_runner(name: str, *, snapshot_mode: str, **kwargs) -> ShardedRunner:
    """A small sharded runner in the given snapshot mode."""
    return ShardedRunner.from_registry(
        name,
        SHARDS,
        n=N,
        m=512,
        epsilon=1.0,
        seed=7,
        snapshot_mode=snapshot_mode,
        **kwargs,
    )


def assert_snapshots_identical(runners: list[ShardedRunner]) -> None:
    """Every runner's merged snapshot carries the identical state."""
    states = [runner.merged_snapshot().to_state() for runner in runners]
    for state in states[1:]:
        assert state == states[0]


# ----------------------------------------------------------------------
# The equivalence sweep: incremental == full == fresh batch run
# ----------------------------------------------------------------------
class TestIncrementalEqualsFull:
    @pytest.mark.parametrize("name", MERGEABLE)
    @pytest.mark.parametrize("tracking", ["aggregate", "trace"])
    @given(first=streams, second=streams)
    @settings(max_examples=8, deadline=None)
    def test_two_phase_identity(self, name, tracking, first, second):
        """Snapshot at two cut points; the memoized second snapshot
        (which reuses clean leaves and tree nodes) must match both the
        full rebuild and a fresh runner that ingested the whole prefix
        in one go."""
        incremental = make_runner(
            name, snapshot_mode="incremental", tracking=tracking
        )
        full = make_runner(name, snapshot_mode="full", tracking=tracking)
        incremental.ingest(first)
        full.ingest(first)
        assert_snapshots_identical([incremental, full])
        incremental.ingest(second)
        full.ingest(second)
        fresh = make_runner(
            name, snapshot_mode="full", tracking=tracking
        )
        fresh.ingest(first + second)
        assert_snapshots_identical([incremental, full, fresh])
        # The incremental plane actually memoized (first snapshot
        # cloned every leaf; the equivalence must not come from
        # silently falling back to full rebuilds).
        stats = incremental.snapshot_stats()
        assert stats["full_rebuilds"] == 0
        assert stats["leaves_cloned"] >= SHARDS

    @pytest.mark.parametrize("name", RANDOMIZED)
    @pytest.mark.parametrize("protocol", ["v1", "v2"])
    @given(first=streams, second=streams)
    @settings(max_examples=6, deadline=None)
    def test_coin_protocols(self, name, protocol, first, second):
        """The randomized families stay bit-identical (coin RNG
        position included) under both coin protocols."""
        incremental = make_runner(
            name, snapshot_mode="incremental", coin_protocol=protocol
        )
        full = make_runner(
            name, snapshot_mode="full", coin_protocol=protocol
        )
        incremental.ingest(first)
        full.ingest(first)
        assert_snapshots_identical([incremental, full])
        incremental.ingest(second)
        full.ingest(second)
        assert_snapshots_identical([incremental, full])

    @pytest.mark.parametrize("policy", ["freeze", "degrade"])
    @given(first=streams, second=streams)
    @settings(max_examples=8, deadline=None)
    def test_budget_backends(self, policy, first, second):
        """Budget trackers (including denial-streak state under
        freeze/degrade) survive the memoized path bit-for-bit."""
        budget = WriteBudget(10, policy)
        incremental = make_runner(
            "misra-gries", snapshot_mode="incremental", budget=budget
        )
        full = make_runner(
            "misra-gries", snapshot_mode="full", budget=budget
        )
        incremental.ingest(first)
        full.ingest(first)
        assert_snapshots_identical([incremental, full])
        incremental.ingest(second)
        full.ingest(second)
        assert_snapshots_identical([incremental, full])

    @given(first=streams, second=streams)
    @settings(max_examples=8, deadline=None)
    def test_checkpoint_resumed_runner(self, first, second):
        """Shards checkpointed mid-stream and restored into a new
        runner snapshot identically to the uninterrupted one — in
        both snapshot modes."""
        original = make_runner("count-min", snapshot_mode="incremental")
        original.ingest(first)
        original.merged_snapshot()  # populate the caches mid-stream
        saved = [Checkpoint.dumps(shard) for shard in original.shards]
        resumed = {
            mode: ShardedRunner(
                lambda i: Checkpoint.loads(saved[i]),
                SHARDS,
                seed=7,
                snapshot_mode=mode,
            )
            for mode in ("incremental", "full")
        }
        original.ingest(second)
        for runner in resumed.values():
            runner.ingest(second)
        assert_snapshots_identical(
            [original, resumed["incremental"], resumed["full"]]
        )

    def test_repeated_snapshots_are_independent(self):
        """Memoization must never alias: two snapshots of the same
        epoch are distinct objects with equal state."""
        runner = make_runner("count-min", snapshot_mode="incremental")
        runner.ingest(range(200))
        first = runner.merged_snapshot()
        second = runner.merged_snapshot()
        assert first is not second
        assert first.to_state() == second.to_state()
        # Mutating one must not leak into the other (or the cache).
        first.process_many([1, 2, 3])
        assert runner.merged_snapshot().to_state() == second.to_state()


# ----------------------------------------------------------------------
# Clone protocol
# ----------------------------------------------------------------------
class TestCloneProtocol:
    @pytest.mark.parametrize("name", sorted(registry.names()))
    def test_clone_equals_round_trip(self, name):
        """``clone()`` is observably identical to a ``to_state`` /
        ``from_state`` round trip for every registered family —
        including the direct-payload fast paths."""
        sketch = registry.create(name, n=N, m=512, epsilon=1.0, seed=7)
        sketch.process_many(i % N for i in range(300))
        if type(sketch)._config_state is Sketch._config_state:
            pytest.skip(f"{name} has no serialization hooks")
        expected = sketch.to_state()
        dup = sketch.clone()
        assert dup is not sketch
        assert dup.tracker is not sketch.tracker
        assert dup.to_state() == expected
        assert sketch.to_state() == expected  # source untouched

    @pytest.mark.parametrize(
        "name", ["count-min", "misra-gries", "exact"]
    )
    @pytest.mark.parametrize("tracking", ["aggregate", "trace", "budget"])
    def test_clone_is_isolated(self, name, tracking):
        """Updates to a clone never reach the source (registers and
        trackers are fully rebound), on every tracker backend."""
        kwargs = {"tracking": tracking}
        if tracking == "budget":
            kwargs = {"budget": WriteBudget(10_000, "freeze")}
        runner = make_runner(name, snapshot_mode="incremental", **kwargs)
        runner.ingest(range(100))
        shard = runner.shards[0]
        changes_before = shard.report().state_changes
        before = shard.to_state()
        dup = shard.clone()
        dup.process_many([1, 1, 2, 3])
        assert shard.to_state() == before
        assert dup.report().state_changes > changes_before


# ----------------------------------------------------------------------
# Epoch-keyed cache invalidation
# ----------------------------------------------------------------------
class TestCacheInvalidation:
    def test_clean_shards_reuse_leaves_and_nodes(self):
        runner = make_runner("count-min", snapshot_mode="incremental")
        runner.ingest(range(400))
        runner.merged_snapshot()
        base = runner.snapshot_stats()
        runner.merged_snapshot()  # nothing ingested in between
        stats = runner.snapshot_stats()
        assert stats["leaves_reused"] - base["leaves_reused"] == SHARDS
        assert stats["leaves_cloned"] == base["leaves_cloned"]
        assert stats["nodes_reused"] - base["nodes_reused"] == SHARDS - 1
        assert stats["nodes_built"] == base["nodes_built"]

    def test_dirty_shard_invalidates_its_root_path_only(self):
        runner = make_runner("count-min", snapshot_mode="incremental")
        runner.ingest(range(400))
        runner.merged_snapshot()
        base = runner.snapshot_stats()
        # Drive exactly one shard directly — the derived epoch key
        # must catch mutation outside the runner's delivery paths.
        target = runner.shard_of(5)
        runner.shards[target].process(5)
        merged = runner.merged_snapshot()
        stats = runner.snapshot_stats()
        assert stats["leaves_cloned"] - base["leaves_cloned"] == 1
        assert stats["leaves_reused"] - base["leaves_reused"] == SHARDS - 1
        # One dirty leaf re-merges its path to the root: log2(4) = 2
        # node rebuilds, the sibling subtree is served memoized.
        assert stats["nodes_built"] - base["nodes_built"] == 2
        assert stats["nodes_reused"] - base["nodes_reused"] == 1
        # ... and the snapshot actually saw the update.
        fresh = make_runner("count-min", snapshot_mode="full")
        fresh.ingest(range(400))
        fresh.shards[target].process(5)
        assert merged.to_state() == fresh.merged_snapshot().to_state()

    def test_merge_clears_caches_and_latches(self):
        runner = make_runner("count-min", snapshot_mode="incremental")
        runner.ingest(range(100))
        runner.merged_snapshot()
        assert runner._node_cache
        runner.merge()
        assert not runner._node_cache
        assert runner._leaf_cache == [None] * SHARDS
        with pytest.raises(RuntimeError, match="already merged"):
            runner.merged_snapshot()

    def test_failure_latch_clears_caches(self):
        runner = make_runner("count-min", snapshot_mode="incremental")
        runner.ingest(range(100))
        runner.merged_snapshot()
        assert runner._node_cache
        runner._fail(RuntimeError("executor worker died"))
        assert not runner._node_cache
        assert runner._leaf_cache == [None] * SHARDS
        with pytest.raises(RuntimeError):
            runner.merged_snapshot()

    def test_partial_writes_after_budget_raise_stay_identical(self):
        """A serial-mode budget raise does not latch the runner; the
        derived epoch keys pick up the partially-written shards, so
        the memoized snapshot still matches a full rebuild."""
        runners = []
        for mode in ("incremental", "full"):
            runner = make_runner(
                "exact",
                snapshot_mode=mode,
                budget=WriteBudget(40, "raise"),
            )
            runner.ingest(np.arange(8, dtype=np.int64))
            runner.merged_snapshot()
            with pytest.raises(WriteBudgetExceededError):
                # Columnar ingest: the raise happens mid-chunk inside
                # a shard, leaving no stale routed buffers behind.
                runner.ingest(np.arange(400, dtype=np.int64) % N)
            runners.append(runner)
        assert_snapshots_identical(runners)


# ----------------------------------------------------------------------
# Serving plane: lazy reports, stats, in-band errors
# ----------------------------------------------------------------------
class TestServingPlane:
    def test_snapshot_report_is_lazy_and_cached(self):
        engine = LiveEngine(
            "count-min", n=N, m=4096, shards=2, snapshot_every=512
        )
        engine.append(range(700))
        snapshot = engine.snapshot()
        assert "report" not in snapshot.__dict__  # not built yet
        report = snapshot.report
        assert snapshot.report is report  # cached on first access
        assert report.state_changes == snapshot.sketch.report().state_changes

    def test_collectors_see_lazy_reports(self):
        """The state-changes collector still samples every cadence
        snapshot after reports went lazy."""
        engine = LiveEngine(
            "count-min", n=N, m=4096, shards=2, snapshot_every=256
        )
        collector = engine.subscribe(StateChangesCollector())
        engine.append(range(1000))
        engine.finish()
        indexes = [index for index, _ in collector.series]
        assert indexes == [256, 512, 768, 1000]
        values = [value for _, value in collector.series]
        assert values == sorted(values)  # audit counters are monotone

    def test_engine_stats_fields(self):
        engine = LiveEngine(
            "count-min", n=N, m=4096, shards=4, snapshot_every=256
        )
        engine.append(range(1000))
        engine.finish()
        engine.snapshot(refresh=True)
        stats = engine.stats()
        assert stats["snapshot_mode"] == "incremental"
        assert stats["refresh_count"] == stats["snapshots_taken"] > 0
        assert stats["refresh_mean_ms"] > 0.0
        assert stats["refresh_max_ms"] >= stats["refresh_last_ms"] >= 0.0
        assert stats["append_calls"] == 1
        assert stats["append_lock_held_ms"] > 0.0
        assert stats["snapshot_leaves_cloned"] >= 4
        assert stats["snapshot_full_rebuilds"] == 0
        # A head-aligned re-snapshot is served purely from the caches.
        before = engine.stats()
        engine.snapshot(refresh=True)
        after = engine.stats()
        assert after["snapshot_leaves_cloned"] == before["snapshot_leaves_cloned"]
        assert after["snapshot_nodes_built"] == before["snapshot_nodes_built"]

    def test_server_stats_verb_reports_refresh_metrics(self):
        engine = LiveEngine(
            "count-min", n=N, m=4096, shards=2, snapshot_every=256
        )
        session = LiveSession(engine)
        response, alive = session.handle(
            {"op": "append", "items": list(range(600))}
        )
        assert alive and response["ok"]
        response, alive = session.handle({"op": "stats"})
        assert alive and response["ok"]
        for field in (
            "refresh_count",
            "refresh_mean_ms",
            "refresh_max_ms",
            "append_lock_wait_ms",
            "snapshot_nodes_built",
            "snapshot_nodes_reused",
            "snapshot_mode",
        ):
            assert field in response
        assert response["refresh_count"] >= 2  # two cadence boundaries

    def test_runtime_error_is_answered_in_band(self):
        """A lifecycle violation (snapshotting a merged runner) comes
        back as ``{"ok": false}`` and keeps the session serving."""
        engine = LiveEngine("count-min", n=N, m=4096, shards=2)
        engine.append(range(100))
        engine._runner.merge()  # poison the snapshot plane
        session = LiveSession(engine)
        response, alive = session.handle({"op": "snapshot"})
        assert alive  # the connection survives
        assert response["ok"] is False
        assert "already merged" in response["error"]
        # The session keeps answering verbs that don't need snapshots.
        response, alive = session.handle({"op": "stats"})
        assert alive and response["ok"]

    def test_full_mode_engine_matches_incremental(self):
        kwargs = dict(n=N, m=8192, shards=4, snapshot_every=512)
        incremental = LiveEngine("misra-gries", **kwargs)
        full = LiveEngine("misra-gries", snapshot_mode="full", **kwargs)
        data = [i % N for i in range(3000)]
        incremental.append(data)
        full.append(data)
        a = incremental.finish()
        b = full.finish()
        assert a.sketch.to_state() == b.sketch.to_state()
        assert a.report == b.report
        assert (
            incremental.query(PointQuery(3)).answer
            == full.query(PointQuery(3)).answer
        )
