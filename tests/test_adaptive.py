"""Tests for stream-length-oblivious operation (doubling epochs)."""

import math

import pytest

from repro.core.adaptive import AdaptiveFullSampleAndHold
from repro.streams import FrequencyVector, planted_heavy_hitter_stream, zipf_stream


class TestEpochs:
    def test_epoch_count_logarithmic(self):
        algo = AdaptiveFullSampleAndHold(
            n=256, p=2, epsilon=0.5, initial_m=256, seed=0, repetitions=1
        )
        m = 256 * 15  # spans epochs 256 + 512 + 1024 + 2048 (+ part of 4096)
        algo.process_stream(zipf_stream(256, m, seed=0))
        assert algo.num_epochs == math.ceil(math.log2(m / 256))

    def test_short_stream_single_epoch(self):
        algo = AdaptiveFullSampleAndHold(
            n=64, p=2, epsilon=0.5, initial_m=1000, seed=1, repetitions=1
        )
        algo.process_stream([5] * 100)
        assert algo.num_epochs == 1

    def test_invalid_initial_m(self):
        with pytest.raises(ValueError):
            AdaptiveFullSampleAndHold(n=8, p=2, epsilon=0.5, initial_m=0)


class TestEstimation:
    def test_tracks_heavy_hitter_across_epochs(self):
        n = 512
        m = 20000
        stream = planted_heavy_hitter_stream(n, m, {9: 6000}, seed=2)
        algo = AdaptiveFullSampleAndHold(
            n=n, p=2, epsilon=0.5, initial_m=1024, seed=2, repetitions=1
        )
        algo.process_stream(stream)
        assert algo.num_epochs > 1
        estimate = algo.estimate(9)
        assert 0.4 * 6000 <= estimate <= 2.0 * 6000

    def test_estimates_one_sided_with_exact_counters(self):
        n, m = 256, 8000
        stream = zipf_stream(n, m, skew=1.3, seed=3)
        f = FrequencyVector.from_stream(stream)
        algo = AdaptiveFullSampleAndHold(
            n=n, p=2, epsilon=0.5, initial_m=512, seed=3,
            repetitions=1, use_morris=False,
        )
        algo.process_stream(stream)
        for item, est in algo.estimates().items():
            # Per-epoch one-sidedness survives the epoch sum (up to the
            # level-rescaling noise of subsampled levels).
            assert est <= 2.0 * f[item] + 4

    def test_unknown_item_zero(self):
        algo = AdaptiveFullSampleAndHold(
            n=32, p=2, epsilon=0.5, initial_m=64, seed=4, repetitions=1
        )
        algo.process_stream([1] * 10)
        assert algo.estimate(31) == 0.0


class TestStateChanges:
    def test_sublinear_overall(self):
        n, m = 1024, 60000
        stream = zipf_stream(n, m, skew=1.2, seed=5)
        algo = AdaptiveFullSampleAndHold(
            n=n, p=2, epsilon=1.0, initial_m=2048, seed=5, repetitions=1
        )
        algo.process_stream(stream)
        assert algo.state_changes < 0.8 * m
