"""Tests for the live serving engine and its collectors.

The load-bearing contract: a :class:`~repro.serve.LiveEngine` snapshot
taken mid-stream answers **bit-identically** to a fresh batch run over
the same stream prefix — for every registered family, under both coin
protocols where the family has one, across accounting backends and
enforced budgets.  Everything else (cadence alignment, staleness
metadata, collector series) builds on that cut-point exactness.
"""

from __future__ import annotations

import json

import pytest

from repro import registry
from repro.query import (
    AllEstimates,
    Distinct,
    Entropy,
    HeavyHitters,
    Moment,
    PointQuery,
    QueryKind,
)
from repro.runtime.sharded import ShardedRunner
from repro.serve import (
    AuditCollector,
    LiveEngine,
    QueryCollector,
    StateChangesCollector,
)
from repro.state import WriteBudget
from repro.state.algorithm import Sketch
from repro.streams import zipf_stream

N, M = 512, 1536
CADENCE = 1024  # the mid-stream cut every consistency test compares at


def _protocols(name: str) -> tuple[str | None, ...]:
    if name in registry.COIN_PROTOCOL_AWARE:
        return ("v1", "v2")
    return (None,)


def _probe_queries(sketch: Sketch) -> list:
    """One query per declared capability (a few points for POINT)."""
    queries = []
    supports = sketch.supports
    if QueryKind.POINT in supports:
        queries.extend(PointQuery(item) for item in (0, 1, 7, 40))
    if QueryKind.ALL_ESTIMATES in supports:
        queries.append(AllEstimates())
    if QueryKind.HEAVY_HITTERS in supports:
        queries.append(HeavyHitters())
    if QueryKind.MOMENT in supports:
        queries.append(Moment())
    if QueryKind.ENTROPY in supports:
        queries.append(Entropy())
    if QueryKind.DISTINCT in supports:
        queries.append(Distinct())
    return queries


def fingerprint(sketch: Sketch) -> str:
    """Everything observable about a sketch, as one comparable string.

    Serializable families compare their full serialized state (payload
    + audit + RNG position); the rest compare their audit and the
    answer to every query kind they declare.
    """
    if type(sketch)._config_state is not Sketch._config_state:
        return json.dumps(sketch.to_state(), sort_keys=True)
    report = sketch.report()
    parts = [
        sketch.items_processed,
        report.state_changes,
        report.total_writes,
        report.peak_words,
        report.current_words,
    ]
    parts.extend(repr(sketch.query(q)) for q in _probe_queries(sketch))
    return repr(parts)


def batch_prefix(
    name: str,
    stream,
    cut: int,
    *,
    shards: int = 1,
    coin_protocol: str | None = None,
    tracking: str = "aggregate",
    budget=None,
) -> Sketch:
    """A fresh batch run over ``stream[:cut]``, merged."""
    runner = ShardedRunner.from_registry(
        name,
        shards,
        n=N,
        m=M,
        epsilon=0.4,
        seed=9,
        tracking=tracking,
        budget=budget,
        coin_protocol=coin_protocol,
    )
    runner.ingest(stream[:cut])
    return runner.merge()


class TestSnapshotVsBatchConsistency:
    """Satellite 3: mid-stream snapshots == fresh batch runs, exactly."""

    @pytest.mark.parametrize("name", registry.names())
    def test_all_families_both_protocols(self, name):
        stream = zipf_stream(N, M, skew=1.1, seed=21)
        for protocol in _protocols(name):
            live = LiveEngine(
                name,
                n=N,
                m=M,
                epsilon=0.4,
                seed=9,
                snapshot_every=CADENCE,
                coin_protocol=protocol,
            )
            # Odd-sized appends: cadence boundaries must not care.
            live.append(stream[:700])
            live.append(stream[700:CADENCE + 301])
            snapshot = live.snapshot()
            assert snapshot.update_index == CADENCE
            batch = batch_prefix(
                name, stream, CADENCE, coin_protocol=protocol
            )
            assert fingerprint(snapshot.sketch) == fingerprint(batch), (
                f"{name} ({protocol or 'default'}) snapshot diverged "
                f"from the batch run over the same prefix"
            )
            # The live run keeps going past the cut without issue.
            live.append(stream[CADENCE + 301:])
            assert live.head == M

    @pytest.mark.parametrize("name", ["count-min", "count-min-morris",
                                      "misra-gries", "kmv"])
    def test_sharded_live_engine_matches_sharded_batch(self, name):
        stream = zipf_stream(N, M, skew=1.1, seed=22)
        for protocol in _protocols(name):
            live = LiveEngine(
                name,
                n=N,
                m=M,
                epsilon=0.4,
                seed=9,
                shards=4,
                snapshot_every=CADENCE,
                coin_protocol=protocol,
            )
            live.append(stream[:CADENCE + 99])
            snapshot = live.snapshot()
            batch = batch_prefix(
                name, stream, CADENCE, shards=4, coin_protocol=protocol
            )
            assert fingerprint(snapshot.sketch) == fingerprint(batch)

    @pytest.mark.parametrize("tracking", ["aggregate", "trace"])
    def test_backends_round_trip(self, tracking):
        stream = zipf_stream(N, M, skew=1.1, seed=23)
        for name in ("count-min", "exact", "sample-and-hold"):
            live = LiveEngine(
                name,
                n=N,
                m=M,
                epsilon=0.4,
                seed=9,
                snapshot_every=CADENCE,
                tracking=tracking,
            )
            live.append(stream[:CADENCE + 50])
            batch = batch_prefix(
                name, stream, CADENCE, tracking=tracking
            )
            assert fingerprint(live.snapshot().sketch) == fingerprint(
                batch
            )

    @pytest.mark.parametrize("policy", ["freeze", "degrade"])
    def test_budget_round_trip(self, policy):
        stream = zipf_stream(N, M, skew=1.1, seed=24)
        for name in ("count-min", "exact"):
            budget = WriteBudget(300, policy)
            live = LiveEngine(
                name,
                n=N,
                m=M,
                epsilon=0.4,
                seed=9,
                snapshot_every=CADENCE,
                budget=budget,
            )
            live.append(stream[:CADENCE + 50])
            snapshot = live.snapshot()
            batch = batch_prefix(
                name, stream, CADENCE, budget=WriteBudget(300, policy)
            )
            assert fingerprint(snapshot.sketch) == fingerprint(batch)
            if policy == "freeze":
                # The cap bit: both runs froze at the same count.
                assert snapshot.report.state_changes <= 300


class TestLiveEngineSemantics:
    def test_cadence_snapshots_land_on_exact_boundaries(self):
        engine = LiveEngine("count-min", n=N, seed=1, snapshot_every=200)
        stream = zipf_stream(N, 1000, seed=2)
        # Appends sized to straddle boundaries arbitrarily.
        engine.append(stream[:350])
        assert engine.snapshot_index == 200
        engine.append(stream[350:401])
        assert engine.snapshot_index == 400
        engine.append(stream[401:])
        assert engine.snapshot_index == 1000
        assert engine.head == 1000

    def test_staleness_metadata(self):
        engine = LiveEngine("count-min", n=N, seed=1, snapshot_every=500)
        stream = zipf_stream(N, 800, seed=3)
        engine.append(stream)
        answer = engine.query(PointQuery(0))
        assert answer.snapshot_index == 500
        assert answer.head == 800
        assert answer.updates_behind == 300
        exact = engine.query(PointQuery(0), refresh=True)
        assert exact.updates_behind == 0
        assert exact.snapshot_index == 800

    def test_max_staleness_bounds_the_lag(self):
        engine = LiveEngine("count-min", n=N, seed=1, snapshot_every=500)
        stream = zipf_stream(N, 900, seed=4)
        engine.append(stream)
        assert engine.updates_behind == 400
        bounded = engine.query(PointQuery(0), max_staleness=100)
        assert bounded.updates_behind == 0  # forced a head refresh
        # A follow-up within the bound reuses the fresh snapshot.
        again = engine.query(PointQuery(0), max_staleness=100)
        assert again.snapshot_index == bounded.snapshot_index

    def test_max_staleness_rejects_negative(self):
        engine = LiveEngine("count-min", n=N, seed=1)
        with pytest.raises(ValueError, match="max_staleness"):
            engine.query(PointQuery(0), max_staleness=-1)

    def test_query_before_any_append(self):
        engine = LiveEngine("count-min", n=N, seed=1)
        answer = engine.query(PointQuery(3))
        assert answer.answer.value == 0.0
        assert answer.updates_behind == 0

    def test_unknown_sketch_rejected(self):
        with pytest.raises(KeyError):
            LiveEngine("no-such-sketch")

    def test_non_mergeable_sharding_rejected(self):
        with pytest.raises(ValueError, match="not mergeable"):
            LiveEngine("reservoir", shards=2)

    def test_bad_cadence_rejected(self):
        with pytest.raises(ValueError, match="snapshot_every"):
            LiveEngine("count-min", snapshot_every=0)

    def test_budget_with_trace_tracking_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            LiveEngine("count-min", tracking="trace", budget=100)

    def test_engine_live_shares_configuration(self):
        from repro.api import Engine

        engine = Engine("count-min", n=N, epsilon=0.2, seed=5, shards=2)
        live = engine.live(snapshot_every=256)
        assert live.sketch_name == "count-min"
        assert live.shards == 2
        assert live.snapshot_every == 256
        stream = zipf_stream(N, 600, seed=6)
        live.append(stream)
        report = engine.run(stream[:512], queries=())
        assert (
            live.snapshot().report.state_changes
            == report.audit.state_changes
        )

    def test_summary_mentions_head_and_cadence(self):
        engine = LiveEngine("count-min", n=N, seed=1, snapshot_every=100)
        engine.append(zipf_stream(N, 250, seed=7))
        text = engine.summary()
        assert "head=250" in text
        assert "cadence=100" in text


class TestCollectors:
    def test_state_changes_series_is_monotone_on_cadence(self):
        engine = LiveEngine("count-min", n=N, seed=1, snapshot_every=250)
        collector = engine.subscribe(StateChangesCollector())
        engine.append(zipf_stream(N, 1000, seed=8))
        assert collector.indexes() == [250, 500, 750, 1000]
        values = collector.values()
        assert values == sorted(values)
        assert all(value > 0 for value in values)

    def test_series_is_append_size_invariant(self):
        stream = zipf_stream(N, 1200, seed=9)

        def run(sizes):
            engine = LiveEngine(
                "count-min", n=N, seed=1, snapshot_every=300
            )
            collector = engine.subscribe(StateChangesCollector())
            position = 0
            for size in sizes:
                engine.append(stream[position:position + size])
                position += size
            engine.append(stream[position:])
            engine.finish()
            return collector.series

        assert run([1200]) == run([7, 300, 555, 100, 238])

    def test_query_collector_samples_answers(self):
        engine = LiveEngine("exact", n=N, seed=1, snapshot_every=200)
        collector = engine.subscribe_query(Distinct())
        assert isinstance(collector, QueryCollector)
        engine.append(zipf_stream(N, 600, seed=10))
        assert collector.indexes() == [200, 400, 600]
        assert collector.scalar_values() == sorted(
            collector.scalar_values()
        )

    def test_finish_samples_partial_tail_once(self):
        engine = LiveEngine("count-min", n=N, seed=1, snapshot_every=400)
        collector = engine.subscribe(StateChangesCollector())
        engine.append(zipf_stream(N, 500, seed=11))
        engine.finish()
        assert collector.indexes() == [400, 500]
        # A second finish at the same head must not duplicate samples.
        engine.finish()
        assert collector.indexes() == [400, 500]

    def test_audit_collector_reports_full_audit(self):
        engine = LiveEngine("count-min", n=N, seed=1, snapshot_every=300)
        collector = engine.subscribe(AuditCollector())
        engine.append(zipf_stream(N, 300, seed=12))
        ((index, report),) = collector.series
        assert index == 300
        assert report.stream_length == 300
        assert report.peak_words > 0

    def test_forced_snapshots_do_not_pollute_series(self):
        engine = LiveEngine("count-min", n=N, seed=1, snapshot_every=400)
        collector = engine.subscribe(StateChangesCollector())
        engine.append(zipf_stream(N, 350, seed=13))
        engine.query(PointQuery(0), refresh=True)  # off-cadence cut
        engine.snapshot(refresh=True)
        assert collector.series == []  # cadence never reached

    def test_collector_observe_is_abstract(self):
        from repro.serve import Collector

        class Broken(Collector):
            pass

        engine = LiveEngine("count-min", n=N, seed=1, snapshot_every=10)
        engine.subscribe(Broken())
        with pytest.raises(NotImplementedError):
            engine.append(list(range(10)))


class TestLoadGenerator:
    def test_reports_rates_and_staleness(self):
        from repro.serve import LiveEngine, generate_load

        engine = LiveEngine(
            "count-min", n=N, epsilon=0.2, seed=1, snapshot_every=512
        )
        report = generate_load(
            engine,
            zipf_stream(N, 4096, seed=14),
            append_size=256,
            queries_per_append=4,
        )
        assert report.items == 4096
        assert report.appends == 16
        assert report.queries == 64
        assert report.items_per_s > 0
        assert report.queries_per_s > 0
        assert report.max_staleness < 512 + 256
        assert "queries=64" in report.summary()

    def test_query_mix_validated(self):
        from repro.serve import LiveEngine, generate_load

        engine = LiveEngine("count-min", n=N, seed=1)
        with pytest.raises(ValueError, match="unknown query kind"):
            generate_load(
                engine, [1, 2, 3], query_mix={"bogus": 1.0}
            )

    def test_default_mix_follows_capabilities(self):
        from repro.serve import LiveEngine, default_query_mix

        mix = default_query_mix(LiveEngine("kmv", n=N, seed=1))
        assert mix == {"distinct": 1.0}
        mix = default_query_mix(LiveEngine("count-min", n=N, seed=1))
        assert mix == {"point": 1.0}

    def test_max_staleness_forwarded(self):
        from repro.serve import LiveEngine, generate_load

        engine = LiveEngine(
            "count-min", n=N, seed=1, snapshot_every=10_000
        )
        report = generate_load(
            engine,
            zipf_stream(N, 2000, seed=15),
            append_size=500,
            queries_per_append=2,
            max_staleness=0,
        )
        assert report.max_staleness == 0

    def test_zero_queries_is_pure_ingest(self):
        from repro.serve import LiveEngine, generate_load

        engine = LiveEngine("count-min", n=N, seed=1)
        report = generate_load(
            engine,
            zipf_stream(N, 1000, seed=16),
            append_size=100,
            queries_per_append=0,
        )
        assert report.queries == 0
        assert report.queries_per_s == 0.0
