"""Tests for Algorithm 2 (FullSampleAndHold)."""

import pytest

from repro.core import FullSampleAndHold
from repro.streams import (
    FrequencyVector,
    planted_heavy_hitter_stream,
    zipf_stream,
)


class TestConstruction:
    def test_even_repetitions_rounded_up_to_odd(self):
        algo = FullSampleAndHold(n=100, m=100, p=2, epsilon=0.5, repetitions=2)
        assert algo.repetitions == 3

    def test_default_levels_scale_with_m(self):
        small = FullSampleAndHold(n=100, m=100, p=2, epsilon=0.5)
        large = FullSampleAndHold(n=100, m=10000, p=2, epsilon=0.5)
        assert large.num_levels > small.num_levels

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            FullSampleAndHold(n=10, m=10, p=2, epsilon=0.5, repetitions=0)
        with pytest.raises(ValueError):
            FullSampleAndHold(n=10, m=10, p=2, epsilon=0.5, level_rule="avg")


class TestEstimation:
    def test_finds_planted_heavy_hitter(self):
        n, m = 1000, 15000
        stream = planted_heavy_hitter_stream(n, m, {13: 4000}, seed=0)
        algo = FullSampleAndHold(n=n, m=m, p=2, epsilon=0.5, seed=0)
        algo.process_stream(stream)
        estimate = algo.estimate(13)
        assert estimate >= 0.4 * 4000
        assert estimate <= 2.5 * 4000

    def test_light_items_do_not_dominate(self):
        n, m = 1000, 15000
        stream = planted_heavy_hitter_stream(n, m, {13: 4000}, seed=1)
        algo = FullSampleAndHold(n=n, m=m, p=2, epsilon=0.5, seed=1)
        algo.process_stream(stream)
        estimates = algo.estimates()
        heavy = estimates.get(13, 0.0)
        others = [v for k, v in estimates.items() if k != 13]
        assert heavy > 0
        if others:
            assert heavy >= max(others)

    def test_min_length_rule_runs(self):
        n, m = 500, 8000
        stream = planted_heavy_hitter_stream(n, m, {7: 2500}, seed=2)
        algo = FullSampleAndHold(
            n=n, m=m, p=2, epsilon=0.5, seed=2, level_rule="min-length"
        )
        algo.process_stream(stream)
        assert algo.estimate(7) >= 0.3 * 2500

    def test_unknown_item_zero(self):
        algo = FullSampleAndHold(n=100, m=100, p=2, epsilon=0.5, seed=3)
        algo.process_stream([1] * 50)
        assert algo.estimate(77) == 0.0


class TestLevels:
    def test_level_lengths_halve(self):
        n, m = 200, 20000
        algo = FullSampleAndHold(n=n, m=m, p=2, epsilon=0.5, seed=4)
        algo.process_stream(zipf_stream(n, m, seed=4))
        m1 = algo.level_length(1)
        m3 = algo.level_length(3)
        assert m1 == pytest.approx(m, rel=0.35)
        assert m3 == pytest.approx(m / 4, rel=0.6)

    def test_level_length_bounds_checked(self):
        algo = FullSampleAndHold(n=10, m=10, p=2, epsilon=0.5)
        with pytest.raises(ValueError):
            algo.level_length(0)
        with pytest.raises(ValueError):
            algo.level_length(algo.num_levels + 1)


class TestStateChanges:
    def test_sublinear_state_changes_on_long_stream(self):
        n, m = 1024, 50000
        stream = zipf_stream(n, m, skew=1.2, seed=5)
        algo = FullSampleAndHold(n=n, m=m, p=2, epsilon=1.0, seed=5)
        algo.process_stream(stream)
        assert algo.state_changes < 0.8 * m

    def test_one_sidedness_after_rescaling(self):
        """Rescaled estimates stay within a constant factor above truth
        (subsampled counts concentrate; Morris noise adds slack)."""
        n, m = 500, 12000
        stream = planted_heavy_hitter_stream(n, m, {3: 3000, 4: 1500}, seed=6)
        f = FrequencyVector.from_stream(stream)
        algo = FullSampleAndHold(n=n, m=m, p=2, epsilon=0.5, seed=6)
        algo.process_stream(stream)
        for item, fhat in algo.estimates().items():
            if f[item] >= 100:
                assert fhat <= 4.0 * f[item]
