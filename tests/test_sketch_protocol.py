"""Mergeable sketch protocol: merge equivalence, audits, serialization.

The acceptance property under test: for every mergeable sketch, merging
K hash-partitioned shards yields estimates within the sketch's error
bound of the single-instance run on the same stream, and the merged
``StateChangeReport`` equals the elementwise sum of the shard reports.
"""

from __future__ import annotations

import json
import random
from collections import Counter

import pytest

from repro import registry
from repro.baselines import CountMin, MisraGries
from repro.core import FullSampleAndHold, MorrisCounter, SampleAndHold
from repro.core.counters import MedianMorrisCounter
from repro.core.sample_and_hold import SampleAndHoldParams
from repro.state import (
    NotMergeableError,
    NotSerializableError,
    StateChangeReport,
    StateTracker,
)
from repro.streams import FrequencyVector, zipf_stream

N = 1024
#: Per-family (stream length, epsilon) sized so every family's sketch
#: stays small enough for fast property tests.
CASES = {
    "ams": (2048, 1.0),
    "count-min": (8192, 0.1),
    "count-min-morris": (4096, 0.3),
    "count-sketch": (4096, 0.5),
    "exact": (8192, 0.5),
    "kmv": (8192, 0.2),
    "misra-gries": (8192, 0.1),
    "space-saving": (8192, 0.1),
    "pstable-fp": (2048, 0.5),
}
MERGEABLE = sorted(registry.mergeable_names())
#: Families whose merge is lossless (linear sketches + KMV + exact).
EXACT_MERGE = ["ams", "count-min", "count-sketch", "exact", "kmv"]


def make(name, seed):
    m, epsilon = CASES[name]
    return registry.create(name, n=N, m=m, epsilon=epsilon, seed=seed)


def case_stream(name, seed):
    m, _ = CASES[name]
    return zipf_stream(N, m, skew=1.2, seed=seed)


def partitioned_shards(name, stream, num_shards, seed):
    """Hash-partition ``stream`` into identically-seeded shards."""
    shards = [make(name, seed) for _ in range(num_shards)]
    for shard_index in range(num_shards):
        shards[shard_index].process_many(
            item for item in stream if item % num_shards == shard_index
        )
    return shards


def merge_all(shards):
    merged = shards[0]
    for shard in shards[1:]:
        merged.merge(shard)
    return merged


def sum_reports(reports) -> StateChangeReport:
    cells: Counter[str] = Counter()
    for report in reports:
        cells.update(report.cell_writes)
    return StateChangeReport(
        stream_length=sum(r.stream_length for r in reports),
        state_changes=sum(r.state_changes for r in reports),
        total_writes=sum(r.total_writes for r in reports),
        total_write_attempts=sum(r.total_write_attempts for r in reports),
        peak_words=sum(r.peak_words for r in reports),
        current_words=sum(r.current_words for r in reports),
        cell_writes=dict(cells),
    )


def query(sketch, item):
    """Point/aggregate query that works across the registry families."""
    if hasattr(sketch, "estimate"):
        return sketch.estimate(item)
    if hasattr(sketch, "f2_estimate"):
        return sketch.f2_estimate()
    if hasattr(sketch, "fp_estimate"):
        return sketch.fp_estimate()
    return sketch.f0_estimate()


class TestMergeEquivalence:
    @pytest.mark.parametrize("name", EXACT_MERGE)
    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_lossless_families_match_single_instance(self, name, num_shards):
        stream = case_stream(name, seed=3)
        single = make(name, seed=5)
        single.process_many(stream)
        merged = merge_all(
            partitioned_shards(name, stream, num_shards, seed=5)
        )
        for item in range(64):
            assert query(merged, item) == query(single, item)

    @pytest.mark.parametrize("name", ["misra-gries", "space-saving"])
    def test_summary_families_within_additive_bound(self, name):
        stream = case_stream(name, seed=4)
        truth = FrequencyVector.from_stream(stream)
        merged = merge_all(partitioned_shards(name, stream, 4, seed=6))
        # The shards' additive bounds sum to the single-instance bound
        # m/k, since the shard stream lengths sum to m.
        bound = len(stream) / merged.k + 1e-9
        for item, frequency in sorted(
            truth.items(), key=lambda kv: -kv[1]
        )[:10]:
            assert abs(merged.estimate(item) - frequency) <= bound

    @pytest.mark.parametrize("name", ["count-min-morris", "pstable-fp"])
    def test_morris_backed_families_stay_close(self, name):
        stream = case_stream(name, seed=8)
        single = make(name, seed=9)
        single.process_many(stream)
        merged = merge_all(partitioned_shards(name, stream, 4, seed=9))
        if name == "pstable-fp":
            single_value = single.fp_estimate()
            merged_value = merged.fp_estimate()
        else:
            top = max(
                FrequencyVector.from_stream(stream).items(),
                key=lambda kv: kv[1],
            )[0]
            single_value = single.estimate(top)
            merged_value = merged.estimate(top)
        assert merged_value == pytest.approx(single_value, rel=0.5)

    @pytest.mark.parametrize("name", MERGEABLE)
    def test_merged_report_is_sum_of_shard_reports(self, name):
        stream = case_stream(name, seed=10)[:2048]
        shards = partitioned_shards(name, stream, 4, seed=11)
        expected = sum_reports([shard.report() for shard in shards])
        merged = merge_all(shards)
        assert merged.report() == expected
        assert merged.items_processed == len(stream)


class TestMergeErrors:
    def test_sample_and_hold_family_raises_not_mergeable(self):
        params = SampleAndHoldParams.from_problem(n=256, m=1024, p=2,
                                                  epsilon=0.5)
        first = SampleAndHold(params, seed=0)
        second = SampleAndHold(params, seed=1)
        with pytest.raises(NotMergeableError):
            first.merge(second)
        full_first = FullSampleAndHold(n=256, m=1024, p=2, epsilon=0.5,
                                       seed=0, repetitions=1)
        full_second = FullSampleAndHold(n=256, m=1024, p=2, epsilon=0.5,
                                        seed=1, repetitions=1)
        with pytest.raises(NotMergeableError):
            full_first.merge(full_second)

    def test_type_mismatch_raises_not_mergeable(self):
        with pytest.raises(NotMergeableError):
            CountMin(16, 2, seed=0).merge(MisraGries(k=4))

    def test_incompatible_config_raises_value_error(self):
        with pytest.raises(ValueError):
            CountMin(16, 2, seed=0).merge(CountMin(32, 2, seed=0))
        with pytest.raises(ValueError):
            CountMin(16, 2, seed=0).merge(CountMin(16, 2, seed=1))

    def test_self_merge_rejected(self):
        sketch = CountMin(16, 2, seed=0)
        with pytest.raises(ValueError):
            sketch.merge(sketch)

    def test_shared_tracker_rejected(self):
        tracker = StateTracker()
        first = CountMin(16, 2, seed=0, tracker=tracker)
        second = CountMin(16, 2, seed=0, tracker=tracker)
        with pytest.raises(ValueError):
            first.merge(second)


class TestProcessMany:
    @pytest.mark.parametrize("name", ["count-min", "misra-gries", "kmv"])
    def test_matches_single_item_ingestion(self, name):
        stream = case_stream(name, seed=12)[:4096]
        one_by_one = make(name, seed=13)
        for item in stream:
            one_by_one.process(item)
        batched = make(name, seed=13)
        consumed = batched.process_many(stream)
        assert consumed == len(stream)
        assert batched.items_processed == one_by_one.items_processed
        assert batched.report() == one_by_one.report()
        for item in range(32):
            assert query(batched, item) == query(one_by_one, item)


class TestSerialization:
    @pytest.mark.parametrize("name", MERGEABLE)
    def test_json_round_trip_preserves_estimates_and_audit(self, name):
        stream = case_stream(name, seed=14)[:2048]
        sketch = make(name, seed=15)
        sketch.process_many(stream)
        state = json.loads(json.dumps(sketch.to_state()))
        restored = registry.sketch_class(state["algorithm"]).from_state(state)
        assert restored.report() == sketch.report()
        assert restored.items_processed == sketch.items_processed
        for item in range(32):
            assert query(restored, item) == query(sketch, item)

    def test_restored_sketch_resumes_ingestion(self):
        stream = zipf_stream(N, 4096, skew=1.2, seed=16)
        half = len(stream) // 2
        continuous = CountMin(64, 3, seed=17)
        continuous.process_many(stream)
        checkpointed = CountMin(64, 3, seed=17)
        checkpointed.process_many(stream[:half])
        restored = CountMin.from_state(checkpointed.to_state())
        restored.process_many(stream[half:])
        assert restored.report() == continuous.report()
        for item in range(64):
            assert restored.estimate(item) == continuous.estimate(item)

    def test_state_names_algorithm_and_mismatch_rejected(self):
        sketch = CountMin(16, 2, seed=0)
        state = sketch.to_state()
        assert state["algorithm"] == "CountMin"
        with pytest.raises(ValueError):
            MisraGries.from_state(state)

    def test_unserializable_family_raises(self):
        algo = FullSampleAndHold(n=64, m=256, p=2, epsilon=0.5, seed=0,
                                 repetitions=1)
        with pytest.raises(NotSerializableError):
            algo.to_state()


class TestCounterMerges:
    def test_morris_merge_is_approximately_additive(self):
        rng = random.Random(0)
        totals = []
        for _ in range(30):
            tracker = StateTracker()
            first = MorrisCounter(tracker, a=0.05, rng=rng)
            second = MorrisCounter(tracker, a=0.05, rng=rng)
            for _ in range(2000):
                first.add()
            for _ in range(3000):
                second.add()
            first.merge_from(second)
            totals.append(first.estimate)
        mean = sum(totals) / len(totals)
        assert mean == pytest.approx(5000, rel=0.15)

    def test_morris_merge_parameter_mismatch(self):
        tracker = StateTracker()
        rng = random.Random(0)
        first = MorrisCounter(tracker, a=0.05, rng=rng)
        second = MorrisCounter(tracker, a=0.1, rng=rng)
        with pytest.raises(ValueError):
            first.merge_from(second)

    def test_median_morris_merge(self):
        tracker = StateTracker()
        rng = random.Random(1)
        first = MedianMorrisCounter(tracker, epsilon=0.3, delta=0.1, rng=rng)
        second = MedianMorrisCounter(tracker, epsilon=0.3, delta=0.1, rng=rng)
        for _ in range(1000):
            first.add()
            second.add()
        first.merge_from(second)
        assert first.estimate == pytest.approx(2000, rel=0.5)
        restored = MedianMorrisCounter(
            tracker, epsilon=0.3, delta=0.1, rng=rng
        )
        restored.load_levels(first.levels)
        assert restored.estimate == first.estimate


class TestExternalTrackerRestore:
    def test_dict_backed_sketch_evicts_after_restore(self):
        # Regression: from_state(tracker=external) bypassed the audit
        # overwrite, leaving restored dict entries unaccounted so the
        # first eviction's free() underflowed the tracker.
        from repro.state.tracker import StateTracker

        sketch = registry.create("misra-gries", epsilon=1.0)
        sketch.process_many([1, 2, 3, 4])
        restored = type(sketch).from_state(
            sketch.to_state(), tracker=StateTracker()
        )
        for item in range(10, 40):  # distinct items force evictions
            restored.process(item)
        assert restored.tracker.current_words >= 0


class TestSpaceSavingMerge:
    def test_evicted_heavy_item_keeps_its_mass(self):
        # Regression: an item evicted from one full shard used to
        # contribute zero to the merge, dropping its mass and breaking
        # the overestimate invariant.  With the minimum-floor rule its
        # merged estimate stays an overestimate of the true count.
        from repro.baselines import SpaceSaving

        a = SpaceSaving(k=2)
        a.process_many([0] * 5)
        b = SpaceSaving(k=2)
        b.process_many([0] * 4 + [1] * 10 + [2] * 10)  # 0 evicted from b
        a.merge(b)
        assert a.estimate(0) >= 9  # true combined count

    def test_partial_summaries_merge_without_floor(self):
        from repro.baselines import SpaceSaving

        a = SpaceSaving(k=4)
        a.process_many([1, 1, 2])
        b = SpaceSaving(k=4)
        b.process_many([2, 3])
        a.merge(b)
        # Neither summary was full: plain addition, exact counts.
        assert a.estimate(1) == 2
        assert a.estimate(2) == 2
        assert a.estimate(3) == 1
