"""Tests for the classical baselines (Table 1 competitors)."""

import random

import pytest

from repro.baselines import (
    AMSSketch,
    CountMin,
    CountSketch,
    ExactFrequencyCounter,
    MisraGries,
    NaiveSampleAndHold,
    ReservoirSampler,
    SpaceSaving,
)
from repro.streams import FrequencyVector, uniform_stream, zipf_stream


class TestExactCounter:
    def test_exact_frequencies(self):
        algo = ExactFrequencyCounter()
        algo.process_stream([1, 2, 2, 3, 3, 3])
        assert algo.estimate(3) == 3
        assert algo.estimate(99) == 0
        assert algo.estimates() == {1: 1.0, 2: 2.0, 3: 3.0}

    def test_state_changes_equal_stream_length(self):
        algo = ExactFrequencyCounter()
        algo.process_stream([5] * 100)
        assert algo.state_changes == 100


class TestMisraGries:
    def test_underestimates_within_bound(self):
        stream = zipf_stream(200, 5000, skew=1.3, seed=0)
        f = FrequencyVector.from_stream(stream)
        algo = MisraGries(k=20)
        algo.process_stream(stream)
        for item, count in f.items():
            est = algo.estimate(item)
            assert est <= count
            assert est >= count - algo.additive_error_bound()

    def test_tracks_dominant_item(self):
        stream = [7] * 900 + list(range(100))
        random.Random(1).shuffle(stream)
        algo = MisraGries(k=10)
        algo.process_stream(stream)
        assert algo.estimate(7) >= 900 - len(stream) / 10

    def test_at_most_k_minus_one_counters(self):
        algo = MisraGries(k=5)
        algo.process_stream(uniform_stream(100, 2000, seed=2))
        assert len(algo.estimates()) <= 4

    def test_theta_m_state_changes(self):
        stream = zipf_stream(50, 2000, seed=3)
        algo = MisraGries(k=10)
        algo.process_stream(stream)
        assert algo.state_changes > 0.5 * len(stream)

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            MisraGries(k=1)


class TestSpaceSaving:
    def test_overestimates_within_bound(self):
        stream = zipf_stream(200, 5000, skew=1.3, seed=4)
        f = FrequencyVector.from_stream(stream)
        algo = SpaceSaving(k=30)
        algo.process_stream(stream)
        for item in algo.estimates():
            assert algo.estimate(item) >= f[item] - 1e-9
            assert algo.estimate(item) <= f[item] + algo.additive_error_bound()

    def test_exactly_k_counters_when_saturated(self):
        algo = SpaceSaving(k=8)
        algo.process_stream(uniform_stream(1000, 3000, seed=5))
        assert len(algo.estimates()) == 8

    def test_every_update_writes(self):
        algo = SpaceSaving(k=4)
        stream = uniform_stream(100, 500, seed=6)
        algo.process_stream(stream)
        assert algo.state_changes == len(stream)

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            SpaceSaving(k=0)


class TestCountMin:
    def test_overestimates(self):
        stream = zipf_stream(500, 3000, seed=7)
        f = FrequencyVector.from_stream(stream)
        algo = CountMin(width=200, depth=4, seed=7)
        algo.process_stream(stream)
        for item in f.support:
            assert algo.estimate(item) >= f[item]

    def test_error_bound_mostly_holds(self):
        stream = zipf_stream(500, 3000, seed=8)
        f = FrequencyVector.from_stream(stream)
        algo = CountMin.for_accuracy(epsilon=0.01, delta=0.01, seed=8)
        algo.process_stream(stream)
        errors = [algo.estimate(i) - f[i] for i in f.support]
        violating = sum(e > 0.01 * len(stream) for e in errors)
        assert violating <= 0.05 * len(f.support)

    def test_one_state_change_per_update(self):
        algo = CountMin(width=64, depth=3, seed=9)
        stream = uniform_stream(100, 400, seed=9)
        algo.process_stream(stream)
        assert algo.state_changes == len(stream)

    def test_estimates_takes_candidate_set(self):
        algo = CountMin(width=64, depth=3, seed=10)
        algo.process_stream([1, 1, 2])
        result = algo.estimates({1, 2, 3})
        assert result[1] >= 2 and result[2] >= 1

    def test_estimates_for_is_gone(self):
        # Removed after a four-PR deprecation cycle; the replacement is
        # estimates(items).
        assert not hasattr(CountMin(width=64, depth=3), "estimates_for")

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            CountMin(width=0, depth=1)

    def test_for_accuracy_dims(self):
        algo = CountMin.for_accuracy(epsilon=0.1, delta=0.05)
        assert algo.width >= 27
        assert algo.depth >= 3


class TestCountSketch:
    def test_unbiased_point_queries(self):
        stream = zipf_stream(300, 4000, skew=1.5, seed=11)
        f = FrequencyVector.from_stream(stream)
        algo = CountSketch(width=512, depth=5, seed=11)
        algo.process_stream(stream)
        l2 = f.lp_norm(2)
        for item in list(f.support)[:50]:
            assert abs(algo.estimate(item) - f[item]) <= l2 / 2

    def test_f2_estimate(self):
        stream = zipf_stream(300, 4000, seed=12)
        f2 = FrequencyVector.from_stream(stream).fp_moment(2)
        algo = CountSketch(width=1024, depth=7, seed=12)
        algo.process_stream(stream)
        assert algo.f2_estimate() == pytest.approx(f2, rel=0.3)

    def test_theta_m_state_changes(self):
        algo = CountSketch(width=64, depth=3, seed=13)
        stream = uniform_stream(100, 400, seed=13)
        algo.process_stream(stream)
        assert algo.state_changes >= 0.95 * len(stream)

    def test_for_accuracy_odd_depth(self):
        algo = CountSketch.for_accuracy(epsilon=0.5, delta=0.1)
        assert algo.depth % 2 == 1

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            CountSketch(width=4, depth=0)


class TestAMS:
    def test_f2_accuracy(self):
        stream = zipf_stream(200, 3000, seed=14)
        f2 = FrequencyVector.from_stream(stream).fp_moment(2)
        algo = AMSSketch.for_accuracy(epsilon=0.2, delta=0.05, seed=14)
        algo.process_stream(stream)
        assert algo.f2_estimate() == pytest.approx(f2, rel=0.35)

    def test_every_update_writes(self):
        algo = AMSSketch(num_groups=2, group_size=4, seed=15)
        stream = uniform_stream(50, 300, seed=15)
        algo.process_stream(stream)
        assert algo.state_changes == len(stream)

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            AMSSketch(num_groups=0, group_size=4)


class TestReservoir:
    def test_sample_size(self):
        algo = ReservoirSampler(k=32, rng=random.Random(16))
        algo.process_stream(uniform_stream(1000, 5000, seed=16))
        assert len(algo.sample) == 32

    def test_partial_fill(self):
        algo = ReservoirSampler(k=100, rng=random.Random(17))
        algo.process_stream([1, 2, 3])
        assert sorted(algo.sample) == [1, 2, 3]

    def test_uniformity(self):
        hits = 0
        trials = 400
        for t in range(trials):
            algo = ReservoirSampler(k=1, rng=random.Random(t))
            algo.process_stream(list(range(10)))
            hits += algo.sample[0] == 0
        # P[keep first item] = 1/10.
        assert 0.04 * trials / 10 < hits < 3 * trials / 10 + 10

    def test_slot_changes_sublinear(self):
        """Slot replacements are O(k log m) even though the seen-counter
        makes total state changes Theta(m)."""
        algo = ReservoirSampler(k=8, rng=random.Random(18))
        m = 20000
        algo.process_stream(uniform_stream(1000, m, seed=18))
        report = algo.report()
        slot_writes = sum(
            count
            for cell, count in report.cell_writes.items()
            if cell.startswith("reservoir[")
        )
        assert slot_writes < 8 * 20  # ~ k * ln(m) = 8 * 9.9

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            ReservoirSampler(k=0)


class TestNaiveSampleAndHold:
    def test_holds_sampled_items(self):
        algo = NaiveSampleAndHold(1.0, capacity=100, rng=random.Random(19))
        algo.process_stream([4, 4, 4, 5])
        assert algo.estimate(4) == 3
        assert algo.estimate(5) == 1

    def test_eviction_keeps_capacity(self):
        algo = NaiveSampleAndHold(1.0, capacity=10, rng=random.Random(20))
        algo.process_stream(list(range(100)))
        assert len(algo.estimates()) <= 11

    def test_eviction_drops_small_counters(self):
        algo = NaiveSampleAndHold(1.0, capacity=4, rng=random.Random(21))
        algo.process_stream([1] * 10 + [2, 3, 4, 5, 6])
        assert algo.estimate(1) == 10  # the big counter survives

    def test_sampling_reduces_state_changes(self):
        stream = uniform_stream(10_000, 20_000, seed=22)
        sparse = NaiveSampleAndHold(0.01, capacity=500, rng=random.Random(22))
        sparse.process_stream(stream)
        assert sparse.state_changes < 0.2 * len(stream)

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            NaiveSampleAndHold(0.0, capacity=10)
        with pytest.raises(ValueError):
            NaiveSampleAndHold(0.5, capacity=1)
