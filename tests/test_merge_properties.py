"""Hypothesis property tests for the merge algebra.

Every mergeable family in the registry is swept through three laws:

* **serialization round trip** — ``from_state(to_state(x))`` is exact:
  the restored sketch snapshots back to the identical state, including
  the audit and the coin-flip RNG position.
* **merge determinism after a round trip** — restoring the same shard
  snapshots twice and merging them gives bit-identical merged state
  both times (this is what lets the process executor reduce restored
  worker states exactly as serial mode reduces live shards).
* **associativity and commutativity up to query answers** — for the
  families whose merge is an order-free function of the operands
  (linear sketches, exact counters, KMV) the grouping and order of a
  merge reduce cannot change a single answer.  The bounded-summary
  families (Misra-Gries, SpaceSaving) break count ties by iteration
  order when they evict, so their laws hold *up to the summary's
  additive error* ``m/k`` — the same slack their estimates carry
  against ground truth.  The Morris-counter families randomize their
  merge (a probabilistic level climb), so for them the laws hold in
  distribution, not bitwise; they are checked for the invariants that
  must survive randomization: combined item counts, additive audits,
  and estimates within the counters' coarse multiplicative envelope.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import registry
from repro.query import (
    AllEstimates,
    Distinct,
    Entropy,
    Moment,
    PointQuery,
    QueryKind,
)

N = 64  # universe for generated streams

#: Bounded summaries whose merge evicts with order-dependent tie-breaks.
SUMMARY = ("misra-gries", "space-saving")
#: Families whose merge flips coins (Morris level climbs).
RANDOMIZED = ("count-min-morris", "pstable-fp")
#: Families whose merge is an order-free function of the two states.
EXACT_MERGE = sorted(
    set(registry.mergeable_names()) - set(SUMMARY) - set(RANDOMIZED)
)

streams = st.lists(st.integers(0, N - 1), max_size=40)


def make(name: str, seed: int = 7):
    """A small, fast instance; merge laws do not need tight accuracy."""
    return registry.create(name, n=N, m=256, epsilon=1.0, seed=seed)


def snapshot(sketch) -> str:
    """Canonical byte-comparable encoding of a sketch's full state."""
    return json.dumps(sketch.to_state(), sort_keys=True)


def ingested(name: str, stream: list[int]):
    sketch = make(name)
    sketch.process_many(stream)
    return sketch


_SCALAR_QUERIES = (
    (QueryKind.MOMENT, Moment),
    (QueryKind.DISTINCT, Distinct),
    (QueryKind.ENTROPY, Entropy),
)


def assert_answers_match(left: dict, right: dict) -> None:
    """Answer-dict equality, tolerating float summation-order ulps.

    A merged dict iterates its items in a grouping-dependent insertion
    order, so float reductions over it (entropy, moments) may differ in
    the last bits even when the multiset of estimates is identical.
    """
    assert left.keys() == right.keys()
    for key, value in left.items():
        assert value == pytest.approx(right[key], rel=1e-9, abs=1e-12), key


def answers(sketch) -> dict:
    """Every scalar answer the family declares, plus spot point queries."""
    out = {}
    if QueryKind.POINT in sketch.supports:
        out.update(
            (f"point[{item}]", sketch.query(PointQuery(item)).value)
            for item in range(0, N, 9)
        )
    for kind, query_cls in _SCALAR_QUERIES:
        if kind in sketch.supports:
            out[str(kind)] = sketch.query(query_cls()).value
    if QueryKind.ALL_ESTIMATES in sketch.supports:
        estimates = sketch.query(AllEstimates()).values
        out.update((f"all[{item}]", value) for item, value in estimates.items())
        out["support"] = sorted(estimates)
    return out


@pytest.mark.parametrize("name", registry.mergeable_names())
class TestSerializationRoundTrip:
    @given(stream=streams)
    @settings(max_examples=12, deadline=None)
    def test_to_state_from_state_exact(self, name, stream):
        original = ingested(name, stream)
        restored = type(original).from_state(original.to_state())
        assert snapshot(restored) == snapshot(original)
        assert restored.report() == original.report()

    @given(stream_a=streams, stream_b=streams)
    @settings(max_examples=12, deadline=None)
    def test_merge_after_round_trip_is_deterministic(
        self, name, stream_a, stream_b
    ):
        shard_a = ingested(name, stream_a)
        shard_b = ingested(name, stream_b)
        state_a, state_b = shard_a.to_state(), shard_b.to_state()

        def restore_and_merge() -> str:
            left = type(shard_a).from_state(json.loads(json.dumps(state_a)))
            right = type(shard_b).from_state(json.loads(json.dumps(state_b)))
            return snapshot(left.merge(right))

        assert restore_and_merge() == restore_and_merge()


@pytest.mark.parametrize("name", EXACT_MERGE)
class TestDeterministicMergeAlgebra:
    @given(stream_a=streams, stream_b=streams)
    @settings(max_examples=12, deadline=None)
    def test_commutative_up_to_answers(self, name, stream_a, stream_b):
        ab = ingested(name, stream_a).merge(ingested(name, stream_b))
        ba = ingested(name, stream_b).merge(ingested(name, stream_a))
        assert_answers_match(answers(ab), answers(ba))
        assert ab.items_processed == ba.items_processed

    @given(stream_a=streams, stream_b=streams, stream_c=streams)
    @settings(max_examples=12, deadline=None)
    def test_associative_up_to_answers(
        self, name, stream_a, stream_b, stream_c
    ):
        left = ingested(name, stream_a).merge(
            ingested(name, stream_b)
        ).merge(ingested(name, stream_c))
        right = ingested(name, stream_a).merge(
            ingested(name, stream_b).merge(ingested(name, stream_c))
        )
        assert_answers_match(answers(left), answers(right))
        assert left.items_processed == right.items_processed


@pytest.mark.parametrize("name", SUMMARY)
class TestSummaryMergeAlgebra:
    """Misra-Gries/SpaceSaving: order-free up to the ``m/k`` slack."""

    @staticmethod
    def _point_estimates(sketch) -> list[float]:
        return [sketch.query(PointQuery(item)).value for item in range(N)]

    @given(stream_a=streams, stream_b=streams)
    @settings(max_examples=12, deadline=None)
    def test_commutative_up_to_summary_error(self, name, stream_a, stream_b):
        ab = ingested(name, stream_a).merge(ingested(name, stream_b))
        ba = ingested(name, stream_b).merge(ingested(name, stream_a))
        # Each side is a valid summary within +-m/k of truth, so two
        # valid summaries can sit up to 2m/k apart.
        slack = 2 * (len(stream_a) + len(stream_b)) / ab.k
        for left, right in zip(
            self._point_estimates(ab), self._point_estimates(ba)
        ):
            assert abs(left - right) <= slack
        assert ab.items_processed == ba.items_processed

    @given(stream_a=streams, stream_b=streams, stream_c=streams)
    @settings(max_examples=12, deadline=None)
    def test_associative_up_to_summary_error(
        self, name, stream_a, stream_b, stream_c
    ):
        left = ingested(name, stream_a).merge(
            ingested(name, stream_b)
        ).merge(ingested(name, stream_c))
        right = ingested(name, stream_a).merge(
            ingested(name, stream_b).merge(ingested(name, stream_c))
        )
        slack = (
            2 * (len(stream_a) + len(stream_b) + len(stream_c)) / left.k
        )
        for lhs, rhs in zip(
            self._point_estimates(left), self._point_estimates(right)
        ):
            assert abs(lhs - rhs) <= slack
        assert left.items_processed == right.items_processed


@pytest.mark.parametrize("name", RANDOMIZED)
class TestRandomizedMergeInvariants:
    """What survives the Morris merge coin flips, exactly and loosely."""

    @given(stream_a=streams, stream_b=streams, stream_c=streams)
    @settings(max_examples=12, deadline=None)
    def test_grouping_preserves_counts_and_audits(
        self, name, stream_a, stream_b, stream_c
    ):
        total = len(stream_a) + len(stream_b) + len(stream_c)
        left = ingested(name, stream_a).merge(
            ingested(name, stream_b)
        ).merge(ingested(name, stream_c))
        right = ingested(name, stream_a).merge(
            ingested(name, stream_b).merge(ingested(name, stream_c))
        )
        assert left.items_processed == right.items_processed == total
        # The audit combine is additive arithmetic — grouping-invariant
        # even when the payload merge randomizes.
        assert left.report() == right.report()

    @given(stream_a=streams, stream_b=streams)
    @settings(max_examples=12, deadline=None)
    def test_merge_estimates_stay_in_envelope(self, name, stream_a, stream_b):
        merged = ingested(name, stream_a).merge(ingested(name, stream_b))
        total = len(stream_a) + len(stream_b)
        if QueryKind.POINT in merged.supports:
            for item in range(0, N, 9):
                estimate = merged.query(PointQuery(item)).value
                assert 0 <= estimate <= 32 * total + 64
        if QueryKind.MOMENT in merged.supports:
            value = merged.query(Moment()).value
            assert value >= 0.0
            # F1-style mass cannot exceed a coarse multiple of the
            # stream length (Morris overshoot is multiplicative).
            assert value <= 64 * total**2 + 256
