"""Tests for the p-stable Morris-counter Fp estimator (Theorem 3.2)."""

import pytest

from repro.core.fp_pstable import PStableFpEstimator
from repro.streams import FrequencyVector, uniform_stream, zipf_stream


class TestConstruction:
    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            PStableFpEstimator(p=0.0)
        with pytest.raises(ValueError):
            PStableFpEstimator(p=2.0)

    def test_invalid_epsilon_raises(self):
        with pytest.raises(ValueError):
            PStableFpEstimator(p=0.5, epsilon=0)

    def test_default_rows_scale_with_epsilon(self):
        coarse = PStableFpEstimator(p=0.5, epsilon=0.5)
        fine = PStableFpEstimator(p=0.5, epsilon=0.15)
        assert fine.num_rows > coarse.num_rows

    def test_explicit_rows(self):
        algo = PStableFpEstimator(p=0.5, num_rows=33)
        assert algo.num_rows == 33


class TestAccuracy:
    @pytest.mark.parametrize("p", [0.25, 0.5, 1.0])
    def test_zipf_accuracy(self, p):
        n, m = 500, 8000
        stream = zipf_stream(n, m, skew=1.2, seed=10 + int(4 * p))
        truth = FrequencyVector.from_stream(stream).fp_moment(p)
        algo = PStableFpEstimator(p=p, num_rows=120, seed=1)
        algo.process_stream(stream)
        assert algo.fp_estimate() == pytest.approx(truth, rel=0.35)

    def test_uniform_f_half(self):
        n, m = 400, 6000
        stream = uniform_stream(n, m, seed=2)
        truth = FrequencyVector.from_stream(stream).fp_moment(0.5)
        algo = PStableFpEstimator(p=0.5, num_rows=120, seed=2)
        algo.process_stream(stream)
        assert algo.fp_estimate() == pytest.approx(truth, rel=0.35)

    def test_log_cosine_estimator(self):
        n, m = 300, 5000
        stream = zipf_stream(n, m, skew=1.1, seed=3)
        truth = FrequencyVector.from_stream(stream).fp_moment(0.5)
        algo = PStableFpEstimator(p=0.5, num_rows=120, seed=3)
        algo.process_stream(stream)
        estimate = algo.fp_estimate(estimator="log-cosine")
        assert estimate == pytest.approx(truth, rel=0.4)

    def test_unknown_estimator_raises(self):
        algo = PStableFpEstimator(p=0.5, num_rows=20, seed=4)
        with pytest.raises(ValueError):
            algo.lp_norm_estimate(estimator="mean")

    def test_empty_stream_estimates_zero(self):
        algo = PStableFpEstimator(p=0.5, num_rows=20, seed=5)
        assert algo.fp_estimate() == 0.0


class TestStateChanges:
    def test_state_changes_grow_sublinearly_in_m(self):
        """Doubling m should much-less-than-double the state changes
        (each Morris counter adds only log-many writes)."""
        n = 200
        runs = {}
        for m in (4000, 16000):
            algo = PStableFpEstimator(p=0.5, num_rows=40, seed=6)
            algo.process_stream(uniform_stream(n, m, seed=6))
            runs[m] = algo.state_changes
        assert runs[16000] < 2.5 * runs[4000]

    def test_far_fewer_writes_than_exact_maintenance(self):
        """Total cell writes are far below num_rows * m (the cost of
        exactly maintaining every inner product)."""
        n, m = 200, 8000
        algo = PStableFpEstimator(p=0.5, num_rows=40, seed=7)
        algo.process_stream(uniform_stream(n, m, seed=7))
        assert algo.report().total_writes < 0.2 * (2 * 40 * m)


class TestCoordinates:
    def test_coordinates_length(self):
        algo = PStableFpEstimator(p=0.5, num_rows=17, seed=8)
        algo.process_stream([1, 2, 3])
        assert len(algo.coordinates()) == 17

    def test_variates_deterministic(self):
        algo = PStableFpEstimator(p=0.5, num_rows=9, seed=9)
        first = algo._variates(42).copy()
        algo._variate_cache.clear()
        second = algo._variates(42)
        assert first.tolist() == second.tolist()
