"""Tests for Algorithm 1 (SampleAndHold)."""

import random

import pytest

from repro.core import SampleAndHold, SampleAndHoldParams
from repro.streams import (
    FrequencyVector,
    planted_heavy_hitter_stream,
    uniform_stream,
    zipf_stream,
)


def make_algo(n, m, p=2.0, epsilon=0.5, seed=0, **kwargs):
    params = SampleAndHoldParams.from_problem(n=n, m=m, p=p, epsilon=epsilon)
    return SampleAndHold(params, rng=random.Random(seed), **kwargs)


class TestParams:
    def test_sampling_rate_shape(self):
        """rho scales like n^{1-1/p}/m (up to the log factor)."""
        small = SampleAndHoldParams.from_problem(n=2**10, m=2**20, p=2, epsilon=0.5)
        large = SampleAndHoldParams.from_problem(n=2**14, m=2**20, p=2, epsilon=0.5)
        # n grows 16x, n^{1/2} grows 4x.
        ratio = large.sample_probability / small.sample_probability
        assert 3.0 < ratio < 6.0

    def test_rate_capped_at_one(self):
        params = SampleAndHoldParams.from_problem(n=100, m=100, p=2, epsilon=0.1)
        assert params.sample_probability == 1.0

    def test_kappa_grows_for_large_p(self):
        p2 = SampleAndHoldParams.from_problem(n=2**16, m=2**16, p=2, epsilon=0.5)
        p4 = SampleAndHoldParams.from_problem(n=2**16, m=2**16, p=4, epsilon=0.5)
        # kappa ~ n^{1-2/p}: 1 for p=2, n^{1/2} for p=4.
        assert p4.kappa > 10 * p2.kappa

    def test_uses_m_when_stream_shorter_than_universe(self):
        by_m = SampleAndHoldParams.from_problem(n=2**20, m=2**10, p=2, epsilon=0.5)
        by_n = SampleAndHoldParams.from_problem(n=2**10, m=2**10, p=2, epsilon=0.5)
        assert by_m.sample_probability == pytest.approx(
            by_n.sample_probability, rel=0.1
        )

    def test_budget_interval_valid(self):
        params = SampleAndHoldParams.from_problem(n=1000, m=1000, p=2, epsilon=0.5)
        assert params.budget_low < params.budget_high
        assert params.budget_low >= 2 * params.kappa

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            SampleAndHoldParams.from_problem(n=0, m=10, p=2, epsilon=0.5)
        with pytest.raises(ValueError):
            SampleAndHoldParams.from_problem(n=10, m=10, p=0.5, epsilon=0.5)
        with pytest.raises(ValueError):
            SampleAndHoldParams.from_problem(n=10, m=10, p=2, epsilon=0)


class TestHolding:
    def test_finds_planted_heavy_hitter(self):
        n, m = 2000, 20000
        stream = planted_heavy_hitter_stream(n, m, {42: 6000}, seed=1)
        algo = make_algo(n, m, seed=1)
        algo.process_stream(stream)
        estimate = algo.estimate(42)
        assert estimate >= 0.5 * 6000
        assert estimate <= 1.5 * 6000

    def test_estimates_are_one_sided(self):
        """Counters cannot invent occurrences: fhat <= (1+slack) * f."""
        n, m = 500, 10000
        stream = zipf_stream(n, m, skew=1.2, seed=2)
        f = FrequencyVector.from_stream(stream)
        algo = make_algo(n, m, seed=2)
        algo.process_stream(stream)
        for item, fhat in algo.estimates().items():
            assert fhat <= 2.0 * f[item] + 8

    def test_exact_counters_are_strictly_one_sided(self):
        n, m = 500, 10000
        stream = zipf_stream(n, m, skew=1.2, seed=3)
        f = FrequencyVector.from_stream(stream)
        algo = make_algo(n, m, seed=3, use_morris=False)
        algo.process_stream(stream)
        for item, fhat in algo.estimates().items():
            assert fhat <= f[item]

    def test_held_counters_respect_budget(self):
        n, m = 5000, 20000
        algo = make_algo(n, m, seed=4)
        for item in uniform_stream(n, m, seed=4):
            algo.process(item)
            assert algo.num_held <= algo.params.budget_high

    def test_prunes_happen_on_diverse_streams(self):
        n, m = 20000, 40000
        algo = make_algo(n, m, seed=5)
        # Repeat each item a few times so sampled items get held.
        stream = [x for i in range(m // 4) for x in (i % n,) * 4]
        algo.process_stream(stream)
        assert algo.num_prunes >= 1


class TestStateChanges:
    def test_sublinear_on_long_streams(self):
        n, m = 1024, 60000
        stream = zipf_stream(n, m, skew=1.1, seed=6)
        algo = make_algo(n, m, seed=6, epsilon=1.0)
        algo.process_stream(stream)
        assert algo.state_changes < 0.5 * m

    def test_morris_beats_exact_counters(self):
        n, m = 512, 30000
        stream = zipf_stream(n, m, skew=1.3, seed=7)
        morris = make_algo(n, m, seed=7, epsilon=1.0, use_morris=True)
        exact = make_algo(n, m, seed=7, epsilon=1.0, use_morris=False)
        morris.process_stream(stream)
        exact.process_stream(stream)
        assert morris.state_changes < exact.state_changes

    def test_state_changes_scale_with_sampling_rate(self):
        n = 1024
        m_small, m_large = 20000, 80000
        algo_small = make_algo(n, m_small, seed=8, epsilon=1.0)
        algo_large = make_algo(n, m_large, seed=8, epsilon=1.0)
        algo_small.process_stream(uniform_stream(n, m_small, seed=8))
        algo_large.process_stream(uniform_stream(n, m_large, seed=8))
        # Total sampling writes ~ rho*m ~ n^{1/2} log(nm): roughly flat in m.
        assert algo_large.state_changes < 3 * algo_small.state_changes


class TestQueries:
    def test_unknown_item_estimates_zero(self):
        algo = make_algo(100, 100)
        algo.process_stream([1, 1, 1])
        assert algo.estimate(99) == 0.0

    def test_estimates_dict_matches_point_queries(self):
        n, m = 200, 5000
        algo = make_algo(n, m, seed=9)
        algo.process_stream(zipf_stream(n, m, seed=9))
        for item, value in algo.estimates().items():
            assert algo.estimate(item) == value
