"""Chunked data plane tests: the bit-identity contract.

The invariant under test everywhere: for every registered family,
accounting backend, and chunking of a stream,
``process_chunk`` produces exactly the payload, audit (including the
per-cell wear histogram on the trace backend), answers, and budget
outcome of the scalar ``process_many`` reference — and the sharded
runtime's columnar routing preserves the same guarantee end to end,
serial and process executors alike.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import registry
from repro.api import Engine
from repro.query import (
    AllEstimates,
    Distinct,
    Entropy,
    HeavyHitters,
    Moment,
    PointQuery,
    QueryKind,
)
from repro.runtime.checkpoint import Checkpoint
from repro.runtime.sharded import ShardedRunner
from repro.state.budget import WriteBudget, WriteBudgetExceededError
from repro.state.tracker import make_tracker
from repro.streams import ChunkedStream, zipf_stream
from repro.streams.generators import _zipf_draws

#: Aggregate audit fields every arm must agree on exactly.
AUDIT_FIELDS = (
    "stream_length",
    "state_changes",
    "total_writes",
    "total_write_attempts",
    "peak_words",
    "current_words",
)

#: One parameter-free query per kind (points get item 1).
QUERY_FOR_KIND = {
    QueryKind.POINT: lambda: PointQuery(1),
    QueryKind.ALL_ESTIMATES: AllEstimates,
    QueryKind.HEAVY_HITTERS: HeavyHitters,
    QueryKind.MOMENT: Moment,
    QueryKind.DISTINCT: Distinct,
    QueryKind.ENTROPY: Entropy,
}

N, M = 64, 240
ARR = _zipf_draws(N, M, 1.1, 5)
ITEMS = ARR.tolist()

#: The five randomized families the v2 coin protocol vectorizes.
RANDOMIZED = (
    "count-min-morris",
    "entropy",
    "pstable-fp",
    "reservoir",
    "sample-and-hold",
)


def build(name: str, mode: str, coin_protocol: str | None = None):
    return registry.create(
        name, n=N, m=M, epsilon=0.3, seed=9, tracker=make_tracker(mode),
        coin_protocol=coin_protocol,
    )


def fingerprint(sketch) -> tuple:
    """Everything observable about an ingested sketch, exactly."""
    report = sketch.report()
    audit = tuple(getattr(report, field) for field in AUDIT_FIELDS)
    cells = tuple(sorted(report.cell_writes.items()))
    answers = tuple(
        repr(sketch.query(QUERY_FOR_KIND[kind]()))
        for kind in sorted(sketch.supports, key=str)
    )
    try:
        payload = json.dumps(sketch.to_state(), sort_keys=True)
    except TypeError:  # family without serialization hooks
        payload = None
    return (sketch.items_processed, audit, cells, answers, payload)


_SCALAR_REFERENCE: dict = {}


def scalar_reference(
    name: str, mode: str, coin_protocol: str | None = None
) -> tuple:
    key = (name, mode, coin_protocol)
    if key not in _SCALAR_REFERENCE:
        sketch = build(name, mode, coin_protocol)
        sketch.process_many(ITEMS)
        _SCALAR_REFERENCE[key] = fingerprint(sketch)
    return _SCALAR_REFERENCE[key]


def ingest_chunked(sketch, sizes) -> None:
    position = 0
    index = 0
    while position < M:
        size = sizes[index % len(sizes)]
        index += 1
        assert sketch.process_chunk(ARR[position:position + size]) == len(
            ARR[position:position + size]
        )
        position += size


class TestChunkScalarEquivalence:
    """The Hypothesis sweep: process_chunk ≡ process_many."""

    @pytest.mark.parametrize("mode", ["aggregate", "trace"])
    @pytest.mark.parametrize("name", registry.names())
    @given(data=st.data())
    @settings(max_examples=6, deadline=None)
    def test_random_chunkings(self, name, mode, data):
        sizes = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=M + 40),
                min_size=1,
                max_size=12,
            )
        )
        sketch = build(name, mode)
        ingest_chunked(sketch, sizes)
        assert fingerprint(sketch) == scalar_reference(name, mode)

    @pytest.mark.parametrize("size", [1, 3, M, M + 17, 10_000])
    @pytest.mark.parametrize("name", registry.names())
    def test_boundary_chunk_sizes(self, name, size):
        sketch = build(name, "aggregate")
        ingest_chunked(sketch, [size])
        assert fingerprint(sketch) == scalar_reference(name, "aggregate")

    @pytest.mark.parametrize("name", registry.names())
    def test_process_stream_routes_chunked_sources(self, name):
        chunked = build(name, "aggregate")
        chunked.process_stream(ChunkedStream(ARR, chunk_size=37))
        assert fingerprint(chunked) == scalar_reference(name, "aggregate")
        as_array = build(name, "aggregate")
        as_array.process_stream(ARR)
        assert fingerprint(as_array) == scalar_reference(name, "aggregate")

    def test_empty_chunk_is_a_noop(self):
        sketch = build("count-min", "aggregate")
        assert sketch.process_chunk(np.empty(0, dtype=np.int64)) == 0
        assert sketch.items_processed == 0
        assert sketch.report().stream_length == 0

    def test_chunk_must_be_one_dimensional(self):
        sketch = build("count-min", "aggregate")
        with pytest.raises(ValueError, match="one-dimensional"):
            sketch.process_chunk(np.zeros((2, 2), dtype=np.int64))

    def test_chunked_answers_use_python_ints(self):
        # np.int64 must never leak into summary keys / payloads.
        sketch = build("misra-gries", "aggregate")
        sketch.process_chunk(ARR)
        estimates = sketch.query(AllEstimates()).values
        assert all(type(item) is int for item in estimates)
        json.dumps(sketch.to_state())  # JSON-safe payload

    def test_listeners_force_the_scalar_path(self):
        # A write listener needs one callback per write in stream
        # order; chunked ingest must fall back and still deliver them.
        events = []
        scalar_events = []
        chunked = build("count-min", "trace")
        chunked.tracker.add_listener(
            lambda t, cell, mutated: events.append((t, cell, mutated))
        )
        chunked.process_chunk(ARR[:50])
        scalar = build("count-min", "trace")
        scalar.tracker.add_listener(
            lambda t, cell, mutated: scalar_events.append((t, cell, mutated))
        )
        scalar.process_many(ITEMS[:50])
        assert events and events == scalar_events


class TestRandomizedFamiliesV2:
    """The tentpole contract: under the v2 coin protocol every coin is
    a pure function of its global update index, so the vectorized
    chunk kernels must reproduce the scalar v2 run bit for bit —
    payloads, audits, per-cell wear, answers."""

    @pytest.mark.parametrize("mode", ["aggregate", "trace"])
    @pytest.mark.parametrize("name", RANDOMIZED)
    @given(data=st.data())
    @settings(max_examples=6, deadline=None)
    def test_chunked_equals_scalar_bit_for_bit(self, name, mode, data):
        sizes = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=M + 40),
                min_size=1,
                max_size=12,
            )
        )
        sketch = build(name, mode, coin_protocol="v2")
        ingest_chunked(sketch, sizes)
        assert fingerprint(sketch) == scalar_reference(name, mode, "v2")

    @pytest.mark.parametrize("name", RANDOMIZED)
    def test_v2_is_the_default(self, name):
        sketch = build(name, "aggregate")
        assert sketch.coin_protocol == "v2"
        sketch.process_many(ITEMS)
        assert fingerprint(sketch) == scalar_reference(
            name, "aggregate", "v2"
        )

    @pytest.mark.parametrize("name", RANDOMIZED)
    def test_v1_draws_a_different_sequence(self, name):
        # The protocols share no randomness source, so on a stream
        # this size their write counts must diverge (equal counts
        # would mean the v2 switch silently did nothing).
        v1 = build(name, "trace", coin_protocol="v1")
        v1.process_many(ITEMS)
        v2 = build(name, "trace", coin_protocol="v2")
        v2.process_many(ITEMS)
        assert fingerprint(v1) != fingerprint(v2)

    @pytest.mark.parametrize("name", RANDOMIZED)
    def test_v1_has_no_chunk_kernel(self, name):
        # v1 must keep its sequential draw order, so chunked ingest
        # falls back to the scalar loop — and still matches it.
        sketch = build(name, "aggregate", coin_protocol="v1")
        ingest_chunked(sketch, [37])
        assert fingerprint(sketch) == scalar_reference(
            name, "aggregate", "v1"
        )


class TestBudgetChunkBoundaries:
    """Freeze/degrade/raise cut over at the exact update index."""

    @pytest.mark.parametrize("policy", ["freeze", "degrade"])
    @pytest.mark.parametrize(
        "name",
        ["count-min", "kmv", "misra-gries",
         "count-min-morris", "pstable-fp", "reservoir"],
    )
    @pytest.mark.parametrize("limit", [0, 1, 103, 10_000])
    def test_policy_identical_to_scalar(self, name, policy, limit):
        def run(chunked: bool):
            sketch = registry.create(
                name, n=N, m=M, epsilon=0.3, seed=9,
                tracker=make_tracker(budget=WriteBudget(limit, policy)),
            )
            if chunked:
                ingest_chunked(sketch, [40])  # limit=103 cuts mid-chunk
            else:
                sketch.process_many(ITEMS)
            return fingerprint(sketch), sketch.tracker.budget_report()

        assert run(chunked=True) == run(chunked=False)

    def test_freeze_cuts_at_the_exact_update_index(self):
        limit = 103  # not a multiple of the chunk size
        sketch = registry.create(
            "count-min", n=N, m=M, epsilon=0.3, seed=9,
            tracker=make_tracker(budget=WriteBudget(limit, "freeze")),
        )
        ingest_chunked(sketch, [40])
        report = sketch.tracker.budget_report()
        # CountMin mutates on every update, so exactly `limit` updates
        # landed and every later one was denied.
        assert report.state_changes == limit
        assert report.denied == M - limit
        assert sketch.report().stream_length == M

    def test_raise_aborts_at_the_same_write(self):
        def run(chunked: bool):
            sketch = registry.create(
                "count-min", n=N, m=M, epsilon=0.3, seed=9,
                tracker=make_tracker(budget=WriteBudget(57, "raise")),
            )
            with pytest.raises(WriteBudgetExceededError) as excinfo:
                if chunked:
                    ingest_chunked(sketch, [40])
                else:
                    sketch.process_many(ITEMS)
            return str(excinfo.value), fingerprint(sketch)

        assert run(chunked=True) == run(chunked=False)

    def test_record_chunk_refuses_budget_overrun(self):
        tracker = make_tracker(budget=WriteBudget(5, "freeze"))
        with pytest.raises(ValueError, match="bulk_admit"):
            tracker.record_chunk(10, 6, 6, 6)

    def test_bulk_admit_bounds(self):
        tracker = make_tracker(budget=WriteBudget(5, "freeze"))
        assert tracker.bulk_admit(3) == 3
        assert tracker.bulk_admit(100) == 5
        tracker.record_chunk(5, 5, 5, 5)
        assert tracker.bulk_admit(100) == 0
        unlimited = make_tracker("aggregate")
        assert unlimited.bulk_admit(7) == 7


class TestChunkedSharding:
    """Columnar routing matches scalar routing bit for bit."""

    @pytest.mark.parametrize("partition", ["hash", "round-robin"])
    @pytest.mark.parametrize("name", ["count-min", "misra-gries", "kmv"])
    def test_serial_chunked_equals_serial_scalar(self, name, partition):
        stream = zipf_stream(256, 4096, skew=1.2, seed=3)

        def run(source):
            runner = ShardedRunner.from_registry(
                name, 4, n=256, m=4096, epsilon=0.3, seed=1,
                partition=partition,
            )
            result = runner.run(source)
            return (
                json.dumps(result.merged.to_state(), sort_keys=True),
                result.shard_reports,
                result.shard_items,
            )

        assert run(stream) == run(stream.materialize())

    def test_process_executor_ships_ndarray_chunks(self):
        stream = zipf_stream(256, 4096, skew=1.2, seed=3)

        def run(executor):
            runner = ShardedRunner.from_registry(
                "count-min", 2, n=256, m=4096, epsilon=0.3, seed=1,
                executor=executor, max_workers=2,
            )
            result = runner.run(stream)
            return (
                json.dumps(result.merged.to_state(), sort_keys=True),
                result.shard_reports,
            )

        assert run("process") == run("serial")

    def test_routing_matches_shard_of(self):
        runner = ShardedRunner.from_registry(
            "count-min", 8, n=256, m=1024, epsilon=0.3, seed=4
        )
        chunk = _zipf_draws(256, 1024, 1.2, 8)
        vectorized = runner._route.bucket_many(chunk, 8).tolist()
        assert vectorized == [
            runner.shard_of(int(item)) for item in chunk
        ]

    def test_chunk_size_rechunks_without_changing_results(self):
        stream = zipf_stream(128, 2000, seed=6)
        baseline = ShardedRunner.from_registry(
            "count-min", 2, n=128, m=2000, seed=2
        ).run(stream)
        rechunked = ShardedRunner.from_registry(
            "count-min", 2, n=128, m=2000, seed=2, chunk_size=111
        ).run(stream)
        assert json.dumps(
            baseline.merged.to_state(), sort_keys=True
        ) == json.dumps(rechunked.merged.to_state(), sort_keys=True)


class TestEngineChunked:
    def test_workload_runs_are_chunked_and_identical_to_scalar(self):
        engine = Engine("count-min", n=128, m=3000, epsilon=0.3, seed=5)
        chunked = engine.run(workload="zipf", chunk_size=256)
        assert chunked.chunk_size == 256
        workload_stream = engine.run(workload="zipf")
        from repro.workloads import Workload

        scalar = engine.run(
            Workload("zipf", n=128, m=3000, seed=5).materialize()
            .materialize(),  # plain list[int] → scalar ingest path
        )
        for report in (workload_stream, scalar):
            assert [
                (repr(q), repr(a)) for q, a in chunked.answers
            ] == [(repr(q), repr(a)) for q, a in report.answers]
            assert chunked.audit == report.audit

    def test_chunk_size_validation(self):
        engine = Engine("count-min", n=64, m=100, seed=0)
        with pytest.raises(ValueError, match="chunk_size"):
            engine.run([1, 2, 3], queries=(), chunk_size=0)

    def test_plain_iterable_with_chunk_size_is_wrapped(self):
        engine = Engine("count-min", n=64, m=100, seed=0)
        report = engine.run(
            iter([1, 2, 3] * 30), queries=(), chunk_size=7
        )
        assert report.items_processed == 90
        assert report.chunk_size == 7


class TestCheckpointResume:
    @pytest.mark.parametrize(
        "name",
        ["count-min", "kmv", "count-min-morris", "misra-gries",
         "pstable-fp"],
    )
    def test_resume_matches_uninterrupted_run(self, name, tmp_path):
        # count-min-morris and pstable-fp exercise the v2 coin
        # protocol's index-addressable resume through chunk kernels.
        stream = ChunkedStream(ARR, chunk_size=64)
        uninterrupted = build(name, "aggregate")
        uninterrupted.process_stream(stream)

        interrupted = build(name, "aggregate")
        consumed = 0
        for chunk in stream.chunks():
            interrupted.process_chunk(chunk)
            consumed += len(chunk)
            if consumed >= 137:  # stop mid-stream, off the chunk grid
                break
        path = tmp_path / "ckpt.json"
        Checkpoint.save(path, interrupted)
        assert Checkpoint.offset(path.read_text()) == consumed

        resumed = Checkpoint.resume(path, stream)
        assert resumed.items_processed == M
        assert json.dumps(
            resumed.to_state(), sort_keys=True
        ) == json.dumps(uninterrupted.to_state(), sort_keys=True)

    def test_resume_accepts_plain_iterables(self, tmp_path):
        sketch = build("count-min", "aggregate")
        sketch.process_many(ITEMS[:100])
        path = tmp_path / "ckpt.json"
        Checkpoint.save(path, sketch)
        resumed = Checkpoint.resume(path, ITEMS)
        reference = build("count-min", "aggregate")
        reference.process_many(ITEMS)
        assert json.dumps(
            resumed.to_state(), sort_keys=True
        ) == json.dumps(reference.to_state(), sort_keys=True)

    def test_legacy_checkpoints_still_resume(self, tmp_path):
        # Pre-offset checkpoints carry no stream_offset field; the
        # recorded items_processed doubles as the offset.
        sketch = build("count-min", "aggregate")
        sketch.process_many(ITEMS[:50])
        state = sketch.to_state()
        assert "stream_offset" not in state
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(state) + "\n")
        assert Checkpoint.offset(path.read_text()) == 50
        resumed = Checkpoint.resume(path, ChunkedStream(ARR))
        assert resumed.items_processed == M
