"""Tests for the ground-truth frequency vector."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams import FrequencyVector


class TestConstruction:
    def test_from_stream(self):
        f = FrequencyVector.from_stream([1, 2, 2, 3, 3, 3])
        assert f[1] == 1
        assert f[2] == 2
        assert f[3] == 3
        assert f[99] == 0

    def test_zero_counts_dropped(self):
        f = FrequencyVector({1: 0, 2: 5})
        assert len(f) == 1
        assert f.support == {2}

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            FrequencyVector({1: -3})

    def test_stream_length(self):
        f = FrequencyVector.from_stream([5] * 10 + [6] * 4)
        assert f.stream_length == 14


class TestMoments:
    def test_f1_is_stream_length(self):
        f = FrequencyVector.from_stream([1, 1, 2, 3])
        assert f.fp_moment(1) == 4

    def test_f2(self):
        f = FrequencyVector.from_stream([1, 1, 2])
        assert f.fp_moment(2) == 5  # 2^2 + 1

    def test_f0_distinct(self):
        f = FrequencyVector.from_stream([1, 1, 2, 9])
        assert f.fp_moment(0) == 3

    def test_fractional_p(self):
        f = FrequencyVector({1: 4})
        assert f.fp_moment(0.5) == pytest.approx(2.0)

    def test_lp_norm(self):
        f = FrequencyVector({1: 3, 2: 4})
        assert f.lp_norm(2) == pytest.approx(5.0)

    def test_negative_p_raises(self):
        with pytest.raises(ValueError):
            FrequencyVector({1: 1}).fp_moment(-1)
        with pytest.raises(ValueError):
            FrequencyVector({1: 1}).lp_norm(0)

    @given(st.dictionaries(st.integers(0, 50), st.integers(1, 40), min_size=1))
    @settings(max_examples=60)
    def test_moment_monotone_in_p(self, freqs):
        """For p <= q, Fp >= Fq iff all f_i... instead check the norm
        ordering ||f||_p >= ||f||_q for p <= q (power-mean inequality)."""
        f = FrequencyVector(freqs)
        assert f.lp_norm(1) >= f.lp_norm(2) - 1e-9
        assert f.lp_norm(2) >= f.lp_norm(3) - 1e-9


class TestEntropy:
    def test_uniform_entropy(self):
        f = FrequencyVector({i: 1 for i in range(8)})
        assert f.shannon_entropy() == pytest.approx(3.0)

    def test_deterministic_entropy_zero(self):
        f = FrequencyVector({7: 100})
        assert f.shannon_entropy() == 0.0

    def test_empty_entropy_zero(self):
        assert FrequencyVector({}).shannon_entropy() == 0.0

    def test_biased_coin(self):
        f = FrequencyVector({0: 3, 1: 1})
        expected = -(0.75 * math.log2(0.75) + 0.25 * math.log2(0.25))
        assert f.shannon_entropy() == pytest.approx(expected)


class TestHeavyHitters:
    def test_threshold_classification(self):
        # ||f||_2 = sqrt(100 + 4 + 1) ~ 10.25
        f = FrequencyVector({1: 10, 2: 2, 3: 1})
        assert f.heavy_hitters(2, 0.9) == {1}
        assert 3 in f.forbidden_items(2, 0.9)

    def test_all_heavy_when_epsilon_tiny(self):
        f = FrequencyVector({1: 5, 2: 5})
        assert f.heavy_hitters(1, 0.001) == {1, 2}

    def test_invalid_epsilon_raises(self):
        f = FrequencyVector({1: 1})
        with pytest.raises(ValueError):
            f.heavy_hitters(2, 0.0)
        with pytest.raises(ValueError):
            f.forbidden_items(2, 1.5)

    @given(
        st.dictionaries(st.integers(0, 30), st.integers(1, 20), min_size=1),
        st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=60)
    def test_heavy_and_forbidden_disjoint(self, freqs, epsilon):
        f = FrequencyVector(freqs)
        assert not (f.heavy_hitters(2, epsilon) & f.forbidden_items(2, epsilon))


class TestLinfError:
    def test_exact_estimates_zero_error(self):
        f = FrequencyVector({1: 5, 2: 3})
        assert f.linf_error({1: 5.0, 2: 3.0}) == 0.0

    def test_missing_estimate_counts_full_frequency(self):
        f = FrequencyVector({1: 5})
        assert f.linf_error({}) == 5.0

    def test_spurious_estimate_counts(self):
        f = FrequencyVector({})
        assert f.linf_error({9: 4.0}) == 4.0

    def test_empty_both(self):
        assert FrequencyVector({}).linf_error({}) == 0.0
