"""Elephant-flow detection on a synthetic network trace.

The paper's introduction motivates heavy hitters with elephant-flow
detection in network monitoring [BEFK17].  This example builds a
synthetic flow-level trace — a few elephant flows buried in a long
tail of mice — and compares the paper's write-frugal sample-and-hold
detector against SpaceSaving on detection quality, state changes, and
the energy each run would cost on phase-change memory.

Elephant detection in practice alerts on an absolute packet budget, so
the detector here is a single ``FullSampleAndHold`` queried with a
packet threshold; the full norm-relative guarantee (Theorem 1.1) is
exercised by ``HeavyHitters`` in examples/quickstart.py.

Usage:  python examples/network_traffic.py
"""

import random

from repro import FrequencyVector, FullSampleAndHold
from repro.baselines import SpaceSaving
from repro.nvm import PCM

NUM_FLOWS = 1 << 13      # distinct 5-tuples
NUM_PACKETS = 1 << 17
ELEPHANTS = {17: 18000, 1042: 11000, 77: 7000}   # flow id -> packets
ALERT_PACKETS = 3000     # alert threshold


def synth_trace(seed: int = 3) -> list[int]:
    """Elephants plus a Zipf-ish tail of mice, interleaved."""
    rng = random.Random(seed)
    packets = []
    for flow, count in ELEPHANTS.items():
        packets.extend([flow] * count)
    tail = NUM_PACKETS - len(packets)
    mice = [f for f in range(NUM_FLOWS) if f not in ELEPHANTS]
    weights = [1.0 / (rank + 10) for rank in range(len(mice))]
    packets.extend(rng.choices(mice, weights=weights, k=tail))
    rng.shuffle(packets)
    return packets


def main() -> None:
    trace = synth_trace()
    truth = FrequencyVector.from_stream(trace)
    print(f"trace: {NUM_PACKETS} packets, {len(truth)} flows, "
          f"elephants {sorted(ELEPHANTS)}\n")

    detector = FullSampleAndHold(
        n=NUM_FLOWS, m=NUM_PACKETS, p=2, epsilon=0.4,
        repetitions=1, seed=1,
    )
    detector.process_stream(trace)
    found = {
        flow: est
        for flow, est in detector.estimates(level_rule="shallowest").items()
        if est >= ALERT_PACKETS
    }
    print(f"FullSampleAndHold detector (alert at {ALERT_PACKETS} packets):")
    for flow in sorted(ELEPHANTS):
        est = found.get(flow, 0.0)
        status = "DETECTED" if flow in found else "missed"
        print(f"  flow {flow:>5}: true {ELEPHANTS[flow]:>5} "
              f"est {est:>7.0f}  [{status}]")
    false_alerts = [flow for flow in found if truth[flow] < ALERT_PACKETS / 2]
    print(f"  false alerts (true count < {ALERT_PACKETS // 2}): "
          f"{false_alerts or 'none'}")
    ours_report = detector.report()
    print(f"  audit: {ours_report.summary()}")
    print(f"  PCM energy: {PCM.energy_nj(ours_report) / 1e6:.2f} mJ\n")

    baseline = SpaceSaving(k=32)
    baseline.process_stream(trace)
    base_report = baseline.report()
    print("SpaceSaving baseline:")
    for flow in sorted(ELEPHANTS):
        print(f"  flow {flow:>5}: true {ELEPHANTS[flow]:>5} "
              f"est {baseline.estimate(flow):>7.0f}")
    print(f"  audit: {base_report.summary()}")
    print(f"  PCM energy: {PCM.energy_nj(base_report) / 1e6:.2f} mJ\n")

    print(
        "write reduction: "
        f"{base_report.total_writes / max(1, ours_report.total_writes):.1f}x "
        "fewer NVM writes for the sample-and-hold detector"
    )


if __name__ == "__main__":
    main()
