"""Quickstart: heavy hitters and F2 through the Engine facade.

Runs the paper's heavy-hitter algorithm and a classical baseline on the
same Zipf stream via the unified query protocol, prints both answers
and — the point of the paper — both state-change audits.

Usage:  python examples/quickstart.py
"""

from repro import Engine, FrequencyVector, QueryKind, WriteBudget, zipf_stream
from repro.query import AllEstimates, HeavyHitters, Moment

N = 1 << 12          # universe size
M = 1 << 17          # stream length (long relative to n^{1/2} polylog,
                     # the regime where the sampling rate is sublinear)
EPSILON = 0.8        # heavy-hitter threshold (fraction of ||f||_2)


def main() -> None:
    stream = zipf_stream(N, M, skew=1.4, seed=7)
    truth = FrequencyVector.from_stream(stream)
    true_heavy = truth.heavy_hitters(p=2, epsilon=EPSILON)
    print(f"stream: Zipf(1.4), n={N}, m={M}")
    print(f"true L2 heavy hitters (eps={EPSILON}): {sorted(true_heavy)}\n")

    # --- the paper's algorithm -------------------------------------
    ours = Engine("heavy-hitters", n=N, m=M, epsilon=EPSILON, seed=0)
    report = ours.run(stream, queries=[HeavyHitters(), Moment()])
    found = report.answer(QueryKind.HEAVY_HITTERS).values
    print("FullSampleAndHold (this paper):")
    print(f"  reported: { {k: round(v) for k, v in sorted(found.items())} }")
    print(f"  F2 estimate: {report.answer(QueryKind.MOMENT).value:.3g} "
          f"(truth {truth.fp_moment(2):.3g})")
    print(f"  audit: {report.audit.summary()}\n")

    # --- a classical baseline --------------------------------------
    # epsilon=0.4 sizes the summary to k = 2/0.4 = 5 counters.
    baseline = Engine("misra-gries", n=N, m=M, epsilon=0.4)
    base_report = baseline.run(stream, queries=[AllEstimates()])
    estimates = base_report.answer(QueryKind.ALL_ESTIMATES).values
    print("Misra-Gries baseline:")
    top = dict(sorted(estimates.items(), key=lambda kv: -kv[1])[:5])
    print(f"  top counters: { {k: round(v) for k, v in top.items()} }")
    print(f"  audit: {base_report.audit.summary()}\n")

    ratio = base_report.audit.state_changes / max(
        1, report.audit.state_changes
    )
    print(f"state-change ratio (baseline / ours): {ratio:.1f}x\n")

    # --- named workloads + parallel shards --------------------------
    # Any registered scenario x any sketch x any shard count is one
    # reproducible call; executor="process" streams routed chunks into
    # per-shard shared-memory rings while pool workers ingest them
    # concurrently — bit-identical results, overlapped wall clock.
    engine = Engine("count-min", n=N, m=M, epsilon=0.1, seed=7,
                    shards=4, executor="process")
    flash = engine.run(workload="bursty")
    print("CountMin on the 'bursty' flash-crowd workload, 4 shards:")
    print(f"  {flash.summary()}")
    budgets = [shard.state_changes for shard in flash.shard_reports]
    print(f"  per-shard write costs: {budgets} (skew {flash.skew:.2f})\n")

    # --- executor="thread": parallel shards, no serialization --------
    # The thread executor runs the same sharded ingest on a thread
    # pool over the live shard objects.  Nothing is pickled, so even
    # families without state hooks (like the paper's heavy-hitters)
    # parallelize — and the numpy chunk kernels release the GIL for
    # much of their work.  Answers and audits are bit-identical to
    # serial and process runs.
    threaded = Engine("heavy-hitters", n=N, m=M, epsilon=EPSILON,
                      seed=0, executor="thread")
    tre = threaded.run(stream, queries=[Moment()])
    print("FullSampleAndHold on the thread executor:")
    print(f"  {tre.summary()}")
    assert tre.audit == report.audit  # executor never changes results
    print(f"  audit identical to the serial run: "
          f"{tre.audit.state_changes} state changes either way\n")

    # --- columnar (chunked) ingest -----------------------------------
    # Streams are ChunkedStreams — lazy sequences of int64 ndarray
    # chunks — and the deterministic families ingest them through
    # vectorized kernels (~10-30x the scalar loop on CountMin) while
    # answers and state-change audits stay bit-identical at any chunk
    # size.  chunk_size re-chunks the stream per run.
    fast = Engine("count-min", n=N, m=M, epsilon=0.1, seed=7)
    wide = fast.run(workload="zipf", chunk_size=1 << 14)
    print("CountMin, columnar ingest at 16384-item chunks:")
    print(f"  {wide.summary()}")
    narrow = fast.run(workload="zipf", chunk_size=64)
    assert wide.audit == narrow.audit  # chunking never changes results
    print(f"  identical audit at 64-item chunks: "
          f"{wide.audit.state_changes} state changes either way\n")

    # --- coin protocol v2: vectorized randomized families ------------
    # Under the default v2 protocol every coin is a pure function of
    # (seed, stream label, update index), so the randomized families
    # ingest chunks through vectorized kernels too — geometric
    # skip-sampling climbs a Morris counter over a whole chunk in one
    # step.  coin_protocol="v1" keeps the historical sequential-RNG
    # path (and the scalar loop) for old snapshots.
    import time

    for proto in ("v1", "v2"):
        t0 = time.perf_counter()
        run = Engine("pstable-fp", n=N, m=M, epsilon=0.5, seed=7,
                     coin_protocol=proto).run(
            workload="zipf", chunk_size=1 << 14, queries=[],
        )
        elapsed = time.perf_counter() - t0
        print(f"pstable-fp under coin protocol {proto}: "
              f"{run.audit.state_changes} state changes, "
              f"{elapsed:.2f}s ingest")
    print("  (v2 vectorizes the coins; v1 replays the sequential RNG)\n")

    # --- enforced write budgets --------------------------------------
    # The lower-bound cost measure as a runtime contract: cap the
    # run's state changes and pick what happens past the cap
    # (raise / freeze / degrade).  Here the adversarial budget-stress
    # workload exhausts a frozen budget, and the sketch keeps
    # answering from its frozen summary.
    capped = Engine("count-min", n=N, m=M, epsilon=0.1, seed=7).run(
        workload="budget-stress",
        budget=WriteBudget(2048, "freeze"),
        queries=[],
    )
    print("CountMin under an enforced 2048-state-change budget:")
    print(f"  {capped.budget.summary()}")
    print(f"  audit: {capped.audit.summary()}\n")

    # --- NVM pricing -------------------------------------------------
    # Attach a simulated phase-change-memory device to the write trace
    # and price the run (energy, latency, wear, lifetime).
    priced = Engine("heavy-hitters", n=N, m=M, epsilon=EPSILON, seed=0).run(
        stream, queries=[], nvm="pcm",
    )
    print("FullSampleAndHold priced on PCM:")
    print(f"  {priced.nvm.summary()}\n")

    # --- live serving: queries while the stream is still arriving ----
    # Engine.live() turns the same configuration into a LiveEngine:
    # append chunks as they arrive, query any time.  Answers come from
    # periodic merged snapshots (here every 16384 updates) and carry
    # their staleness; a subscribed StateChangesCollector samples the
    # paper's state-changes-over-time curve at each cadence boundary,
    # no matter how raggedly the stream is fed.
    from repro.query import PointQuery
    from repro.serve import StateChangesCollector

    live = Engine("count-min", n=N, m=M, epsilon=0.1, seed=7).live(
        snapshot_every=1 << 14
    )
    curve = live.subscribe(StateChangesCollector())
    hot = stream[0]
    print("CountMin served live (cadence 16384):")
    for start in range(0, M, 30_000):  # ragged appends, like a feed
        live.append(stream[start:start + 30_000])
        mid = live.query(PointQuery(hot))
        print(f"  head={live.head:>6}: f[{hot}] ~ {mid.answer.value:.0f} "
              f"({mid.updates_behind} updates behind)")
    live.finish()
    points = ", ".join(
        f"{index // 1024}k:{value}" for index, value in curve.series[:4]
    )
    print(f"  state-changes curve ({len(curve)} samples): {points}, ...")
    exact = live.query(PointQuery(hot), refresh=True)
    print(f"  fresh answer at head: f[{hot}] ~ {exact.answer.value:.0f} "
          f"(0 updates behind)")

    # --- batch queries: one consistent cut, vectorized ---------------
    # query_batch answers a whole item list through the family's
    # query_many kernel — bit-identical to a loop of scalar queries,
    # but one snapshot capture, one hash pass per row, and one answer
    # cache entry.  Every answer shares the batch's staleness.
    top = sorted(set(int(item) for item in stream[:50]))[:8]
    answers = live.query_batch(top)
    estimates = ", ".join(
        f"f[{item}]~{a.answer.value:.0f}"
        for item, a in zip(top, answers)
    )
    print(f"  batch of {len(top)} point queries "
          f"({answers[0].updates_behind} updates behind): {estimates}")


if __name__ == "__main__":
    main()
