"""Quickstart: heavy hitters and F2 with few state changes.

Runs the paper's heavy-hitter algorithm and a classical baseline on the
same Zipf stream, prints both answers and — the point of the paper —
both state-change audits.

Usage:  python examples/quickstart.py
"""

from repro import FrequencyVector, HeavyHitters, zipf_stream
from repro.baselines import MisraGries

N = 1 << 12          # universe size
M = 1 << 17          # stream length (long relative to n^{1/2} polylog,
                     # the regime where the sampling rate is sublinear)
EPSILON = 0.8        # heavy-hitter threshold (fraction of ||f||_2)


def main() -> None:
    stream = zipf_stream(N, M, skew=1.4, seed=7)
    truth = FrequencyVector.from_stream(stream)
    true_heavy = truth.heavy_hitters(p=2, epsilon=EPSILON)
    print(f"stream: Zipf(1.4), n={N}, m={M}")
    print(f"true L2 heavy hitters (eps={EPSILON}): {sorted(true_heavy)}\n")

    # --- the paper's algorithm -------------------------------------
    ours = HeavyHitters(
        n=N, m=M, p=2, epsilon=EPSILON, seed=0,
        inner_kwargs={"repetitions": 1},
    )
    ours.process_stream(stream)
    found = ours.heavy_hitters()
    print("FullSampleAndHold (this paper):")
    print(f"  reported: { {k: round(v) for k, v in sorted(found.items())} }")
    print(f"  F2 estimate: {ours.fp_estimate():.3g} "
          f"(truth {truth.fp_moment(2):.3g})")
    print(f"  audit: {ours.report().summary()}\n")

    # --- a classical baseline --------------------------------------
    baseline = MisraGries(k=int(4 / EPSILON))
    baseline.process_stream(stream)
    print("Misra-Gries baseline:")
    top = dict(sorted(baseline.estimates().items(), key=lambda kv: -kv[1])[:5])
    print(f"  top counters: { {k: round(v) for k, v in top.items()} }")
    print(f"  audit: {baseline.report().summary()}\n")

    ratio = baseline.state_changes / max(1, ours.state_changes)
    print(f"state-change ratio (baseline / ours): {ratio:.1f}x")


if __name__ == "__main__":
    main()
