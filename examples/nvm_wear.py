"""NVM device lifetime under different streaming algorithms.

The paper's Section 1.1: NVM cells wear out after 10^4-10^12 writes, so
an algorithm's total write count directly bounds device lifetime.
This example attaches simulated PCM and NAND devices to each
algorithm's write trace and reports how many repeats of the workload
each device survives, with and without wear leveling.

Usage:  python examples/nvm_wear.py
"""

from repro import FullSampleAndHold, zipf_stream
from repro.baselines import CountMin, MisraGries, SpaceSaving
from repro.nvm import NAND_FLASH, PCM, NVMDevice

N = 1 << 13
M = 1 << 16
EPSILON = 0.5


def contenders():
    yield "Misra-Gries", MisraGries(k=8)
    yield "CountMin", CountMin.for_accuracy(EPSILON, seed=0)
    yield "SpaceSaving", SpaceSaving(k=8)
    yield "FullSampleAndHold", FullSampleAndHold(
        n=N, m=M, p=2, epsilon=EPSILON, seed=0, repetitions=1
    )


def main() -> None:
    stream = zipf_stream(N, M, skew=1.2, seed=11)
    print(f"workload: Zipf stream, n={N}, m={M}\n")
    header = (
        f"{'algorithm':<20}{'writes':>9}"
        f"{'PCM life (leveled)':>20}{'NAND life (leveled)':>21}"
        f"{'PCM life (direct)':>19}"
    )
    print(header)
    print("-" * len(header))
    for name, algo in contenders():
        pcm_leveled = NVMDevice(4096, PCM, wear_leveling="round-robin")
        nand_leveled = NVMDevice(4096, NAND_FLASH, wear_leveling="round-robin")
        pcm_direct = NVMDevice(4096, PCM, wear_leveling="none")
        for device in (pcm_leveled, nand_leveled, pcm_direct):
            device.attach(algo.tracker)
        algo.process_stream(stream)
        print(
            f"{name:<20}{algo.report().total_writes:>9}"
            f"{pcm_leveled.lifetime_workloads():>20.3g}"
            f"{nand_leveled.lifetime_workloads():>21.3g}"
            f"{pcm_direct.lifetime_workloads():>19.3g}"
        )
    print(
        "\n(lifetime = how many repeats of this workload the device "
        "survives before its hottest cell exceeds endurance)"
    )


if __name__ == "__main__":
    main()
