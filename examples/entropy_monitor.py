"""Entropy monitoring for traffic anomaly detection.

Entropy of the destination distribution is a classical DDoS/port-scan
signal: normal traffic has stable entropy, an attack concentrates (or
scatters) it.  This example feeds the streaming entropy estimator
(Theorem 3.8's HNO08 construction on p-stable Morris sketches) one
normal window and one attack window and shows the detectable shift —
using far fewer memory writes than exact tracking.

Usage:  python examples/entropy_monitor.py
"""

from repro import EntropyEstimator, FrequencyVector, zipf_stream

N = 256
WINDOW = 4000


def attack_window(seed: int) -> list[int]:
    """A single destination absorbs 70% of the packets."""
    background = zipf_stream(N, WINDOW * 3 // 10, skew=1.3, seed=seed)
    return [5] * (WINDOW * 7 // 10) + background


def measure(label: str, window: list[int], seed: int) -> float:
    truth = FrequencyVector.from_stream(window).shannon_entropy()
    monitor = EntropyEstimator(
        m=len(window), k=2, node_width=0.4, num_rows=150,
        morris_a=0.008, seed=seed,
    )
    monitor.process_stream(window)
    estimate = monitor.entropy_estimate()
    report = monitor.report()
    print(f"{label:<16} H_true={truth:5.2f}  H_est={estimate:5.2f}  "
          f"writes={report.total_writes} "
          f"(exact maintenance would cost ~{report.stream_length * 300})")
    return estimate


def main() -> None:
    print(f"destination-entropy monitor, window={WINDOW} packets\n")
    normal = zipf_stream(N, WINDOW, skew=1.3, seed=21)
    h_normal = measure("normal window", normal, seed=1)
    h_attack = measure("attack window", attack_window(seed=22), seed=2)
    drop = h_normal - h_attack
    print(f"\nentropy drop: {drop:.2f} bits "
          f"-> {'ALERT (concentration anomaly)' if drop > 1.0 else 'ok'}")


if __name__ == "__main__":
    main()
