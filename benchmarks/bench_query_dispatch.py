"""Query-protocol dispatch overhead: ``query()`` vs direct calls.

The unified query protocol routes every answer through
``Sketch.query()`` — a supports-check, a handler-table lookup, and an
indirect call — on top of the family's ``_answer_*`` hook, which does
the actual work and wraps it in a typed answer.  This benchmark
separates the three layers on the cheapest query in the library
(a CountMin point query, a few microseconds of hashing) and on a
representative heavy query (Misra-Gries all-estimates):

* ``hook``     — ``sketch._answer_point(q)``: computation + typed
  answer, no dispatch;
* ``protocol`` — ``sketch.query(q)``: the full public path;
* ``legacy``   — ``sketch.estimate(item)``: the backwards-compatible
  delegate (query construction + protocol + unwrap).

The asserted bound: the *dispatch* layer (protocol vs hook) adds less
than 5% even on the cheapest query.  The full typed envelope relative
to the raw computation is reported alongside for honesty — it is the
price of returning typed answers at all, not of the dispatch.

The second section measures the **batch query plane**: ``query_many``
over a :class:`~repro.query.MultiPointQuery` against the equivalent
scalar ``query()`` loop, per family, plus the live serving read path
(``LiveEngine.query_batch`` vs a scalar ``LiveEngine.query`` loop).
Bit-identity between batch and scalar answers — and between the
off-lock serving path and an under-the-lock read at equal staleness —
is asserted **unconditionally**, quick mode included; the throughput
gate (geometric-mean speedup >= 5x over the vectorized-kernel
families) runs at full size only.  The measurements land in
``benchmarks/results/BENCH_query_throughput.json`` (committed
in-tree as a trend file).
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import time
import timeit

from repro import registry
from repro.query import AllEstimates, MultiPointQuery, PointQuery
from repro.serve import LiveEngine
from repro.streams import zipf_stream


def _paired_us(
    funcs: dict[str, "callable"],
    items,
    repeats: int = 9,
    number: int = 40,
) -> dict[str, float]:
    """Best-of-``repeats`` mean microseconds per call, per function.

    The functions' timing rounds are interleaved (A, B, C, A, B, C, …)
    so slow CPU-frequency drift hits every arm equally instead of
    biasing whichever arm ran last.
    """
    timers = {
        name: timeit.Timer(lambda f=func: [f(item) for item in items])
        for name, func in funcs.items()
    }
    best = {name: float("inf") for name in funcs}
    for _ in range(repeats):
        for name, timer in timers.items():
            best[name] = min(best[name], timer.timeit(number))
    return {
        name: value / number / len(items) * 1e6
        for name, value in best.items()
    }


def run_dispatch_bench(
    n: int = 1024,
    m: int = 20_000,
    epsilon: float = 0.1,
    seed: int = 0,
) -> dict:
    """Measure the three call paths on a cheap and a heavy query."""
    stream = zipf_stream(n, m, skew=1.2, seed=seed)

    # Cheapest query in the library: CountMin point query.
    count_min = registry.create(
        "count-min", n=n, m=m, epsilon=epsilon, seed=seed
    )
    count_min.process_many(stream)
    items = list(range(512))
    point = _paired_us(
        {
            "hook": lambda item: count_min._answer_point(PointQuery(item)),
            "protocol": lambda item: count_min.query(PointQuery(item)),
            "legacy": count_min.estimate,
        },
        items,
    )

    # Representative heavy query: Misra-Gries all-estimates over a
    # large summary (eps=0.01 -> ~200 counters).
    misra_gries = registry.create(
        "misra-gries", n=n, m=m, epsilon=0.01, seed=seed
    )
    misra_gries.process_many(stream)
    all_est = _paired_us(
        {
            "hook": lambda _: misra_gries._answer_all_estimates(
                AllEstimates()
            ),
            "protocol": lambda _: misra_gries.query(AllEstimates()),
        },
        [1] * 8,
        number=200,
    )

    return {
        "benchmark": "query_dispatch",
        "stream": {"n": n, "m": m, "epsilon": epsilon, "seed": seed},
        "results": {
            "count-min/point": {
                "hook_us": point["hook"],
                "protocol_us": point["protocol"],
                "legacy_us": point["legacy"],
                "dispatch_overhead": point["protocol"] / point["hook"] - 1.0,
            },
            "misra-gries/all-estimates": {
                "hook_us": all_est["hook"],
                "protocol_us": all_est["protocol"],
                "dispatch_overhead": (
                    all_est["protocol"] / all_est["hook"] - 1.0
                ),
            },
        },
    }


#: Families measured by the batch-vs-scalar section.  The *gated*
#: subset carries the >= 5x geomean bound: their batch kernels replace
#: per-item Python hashing (CountMin/CountSketch/CountMin-Morris) or a
#: full estimate-map rebuild per item (the sample-and-hold surfaces)
#: with one vectorized/amortized pass.  The dict-backed summaries are
#: measured and reported but not gated — their scalar path is already
#: a dict lookup, so batching only sheds the dispatch envelope.
BATCH_GATED = (
    "count-min",
    "count-sketch",
    "count-min-morris",
    "heavy-hitters",
    "adaptive-sample-and-hold",
)
BATCH_REPORTED = ("misra-gries", "space-saving", "sample-and-hold")


def _batch_pair_us(
    scalar,
    batch,
    scalar_count: int,
    batch_count: int,
    repeats: int = 7,
    scalar_number: int = 10,
    batch_number: int = 10,
) -> tuple[float, float]:
    """Best-of-``repeats`` mean microseconds per *item* for the scalar
    loop and the batch call, rounds interleaved like `_paired_us`.

    The two arms may cover different item counts and loop numbers —
    the scalar loop is timed over a calibrated subset on families
    whose per-item query rebuilds the whole estimate map (per-item
    cost is flat in the count, while a full-batch scalar arm would
    take minutes) — so each arm normalizes by its own totals.
    """
    scalar_timer = timeit.Timer(scalar)
    batch_timer = timeit.Timer(batch)
    best_scalar = best_batch = float("inf")
    for _ in range(repeats):
        best_scalar = min(
            best_scalar, scalar_timer.timeit(scalar_number)
        )
        best_batch = min(best_batch, batch_timer.timeit(batch_number))
    return (
        best_scalar * 1e6 / (scalar_number * scalar_count),
        best_batch * 1e6 / (batch_number * batch_count),
    )


def _arm_sizing(per_call_us: float, ceiling: int, budget_us: float):
    """(count, number) sized so one timing round stays near the
    budget: as many calls per round as the budget allows, capped at
    ``ceiling``, with loop repetitions only when calls are cheap."""
    count = max(1, min(ceiling, int(budget_us / max(per_call_us, 1e-3))))
    number = max(
        1, min(20, int(budget_us / max(per_call_us * count, 1e-3)))
    )
    return count, number


def run_batch_bench(
    n: int = 1024,
    m: int = 20_000,
    epsilon: float = 0.1,
    seed: int = 0,
    batch: int = 512,
    repeats: int = 7,
) -> dict:
    """Measure ``query_many`` against the scalar ``query()`` loop.

    Bit-identity between the two paths is asserted here, for every
    family and for the serving path, regardless of sizing — the
    throughput numbers are only meaningful because the answers are
    exactly the same bits.
    """
    stream = zipf_stream(n, m, skew=1.2, seed=seed)
    items = [(7919 * i) % (2 * n) for i in range(batch)]
    query = MultiPointQuery(items)
    round_budget_us = 100_000.0  # ~0.1 s per timing round and arm
    results: dict[str, dict] = {}
    for name in BATCH_GATED + BATCH_REPORTED:
        sketch = registry.create(
            name, n=n, m=m, epsilon=epsilon, seed=seed
        )
        sketch.process_many(stream)
        # The reference loop doubles as the scalar-arm calibration:
        # per-item scalar cost is flat in the count, so slow families
        # (a full estimate-map rebuild per item) get a smaller probe
        # rather than a minutes-long timing round.
        start = time.perf_counter()
        scalar_answers = tuple(
            sketch.query(PointQuery(item)) for item in items
        )
        scalar_probe_us = (
            (time.perf_counter() - start) * 1e6 / batch
        )
        assert sketch.query_many(query) == scalar_answers, name
        probe_len, scalar_number = _arm_sizing(
            scalar_probe_us, batch, round_budget_us
        )
        probe = items[:probe_len]
        start = time.perf_counter()
        sketch.query_many(query)
        batch_call_us = (time.perf_counter() - start) * 1e6
        _, batch_number = _arm_sizing(
            batch_call_us, 1, round_budget_us
        )
        scalar_us, batch_us = _batch_pair_us(
            lambda s=sketch: [s.query(PointQuery(i)) for i in probe],
            lambda s=sketch: s.query_many(query),
            probe_len,
            batch,
            repeats=repeats,
            scalar_number=scalar_number,
            batch_number=batch_number,
        )
        results[name] = {
            "scalar_us_per_item": scalar_us,
            "batch_us_per_item": batch_us,
            "speedup": scalar_us / batch_us,
            "gated": name in BATCH_GATED,
        }

    # The serving read path: one consistent cut, answered off-lock.
    engine = LiveEngine(
        "count-min",
        n=n,
        m=m,
        epsilon=epsilon,
        seed=seed,
        snapshot_every=len(stream),
        answer_cache=0,  # measure the kernel, not the memo
    )
    engine.append(stream)
    live_batch = engine.query_batch(items)
    live_scalar = [engine.query(PointQuery(item)) for item in items]
    assert [a.answer for a in live_batch] == [
        a.answer for a in live_scalar
    ]
    # Off-lock path == an under-the-lock read at equal staleness.
    with engine._lock:
        snapshot = engine._snapshot
        locked = [snapshot.answer(PointQuery(item)) for item in items]
    assert [a.answer for a in live_batch] == locked
    serve_scalar_us, serve_batch_us = _batch_pair_us(
        lambda: [engine.query(PointQuery(i)) for i in items],
        lambda: engine.query_batch(items),
        batch,
        batch,
        repeats=repeats,
        scalar_number=2,
        batch_number=10,
    )

    gated = [row["speedup"] for row in results.values() if row["gated"]]
    geomean = math.exp(sum(math.log(s) for s in gated) / len(gated))
    return {
        "benchmark": "query_throughput",
        "stream": {"n": n, "m": m, "epsilon": epsilon, "seed": seed},
        "batch": batch,
        "bit_identical": True,  # asserted above, never sampled
        "results": results,
        "serving": {
            "family": "count-min",
            "scalar_us_per_item": serve_scalar_us,
            "batch_us_per_item": serve_batch_us,
            "speedup": serve_scalar_us / serve_batch_us,
            "off_lock_equals_locked": True,  # asserted above
        },
        "geomean_gated_speedup": geomean,
    }


def format_batch_bench(payload: dict) -> str:
    """Render the batch-vs-scalar measurements as an aligned table."""
    lines = [
        "Batch query throughput — query_many vs scalar query() loop "
        f"(batch={payload['batch']}, bit-identical answers)",
        f"{'family':>26}{'scalar us':>11}{'batch us':>10}"
        f"{'speedup':>9}{'gated':>7}",
    ]
    for name, row in payload["results"].items():
        lines.append(
            f"{name:>26}{row['scalar_us_per_item']:>11.3f}"
            f"{row['batch_us_per_item']:>10.3f}"
            f"{row['speedup']:>8.1f}x"
            f"{'yes' if row['gated'] else 'no':>7}"
        )
    serving = payload["serving"]
    lines.append(
        f"{'serve:' + serving['family']:>26}"
        f"{serving['scalar_us_per_item']:>11.3f}"
        f"{serving['batch_us_per_item']:>10.3f}"
        f"{serving['speedup']:>8.1f}x{'—':>7}"
    )
    lines.append(
        f"geomean speedup (gated families): "
        f"{payload['geomean_gated_speedup']:.1f}x"
    )
    return "\n".join(lines)


def format_dispatch_bench(payload: dict) -> str:
    """Render the dispatch measurements as an aligned text table."""
    lines = [
        "Query dispatch overhead — query() vs direct hook call",
        f"{'query':>28}{'hook us':>10}{'query() us':>12}{'overhead':>10}",
    ]
    for name, row in payload["results"].items():
        lines.append(
            f"{name:>28}{row['hook_us']:>10.3f}"
            f"{row['protocol_us']:>12.3f}"
            f"{row['dispatch_overhead']:>9.1%}"
        )
    return "\n".join(lines)


def test_query_dispatch(save_result):
    quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    payload = run_dispatch_bench(m=4_000 if quick else 20_000)
    save_result("BENCH_query_dispatch_table", format_dispatch_bench(payload))
    results_path = (
        pathlib.Path(__file__).parent / "results" / "BENCH_query_dispatch.json"
    )
    results_path.write_text(json.dumps(payload, indent=2) + "\n")
    # The dispatch layer must stay under 5% even on the cheapest query.
    for name, row in payload["results"].items():
        assert row["dispatch_overhead"] < 0.05, (name, row)


def test_query_throughput(save_result):
    quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    # Bit-identity is asserted inside run_batch_bench either way;
    # quick mode only shrinks the sizing and skips the speedup gate.
    payload = run_batch_bench(
        m=4_000 if quick else 20_000,
        batch=128 if quick else 512,
        repeats=3 if quick else 7,
    )
    save_result(
        "BENCH_query_throughput_table", format_batch_bench(payload)
    )
    results_path = (
        pathlib.Path(__file__).parent
        / "results"
        / "BENCH_query_throughput.json"
    )
    if not quick:
        results_path.write_text(json.dumps(payload, indent=2) + "\n")
        assert payload["geomean_gated_speedup"] >= 5.0, payload[
            "geomean_gated_speedup"
        ]


if __name__ == "__main__":
    print(format_dispatch_bench(run_dispatch_bench()))
    print()
    print(format_batch_bench(run_batch_bench()))
