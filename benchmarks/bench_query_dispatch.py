"""Query-protocol dispatch overhead: ``query()`` vs direct calls.

The unified query protocol routes every answer through
``Sketch.query()`` — a supports-check, a handler-table lookup, and an
indirect call — on top of the family's ``_answer_*`` hook, which does
the actual work and wraps it in a typed answer.  This benchmark
separates the three layers on the cheapest query in the library
(a CountMin point query, a few microseconds of hashing) and on a
representative heavy query (Misra-Gries all-estimates):

* ``hook``     — ``sketch._answer_point(q)``: computation + typed
  answer, no dispatch;
* ``protocol`` — ``sketch.query(q)``: the full public path;
* ``legacy``   — ``sketch.estimate(item)``: the backwards-compatible
  delegate (query construction + protocol + unwrap).

The asserted bound: the *dispatch* layer (protocol vs hook) adds less
than 5% even on the cheapest query.  The full typed envelope relative
to the raw computation is reported alongside for honesty — it is the
price of returning typed answers at all, not of the dispatch.
"""

from __future__ import annotations

import json
import os
import pathlib
import timeit

from repro import registry
from repro.query import AllEstimates, PointQuery
from repro.streams import zipf_stream


def _paired_us(
    funcs: dict[str, "callable"],
    items,
    repeats: int = 9,
    number: int = 40,
) -> dict[str, float]:
    """Best-of-``repeats`` mean microseconds per call, per function.

    The functions' timing rounds are interleaved (A, B, C, A, B, C, …)
    so slow CPU-frequency drift hits every arm equally instead of
    biasing whichever arm ran last.
    """
    timers = {
        name: timeit.Timer(lambda f=func: [f(item) for item in items])
        for name, func in funcs.items()
    }
    best = {name: float("inf") for name in funcs}
    for _ in range(repeats):
        for name, timer in timers.items():
            best[name] = min(best[name], timer.timeit(number))
    return {
        name: value / number / len(items) * 1e6
        for name, value in best.items()
    }


def run_dispatch_bench(
    n: int = 1024,
    m: int = 20_000,
    epsilon: float = 0.1,
    seed: int = 0,
) -> dict:
    """Measure the three call paths on a cheap and a heavy query."""
    stream = zipf_stream(n, m, skew=1.2, seed=seed)

    # Cheapest query in the library: CountMin point query.
    count_min = registry.create(
        "count-min", n=n, m=m, epsilon=epsilon, seed=seed
    )
    count_min.process_many(stream)
    items = list(range(512))
    point = _paired_us(
        {
            "hook": lambda item: count_min._answer_point(PointQuery(item)),
            "protocol": lambda item: count_min.query(PointQuery(item)),
            "legacy": count_min.estimate,
        },
        items,
    )

    # Representative heavy query: Misra-Gries all-estimates over a
    # large summary (eps=0.01 -> ~200 counters).
    misra_gries = registry.create(
        "misra-gries", n=n, m=m, epsilon=0.01, seed=seed
    )
    misra_gries.process_many(stream)
    all_est = _paired_us(
        {
            "hook": lambda _: misra_gries._answer_all_estimates(
                AllEstimates()
            ),
            "protocol": lambda _: misra_gries.query(AllEstimates()),
        },
        [1] * 8,
        number=200,
    )

    return {
        "benchmark": "query_dispatch",
        "stream": {"n": n, "m": m, "epsilon": epsilon, "seed": seed},
        "results": {
            "count-min/point": {
                "hook_us": point["hook"],
                "protocol_us": point["protocol"],
                "legacy_us": point["legacy"],
                "dispatch_overhead": point["protocol"] / point["hook"] - 1.0,
            },
            "misra-gries/all-estimates": {
                "hook_us": all_est["hook"],
                "protocol_us": all_est["protocol"],
                "dispatch_overhead": (
                    all_est["protocol"] / all_est["hook"] - 1.0
                ),
            },
        },
    }


def format_dispatch_bench(payload: dict) -> str:
    """Render the dispatch measurements as an aligned text table."""
    lines = [
        "Query dispatch overhead — query() vs direct hook call",
        f"{'query':>28}{'hook us':>10}{'query() us':>12}{'overhead':>10}",
    ]
    for name, row in payload["results"].items():
        lines.append(
            f"{name:>28}{row['hook_us']:>10.3f}"
            f"{row['protocol_us']:>12.3f}"
            f"{row['dispatch_overhead']:>9.1%}"
        )
    return "\n".join(lines)


def test_query_dispatch(save_result):
    quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    payload = run_dispatch_bench(m=4_000 if quick else 20_000)
    save_result("BENCH_query_dispatch_table", format_dispatch_bench(payload))
    results_path = (
        pathlib.Path(__file__).parent / "results" / "BENCH_query_dispatch.json"
    )
    results_path.write_text(json.dumps(payload, indent=2) + "\n")
    # The dispatch layer must stay under 5% even on the cheapest query.
    for name, row in payload["results"].items():
        assert row["dispatch_overhead"] < 0.05, (name, row)


if __name__ == "__main__":
    print(format_dispatch_bench(run_dispatch_bench()))
