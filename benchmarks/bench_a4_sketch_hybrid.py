"""A4 — extension ablation: Morris cells inside CountMin vs the paper's
sample-and-hold.  Hybrids are write-frugal only on skew; sample-and-hold
is sublinear regardless."""

from repro.experiments.extensions import (
    format_sketch_hybrid,
    sketch_hybrid_comparison,
)


def test_sketch_hybrid(benchmark, save_result):
    rows = benchmark.pedantic(
        sketch_hybrid_comparison, kwargs={"seed": 0}, iterations=1, rounds=1
    )
    save_result("A4_sketch_hybrid", format_sketch_hybrid(rows))
    table = {(r.algorithm, r.workload): r for r in rows}

    def frac(algo, workload):
        return next(
            r.change_fraction
            for (a, w), r in table.items()
            if a.startswith(algo) and w.startswith(workload)
        )

    # Exact CountMin: linear everywhere.
    assert frac("CountMin (exact", "skewed") > 0.95
    assert frac("CountMin (exact", "uniform") > 0.95
    # Morris cells cut writes in both regimes, but the saving is
    # strongly skew-dependent (cold cells keep mutating): an order of
    # magnitude more residual writes on uniform than on skewed input.
    assert frac("CountMin (Morris", "skewed") < 0.1
    assert frac("CountMin (Morris", "uniform") > 5 * frac(
        "CountMin (Morris", "skewed"
    )
    # Sample-and-hold: sublinear on both workloads.
    assert frac("FullSampleAndHold", "skewed") < 0.6
    assert frac("FullSampleAndHold", "uniform") < 0.6
