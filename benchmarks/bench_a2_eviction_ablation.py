"""A2 — ablation: the Section 1.4 eviction-policy counterexample.

Identical SampleAndHold runs differing only in the eviction rule:
global smallest-half ([EV02, BO13, BKSV14]-style) loses the trickling
true heavy hitter to persistent pseudo-heavy counters; the paper's
dyadic age-bucketed maintenance keeps it.
"""

from repro.experiments import eviction_ablation, format_eviction_ablation


def test_eviction_ablation(benchmark, save_result):
    rows = benchmark.pedantic(
        eviction_ablation,
        kwargs={"trials": 8, "seed": 0},
        iterations=1,
        rounds=1,
    )
    save_result("A2_eviction_ablation", format_eviction_ablation(rows))
    by_policy = {row.policy: row for row in rows}
    paper = by_policy["age-bucketed (paper)"]
    naive = by_policy["global smallest (naive)"]
    assert paper.detection_rate >= 0.85
    assert naive.detection_rate <= 0.5
    assert paper.mean_heavy_estimate > 2 * naive.mean_heavy_estimate
