"""E1 — Theorem 1.1 shape: heavy-hitter state changes scale as
``~n^{1-1/p}``.

Sweeps the universe size for several ``p`` and fits the log-log slope
of the measured state-change counts; the paper predicts exponent
``1 - 1/p`` up to logarithmic factors (which push the measured slope
slightly above the clean exponent at laptop scale).
"""

import pytest

from repro.experiments import heavy_hitter_scaling

NS = (2**10, 2**12, 2**14, 2**16)


@pytest.mark.parametrize("p", [1.5, 2.0, 3.0])
def test_hh_state_change_scaling(benchmark, save_result, p):
    result = benchmark.pedantic(
        heavy_hitter_scaling,
        kwargs={"p": p, "ns": NS, "epsilon": 1.0, "seed": 0},
        iterations=1,
        rounds=1,
    )
    save_result(f"E1_hh_scaling_p{p}", result.format("E1"))
    # Shape: measured exponent within +-0.4 of 1 - 1/p (log factors
    # and saturation at small n account for the band width).
    assert abs(result.fitted_slope - result.theory_slope) < 0.4


def test_hh_scaling_orders_by_p(benchmark, save_result):
    """Larger p => more state changes (exponent 1 - 1/p increases)."""

    def run():
        return {
            p: heavy_hitter_scaling(p=p, ns=(2**12, 2**16), epsilon=1.0, seed=1)
            for p in (1.5, 3.0)
        }

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    text = "\n\n".join(
        results[p].format(f"E1 order check p={p}") for p in sorted(results)
    )
    save_result("E1_hh_scaling_order", text)
    assert (
        results[3.0].state_changes[-1] > results[1.5].state_changes[-1]
    )
