"""E3 — Theorem 1.3 guarantee: ``|Fp_hat - Fp| <= eps * Fp`` with
probability >= 2/3, for the sample-and-hold backend and the oracle
backend (which isolates the level-set machinery).
"""

import pytest

from repro.experiments import fp_accuracy


@pytest.mark.parametrize("p", [1.0, 1.5, 2.0])
def test_fp_accuracy_oracle(benchmark, save_result, p):
    stats = benchmark.pedantic(
        fp_accuracy,
        kwargs={
            "n": 1024,
            "m": 8192,
            "p": p,
            "epsilon_target": 0.5,
            "trials": 8,
            "backend": "oracle",
            "seed": 0,
        },
        iterations=1,
        rounds=1,
    )
    save_result(f"E3_fp_accuracy_oracle_p{p}", stats.format())
    assert stats.success_rate >= 2 / 3


@pytest.mark.parametrize("p", [2.0])
def test_fp_accuracy_sample_hold(benchmark, save_result, p):
    stats = benchmark.pedantic(
        fp_accuracy,
        kwargs={
            "n": 1024,
            "m": 8192,
            "p": p,
            "epsilon_target": 0.75,
            "trials": 8,
            "backend": "sample-hold",
            "seed": 1,
        },
        iterations=1,
        rounds=1,
    )
    save_result(f"E3_fp_accuracy_samplehold_p{p}", stats.format())
    # The streaming backend is noisier at laptop scale; the paper's
    # 2/3 success probability is checked against the wider eps target.
    assert stats.success_rate >= 0.5
