"""Live serving: online queries/sec at a fixed ingest rate.

The serving plane's promise is that interleaving queries with ingest
costs neither correctness nor much throughput: answers come from
periodic merged snapshots (cadence ``snapshot_every``), so a query
never re-scans the stream, and the snapshot a query hits is
bit-identical to a fresh batch run over the same stream prefix.

This benchmark drives :func:`repro.serve.generate_load` — a fixed
append size with a fixed number of point/scalar queries interleaved
after every append — over representative families and records ingest
items/sec, queries/sec, and the staleness distribution the query mix
observed.  Alongside the timings it re-checks the consistency
contract unconditionally: a mid-stream snapshot's serialized state
must equal a fresh batch run over the same prefix, bit for bit.

A second section measures the cost of freshness: the same load with
``max_staleness=0`` (every query forces a head snapshot) against the
default cadence-stale answers, reporting the queries/sec ratio.

Setting ``REPRO_BENCH_QUICK=1`` shrinks the stream (used by the
scheduled CI benchmark job); the ``BENCH_serving.json`` trend file is
committed to the repo so the trajectory is visible in-tree.
"""

from __future__ import annotations

import json
import os

from repro.runtime.sharded import ShardedRunner
from repro.serve import LiveEngine, generate_load
from repro.streams import zipf_stream

#: Families the serving loop is measured on: array-backed point
#: estimates, exact dict baseline, and a scalar (distinct) estimator.
SKETCHES = ("count-min", "exact", "kmv")


def _quick(m: int, floor: int = 20_000) -> int:
    """Shrink a stream length when REPRO_BENCH_QUICK is set."""
    if os.environ.get("REPRO_BENCH_QUICK"):
        return max(floor, m // 10)
    return m


def _snapshot_matches_batch(
    name: str,
    stream,
    cut: int,
    n: int,
    epsilon: float,
    seed: int,
    snapshot_every: int,
) -> bool:
    """Mid-stream snapshot ≡ fresh batch run over the same prefix."""
    live = LiveEngine(
        name,
        n=n,
        m=len(stream),
        epsilon=epsilon,
        seed=seed,
        snapshot_every=snapshot_every,
    )
    # Deliberately awkward append sizes: the cadence must not care.
    live.append(stream[: cut // 3])
    live.append(stream[cut // 3 : cut + 17])
    snapshot = live.snapshot()
    assert snapshot.update_index == cut
    batch = ShardedRunner.from_registry(
        name, 1, n=n, m=len(stream), epsilon=epsilon, seed=seed
    )
    batch.ingest(stream[:cut])
    return json.dumps(
        snapshot.sketch.to_state(), sort_keys=True
    ) == json.dumps(batch.merge().to_state(), sort_keys=True)


def run_serving(
    m: int = 200_000,
    n: int = 4096,
    epsilon: float = 0.1,
    skew: float = 1.2,
    seed: int = 0,
    snapshot_every: int = 8192,
    append_size: int = 2048,
    queries_per_append: int = 16,
    sketches: tuple[str, ...] = SKETCHES,
) -> dict:
    """Measure the serving loop on each family over one Zipf stream.

    Every family sees the identical stream and the identical load
    shape (append ``append_size`` items, answer ``queries_per_append``
    queries, repeat), so the rows are comparable.  The consistency
    column is checked on a fresh engine at the cadence cut nearest the
    stream's midpoint.
    """
    stream = zipf_stream(n, m, skew=skew, seed=seed)
    items = stream.materialize()
    cut = (m // 2 // snapshot_every) * snapshot_every or snapshot_every
    results: dict[str, dict] = {}
    consistent = True
    for name in sketches:
        matches = _snapshot_matches_batch(
            name, items, cut, n, epsilon, seed, snapshot_every
        )
        consistent = consistent and matches

        engine = LiveEngine(
            name,
            n=n,
            m=m,
            epsilon=epsilon,
            seed=seed,
            snapshot_every=snapshot_every,
        )
        report = generate_load(
            engine,
            items,
            append_size=append_size,
            queries_per_append=queries_per_append,
            seed=seed,
        )
        results[name] = {
            "items": report.items,
            "queries": report.queries,
            "items_per_sec": report.items_per_s,
            "queries_per_sec": report.queries_per_s,
            "snapshots": report.snapshots,
            "mean_staleness": report.mean_staleness,
            "max_staleness": report.max_staleness,
            "query_mix": report.query_mix,
            "snapshot_matches_batch": matches,
        }
    return {
        "benchmark": "serving",
        "stream": {"n": n, "m": m, "skew": skew, "seed": seed},
        "snapshot_every": snapshot_every,
        "append_size": append_size,
        "queries_per_append": queries_per_append,
        "consistency_cut": cut,
        "results": results,
        "snapshots_match_batch": consistent,
    }


def run_freshness_cost(
    m: int = 100_000,
    n: int = 4096,
    epsilon: float = 0.1,
    skew: float = 1.2,
    seed: int = 0,
    snapshot_every: int = 8192,
    append_size: int = 2048,
    queries_per_append: int = 8,
    sketch: str = "count-min",
) -> dict:
    """Cadence-stale answers vs forced-fresh (``max_staleness=0``).

    Both arms run the identical load over the identical stream; the
    fresh arm pays a head snapshot (copy + merge) per append batch, so
    its queries/sec bounds the price of exactness the cadence design
    avoids.
    """
    stream = zipf_stream(n, m, skew=skew, seed=seed)
    items = stream.materialize()

    def arm(max_staleness):
        engine = LiveEngine(
            sketch,
            n=n,
            m=m,
            epsilon=epsilon,
            seed=seed,
            snapshot_every=snapshot_every,
        )
        return generate_load(
            engine,
            items,
            append_size=append_size,
            queries_per_append=queries_per_append,
            max_staleness=max_staleness,
            seed=seed,
        )

    stale = arm(None)
    fresh = arm(0)
    return {
        "benchmark": "serving-freshness-cost",
        "sketch": sketch,
        "stream": {"n": n, "m": m, "skew": skew, "seed": seed},
        "snapshot_every": snapshot_every,
        "stale_queries_per_sec": stale.queries_per_s,
        "fresh_queries_per_sec": fresh.queries_per_s,
        "stale_over_fresh": (
            stale.queries_per_s / fresh.queries_per_s
            if fresh.queries_per_s
            else float("inf")
        ),
        "stale_mean_staleness": stale.mean_staleness,
        "fresh_max_staleness": fresh.max_staleness,
    }


def format_serving(payload: dict) -> str:
    """Render the serving measurements as an aligned text table."""
    lines = [
        f"Live serving — ingest + online queries "
        f"(zipf, cadence={payload['snapshot_every']}, "
        f"{payload['queries_per_append']} queries per "
        f"{payload['append_size']}-item append)",
        f"{'sketch':>12}{'ingest it/s':>14}{'queries/s':>12}"
        f"{'snapshots':>11}{'mean stale':>12}{'consistent':>12}",
    ]
    for name, row in payload["results"].items():
        lines.append(
            f"{name:>12}{row['items_per_sec']:>14.0f}"
            f"{row['queries_per_sec']:>12.0f}{row['snapshots']:>11}"
            f"{row['mean_staleness']:>12.0f}"
            f"{str(row['snapshot_matches_batch']):>12}"
        )
    lines.append(
        f"snapshot == fresh batch over same prefix: "
        f"{payload['snapshots_match_batch']} "
        f"(checked at update {payload['consistency_cut']})"
    )
    return "\n".join(lines)


def format_freshness_cost(payload: dict) -> str:
    """Render the freshness-cost comparison as aligned text."""
    return "\n".join([
        f"Freshness cost — cadence-stale vs max_staleness=0 "
        f"({payload['sketch']}, cadence={payload['snapshot_every']})",
        f"{'stale q/s':>12}{'fresh q/s':>12}{'stale/fresh':>13}"
        f"{'mean stale':>12}",
        f"{payload['stale_queries_per_sec']:>12.0f}"
        f"{payload['fresh_queries_per_sec']:>12.0f}"
        f"{payload['stale_over_fresh']:>13.2f}"
        f"{payload['stale_mean_staleness']:>12.0f}",
    ])


def test_serving(save_result):
    payload = run_serving(m=_quick(200_000))
    payload["freshness"] = run_freshness_cost(
        m=_quick(100_000, floor=20_000)
    )
    save_result("BENCH_serving_table", format_serving(payload))
    save_result(
        "BENCH_serving_freshness_table",
        format_freshness_cost(payload["freshness"]),
    )
    results_path = (
        __import__("pathlib").Path(__file__).parent
        / "results"
        / "BENCH_serving.json"
    )
    results_path.write_text(json.dumps(payload, indent=2) + "\n")
    # The consistency contract is unconditional: a mid-stream snapshot
    # answers from exactly the state a fresh batch run over the same
    # prefix would hold — in quick mode too.
    assert payload["snapshots_match_batch"], payload
    for name, row in payload["results"].items():
        assert row["snapshot_matches_batch"], (name, row)
        # The load generator must have exercised both planes.
        assert row["queries"] > 0 and row["items"] > 0, (name, row)
        # Staleness is bounded by the cadence plus one append batch.
        assert row["max_staleness"] < (
            payload["snapshot_every"] + payload["append_size"]
        ), (name, row)
    # Freshness semantics are structural: the forced-fresh arm must
    # observe zero staleness, the cadence arm real staleness.  The
    # rate ratio is recorded for the trend file but only loosely
    # bounded — on cheap-to-copy families the two arms sit within
    # run-to-run jitter of each other, so a >= 1.0 gate would flake.
    assert payload["freshness"]["fresh_max_staleness"] == 0, payload
    assert payload["freshness"]["stale_mean_staleness"] > 0, payload
    if not os.environ.get("REPRO_BENCH_QUICK"):
        assert payload["freshness"]["stale_over_fresh"] >= 0.5, payload


if __name__ == "__main__":
    payload = run_serving()
    print(format_serving(payload))
    print()
    print(format_freshness_cost(run_freshness_cost()))
