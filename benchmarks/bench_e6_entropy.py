"""E6 — Theorem 3.8: additive-error entropy estimation.

Two configurations: the oracle backend isolates the HNO08 interpolation
machinery (errors << 0.1 bits), and the streaming p-stable backend
measures the end-to-end additive error of the write-frugal estimator
(coarser at laptop scale; see EXPERIMENTS.md for the gap discussion).
"""

from repro.experiments import entropy_accuracy


def test_entropy_oracle_machinery(benchmark, save_result):
    stats = benchmark.pedantic(
        entropy_accuracy,
        kwargs={
            "n": 256,
            "m": 4000,
            "skew": 1.5,
            "additive_target": 0.2,
            "trials": 5,
            "backend": "oracle",
            "seed": 0,
        },
        iterations=1,
        rounds=1,
    )
    save_result("E6_entropy_oracle", stats.format())
    assert stats.success_rate >= 0.8


def test_entropy_streaming(benchmark, save_result):
    stats = benchmark.pedantic(
        entropy_accuracy,
        kwargs={
            "n": 256,
            "m": 4000,
            "skew": 1.5,
            "additive_target": 1.0,
            "num_rows": 150,
            "trials": 5,
            "backend": "pstable",
            "seed": 1,
        },
        iterations=1,
        rounds=1,
    )
    save_result("E6_entropy_streaming", stats.format())
    # Streaming additive error target (1 bit) achieved on most trials.
    # (With hundreds of Morris rows, *some* row bumps on almost every
    # update, so the per-timestep change indicator saturates; the
    # write-frugality of the sketch is asserted per-counter in E5.)
    assert stats.success_rate >= 0.6
