"""E9 — Theorem 1.1 space shape: peak words scale like ``n^{1-2/p}``
for ``p > 2`` and stay polylogarithmic for ``p in [1, 2]``.

(The paper's space bounds; the reservoir/budget provisioning carries
the `log(nm)` factors, so the `p = 2` row drifts slowly rather than
being flat.)
"""

from repro.core import FullSampleAndHold
from repro.experiments import loglog_slope
from repro.streams import zipf_stream

NS = (2**10, 2**12, 2**14, 2**16)


def _peak_words(p, n, seed):
    m = 4 * n
    algo = FullSampleAndHold(
        n=n, m=m, p=p, epsilon=1.0, seed=seed, repetitions=1
    )
    algo.process_stream(zipf_stream(n, m, skew=1.05, seed=seed))
    return algo.report().peak_words


def test_space_scaling(benchmark, save_result):
    def run():
        return {
            p: [_peak_words(p, n, seed=i) for i, n in enumerate(NS)]
            for p in (2.0, 4.0)
        }

    peaks = benchmark.pedantic(run, iterations=1, rounds=1)
    slopes = {p: loglog_slope(NS, values) for p, values in peaks.items()}
    lines = ["E9 space scaling: peak words vs n (m = 4n, eps = 1)"]
    for p, values in peaks.items():
        theory = max(0.0, 1.0 - 2.0 / p)
        lines.append(
            f"  p={p}: peaks {values} -> slope {slopes[p]:.3f} "
            f"(theory n^{{1-2/p}} = {theory:.3f} + polylog drift)"
        )
    save_result("E9_space_scaling", "\n".join(lines))
    # Shape: p=4 needs polynomially growing space, p=2 only polylog
    # drift; and both stay far below linear.
    assert slopes[4.0] > slopes[2.0]
    assert slopes[2.0] < 0.45
    assert slopes[4.0] < 0.95