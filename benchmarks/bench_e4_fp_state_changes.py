"""E4 — Theorem 1.3 shape: Fp-estimator state changes scale as
``~n^{1-1/p}`` (sublinear in the stream length)."""

import pytest

from repro.experiments import fp_scaling

NS = (2**10, 2**12, 2**14)


@pytest.mark.parametrize("p", [2.0, 3.0])
def test_fp_state_change_scaling(benchmark, save_result, p):
    result = benchmark.pedantic(
        fp_scaling,
        kwargs={"p": p, "ns": NS, "epsilon": 1.0, "seed": 0},
        iterations=1,
        rounds=1,
    )
    save_result(f"E4_fp_scaling_p{p}", result.format("E4"))
    # Sublinear growth: the measured exponent must stay well below 1
    # (an exact/sketch baseline would grow with slope 1 in n ~ m/4).
    assert result.fitted_slope < 0.95
    assert result.state_changes[-1] > result.state_changes[0]
