"""E5 — Theorem 3.2: Fp for p < 1 via p-stable sketches maintained by
weighted Morris counters — accuracy plus state changes that grow only
polylogarithmically with the stream length."""

import pytest

from repro.core.fp_pstable import PStableFpEstimator
from repro.experiments import pstable_accuracy
from repro.streams import uniform_stream


@pytest.mark.parametrize("p", [0.25, 0.5])
def test_pstable_accuracy(benchmark, save_result, p):
    stats = benchmark.pedantic(
        pstable_accuracy,
        kwargs={
            "n": 256,
            "m": 4096,
            "p": p,
            "epsilon_target": 0.3,
            "num_rows": 100,
            "trials": 6,
            "seed": 0,
        },
        iterations=1,
        rounds=1,
    )
    save_result(f"E5_pstable_accuracy_p{p}", stats.format())
    assert stats.success_rate >= 2 / 3


def test_pstable_state_changes_flat_in_m(benchmark, save_result):
    """Quadrupling m should grow state changes by far less than 4x."""

    def run():
        counts = {}
        for m in (4000, 16000):
            algo = PStableFpEstimator(p=0.5, num_rows=40, seed=1)
            algo.process_stream(uniform_stream(200, m, seed=1))
            counts[m] = algo.state_changes
        return counts

    counts = benchmark.pedantic(run, iterations=1, rounds=1)
    lines = ["E5 state changes vs m (p=0.5, 40 rows):"]
    for m, c in counts.items():
        lines.append(f"  m={m:>6}: state changes {c} ({c / m:.3f}/update)")
    save_result("E5_pstable_state_changes", "\n".join(lines))
    assert counts[16000] < 2.5 * counts[4000]
