"""Snapshot refresh: memoized incremental merge tree vs full rebuild.

The incremental snapshot plane's promise is that a refresh costs what
*changed*, not what *exists*: with ``k`` of ``S`` shards dirty since
the last cut, the memoized merge tree re-clones ``k`` leaves and
re-merges ``O(k log S)`` nodes instead of copying and reducing all
``S`` shards.  This benchmark measures that promise in its sweet spot
— a heavy pre-ingested state, then repeated refreshes with exactly
one dirty shard — and records the refresh latency distribution (p50 /
p99) for both snapshot modes plus their speedup, **gated at >= 3x**.
Bit-identity between the two modes is asserted on every single
refresh; a fast wrong snapshot counts for nothing.

A second section measures the serving engine's append stall: cadence
refreshes now capture only a cheap epoch cut under the ingest lock
and run the merge after release, so the time appends hold the lock no
longer includes merge work.  The report compares the measured in-lock
time against what the legacy design would have held (in-lock time +
merge time) and records the reduction.

Setting ``REPRO_BENCH_QUICK=1`` shrinks the stream (used by the CI
benchmark job); the ``BENCH_snapshot_refresh.json`` trend file is
committed to the repo so the trajectory is visible in-tree.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.runtime.sharded import ShardedRunner
from repro.serve import LiveEngine
from repro.streams import zipf_stream


def _quick(m: int, floor: int = 40_000) -> int:
    """Shrink a stream length when REPRO_BENCH_QUICK is set."""
    if os.environ.get("REPRO_BENCH_QUICK"):
        return max(floor, m // 10)
    return m


def _percentile(samples: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples), q))


def _timing_row(samples_s: list[float]) -> dict:
    """p50/p99/mean/max of a latency sample list, in milliseconds."""
    ms = [s * 1000.0 for s in samples_s]
    return {
        "p50_ms": _percentile(ms, 50),
        "p99_ms": _percentile(ms, 99),
        "mean_ms": float(np.mean(ms)),
        "max_ms": max(ms),
        "samples": len(ms),
    }


def run_refresh_speedup(
    m: int = 400_000,
    n: int = 4096,
    epsilon: float = 0.05,
    skew: float = 1.2,
    seed: int = 0,
    shards: int = 8,
    rounds: int = 25,
    sketch: str = "count-min",
) -> dict:
    """Refresh latency with 1-of-``shards`` dirty, both modes.

    Both runners pre-ingest the identical stream and take one warm-up
    snapshot.  Each round then appends a small batch routed entirely
    to **one** shard (items filtered by the runner's own partition
    hash) and times ``merged_snapshot()`` in each mode; the two
    snapshots' serialized states are compared bit for bit every
    round.
    """
    stream = zipf_stream(n, m, skew=skew, seed=seed).materialize()
    runners = {
        mode: ShardedRunner.from_registry(
            sketch,
            shards,
            n=n,
            m=m,
            epsilon=epsilon,
            seed=seed,
            snapshot_mode=mode,
        )
        for mode in ("incremental", "full")
    }
    for runner in runners.values():
        runner.ingest(stream)
        runner.merged_snapshot()  # warm the caches / level the field

    # Items that all route to one shard: the per-round dirty set.
    probe = runners["incremental"]
    target = probe.shard_of(0)
    dirty_pool = np.asarray(
        [item for item in range(n) if probe.shard_of(item) == target],
        dtype=np.int64,
    )[:64]

    times: dict[str, list[float]] = {"incremental": [], "full": []}
    identical = True
    for _ in range(rounds):
        states = {}
        for mode, runner in runners.items():
            runner.ingest(dirty_pool)
            started = time.perf_counter()
            merged = runner.merged_snapshot()
            times[mode].append(time.perf_counter() - started)
            states[mode] = json.dumps(merged.to_state(), sort_keys=True)
        identical = identical and (
            states["incremental"] == states["full"]
        )

    speedup_p50 = _percentile(times["full"], 50) / max(
        _percentile(times["incremental"], 50), 1e-9
    )
    speedup_mean = float(
        np.mean(times["full"]) / max(np.mean(times["incremental"]), 1e-9)
    )
    return {
        "benchmark": "snapshot-refresh",
        "sketch": sketch,
        "stream": {"n": n, "m": m, "skew": skew, "seed": seed},
        "shards": shards,
        "rounds": rounds,
        "dirty_shards_per_round": 1,
        "refresh": {
            mode: _timing_row(samples)
            for mode, samples in times.items()
        },
        "snapshot_stats": {
            mode: runner.snapshot_stats()
            for mode, runner in runners.items()
        },
        "speedup_p50": speedup_p50,
        "speedup_mean": speedup_mean,
        "bit_identical": identical,
    }


def run_append_stall(
    m: int = 200_000,
    n: int = 4096,
    epsilon: float = 0.05,
    skew: float = 1.2,
    seed: int = 0,
    shards: int = 8,
    snapshot_every: int = 8192,
    append_size: int = 2048,
) -> dict:
    """In-lock append time now vs the legacy in-lock-merge design.

    The engine's ``stats()`` separate the time appends spend holding
    the ingest lock (routing + shard ingest + epoch cuts) from the
    merge time, which now runs after the lock is released.  The
    legacy engine ran those merges *inside* ``append``'s lock hold,
    so ``in_lock + merge`` is exactly what it would have held — the
    reduction column is measured, not modeled.
    """
    stream = zipf_stream(n, m, skew=skew, seed=seed).materialize()
    arms = {}
    for mode in ("incremental", "full"):
        engine = LiveEngine(
            "count-min",
            n=n,
            m=m,
            epsilon=epsilon,
            seed=seed,
            shards=shards,
            snapshot_every=snapshot_every,
            snapshot_mode=mode,
        )
        for low in range(0, len(stream), append_size):
            engine.append(stream[low : low + append_size])
        engine.finish()
        stats = engine.stats()
        in_lock = stats["append_lock_held_ms"]
        merge = stats["refresh_mean_ms"] * stats["refresh_count"]
        arms[mode] = {
            "append_lock_held_ms": in_lock,
            "append_lock_wait_ms": stats["append_lock_wait_ms"],
            "off_lock_merge_ms": merge,
            "legacy_equivalent_hold_ms": in_lock + merge,
            "hold_reduction": (in_lock + merge) / in_lock
            if in_lock
            else float("inf"),
            "refresh_count": stats["refresh_count"],
            "refresh_mean_ms": stats["refresh_mean_ms"],
            "refresh_max_ms": stats["refresh_max_ms"],
        }
    return {
        "benchmark": "snapshot-append-stall",
        "stream": {"n": n, "m": m, "skew": skew, "seed": seed},
        "shards": shards,
        "snapshot_every": snapshot_every,
        "append_size": append_size,
        "arms": arms,
    }


def format_snapshot_refresh(payload: dict) -> str:
    """Render the refresh measurements as an aligned text table."""
    lines = [
        f"Snapshot refresh — memoized incremental vs full rebuild "
        f"({payload['sketch']}, {payload['shards']} shards, "
        f"{payload['dirty_shards_per_round']} dirty per round)",
        f"{'mode':>14}{'p50 ms':>10}{'p99 ms':>10}{'mean ms':>10}"
        f"{'max ms':>10}",
    ]
    for mode, row in payload["refresh"].items():
        lines.append(
            f"{mode:>14}{row['p50_ms']:>10.3f}{row['p99_ms']:>10.3f}"
            f"{row['mean_ms']:>10.3f}{row['max_ms']:>10.3f}"
        )
    lines.append(
        f"speedup: p50 {payload['speedup_p50']:.1f}x, "
        f"mean {payload['speedup_mean']:.1f}x "
        f"(bit-identical: {payload['bit_identical']})"
    )
    stall = payload["append_stall"]["arms"]["incremental"]
    lines.append(
        f"append in-lock time {stall['append_lock_held_ms']:.1f}ms vs "
        f"legacy in-lock-merge {stall['legacy_equivalent_hold_ms']:.1f}ms "
        f"({stall['hold_reduction']:.2f}x reduction)"
    )
    return "\n".join(lines)


def test_snapshot_refresh(save_result):
    payload = run_refresh_speedup(m=_quick(400_000))
    payload["append_stall"] = run_append_stall(
        m=_quick(200_000, floor=40_000)
    )
    save_result(
        "BENCH_snapshot_refresh_table", format_snapshot_refresh(payload)
    )
    results_path = (
        pathlib.Path(__file__).parent
        / "results"
        / "BENCH_snapshot_refresh.json"
    )
    results_path.write_text(json.dumps(payload, indent=2) + "\n")
    # Bit-identity is unconditional: the incremental plane must match
    # the full rebuild on every refresh, in quick mode too.
    assert payload["bit_identical"], payload
    # With 1 of S shards dirty the memoized tree re-merges one root
    # path instead of rebuilding everything — the refresh must be at
    # least 3x faster at the median.
    assert payload["speedup_p50"] >= 3.0, payload["refresh"]
    # The memoization must actually be memoizing: per round, one leaf
    # cloned and log2(shards) nodes rebuilt, the rest served cached.
    stats = payload["snapshot_stats"]["incremental"]
    assert stats["leaves_reused"] > 0 and stats["nodes_reused"] > 0, stats
    assert payload["snapshot_stats"]["full"]["full_rebuilds"] > 0
    # Append-stall: the merge work measurably left the lock hold.
    for mode, arm in payload["append_stall"]["arms"].items():
        assert arm["off_lock_merge_ms"] > 0.0, (mode, arm)
        assert (
            arm["legacy_equivalent_hold_ms"] > arm["append_lock_held_ms"]
        ), (mode, arm)


if __name__ == "__main__":
    payload = run_refresh_speedup()
    payload["append_stall"] = run_append_stall()
    print(format_snapshot_refresh(payload))
