"""E7 — Theorems 1.2/1.4: the distinguishing game's budget threshold.

Sweeping the write budget ``B = c * n^{1-1/p}`` traces the lower
bound's knee: advantage ~0 for ``c << 1`` rising toward 1 for
``c >> 1``.
"""

from repro.experiments import budget_advantage_curve, format_budget_curve

N = 4096
P = 2.0


def test_budget_advantage_curve(benchmark, save_result):
    points = benchmark.pedantic(
        budget_advantage_curve,
        kwargs={
            "n": N,
            "p": P,
            "budget_factors": (0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
            "trials": 25,
            "seed": 0,
        },
        iterations=1,
        rounds=1,
    )
    save_result("E7_lower_bound_curve", format_budget_curve(points, N, P))
    by_factor = {pt.budget_factor: pt for pt in points}
    # Below the threshold: near coin flipping.  Above: reliable.
    assert by_factor[0.125].accuracy < 0.7
    assert by_factor[8.0].accuracy > 0.85
    # The strawman's measured state changes track its budget.
    assert by_factor[1.0].mean_state_changes < 4 * by_factor[1.0].budget
