"""E8 — Theorem 1.5: the Morris counter's accuracy / state-change
trade-off (counting to 50k with 4 growth parameters)."""

from repro.experiments import format_morris_tradeoff, morris_tradeoff


def test_morris_tradeoff(benchmark, save_result):
    rows = benchmark.pedantic(
        morris_tradeoff,
        kwargs={
            "count": 50_000,
            "a_values": (0.5, 0.125, 0.03, 0.008),
            "trials": 8,
            "seed": 0,
        },
        iterations=1,
        rounds=1,
    )
    save_result("E8_morris_tradeoff", format_morris_tradeoff(rows))
    # Monotone trade-off: smaller a => more writes, less error.
    changes = [row.mean_state_changes for row in rows]
    assert changes == sorted(changes)
    # Every configuration is exponentially cheaper than exact counting.
    assert all(row.mean_state_changes < 0.1 * row.count for row in rows)
    # And the coarsest setting still lands within ~3x of the truth.
    assert rows[0].mean_rel_error < 2.0
