"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one paper artifact (Table 1 or a theorem-
shaped experiment; see DESIGN.md Section 4).  The formatted result
table is written to ``benchmarks/results/<id>.txt`` so that it survives
pytest's stdout capture, and also printed for ``-s`` runs.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_result():
    """Write a formatted experiment table to the results directory."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(experiment_id: str, text: str) -> None:
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
