"""A1 — ablation: exact vs Morris hold-counters inside SampleAndHold
(the accuracy/state-change trade Theorem 1.5 buys)."""

from repro.experiments import counter_ablation, format_counter_ablation


def test_counter_ablation(benchmark, save_result):
    rows = benchmark.pedantic(
        counter_ablation,
        kwargs={"n": 1024, "m": 30000, "trials": 5, "seed": 0},
        iterations=1,
        rounds=1,
    )
    save_result("A1_counter_ablation", format_counter_ablation(rows))
    by_kind = {row.counter_kind: row for row in rows}
    # Morris counters cut state changes by a large factor ...
    assert (
        by_kind["morris"].mean_state_changes
        < 0.5 * by_kind["exact"].mean_state_changes
    )
    # ... at a bounded accuracy cost on the heaviest item.
    assert by_kind["exact"].mean_heavy_rel_error < 0.01
    assert by_kind["morris"].mean_heavy_rel_error < 0.8
