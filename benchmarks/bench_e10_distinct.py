"""E10 — extension: KMV distinct elements.  State changes grow like
``k log F0`` (independent of m) while the F0 estimate stays within
``~1/sqrt(k)``."""

from repro.experiments.extensions import format_kmv, kmv_experiment


def test_kmv_distinct(benchmark, save_result):
    result = benchmark.pedantic(
        kmv_experiment,
        kwargs={
            "n": 30_000,
            "ms": (20_000, 80_000),
            "k": 256,
            "trials": 5,
            "seed": 0,
        },
        iterations=1,
        rounds=1,
    )
    save_result("E10_kmv_distinct", format_kmv(result))
    assert result.median_rel_error < 0.2
    changes = result.mean_state_changes_by_m
    # Quadrupling m grows record events by far less than 4x.
    assert changes[80_000] < 1.8 * changes[20_000]
    # And the absolute count is a tiny fraction of the stream.
    assert changes[80_000] < 0.1 * 80_000
