"""E2 — Theorem 1.1 guarantee: ``||fhat - f||_inf <= (eps/2)||f||_p``
with probability >= 2/3, measured as a success rate over trials.
"""

from repro.experiments import heavy_hitter_accuracy


def test_hh_accuracy_p2(benchmark, save_result):
    stats = benchmark.pedantic(
        heavy_hitter_accuracy,
        kwargs={
            "n": 1024,
            "m": 16384,
            "p": 2.0,
            "epsilon": 0.5,
            "trials": 10,
            "seed": 0,
        },
        iterations=1,
        rounds=1,
    )
    save_result("E2_hh_accuracy_p2", stats.format())
    # Paper's guarantee is probability >= 2/3.
    assert stats.success_rate >= 2 / 3


def test_hh_accuracy_p1(benchmark, save_result):
    stats = benchmark.pedantic(
        heavy_hitter_accuracy,
        kwargs={
            "n": 1024,
            "m": 16384,
            "p": 1.0,
            "epsilon": 0.5,
            "trials": 10,
            "seed": 1,
        },
        iterations=1,
        rounds=1,
    )
    save_result("E2_hh_accuracy_p1", stats.format())
    assert stats.success_rate >= 2 / 3
