"""A3 — the motivating NVM consequence: device lifetime under each
algorithm's measured write trace on a simulated PCM device (the paper's
Section 1.1 motivation, quantified)."""

from repro.experiments import format_nvm_wear, nvm_wear_comparison


def test_nvm_wear(benchmark, save_result):
    rows = benchmark.pedantic(
        nvm_wear_comparison,
        kwargs={"n": 8192, "m": 65536, "epsilon": 0.5, "seed": 0},
        iterations=1,
        rounds=1,
    )
    save_result("A3_nvm_wear", format_nvm_wear(rows))

    def lifetime(algorithm, policy):
        return next(
            row.lifetime_workloads
            for row in rows
            if row.algorithm == algorithm and row.wear_policy == policy
        )

    # With ideal wear leveling, lifetime is governed by total writes:
    # the paper's algorithm outlives every classical baseline.
    for baseline in ("Misra-Gries", "CountMin", "SpaceSaving"):
        assert lifetime("FullSampleAndHold", "round-robin") > lifetime(
            baseline, "round-robin"
        )
    # Wear leveling never reduces lifetime.
    for row in rows:
        if row.wear_policy == "none":
            assert lifetime(row.algorithm, "round-robin") >= row.lifetime_workloads
