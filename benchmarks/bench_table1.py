"""T1 — regenerate Table 1: state changes of classical heavy-hitter
algorithms vs the paper's FullSampleAndHold.

Paper's claim: Misra-Gries / CountMin / SpaceSaving / CountSketch make
``O(m)`` state changes; the paper's algorithm makes ``Õ(n^{1-1/p})``.
"""

from repro.experiments import format_table1, run_table1

N = 2**14
M = 2**17


def test_table1(benchmark, save_result):
    rows = benchmark.pedantic(
        run_table1,
        kwargs={"n": N, "m": M, "epsilon": 0.5, "seed": 0},
        iterations=1,
        rounds=1,
    )
    save_result("T1_table1", format_table1(rows, N, M))

    by_name = {row.algorithm: row for row in rows}
    ours = next(v for k, v in by_name.items() if "this paper" in k)
    baselines = [v for k, v in by_name.items() if "this paper" not in k]
    # Shape: every classical algorithm writes on ~every update; ours
    # writes on a sublinear fraction.
    for row in baselines:
        assert row.change_fraction > 0.95
        assert ours.state_changes < row.state_changes
    assert ours.change_fraction < 0.6
