"""Ingestion throughput: single-item ``process`` vs batched
``process_many``, the aggregate vs trace accounting backends, and
serial vs process-pool sharded execution.

The batched path keeps the paper's clock discipline (one tracker tick
per item) but hoists the per-item attribute lookups out of the hot
loop; this benchmark measures the resulting items/sec on both paths and
writes a ``BENCH_throughput.json``-compatible dict to
``benchmarks/results/``.

The backend section ingests the identical Zipf stream on the
``TraceBackend`` (per-cell histogram + listener dispatch, the
historical default) and the ``AggregateBackend`` (scalar counters
only, the runtime's fast-path default), asserting that every backend —
including an unlimited ``BudgetBackend`` — reports the identical
state-change audit while the aggregate path clears a >= 1.5x geometric-
mean ingest speedup across the representative families.

The randomized section times the coin-protocol-v2 vectorized kernels
(index-addressable Philox coins + geometric skip-sampling) against the
scalar per-coin loop for the five randomized families, asserting the
protocol's bit-identity contract and a >= 3x geometric-mean speedup;
its ``BENCH_randomized_throughput.json`` trend file is committed to
the repo so the trajectory is visible in-tree.

The sharded section runs the same 1M-update Zipf stream through
``ShardedRunner`` with ``executor="serial"`` and ``executor="process"``
and verifies the executor contract while timing it: byte-identical
merged state, identical per-shard audits, and shard state-change
totals summing to the serial audit.  The wall-clock speedup scales
with the machine — the >= 2x assertion applies on hosts with at least
as many cores as shards (a single-core container cannot parallelize
CPU-bound work, so there the bench asserts only bounded overhead).

The parallel-pipeline section runs the same chunked stream through all
four execution modes — serial, thread pool, barrier process pool
(``pipeline_depth=0``), and the pipelined shared-memory pool — and
asserts the four-way bit-identity (merged state, per-shard audits,
point-query answers) unconditionally.  Because the barrier pool's
``ingest()`` only routes and its ``merge()`` runs the workers, the two
phases are separable, and the pipelined executor's routing/ingest
overlap becomes measurable: on multi-core hosts its end-to-end wall
time must beat route + barrier-worker time.  The results are committed
as ``benchmarks/results/BENCH_parallel_pipeline.json``.

Setting ``REPRO_BENCH_QUICK=1`` shrinks the stream sizes (used by the
scheduled CI benchmark job, which uploads the ``BENCH_*.json`` results
as artifacts so the perf trajectory accumulates).
"""

from __future__ import annotations

import json
import math
import os
import time

from repro import registry
from repro.runtime.sharded import ShardedRunner
from repro.state import make_tracker
from repro.streams import zipf_stream

#: Representative sketch families (array-, dict-, and counter-backed).
SKETCHES = ("count-min", "misra-gries", "space-saving", "kmv", "exact")

#: Families with fully/mostly vectorized chunk kernels — the ones the
#: chunked-vs-scalar speedup gate applies to.
VECTORIZED_SKETCHES = ("count-min", "count-sketch", "kmv", "exact")

#: Families whose chunk kernel is a candidate-filter pre-pass (bulk
#: only over tracked-item segments) — reported, not gated: their gain
#: depends on how often the tracked set churns under the workload.
PREPASS_SKETCHES = ("misra-gries", "space-saving")

#: The randomized families with coin-protocol-v2 vectorized kernels
#: (index-addressable Philox coins + geometric skip-sampling).  The
#: >= 3x geomean gate applies across the set; sample-and-hold sits
#: near 1x individually because its settle volume is genuine state
#: work — the held heavy items must absorb in both arms.
RANDOMIZED_SKETCHES = (
    "count-min-morris",
    "pstable-fp",
    "reservoir",
    "sample-and-hold",
    "entropy",
)

#: Aggregate audit fields every backend must agree on exactly.
_AUDIT_FIELDS = (
    "stream_length",
    "state_changes",
    "total_writes",
    "total_write_attempts",
    "peak_words",
    "current_words",
)


def _quick(m: int, floor: int = 10_000) -> int:
    """Shrink a stream length when REPRO_BENCH_QUICK is set."""
    if os.environ.get("REPRO_BENCH_QUICK"):
        return max(floor, m // 10)
    return m


def run_throughput(
    m: int = 50_000,
    n: int = 4096,
    epsilon: float = 0.1,
    skew: float = 1.2,
    seed: int = 0,
    repeats: int = 3,
    sketches: tuple[str, ...] = SKETCHES,
) -> dict:
    """Measure items/sec for both ingestion paths on each sketch.

    Both paths ingest the identical stream into identically-seeded
    fresh instances, so the work per item is the same and the delta is
    pure Python dispatch overhead.  Each arm takes the best of
    ``repeats`` timing passes, so a background-load hiccup on one pass
    cannot masquerade as a dispatch regression.
    """
    stream = zipf_stream(n, m, skew=skew, seed=seed)
    results: dict[str, dict[str, float]] = {}
    for name in sketches:
        single_seconds = float("inf")
        batched_seconds = float("inf")
        for _ in range(repeats):
            single = registry.create(
                name, n=n, m=m, epsilon=epsilon, seed=seed
            )
            start = time.perf_counter()
            for item in stream:
                single.process(item)
            single_seconds = min(
                single_seconds, time.perf_counter() - start
            )

            batched = registry.create(
                name, n=n, m=m, epsilon=epsilon, seed=seed
            )
            start = time.perf_counter()
            batched.process_many(stream)
            batched_seconds = min(
                batched_seconds, time.perf_counter() - start
            )
            assert batched.items_processed == single.items_processed == m
        results[name] = {
            "items": m,
            "single_items_per_sec": m / single_seconds,
            "batched_items_per_sec": m / batched_seconds,
            "batched_speedup": single_seconds / batched_seconds,
        }
    return {
        "benchmark": "throughput",
        "stream": {"n": n, "m": m, "skew": skew, "seed": seed},
        "results": results,
    }


def format_throughput(payload: dict) -> str:
    """Render the throughput dict as an aligned text table."""
    lines = [
        "Ingestion throughput — process() vs process_many()",
        f"{'sketch':>16}{'single it/s':>14}{'batched it/s':>14}"
        f"{'speedup':>9}",
    ]
    for name, row in payload["results"].items():
        lines.append(
            f"{name:>16}{row['single_items_per_sec']:>14.0f}"
            f"{row['batched_items_per_sec']:>14.0f}"
            f"{row['batched_speedup']:>9.2f}"
        )
    return "\n".join(lines)


def run_backend_throughput(
    m: int = 50_000,
    n: int = 4096,
    epsilon: float = 0.1,
    skew: float = 1.2,
    seed: int = 0,
    repeats: int = 3,
    sketches: tuple[str, ...] = SKETCHES,
) -> dict:
    """Trace vs aggregate (vs unlimited-budget) backend ingest.

    Every backend ingests the identical Zipf stream into identically-
    seeded fresh instances through ``process_many``; the per-item work
    is the same, so the delta is pure accounting overhead.  Alongside
    the timings the run cross-checks the compatibility contract: all
    three backends must report the identical state-change audit.
    """
    stream = zipf_stream(n, m, skew=skew, seed=seed)
    results: dict[str, dict[str, float]] = {}
    audits_identical = True
    for name in sketches:
        seconds: dict[str, float] = {}
        audits: dict[str, tuple] = {}
        for mode in ("trace", "aggregate", "budget"):
            best = float("inf")
            for _ in range(repeats):
                sketch = registry.create(
                    name,
                    n=n,
                    m=m,
                    epsilon=epsilon,
                    seed=seed,
                    tracker=make_tracker(mode),
                )
                start = time.perf_counter()
                sketch.process_many(stream)
                best = min(best, time.perf_counter() - start)
            seconds[mode] = best
            report = sketch.report()
            audits[mode] = tuple(
                getattr(report, field) for field in _AUDIT_FIELDS
            )
        if len(set(audits.values())) != 1:
            audits_identical = False
        results[name] = {
            "trace_items_per_sec": m / seconds["trace"],
            "aggregate_items_per_sec": m / seconds["aggregate"],
            "budget_items_per_sec": m / seconds["budget"],
            "aggregate_speedup": seconds["trace"] / seconds["aggregate"],
        }
    speedups = [row["aggregate_speedup"] for row in results.values()]
    return {
        "benchmark": "backend-throughput",
        "stream": {"n": n, "m": m, "skew": skew, "seed": seed},
        "results": results,
        "geomean_aggregate_speedup": math.exp(
            sum(math.log(s) for s in speedups) / len(speedups)
        ),
        "identical_audits": audits_identical,
    }


def format_backend_throughput(payload: dict) -> str:
    """Render the backend comparison as an aligned text table."""
    lines = [
        "Accounting backends — TraceBackend vs AggregateBackend "
        "ingest (zipf)",
        f"{'sketch':>16}{'trace it/s':>13}{'aggregate it/s':>16}"
        f"{'budget it/s':>13}{'speedup':>9}",
    ]
    for name, row in payload["results"].items():
        lines.append(
            f"{name:>16}{row['trace_items_per_sec']:>13.0f}"
            f"{row['aggregate_items_per_sec']:>16.0f}"
            f"{row['budget_items_per_sec']:>13.0f}"
            f"{row['aggregate_speedup']:>9.2f}"
        )
    lines.append(
        f"geometric-mean aggregate speedup: "
        f"{payload['geomean_aggregate_speedup']:.2f}x "
        f"(identical audits: {payload['identical_audits']})"
    )
    return "\n".join(lines)


def run_chunked_throughput(
    m: int = 100_000,
    n: int = 4096,
    epsilon: float = 0.1,
    skew: float = 1.2,
    seed: int = 0,
    repeats: int = 3,
    chunk_size: int = 8192,
    sketches: tuple[str, ...] = VECTORIZED_SKETCHES + PREPASS_SKETCHES,
) -> dict:
    """Columnar ``process_chunk`` vs scalar ``process_many`` ingest.

    Both arms ingest the identical Zipf stream into identically-seeded
    fresh instances on the aggregate backend; the scalar arm consumes
    the ``list[int]`` materialization, the chunked arm the ``int64``
    chunks.  Alongside the timings the run cross-checks the data-plane
    contract: both arms must produce bit-identical serialized states
    (payload *and* audit).  The geometric-mean speedup over the
    vectorized deterministic families is the tentpole's perf gate.
    """
    stream = zipf_stream(n, m, skew=skew, seed=seed)
    items = stream.materialize()
    results: dict[str, dict[str, float]] = {}
    states_identical = True
    for name in sketches:
        scalar_seconds = float("inf")
        chunked_seconds = float("inf")
        for _ in range(repeats):
            scalar = registry.create(
                name, n=n, m=m, epsilon=epsilon, seed=seed,
                tracker=make_tracker("aggregate"),
            )
            start = time.perf_counter()
            scalar.process_many(items)
            scalar_seconds = min(
                scalar_seconds, time.perf_counter() - start
            )

            chunked = registry.create(
                name, n=n, m=m, epsilon=epsilon, seed=seed,
                tracker=make_tracker("aggregate"),
            )
            start = time.perf_counter()
            for chunk in stream.chunks(chunk_size):
                chunked.process_chunk(chunk)
            chunked_seconds = min(
                chunked_seconds, time.perf_counter() - start
            )
            assert chunked.items_processed == scalar.items_processed == m
        if json.dumps(scalar.to_state(), sort_keys=True) != json.dumps(
            chunked.to_state(), sort_keys=True
        ):
            states_identical = False
        results[name] = {
            "items": m,
            "vectorized": name in VECTORIZED_SKETCHES,
            "scalar_items_per_sec": m / scalar_seconds,
            "chunked_items_per_sec": m / chunked_seconds,
            "chunked_speedup": scalar_seconds / chunked_seconds,
        }
    gated = [
        row["chunked_speedup"]
        for name, row in results.items()
        if name in VECTORIZED_SKETCHES
    ]
    return {
        "benchmark": "chunked-throughput",
        "stream": {"n": n, "m": m, "skew": skew, "seed": seed},
        "chunk_size": chunk_size,
        "results": results,
        "geomean_vectorized_speedup": math.exp(
            sum(math.log(s) for s in gated) / len(gated)
        ),
        "identical_states": states_identical,
    }


def format_chunked_throughput(payload: dict) -> str:
    """Render the chunked comparison as an aligned text table."""
    lines = [
        f"Columnar ingest — process_chunk vs process_many "
        f"(zipf, chunk_size={payload['chunk_size']})",
        f"{'sketch':>16}{'scalar it/s':>14}{'chunked it/s':>15}"
        f"{'speedup':>9}{'kernel':>10}",
    ]
    for name, row in payload["results"].items():
        kernel = "vector" if row["vectorized"] else "pre-pass"
        lines.append(
            f"{name:>16}{row['scalar_items_per_sec']:>14.0f}"
            f"{row['chunked_items_per_sec']:>15.0f}"
            f"{row['chunked_speedup']:>9.2f}{kernel:>10}"
        )
    lines.append(
        f"geometric-mean vectorized speedup: "
        f"{payload['geomean_vectorized_speedup']:.2f}x "
        f"(identical states: {payload['identical_states']})"
    )
    return "\n".join(lines)


def _run_fingerprint(sketch) -> tuple:
    """Bit-identity observables of one finished run.

    The audit fields cover every family; the serialized state rides
    along for the families that define serialization hooks.
    """
    report = sketch.report()
    fields = tuple(getattr(report, field) for field in _AUDIT_FIELDS)
    try:
        payload = json.dumps(sketch.to_state(), sort_keys=True)
    except TypeError:  # family without serialization hooks
        payload = None
    return fields + (payload,)


def run_randomized_throughput(
    m: int = 50_000,
    n: int = 4096,
    epsilon: float = 0.5,
    skew: float = 1.2,
    seed: int = 0,
    repeats: int = 2,
    chunk_size: int = 8192,
    sketches: tuple[str, ...] = RANDOMIZED_SKETCHES,
) -> dict:
    """Coin-protocol-v2 chunked vs scalar ingest for the randomized
    families.

    Both arms run under ``coin_protocol="v2"`` on the aggregate
    backend: the scalar arm draws each coin one index at a time
    through ``process_many``, the chunked arm runs the vectorized
    kernels (Philox block draws + geometric skip-sampling) through
    ``process_chunk``.  Alongside the timings the run cross-checks the
    protocol's core promise — chunked ≡ scalar bit for bit (audit
    fields, plus serialized state where the family defines it).
    """
    stream = zipf_stream(n, m, skew=skew, seed=seed)
    items = stream.materialize()
    results: dict[str, dict[str, float]] = {}
    identical = True
    for name in sketches:
        scalar_seconds = float("inf")
        chunked_seconds = float("inf")
        for _ in range(repeats):
            scalar = registry.create(
                name, n=n, m=m, epsilon=epsilon, seed=seed,
                tracker=make_tracker("aggregate"), coin_protocol="v2",
            )
            start = time.perf_counter()
            scalar.process_many(items)
            scalar_seconds = min(
                scalar_seconds, time.perf_counter() - start
            )

            chunked = registry.create(
                name, n=n, m=m, epsilon=epsilon, seed=seed,
                tracker=make_tracker("aggregate"), coin_protocol="v2",
            )
            start = time.perf_counter()
            for chunk in stream.chunks(chunk_size):
                chunked.process_chunk(chunk)
            chunked_seconds = min(
                chunked_seconds, time.perf_counter() - start
            )
            assert chunked.items_processed == scalar.items_processed == m
        family_identical = _run_fingerprint(scalar) == _run_fingerprint(
            chunked
        )
        identical = identical and family_identical
        results[name] = {
            "items": m,
            "scalar_items_per_sec": m / scalar_seconds,
            "chunked_items_per_sec": m / chunked_seconds,
            "chunked_speedup": scalar_seconds / chunked_seconds,
            "identical": family_identical,
        }
    speedups = [row["chunked_speedup"] for row in results.values()]
    return {
        "benchmark": "randomized-throughput",
        "coin_protocol": "v2",
        "stream": {"n": n, "m": m, "skew": skew, "seed": seed},
        "chunk_size": chunk_size,
        "results": results,
        "geomean_chunked_speedup": math.exp(
            sum(math.log(s) for s in speedups) / len(speedups)
        ),
        "identical_runs": identical,
    }


def format_randomized_throughput(payload: dict) -> str:
    """Render the randomized-family comparison as aligned text."""
    lines = [
        f"Randomized families — v2 chunked vs scalar ingest "
        f"(zipf, chunk_size={payload['chunk_size']})",
        f"{'sketch':>18}{'scalar it/s':>14}{'chunked it/s':>15}"
        f"{'speedup':>9}{'identical':>11}",
    ]
    for name, row in payload["results"].items():
        lines.append(
            f"{name:>18}{row['scalar_items_per_sec']:>14.0f}"
            f"{row['chunked_items_per_sec']:>15.0f}"
            f"{row['chunked_speedup']:>9.2f}"
            f"{str(row['identical']):>11}"
        )
    lines.append(
        f"geometric-mean chunked speedup: "
        f"{payload['geomean_chunked_speedup']:.2f}x "
        f"(identical runs: {payload['identical_runs']})"
    )
    return "\n".join(lines)


def run_sharded_throughput(
    m: int = 1_000_000,
    n: int = 4096,
    shards: int = 4,
    epsilon: float = 0.1,
    skew: float = 1.1,
    seed: int = 0,
    sketch: str = "count-min",
) -> dict:
    """Serial vs process-pool sharded ingestion on one Zipf stream.

    Both runners see the identical stream, partitioner seed, and sketch
    seeds, so the merged results must agree bit for bit; the dict
    records the throughput of each mode plus the equivalence checks.
    """
    stream = zipf_stream(n, m, skew=skew, seed=seed)

    def run(executor: str):
        runner = ShardedRunner.from_registry(
            sketch, shards, n=n, m=m, epsilon=epsilon, seed=seed,
            executor=executor,
        )
        start = time.perf_counter()
        result = runner.run(stream)
        return result, time.perf_counter() - start

    serial, serial_seconds = run("serial")
    process, process_seconds = run("process")

    identical_state = json.dumps(
        serial.merged.to_state(), sort_keys=True
    ) == json.dumps(process.merged.to_state(), sort_keys=True)
    identical_reports = serial.shard_reports == process.shard_reports
    shard_sum_matches = (
        sum(r.state_changes for r in process.shard_reports)
        == serial.merged_report.state_changes
    )
    return {
        "benchmark": "sharded-throughput",
        "stream": {"n": n, "m": m, "skew": skew, "seed": seed},
        "sketch": sketch,
        "shards": shards,
        "cpu_count": os.cpu_count() or 1,
        "serial_items_per_sec": m / serial_seconds,
        "process_items_per_sec": m / process_seconds,
        "process_speedup": serial_seconds / process_seconds,
        "identical_merged_state": identical_state,
        "identical_shard_reports": identical_reports,
        "shard_sum_matches_serial_audit": shard_sum_matches,
    }


def format_sharded_throughput(payload: dict) -> str:
    """Render the sharded-executor comparison as aligned text."""
    return "\n".join([
        f"Sharded ingestion — serial vs process executor "
        f"({payload['sketch']}, {payload['shards']} shards, "
        f"{payload['cpu_count']} cores)",
        f"{'serial it/s':>14}{'process it/s':>14}{'speedup':>9}"
        f"{'identical':>11}",
        f"{payload['serial_items_per_sec']:>14.0f}"
        f"{payload['process_items_per_sec']:>14.0f}"
        f"{payload['process_speedup']:>9.2f}"
        f"{str(payload['identical_merged_state']):>11}",
    ])


def run_parallel_pipeline(
    m: int = 1_000_000,
    n: int = 4096,
    shards: int = 4,
    epsilon: float = 0.1,
    skew: float = 1.1,
    seed: int = 0,
    sketch: str = "count-min",
    chunk_size: int = 8192,
) -> dict:
    """Pipelined vs barrier vs thread vs serial on one chunked stream.

    Every mode routes the identical ``int64`` stream with the identical
    partitioner, so merged states, per-shard audits, and query answers
    must agree bit for bit — that equivalence is recorded (and asserted
    unconditionally by the test).  The timing side separates *route*
    wall time from *worker* wall time on the barrier pool — its
    ``ingest()`` only routes and buffers, the pool runs at ``merge()``
    — which makes the pipelined executor's overlap directly
    measurable: with real cores its end-to-end wall time must beat
    route + barrier-worker time, because routing and worker ingest
    happen concurrently instead of back to back.
    """
    import numpy as np

    from repro.query import PointQuery
    from repro.runtime.parallel import available_cpus
    from repro.streams.chunked import ChunkedStream

    arr = np.asarray(zipf_stream(n, m, skew=skew, seed=seed),
                     dtype=np.int64)
    top_items = [int(v) for v in np.bincount(arr).argsort()[-20:]]

    modes = {
        "serial": ("serial", {}),
        "thread": ("thread", {}),
        "barrier": ("process", {"pipeline_depth": 0}),
        "pipelined": ("process", {}),
    }
    results = {}
    for mode, (executor, kw) in modes.items():
        runner = ShardedRunner.from_registry(
            sketch, shards, n=n, m=m, epsilon=epsilon, seed=seed,
            executor=executor, chunk_size=chunk_size, **kw,
        )
        start = time.perf_counter()
        runner.ingest(ChunkedStream(arr))
        ingest_seconds = time.perf_counter() - start
        reports = runner.shard_reports()  # triggers deferred dispatch
        merged = runner.merge()
        total_seconds = time.perf_counter() - start
        results[mode] = {
            "state": json.dumps(merged.to_state(), sort_keys=True),
            "reports": reports,
            "answers": [merged.query(PointQuery(i)) for i in top_items],
            "audit": merged.report(),
            "ingest_seconds": ingest_seconds,
            "total_seconds": total_seconds,
        }

    serial = results["serial"]
    identical = {
        mode: (
            row["state"] == serial["state"]
            and row["reports"] == serial["reports"]
            and row["answers"] == serial["answers"]
            and row["audit"] == serial["audit"]
        )
        for mode, row in results.items()
    }
    # The barrier pool's phases: ingest() = pure routing, merge() =
    # pool dispatch + restore + reduce.
    route_seconds = results["barrier"]["ingest_seconds"]
    barrier_worker_seconds = (
        results["barrier"]["total_seconds"] - route_seconds
    )
    return {
        "benchmark": "parallel-pipeline",
        "stream": {"n": n, "m": m, "skew": skew, "seed": seed},
        "sketch": sketch,
        "shards": shards,
        "chunk_size": chunk_size,
        "cpu_count": os.cpu_count() or 1,
        "available_cpus": available_cpus(),
        "items_per_sec": {
            mode: m / row["total_seconds"]
            for mode, row in results.items()
        },
        "total_seconds": {
            mode: row["total_seconds"] for mode, row in results.items()
        },
        "route_seconds": route_seconds,
        "barrier_worker_seconds": barrier_worker_seconds,
        "pipelined_total_seconds": results["pipelined"]["total_seconds"],
        "pipelined_overlap_vs_barrier": (
            (route_seconds + barrier_worker_seconds)
            / results["pipelined"]["total_seconds"]
        ),
        "identical": identical,
    }


def format_parallel_pipeline(payload: dict) -> str:
    """Render the pipelined-vs-barrier comparison as aligned text."""
    lines = [
        f"Parallel pipeline — {payload['sketch']}, "
        f"{payload['shards']} shards, "
        f"{payload['available_cpus']} usable cpus "
        f"(route {payload['route_seconds']:.3f}s + barrier workers "
        f"{payload['barrier_worker_seconds']:.3f}s; pipelined total "
        f"{payload['pipelined_total_seconds']:.3f}s, overlap gain "
        f"{payload['pipelined_overlap_vs_barrier']:.2f}x)",
        f"{'mode':>10}{'items/s':>14}{'total s':>10}{'identical':>11}",
    ]
    for mode, rate in payload["items_per_sec"].items():
        lines.append(
            f"{mode:>10}{rate:>14.0f}"
            f"{payload['total_seconds'][mode]:>10.3f}"
            f"{str(payload['identical'][mode]):>11}"
        )
    return "\n".join(lines)


def test_backend_throughput(save_result):
    payload = run_backend_throughput(m=_quick(50_000))
    save_result(
        "BENCH_backend_throughput_table", format_backend_throughput(payload)
    )
    results_path = (
        __import__("pathlib").Path(__file__).parent
        / "results"
        / "BENCH_backend_throughput.json"
    )
    results_path.write_text(json.dumps(payload, indent=2) + "\n")
    # The compatibility contract is unconditional: every backend
    # reports the identical state-change audit on the identical run.
    assert payload["identical_audits"], payload
    # The aggregate fast path must clear 1.5x over the full-trace
    # backend across the representative families, and must never be
    # slower on any of them.  The perf gates apply to calibrated
    # full-size runs; quick mode (the CI trajectory job) records the
    # numbers without gating on shared-runner jitter.
    if not os.environ.get("REPRO_BENCH_QUICK"):
        assert payload["geomean_aggregate_speedup"] >= 1.5, payload
        for name, row in payload["results"].items():
            assert row["aggregate_speedup"] > 1.0, (name, row)


def test_throughput(save_result):
    payload = run_throughput(m=_quick(30_000))
    save_result("BENCH_throughput_table", format_throughput(payload))
    results_path = (
        __import__("pathlib").Path(__file__).parent
        / "results"
        / "BENCH_throughput.json"
    )
    results_path.write_text(json.dumps(payload, indent=2) + "\n")
    # The batched path must never be meaningfully slower than the
    # single-item path (same per-item work, less dispatch overhead).
    for name, row in payload["results"].items():
        assert row["batched_speedup"] > 0.9, (name, row)


def test_chunked_throughput(save_result):
    payload = run_chunked_throughput(m=_quick(100_000, floor=20_000))
    save_result(
        "BENCH_chunked_throughput_table", format_chunked_throughput(payload)
    )
    results_path = (
        __import__("pathlib").Path(__file__).parent
        / "results"
        / "BENCH_chunked_throughput.json"
    )
    results_path.write_text(json.dumps(payload, indent=2) + "\n")
    # The data-plane contract is unconditional: chunked and scalar
    # ingest produce bit-identical serialized states (payload + audit).
    assert payload["identical_states"], payload
    # The perf gate applies to calibrated full-size runs; quick mode
    # (the CI trajectory job) records the numbers without gating on
    # shared-runner jitter.
    if not os.environ.get("REPRO_BENCH_QUICK"):
        assert payload["geomean_vectorized_speedup"] >= 3.0, payload
        for name, row in payload["results"].items():
            if row["vectorized"]:
                assert row["chunked_speedup"] > 1.0, (name, row)


def test_randomized_throughput(save_result):
    payload = run_randomized_throughput(m=_quick(50_000))
    save_result(
        "BENCH_randomized_throughput_table",
        format_randomized_throughput(payload),
    )
    results_path = (
        __import__("pathlib").Path(__file__).parent
        / "results"
        / "BENCH_randomized_throughput.json"
    )
    results_path.write_text(json.dumps(payload, indent=2) + "\n")
    # The protocol contract is unconditional: v2 chunked and scalar
    # ingest are bit-identical (audits + serialized state).
    assert payload["identical_runs"], payload
    # The perf gate applies to calibrated full-size runs; quick mode
    # (the CI trajectory job) records the numbers without gating on
    # shared-runner jitter.  sample-and-hold is bounded rather than
    # gated — its settle volume is genuine state work done by both
    # arms, so it hovers near 1x by construction.
    if not os.environ.get("REPRO_BENCH_QUICK"):
        assert payload["geomean_chunked_speedup"] >= 3.0, payload
        for name, row in payload["results"].items():
            assert row["chunked_speedup"] > 0.9, (name, row)


def test_sharded_executor_throughput(save_result):
    payload = run_sharded_throughput(m=_quick(1_000_000, floor=200_000),
                                     shards=4)
    save_result(
        "BENCH_sharded_throughput_table", format_sharded_throughput(payload)
    )
    results_path = (
        __import__("pathlib").Path(__file__).parent
        / "results"
        / "BENCH_sharded_throughput.json"
    )
    results_path.write_text(json.dumps(payload, indent=2) + "\n")
    # The executor contract is unconditional: same bits, same audits.
    assert payload["identical_merged_state"], payload
    assert payload["identical_shard_reports"], payload
    assert payload["shard_sum_matches_serial_audit"], payload
    # The wall-clock target needs hardware to parallelize on — and a
    # full-size stream to amortize the pool start-up: quick mode (the
    # CI trajectory job) and single-core containers only bound the
    # overhead, the >= 2x gate applies to calibrated full-size runs.
    quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    if payload["cpu_count"] >= payload["shards"] and not quick:
        assert payload["process_speedup"] >= 2.0, payload
    else:
        assert payload["process_speedup"] > 0.5, payload


def test_parallel_pipeline(save_result):
    payload = run_parallel_pipeline(m=_quick(1_000_000, floor=200_000),
                                    shards=4)
    save_result(
        "BENCH_parallel_pipeline_table", format_parallel_pipeline(payload)
    )
    results_path = (
        __import__("pathlib").Path(__file__).parent
        / "results"
        / "BENCH_parallel_pipeline.json"
    )
    results_path.write_text(json.dumps(payload, indent=2) + "\n")
    # The executor contract is unconditional in every mode: identical
    # merged state, per-shard audits, and point-query answers.
    for mode, same in payload["identical"].items():
        assert same, (mode, payload)
    # Overlap: with real cores the pipelined executor's end-to-end
    # wall time must beat route + barrier-worker time (routing and
    # worker ingest run concurrently, not back to back).  Single-core
    # containers and quick mode cannot parallelize CPU-bound work, so
    # there the bench only bounds the pipelining overhead.
    quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    if payload["available_cpus"] >= 2 and not quick:
        assert payload["pipelined_overlap_vs_barrier"] > 1.0, payload
    else:
        serial_total = payload["total_seconds"]["serial"]
        assert payload["pipelined_total_seconds"] < 4 * serial_total, (
            payload
        )


if __name__ == "__main__":
    print(format_throughput(run_throughput()))
    print()
    print(format_backend_throughput(run_backend_throughput()))
    print()
    print(format_chunked_throughput(run_chunked_throughput()))
    print()
    print(format_randomized_throughput(run_randomized_throughput()))
    print()
    print(format_sharded_throughput(run_sharded_throughput()))
    print()
    print(format_parallel_pipeline(run_parallel_pipeline()))
