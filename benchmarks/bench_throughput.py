"""Ingestion throughput: single-item ``process`` vs batched
``process_many`` across representative sketches, and serial vs
process-pool sharded execution.

The batched path keeps the paper's clock discipline (one tracker tick
per item) but hoists the per-item attribute lookups out of the hot
loop; this benchmark measures the resulting items/sec on both paths and
writes a ``BENCH_throughput.json``-compatible dict to
``benchmarks/results/``.

The sharded section runs the same 1M-update Zipf stream through
``ShardedRunner`` with ``executor="serial"`` and ``executor="process"``
and verifies the executor contract while timing it: byte-identical
merged state, identical per-shard audits, and shard state-change
totals summing to the serial audit.  The wall-clock speedup scales
with the machine — the >= 2x assertion applies on hosts with at least
as many cores as shards (a single-core container cannot parallelize
CPU-bound work, so there the bench asserts only bounded overhead).
"""

from __future__ import annotations

import json
import os
import time

from repro import registry
from repro.runtime.sharded import ShardedRunner
from repro.streams import zipf_stream

#: Representative sketch families (array-, dict-, and counter-backed).
SKETCHES = ("count-min", "misra-gries", "space-saving", "kmv", "exact")


def run_throughput(
    m: int = 50_000,
    n: int = 4096,
    epsilon: float = 0.1,
    skew: float = 1.2,
    seed: int = 0,
    sketches: tuple[str, ...] = SKETCHES,
) -> dict:
    """Measure items/sec for both ingestion paths on each sketch.

    Both paths ingest the identical stream into identically-seeded
    fresh instances, so the work per item is the same and the delta is
    pure Python dispatch overhead.
    """
    stream = zipf_stream(n, m, skew=skew, seed=seed)
    results: dict[str, dict[str, float]] = {}
    for name in sketches:
        single = registry.create(name, n=n, m=m, epsilon=epsilon, seed=seed)
        start = time.perf_counter()
        for item in stream:
            single.process(item)
        single_seconds = time.perf_counter() - start

        batched = registry.create(name, n=n, m=m, epsilon=epsilon, seed=seed)
        start = time.perf_counter()
        batched.process_many(stream)
        batched_seconds = time.perf_counter() - start

        assert batched.items_processed == single.items_processed == m
        results[name] = {
            "items": m,
            "single_items_per_sec": m / single_seconds,
            "batched_items_per_sec": m / batched_seconds,
            "batched_speedup": single_seconds / batched_seconds,
        }
    return {
        "benchmark": "throughput",
        "stream": {"n": n, "m": m, "skew": skew, "seed": seed},
        "results": results,
    }


def format_throughput(payload: dict) -> str:
    """Render the throughput dict as an aligned text table."""
    lines = [
        "Ingestion throughput — process() vs process_many()",
        f"{'sketch':>16}{'single it/s':>14}{'batched it/s':>14}"
        f"{'speedup':>9}",
    ]
    for name, row in payload["results"].items():
        lines.append(
            f"{name:>16}{row['single_items_per_sec']:>14.0f}"
            f"{row['batched_items_per_sec']:>14.0f}"
            f"{row['batched_speedup']:>9.2f}"
        )
    return "\n".join(lines)


def run_sharded_throughput(
    m: int = 1_000_000,
    n: int = 4096,
    shards: int = 4,
    epsilon: float = 0.1,
    skew: float = 1.1,
    seed: int = 0,
    sketch: str = "count-min",
) -> dict:
    """Serial vs process-pool sharded ingestion on one Zipf stream.

    Both runners see the identical stream, partitioner seed, and sketch
    seeds, so the merged results must agree bit for bit; the dict
    records the throughput of each mode plus the equivalence checks.
    """
    stream = zipf_stream(n, m, skew=skew, seed=seed)

    def run(executor: str):
        runner = ShardedRunner.from_registry(
            sketch, shards, n=n, m=m, epsilon=epsilon, seed=seed,
            executor=executor,
        )
        start = time.perf_counter()
        result = runner.run(stream)
        return result, time.perf_counter() - start

    serial, serial_seconds = run("serial")
    process, process_seconds = run("process")

    identical_state = json.dumps(
        serial.merged.to_state(), sort_keys=True
    ) == json.dumps(process.merged.to_state(), sort_keys=True)
    identical_reports = serial.shard_reports == process.shard_reports
    shard_sum_matches = (
        sum(r.state_changes for r in process.shard_reports)
        == serial.merged_report.state_changes
    )
    return {
        "benchmark": "sharded-throughput",
        "stream": {"n": n, "m": m, "skew": skew, "seed": seed},
        "sketch": sketch,
        "shards": shards,
        "cpu_count": os.cpu_count() or 1,
        "serial_items_per_sec": m / serial_seconds,
        "process_items_per_sec": m / process_seconds,
        "process_speedup": serial_seconds / process_seconds,
        "identical_merged_state": identical_state,
        "identical_shard_reports": identical_reports,
        "shard_sum_matches_serial_audit": shard_sum_matches,
    }


def format_sharded_throughput(payload: dict) -> str:
    """Render the sharded-executor comparison as aligned text."""
    return "\n".join([
        f"Sharded ingestion — serial vs process executor "
        f"({payload['sketch']}, {payload['shards']} shards, "
        f"{payload['cpu_count']} cores)",
        f"{'serial it/s':>14}{'process it/s':>14}{'speedup':>9}"
        f"{'identical':>11}",
        f"{payload['serial_items_per_sec']:>14.0f}"
        f"{payload['process_items_per_sec']:>14.0f}"
        f"{payload['process_speedup']:>9.2f}"
        f"{str(payload['identical_merged_state']):>11}",
    ])


def test_throughput(save_result):
    payload = run_throughput(m=30_000)
    save_result("BENCH_throughput_table", format_throughput(payload))
    results_path = (
        __import__("pathlib").Path(__file__).parent
        / "results"
        / "BENCH_throughput.json"
    )
    results_path.write_text(json.dumps(payload, indent=2) + "\n")
    # The batched path must never be meaningfully slower than the
    # single-item path (same per-item work, less dispatch overhead).
    for name, row in payload["results"].items():
        assert row["batched_speedup"] > 0.9, (name, row)


def test_sharded_executor_throughput(save_result):
    payload = run_sharded_throughput(m=1_000_000, shards=4)
    save_result(
        "BENCH_sharded_throughput_table", format_sharded_throughput(payload)
    )
    results_path = (
        __import__("pathlib").Path(__file__).parent
        / "results"
        / "BENCH_sharded_throughput.json"
    )
    results_path.write_text(json.dumps(payload, indent=2) + "\n")
    # The executor contract is unconditional: same bits, same audits.
    assert payload["identical_merged_state"], payload
    assert payload["identical_shard_reports"], payload
    assert payload["shard_sum_matches_serial_audit"], payload
    # The wall-clock target needs hardware to parallelize on; a
    # single-core container can only bound the overhead.
    if payload["cpu_count"] >= payload["shards"]:
        assert payload["process_speedup"] >= 2.0, payload
    else:
        assert payload["process_speedup"] > 0.5, payload


if __name__ == "__main__":
    print(format_throughput(run_throughput()))
    print()
    print(format_sharded_throughput(run_sharded_throughput()))
