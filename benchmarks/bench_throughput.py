"""Ingestion throughput: single-item ``process`` vs batched
``process_many`` across representative sketches.

The batched path keeps the paper's clock discipline (one tracker tick
per item) but hoists the per-item attribute lookups out of the hot
loop; this benchmark measures the resulting items/sec on both paths and
writes a ``BENCH_throughput.json``-compatible dict to
``benchmarks/results/``.
"""

from __future__ import annotations

import json
import time

from repro import registry
from repro.streams import zipf_stream

#: Representative sketch families (array-, dict-, and counter-backed).
SKETCHES = ("count-min", "misra-gries", "space-saving", "kmv", "exact")


def run_throughput(
    m: int = 50_000,
    n: int = 4096,
    epsilon: float = 0.1,
    skew: float = 1.2,
    seed: int = 0,
    sketches: tuple[str, ...] = SKETCHES,
) -> dict:
    """Measure items/sec for both ingestion paths on each sketch.

    Both paths ingest the identical stream into identically-seeded
    fresh instances, so the work per item is the same and the delta is
    pure Python dispatch overhead.
    """
    stream = zipf_stream(n, m, skew=skew, seed=seed)
    results: dict[str, dict[str, float]] = {}
    for name in sketches:
        single = registry.create(name, n=n, m=m, epsilon=epsilon, seed=seed)
        start = time.perf_counter()
        for item in stream:
            single.process(item)
        single_seconds = time.perf_counter() - start

        batched = registry.create(name, n=n, m=m, epsilon=epsilon, seed=seed)
        start = time.perf_counter()
        batched.process_many(stream)
        batched_seconds = time.perf_counter() - start

        assert batched.items_processed == single.items_processed == m
        results[name] = {
            "items": m,
            "single_items_per_sec": m / single_seconds,
            "batched_items_per_sec": m / batched_seconds,
            "batched_speedup": single_seconds / batched_seconds,
        }
    return {
        "benchmark": "throughput",
        "stream": {"n": n, "m": m, "skew": skew, "seed": seed},
        "results": results,
    }


def format_throughput(payload: dict) -> str:
    """Render the throughput dict as an aligned text table."""
    lines = [
        "Ingestion throughput — process() vs process_many()",
        f"{'sketch':>16}{'single it/s':>14}{'batched it/s':>14}"
        f"{'speedup':>9}",
    ]
    for name, row in payload["results"].items():
        lines.append(
            f"{name:>16}{row['single_items_per_sec']:>14.0f}"
            f"{row['batched_items_per_sec']:>14.0f}"
            f"{row['batched_speedup']:>9.2f}"
        )
    return "\n".join(lines)


def test_throughput(save_result):
    payload = run_throughput(m=30_000)
    save_result("BENCH_throughput_table", format_throughput(payload))
    results_path = (
        __import__("pathlib").Path(__file__).parent
        / "results"
        / "BENCH_throughput.json"
    )
    results_path.write_text(json.dumps(payload, indent=2) + "\n")
    # The batched path must never be meaningfully slower than the
    # single-item path (same per-item work, less dispatch overhead).
    for name, row in payload["results"].items():
        assert row["batched_speedup"] > 0.9, (name, row)


if __name__ == "__main__":
    print(format_throughput(run_throughput()))
