"""Unified query protocol: typed queries, typed answers, one dispatch.

Every sketch family historically exposed its answers through a
different ad-hoc method — ``estimate(item)``, no-arg ``estimates()``,
``fp_estimate()``, ``f2_estimate()``, ``entropy_estimate()``,
``heavy_hitters(eps)``, ``estimates_for(items)`` — which forced every
caller (the CLI, the sharding experiment, the examples) to grow an
if/else ladder of ``hasattr`` probes.  This module defines the single
vocabulary those callers speak instead:

* :class:`QueryKind` — the closed enumeration of question types the
  library answers.
* The query dataclasses (:class:`PointQuery`, :class:`AllEstimates`,
  :class:`HeavyHitters`, :class:`Moment`, :class:`Entropy`,
  :class:`Distinct`) — one frozen value object per kind, carrying the
  kind's parameters.
* The answer dataclasses (:class:`ScalarAnswer`, :class:`MomentAnswer`,
  :class:`MapAnswer`) — typed envelopes around the result, tagged with
  the kind they answer.
* :class:`UnsupportedQueryError` — the typed error a sketch raises for
  a kind it does not declare in its ``supports`` set.

Dispatch lives on the ABC
(:meth:`~repro.state.algorithm.Sketch.query`): a sketch declares
``supports: frozenset[QueryKind]`` and implements one ``_answer_*``
hook per declared kind.  Capability declarations are surfaced through
:class:`repro.registry.SketchSpec`, so callers can enumerate which
sketches answer which queries without constructing or probing one.

This module is dependency-free within the package (the state layer
imports it, not the other way around).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import ClassVar, Iterable, Mapping


class QueryKind(str, enum.Enum):
    """The closed set of question types a sketch can declare."""

    #: Frequency of one item (``PointQuery``).
    POINT = "point"
    #: Frequencies of every item the sketch holds (``AllEstimates``).
    ALL_ESTIMATES = "all-estimates"
    #: Items above a heaviness threshold (``HeavyHitters``).
    HEAVY_HITTERS = "heavy-hitters"
    #: A frequency moment ``Fp`` (``Moment``).
    MOMENT = "moment"
    #: Shannon entropy of the stream (``Entropy``).
    ENTROPY = "entropy"
    #: Number of distinct items ``F0`` (``Distinct``).
    DISTINCT = "distinct"

    def __str__(self) -> str:  # "point", not "QueryKind.POINT"
        return self.value


class UnsupportedQueryError(TypeError):
    """A sketch was asked a query kind it does not support.

    Attributes
    ----------
    sketch:
        Name of the sketch class that rejected the query.
    kind:
        The requested :class:`QueryKind`.
    supports:
        The kinds the sketch does declare.
    """

    def __init__(
        self,
        sketch: str,
        kind: QueryKind,
        supports: Iterable[QueryKind] = (),
    ) -> None:
        self.sketch = sketch
        self.kind = kind
        self.supports = frozenset(supports)
        supported = (
            ", ".join(sorted(str(k) for k in self.supports)) or "nothing"
        )
        super().__init__(
            f"{sketch} does not answer {kind!s} queries "
            f"(supports: {supported})"
        )


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
class Query:
    """Base class of all query value objects (see subclasses)."""

    #: The kind this query class asks; set once per subclass.
    kind: ClassVar[QueryKind]


@dataclass(frozen=True, slots=True)
class PointQuery(Query):
    """Frequency estimate of one ``item``; answered by a
    :class:`ScalarAnswer`."""

    item: int
    kind: ClassVar[QueryKind] = QueryKind.POINT


@dataclass(frozen=True, slots=True)
class MultiPointQuery(Query):
    """Frequency estimates of a whole batch of ``items``; answered by
    :meth:`~repro.state.algorithm.Sketch.query_many` with one
    :class:`ScalarAnswer` per item.

    The batch form of :class:`PointQuery`: its ``kind`` is
    :attr:`QueryKind.POINT`, so the capability check is the same —
    any sketch that answers point queries answers batches of them.
    **Contract: bit-identical to the scalar loop.**  For every family
    and configuration, ``sketch.query_many(MultiPointQuery(items))``
    equals ``tuple(sketch.query(PointQuery(i)) for i in items)``
    exactly; families with a vectorized ``_answer_point_many`` kernel
    only change the wall clock (one chunked hash evaluation or one
    bulk dict lookup per batch instead of one per item).

    ``items`` accepts any iterable of ints (including numpy arrays)
    and is normalized to a tuple of Python ints, so the query is
    hashable — required by the serving layer's snapshot-keyed answer
    cache — and downstream hashes and dict lookups never see
    ``np.int64``.
    """

    items: tuple[int, ...]
    kind: ClassVar[QueryKind] = QueryKind.POINT

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "items", tuple(int(item) for item in self.items)
        )

    def __len__(self) -> int:
        return len(self.items)


@dataclass(frozen=True, slots=True)
class AllEstimates(Query):
    """Every (item, estimate) pair the sketch holds; answered by a
    :class:`MapAnswer`.

    Only summary-style sketches that actually enumerate items support
    this (hashing sketches like CountMin have no item list — use
    :class:`PointQuery` with a candidate set instead).
    """

    kind: ClassVar[QueryKind] = QueryKind.ALL_ESTIMATES


@dataclass(frozen=True, slots=True)
class HeavyHitters(Query):
    """Items above a heaviness threshold ``phi``; answered by a
    :class:`MapAnswer` of (item, estimate) pairs.

    ``phi=None`` asks for the sketch's natural default threshold.
    Each family interprets ``phi`` against its own guarantee: the
    paper's ``Lp`` heavy hitters report items with
    ``fhat >= (phi/2) * ||f||_p``, the summary baselines
    (Misra-Gries, SpaceSaving) report items with
    ``fhat >= phi * m``.
    """

    phi: float | None = None
    kind: ClassVar[QueryKind] = QueryKind.HEAVY_HITTERS


@dataclass(frozen=True, slots=True)
class Moment(Query):
    """The frequency moment ``Fp``; answered by a :class:`MomentAnswer`.

    ``p=None`` asks for the sketch's native moment order (an AMS or
    CountSketch sketch answers ``p=2``, a p-stable sketch its
    configured ``p``).  Passing an explicit ``p`` a fixed-order sketch
    cannot answer raises ``ValueError``.
    """

    p: float | None = None
    kind: ClassVar[QueryKind] = QueryKind.MOMENT


@dataclass(frozen=True, slots=True)
class Entropy(Query):
    """Shannon entropy (bits) of the stream; answered by a
    :class:`ScalarAnswer`."""

    kind: ClassVar[QueryKind] = QueryKind.ENTROPY


@dataclass(frozen=True, slots=True)
class Distinct(Query):
    """Number of distinct items ``F0``; answered by a
    :class:`ScalarAnswer`."""

    kind: ClassVar[QueryKind] = QueryKind.DISTINCT


# ----------------------------------------------------------------------
# Answers
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Answer:
    """Base answer envelope, tagged with the kind it answers."""

    kind: QueryKind


@dataclass(frozen=True, slots=True)
class ScalarAnswer(Answer):
    """A single numeric answer (point query, entropy, distinct)."""

    value: float


@dataclass(frozen=True, slots=True)
class MomentAnswer(ScalarAnswer):
    """A moment estimate plus the order ``p`` actually answered.

    ``p`` matters when the query left the order implicit
    (``Moment(p=None)``): callers scoring against ground truth read
    the resolved order from here.
    """

    p: float = 0.0


@dataclass(frozen=True, slots=True)
class MapAnswer(Answer):
    """An (item → estimate) mapping (all-estimates, heavy hitters)."""

    values: Mapping[int, float] = field(default_factory=dict)


#: Hook method implementing each kind; subclasses of ``Sketch`` that
#: declare a kind in ``supports`` override the matching hook.
QUERY_HOOKS: dict[QueryKind, str] = {
    QueryKind.POINT: "_answer_point",
    QueryKind.ALL_ESTIMATES: "_answer_all_estimates",
    QueryKind.HEAVY_HITTERS: "_answer_heavy_hitters",
    QueryKind.MOMENT: "_answer_moment",
    QueryKind.ENTROPY: "_answer_entropy",
    QueryKind.DISTINCT: "_answer_distinct",
}
