"""Algorithm 2: ``FullSampleAndHold`` — removing the moment assumption.

``SampleAndHold`` (Algorithm 1) is only accurate when the substream's
moment satisfies ``Fp = Õ(n)`` (Lemma 2.4).  Algorithm 2 lifts that
assumption by running a grid of ``R x Y`` SampleAndHold instances,
where instance ``(r, x)`` processes the substream obtained by keeping
each stream *update* independently with probability
``p_x = min(1, 2^{1-x})``.  For some level ``x`` the subsampled moment
drops into the good regime; because SampleAndHold estimates are
**one-sided** (counters can miss occurrences but never invent them —
Section 1.3, "Removing moment assumptions"), the final estimate for an
item is the *maximum* over levels of the median-over-``r`` estimate
rescaled by the inverse sampling rate ``2^{x-1}``.

Implementation notes
--------------------
* Substream lengths ``m_x`` are tracked by Morris counters (an exact
  length counter would alone cost ``Theta(m)`` state changes).
* The paper's line 8 selects ``l = min{x : m_x >= (fhat^x_j)^p}``; we
  default to the maximum rule justified by the one-sidedness argument
  (DESIGN.md substitution 4) and keep the paper's literal rule
  available via ``level_rule="min-length"``.
"""

from __future__ import annotations

import math
import random
import statistics

import numpy as np

from repro.core.counters import MorrisCounter, SkipMorrisCounter
from repro.core.sample_and_hold import SampleAndHold, SampleAndHoldParams
from repro.hashing.coins import PhiloxCoins
from repro.hashing.subsample import NestedStreamSampler
from repro.query import (
    AllEstimates,
    MapAnswer,
    MultiPointQuery,
    PointQuery,
    QueryKind,
    ScalarAnswer,
)
from repro.state.algorithm import ChunkAudit, StreamAlgorithm
from repro.state.tracker import StateTracker


class FullSampleAndHold(StreamAlgorithm):
    """Algorithm 2 of the paper: level grid over stream subsampling.

    Parameters
    ----------
    n, m, p, epsilon:
        Problem dimensions; ``m`` is the (hinted) stream length used to
        size the per-level instances (the unknown-``m`` case is handled
        by the standard doubling trick and is out of scope here).
    repetitions:
        ``R = O(log n)`` independent copies per level; odd so the
        median is well defined.  Default 3.
    num_levels:
        ``Y = O(log m)`` subsampling levels; defaults to
        ``ceil(log2(m)) + 1`` capped at 24.
    level_rule:
        ``"max"`` (default) — the one-sided maximum rule, best for
        point queries on heavy items;
        ``"shallowest"`` — the estimate from the least-subsampled level
        that held the item, which avoids the upward bias of maxing
        rescaled noise (best when summing many small estimates, e.g.
        inside the ``Fp`` estimator);
        ``"min-length"`` — the paper's literal line 8 selection.
    """

    name = "FullSampleAndHold"
    supports = frozenset({QueryKind.POINT, QueryKind.ALL_ESTIMATES})

    def __init__(
        self,
        n: int,
        m: int,
        p: float,
        epsilon: float,
        repetitions: int = 3,
        num_levels: int | None = None,
        level_rule: str = "max",
        seed: int | None = None,
        use_morris: bool = True,
        coin_protocol: str = "v2",
        tracker: StateTracker | None = None,
        **param_overrides: float,
    ) -> None:
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1: {repetitions}")
        if level_rule not in ("max", "shallowest", "min-length"):
            raise ValueError(f"unknown level_rule: {level_rule!r}")
        if coin_protocol not in ("v1", "v2"):
            raise ValueError(
                f"unknown coin protocol {coin_protocol!r}; "
                f"choose 'v1' or 'v2'"
            )
        super().__init__(tracker)
        self.n = n
        self.m = m
        self.p = p
        self.epsilon = epsilon
        self.level_rule = level_rule
        self.seed = 0 if seed is None else seed
        self.coin_protocol = coin_protocol
        self._chunk_kernel_enabled = coin_protocol == "v2"
        if repetitions % 2 == 0:
            repetitions += 1
        self.repetitions = repetitions
        if num_levels is None:
            num_levels = min(24, max(1, int(math.ceil(math.log2(max(2, m)))) + 1))
        self.num_levels = num_levels
        self._t = 0  # v2 arrival clock (level-coin index of the next arrival)

        if coin_protocol == "v1":
            self._rng = random.Random(seed)
            self._samplers = [
                NestedStreamSampler(num_levels, random.Random(self._rng.randrange(2**62)))
                for _ in range(repetitions)
            ]
            self._level_coins = None
        else:
            self._rng = None
            self._samplers = None
            # One indexed level-draw stream per repetition: arrival t's
            # survival depth for copy r is a pure function of coin
            # (r, t), which is what lets the chunk kernel split the
            # chunk into per-level substreams up front.
            self._level_coins = [
                PhiloxCoins(self.seed, f"fsh.lvl[{r}]")
                for r in range(repetitions)
            ]
        # Instance (r, x) processes the level-x substream of copy r.
        self._instances: list[list[SampleAndHold]] = []
        for r in range(repetitions):
            row = []
            for x in range(1, num_levels + 1):
                expected_m = max(1, int(round(m * min(1.0, 2.0 ** (1 - x)))))
                params = SampleAndHoldParams.from_problem(
                    n=n, m=expected_m, p=p, epsilon=epsilon, **param_overrides
                )
                if coin_protocol == "v1":
                    instance = SampleAndHold(
                        params,
                        rng=random.Random(self._rng.randrange(2**62)),
                        use_morris=use_morris,
                        tracker=self.tracker,
                    )
                else:
                    instance = SampleAndHold(
                        params,
                        seed=self.seed,
                        use_morris=use_morris,
                        coin_protocol="v2",
                        stream_label=f"fsh[{r}][{x}]",
                        tracker=self.tracker,
                    )
                row.append(instance)
            self._instances.append(row)
        # Morris counters tracking each level's substream length m_x
        # (line 4); the paper only needs a 2-approximation, so a coarse
        # growth parameter keeps these counters nearly write-free.
        if coin_protocol == "v1":
            self._length_counters = [
                MorrisCounter(self.tracker, a=0.05, rng=self._rng)
                for _ in range(num_levels)
            ]
        else:
            self._length_counters = [
                SkipMorrisCounter(
                    self.tracker,
                    a=0.05,
                    coins=PhiloxCoins(self.seed, f"fsh.len[{x}]"),
                )
                for x in range(num_levels)
            ]

    # ------------------------------------------------------------------
    # Stream processing
    # ------------------------------------------------------------------
    def _deepest_level(self, u: float) -> int:
        """Deepest surviving level for one v2 level coin.

        Exact-arithmetic twin of ``NestedStreamSampler.draw_level``:
        ``floor(1 - log2(u))`` equals ``1 - e`` for ``u = f * 2^e``
        with ``f in [0.5, 1)``, plus one exactly on powers of two —
        ``frexp`` keeps scalar and vectorized draws bit-identical
        where a log2 round-trip could disagree in the last ulp.
        """
        if u <= 0.0:
            return self.num_levels
        fraction, exponent = math.frexp(u)
        deepest = 1 - exponent + (1 if fraction == 0.5 else 0)
        return max(1, min(self.num_levels, deepest))

    def _update(self, item: int) -> None:
        if self._level_coins is not None:
            idx = self._t
            self._t = idx + 1
            for r, coins in enumerate(self._level_coins):
                deepest = self._deepest_level(coins.uniform(idx))
                row = self._instances[r]
                for x in range(deepest):
                    row[x]._update(item)
                if r == 0:
                    for x in range(deepest):
                        self._length_counters[x].add()
            return
        for r, sampler in enumerate(self._samplers):
            deepest = sampler.draw_level()
            row = self._instances[r]
            for x in range(deepest):
                row[x]._update(item)
            if r == 0:
                # Substream lengths m_x are tracked on the first copy
                # (one representative draw per level suffices for the
                # 2-approximation Algorithm 2 line 4 asks for).
                for x in range(deepest):
                    self._length_counters[x].add()

    def _update_chunk(self, chunk: np.ndarray) -> None:
        """Vectorized grid dispatch: split the chunk into per-level
        substreams from the indexed level coins, screen each instance's
        substream with its own chunk flags, then settle every flagged
        event in exact scalar order (position, repetition, level) so
        allocation/eviction interleaving — and thus peak words —
        matches the scalar loop."""
        n = len(chunk)
        audit = ChunkAudit(n, self.tracker.needs_cell_ids)
        t0 = self._t
        self._t = t0 + n
        events: list[tuple[int, int, int, SampleAndHold, int, int, float]] = []
        deepest_first = None
        for r, coins in enumerate(self._level_coins):
            u = coins.uniform_block(t0, n)
            fraction, exponent = np.frexp(u)
            deepest = (1 - exponent + (fraction == 0.5)).astype(np.int64)
            deepest = np.where(
                u <= 0.0,
                np.int64(self.num_levels),
                np.clip(deepest, 1, self.num_levels),
            )
            if r == 0:
                deepest_first = deepest
            row = self._instances[r]
            for x in range(self.num_levels):
                positions = np.nonzero(deepest > x)[0]
                if len(positions) == 0:
                    break  # levels are nested: deeper ones are empty too
                instance = row[x]
                sub = chunk[positions]
                sub_t0 = instance._t
                uniforms, flagged = instance._chunk_flags(sub)
                instance._t = sub_t0 + len(sub)
                for local in np.nonzero(flagged)[0].tolist():
                    events.append(
                        (
                            int(positions[local]),
                            r,
                            x,
                            instance,
                            int(sub[local]),
                            sub_t0 + local,
                            float(uniforms[local]),
                        )
                    )
        # Substream length counters (first copy only): batch-absorb each
        # level's arrivals, mapping transition ordinals back to chunk
        # positions.  No allocation churn, so ordering vs. the instance
        # events below cannot affect peak words.
        for x in range(self.num_levels):
            positions = np.nonzero(deepest_first > x)[0]
            if len(positions) == 0:
                break
            counter = self._length_counters[x]
            for ordinal in counter.absorb(len(positions)):
                audit.write(counter.cell_id, True, int(positions[ordinal - 1]))
        # A position occurs at most once per (r, x) substream, so the
        # (position, r, x) prefix is unique and the sort never compares
        # the instance element.
        events.sort()
        for _position, _r, _x, instance, item, idx, u_sample in events:
            instance._step_absorb(item, idx, u_sample, _position, audit)
        audit.commit(self.tracker, n)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _median_estimate(self, item: int, level_index: int) -> float:
        """Median over repetitions of the level's raw estimates."""
        values = [
            self._instances[r][level_index].estimate(item)
            for r in range(self.repetitions)
        ]
        return float(statistics.median(values))

    def _answer_point(self, q: PointQuery) -> ScalarAnswer:
        """Rescaled frequency estimate for one item (0 if never held)."""
        return ScalarAnswer(
            QueryKind.POINT, self._estimates_impl(None).get(q.item, 0.0)
        )

    def _answer_all_estimates(self, q: AllEstimates) -> MapAnswer:
        """Estimates for every held item, under the default level rule."""
        return MapAnswer(QueryKind.ALL_ESTIMATES, self._estimates_impl(None))

    def _answer_point_many(
        self, q: MultiPointQuery
    ) -> tuple[ScalarAnswer, ...]:
        """Batch point queries: the estimate map is built once and
        gathered, instead of once per item as in the scalar hook."""
        estimates = self._estimates_impl(None)
        return tuple(
            ScalarAnswer(QueryKind.POINT, estimates.get(item, 0.0))
            for item in q.items
        )

    def estimate(self, item: int) -> float:
        """Rescaled frequency estimate for one item (0 if never held)."""
        return self.query(PointQuery(item)).value

    def estimates(self, level_rule: str | None = None) -> dict[int, float]:
        """Frequency estimates for every item held at any level.

        With the default ``level_rule`` this is the all-estimates query;
        an explicit rule overrides the query-time level combination.
        """
        if level_rule is None:
            return dict(self.query(AllEstimates()).values)
        return self._estimates_impl(level_rule)

    def _estimates_impl(self, level_rule: str | None) -> dict[int, float]:
        """Frequency estimates for every item held at any level.

        Each level's median estimate is rescaled by the inverse
        sampling rate ``2^{x-1}``; levels are combined per
        ``level_rule`` (a query-time choice — the sketch itself is
        rule-agnostic, so one pass can serve both point queries with
        ``"max"`` and moment sums with ``"shallowest"``).
        """
        rule = self.level_rule if level_rule is None else level_rule
        if rule not in ("max", "shallowest", "min-length"):
            raise ValueError(f"unknown level_rule: {rule!r}")
        candidates: set[int] = set()
        for row in self._instances:
            for instance in row:
                candidates.update(instance.estimates())

        results: dict[int, float] = {}
        for item in candidates:
            per_level: list[tuple[int, float]] = []
            for x in range(1, self.num_levels + 1):
                med = self._median_estimate(item, x - 1)
                if med > 0:
                    per_level.append((x, med * 2.0 ** (x - 1)))
            if not per_level:
                continue
            if rule == "max":
                results[item] = max(value for _, value in per_level)
            elif rule == "shallowest":
                results[item] = per_level[0][1]
            else:
                results[item] = self._min_length_rule(item, per_level)
        return results

    def _min_length_rule(
        self, item: int, per_level: list[tuple[int, float]]
    ) -> float:
        """The paper's line 8: first level whose length dominates
        ``(fhat^x_j)^p``; falls back to the max rule when none does."""
        for x, value in per_level:
            m_x = self._length_counters[x - 1].estimate
            raw = value / 2.0 ** (x - 1)
            if m_x >= raw**self.p:
                return value
        return max(value for _, value in per_level)

    def level_length(self, level: int) -> float:
        """Morris-estimated substream length ``m_x`` of ``level``."""
        if not 1 <= level <= self.num_levels:
            raise ValueError(f"level {level} outside [1, {self.num_levels}]")
        return self._length_counters[level - 1].estimate
