"""Stream-length-oblivious operation (the paper's unknown-``m`` case).

The paper's model (Section 1.5) does not require the stream length in
advance; the algorithms are parameterized by ``m`` only to set sampling
rates, so the standard doubling trick applies.  This module wraps
:class:`~repro.core.full_sample_and_hold.FullSampleAndHold` in epochs:
epoch ``e`` is provisioned for ``m0 * 2^e`` updates and processes the
corresponding disjoint chunk of the stream.  Because the stream is
insertion-only, an item's true frequency is the sum of its per-epoch
frequencies, and each epoch's estimate is one-sided, so the summed
estimate inherits one-sidedness.

The total state-change budget telescopes: epoch ``e`` contributes
``Õ(n^{1-1/p})`` changes (its own guarantee), and there are
``O(log(m / m0))`` epochs, preserving the theorem's bound up to the
logarithmic factor the paper's ``Õ`` already absorbs.
"""

from __future__ import annotations

from repro.core.full_sample_and_hold import FullSampleAndHold
from repro.query import (
    AllEstimates,
    MapAnswer,
    MultiPointQuery,
    PointQuery,
    QueryKind,
    ScalarAnswer,
)
from repro.state.algorithm import StreamAlgorithm
from repro.state.tracker import StateTracker


class AdaptiveFullSampleAndHold(StreamAlgorithm):
    """FullSampleAndHold without a stream-length hint (doubling epochs).

    Parameters
    ----------
    n, p, epsilon:
        As in :class:`FullSampleAndHold`.
    initial_m:
        Provisioned length of the first epoch (doubles thereafter).
    fsh_kwargs:
        Extra keyword arguments forwarded to each epoch's inner
        :class:`FullSampleAndHold`.
    """

    name = "AdaptiveFullSampleAndHold"
    supports = frozenset({QueryKind.POINT, QueryKind.ALL_ESTIMATES})

    def __init__(
        self,
        n: int,
        p: float,
        epsilon: float,
        initial_m: int = 1024,
        seed: int | None = None,
        coin_protocol: str = "v2",
        tracker: StateTracker | None = None,
        **fsh_kwargs,
    ) -> None:
        if initial_m < 1:
            raise ValueError(f"initial_m must be >= 1: {initial_m}")
        if coin_protocol not in ("v1", "v2"):
            raise ValueError(
                f"unknown coin protocol {coin_protocol!r}; "
                f"choose 'v1' or 'v2'"
            )
        super().__init__(tracker)
        self.n = n
        self.p = p
        self.epsilon = epsilon
        self.initial_m = initial_m
        self._seed = 0 if seed is None else seed
        self.coin_protocol = coin_protocol
        # Summed estimates compound any per-epoch upward bias, so the
        # conservative shallowest-level rule is the right default here.
        fsh_kwargs.setdefault("level_rule", "shallowest")
        fsh_kwargs.setdefault("coin_protocol", coin_protocol)
        self._fsh_kwargs = fsh_kwargs
        self._epochs: list[FullSampleAndHold] = []
        self._epoch_budget = 0  # updates remaining in the current epoch
        self._start_epoch()

    def _start_epoch(self) -> None:
        epoch_index = len(self._epochs)
        epoch_m = self.initial_m * (2**epoch_index)
        self._epochs.append(
            FullSampleAndHold(
                n=self.n,
                m=epoch_m,
                p=self.p,
                epsilon=self.epsilon,
                seed=self._seed + 101 * epoch_index,
                tracker=self.tracker,
                **self._fsh_kwargs,
            )
        )
        self._epoch_budget = epoch_m

    def _update(self, item: int) -> None:
        if self._epoch_budget == 0:
            self._start_epoch()
        self._epochs[-1]._update(item)
        self._epoch_budget -= 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_epochs(self) -> int:
        """Number of doubling epochs opened so far."""
        return len(self._epochs)

    def _answer_point(self, q: PointQuery) -> ScalarAnswer:
        return ScalarAnswer(
            QueryKind.POINT, self._estimates_impl(None).get(q.item, 0.0)
        )

    def _answer_all_estimates(self, q: AllEstimates) -> MapAnswer:
        return MapAnswer(QueryKind.ALL_ESTIMATES, self._estimates_impl(None))

    def _answer_point_many(
        self, q: MultiPointQuery
    ) -> tuple[ScalarAnswer, ...]:
        """Batch point queries: the per-epoch estimate merge runs once
        for the whole batch instead of once per item."""
        estimates = self._estimates_impl(None)
        return tuple(
            ScalarAnswer(QueryKind.POINT, estimates.get(item, 0.0))
            for item in q.items
        )

    def _estimates_impl(self, level_rule: str | None) -> dict[int, float]:
        """Summed per-epoch estimates (one-sided, like each epoch's)."""
        combined: dict[int, float] = {}
        for epoch in self._epochs:
            for item, value in epoch.estimates(level_rule).items():
                combined[item] = combined.get(item, 0.0) + value
        return combined

    def estimates(self, level_rule: str | None = None) -> dict[int, float]:
        """Summed per-epoch estimates (one-sided, like each epoch's)."""
        if level_rule is None:
            return dict(self.query(AllEstimates()).values)
        return self._estimates_impl(level_rule)

    def estimate(self, item: int) -> float:
        """Summed estimate for one item (0 when never held)."""
        return self.query(PointQuery(item)).value
