"""The paper's contribution: state-change-frugal streaming algorithms.

* :mod:`repro.core.counters` — Morris counters (Theorem 1.5).
* :mod:`repro.core.sample_and_hold` — Algorithm 1.
* :mod:`repro.core.full_sample_and_hold` — Algorithm 2.
* :mod:`repro.core.fp_estimation` — Algorithm 3 (``Fp``, ``p >= 1``).
* :mod:`repro.core.heavy_hitters` — public heavy-hitter API (Thm 1.1).
* :mod:`repro.core.fp_pstable` — ``Fp`` for ``p in (0, 1]`` (Thm 3.2).
* :mod:`repro.core.entropy` — Shannon entropy (Theorem 3.8).
"""

from repro.core.counters import (
    ApproximateCounter,
    ExactCounter,
    MedianMorrisCounter,
    MorrisCounter,
)
from repro.core.fp_estimation import FpEstimator
from repro.core.full_sample_and_hold import FullSampleAndHold
from repro.core.heavy_hitters import HeavyHitters
from repro.core.sample_and_hold import SampleAndHold, SampleAndHoldParams
from repro.core.support_recovery import SparseSupportRecovery

__all__ = [
    "ApproximateCounter",
    "ExactCounter",
    "FpEstimator",
    "FullSampleAndHold",
    "HeavyHitters",
    "MedianMorrisCounter",
    "MorrisCounter",
    "SampleAndHold",
    "SampleAndHoldParams",
    "SparseSupportRecovery",
]
