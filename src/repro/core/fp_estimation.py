"""Algorithm 3: ``Fp`` estimation for ``p >= 1`` with few state changes.

The estimator follows the [IW05] level-set framework (Section 3.2):

1. **Universe subsampling.**  ``L`` nested subsets
   ``I_1 ⊇ I_2 ⊇ ... `` of ``[n]`` are formed by hashing, level ``l``
   keeping each element with probability ``p_l = min(1, 2^{1-l})``.
   ``R`` independent copies are kept for a median.
2. **Heavy hitters per level.**  Each surviving substream is fed to a
   ``FullSampleAndHold`` instance, which returns one-sided frequency
   estimates using few state changes (the paper's key advantage over
   plugging in AMS/p-stable style estimators, which write every
   update).
3. **Level sets.**  With a random boundary ``lambda ~ Uni[1/2, 1]``
   (Definition 3.3), items are bucketed by their estimated
   ``(fhat_j)^p`` into geometric bands ``[lambda*M/2^i, 2*lambda*M/2^i)``.
   Band ``i`` is read from subsampling level ``l(i) = max(1, i -
   offset)`` and its contribution is the rescaled median
   ``C_i = (1/p_l) * median_r sum (fhat_j)^p`` (Algorithm 3 line 13).
4. **Sum.**  ``Fp_hat = sum_i C_i`` (line 14).

A ``backend="oracle"`` mode replaces step 2 with exact per-level
frequency tables; it isolates the level-set machinery from sampling
noise and is used by the test suite to validate step 3/4 independently
(it is *not* state-change frugal).
"""

from __future__ import annotations

import math
import random
import statistics
from typing import Protocol

from repro.core.full_sample_and_hold import FullSampleAndHold
from repro.hashing.subsample import NestedUniverseSampler
from repro.query import Moment, MomentAnswer, QueryKind
from repro.state.algorithm import StreamAlgorithm
from repro.state.registers import TrackedDict
from repro.state.tracker import StateTracker


class FrequencyBackend(Protocol):
    """Per-level heavy-hitter estimator plugged into Algorithm 3."""

    def _update(self, item: int) -> None: ...

    def estimates(
        self, level_rule: str | None = None
    ) -> dict[int, float]: ...


class _OracleBackend:
    """Exact per-level frequencies (testing/ablation only).

    Writes on every update, so it deliberately does **not** have few
    state changes; it exists to validate the level-set estimator in
    isolation.
    """

    def __init__(self, tracker: StateTracker, name: str) -> None:
        self._counts: TrackedDict[int, int] = TrackedDict(tracker, name)

    def _update(self, item: int) -> None:
        self._counts[item] = self._counts.get(item, 0) + 1

    def estimates(self, level_rule: str | None = None) -> dict[int, float]:
        return {item: float(c) for item, c in self._counts.items()}


class FpEstimator(StreamAlgorithm):
    """``(1 + eps)``-approximation of ``Fp`` for ``p >= 1`` (Theorem 1.3).

    Parameters
    ----------
    n, m, p, epsilon:
        Problem dimensions (``m`` is the stream-length hint used to
        size substructures and the level-set scale).
    repetitions:
        Outer repetitions ``R`` (median over universe-subsampling
        copies); odd.  Default 3.
    backend:
        ``"sample-hold"`` (the paper's FullSampleAndHold) or
        ``"oracle"`` (exact tables; testing only).
    offset_scale:
        Constant ``c`` in the band-to-level offset
        ``floor(log2(c * log2(nm) / eps^2))`` — the practical stand-in
        for Algorithm 3 line 12's ``gamma^2 log(nm)/eps^2``.
    inner_kwargs:
        Extra keyword arguments forwarded to each inner
        :class:`FullSampleAndHold`.
    """

    name = "FpEstimator"
    supports = frozenset({QueryKind.MOMENT})

    def __init__(
        self,
        n: int,
        m: int,
        p: float,
        epsilon: float,
        repetitions: int = 3,
        backend: str = "sample-hold",
        offset_scale: float = 1.0,
        num_levels: int | None = None,
        seed: int | None = None,
        coin_protocol: str = "v2",
        tracker: StateTracker | None = None,
        inner_kwargs: dict | None = None,
    ) -> None:
        if p < 1:
            raise ValueError(
                f"Algorithm 3 needs p >= 1 (use PStableFpEstimator for p < 1): {p}"
            )
        if not 0 < epsilon <= 1:
            raise ValueError(f"epsilon must be in (0, 1]: {epsilon}")
        if backend not in ("sample-hold", "oracle"):
            raise ValueError(f"unknown backend: {backend!r}")
        if coin_protocol not in ("v1", "v2"):
            raise ValueError(
                f"unknown coin protocol {coin_protocol!r}; "
                f"choose 'v1' or 'v2'"
            )
        super().__init__(tracker)
        self.coin_protocol = coin_protocol
        self.n = n
        self.m = m
        self.p = p
        self.epsilon = epsilon
        if repetitions % 2 == 0:
            repetitions += 1
        self.repetitions = repetitions
        self.backend_kind = backend

        self._rng = random.Random(seed)
        # Definition 3.3's randomized boundary.
        self._lambda = self._rng.uniform(0.5, 1.0)
        if num_levels is None:
            num_levels = max(1, int(math.ceil(math.log2(max(2, n)))) + 1)
        self.num_levels = num_levels

        log_nm = math.log2(2 + n * m)
        self._offset = max(
            0, int(math.floor(math.log2(offset_scale * log_nm / epsilon**2)))
        )

        self._samplers = [
            NestedUniverseSampler(
                num_levels, seed=self._rng.randrange(2**62)
            )
            for _ in range(repetitions)
        ]
        inner_kwargs = dict(inner_kwargs or {})
        # Moment sums aggregate many small estimates, so the inner
        # instances default to the shallowest-held-level rule: maxing
        # rescaled noisy levels is upward biased, and the paper's
        # min-length rule selects needlessly deep (noisy) levels at
        # laptop scale.  Heavy-hitter point queries override to "max".
        inner_kwargs.setdefault("level_rule", "shallowest")
        self._backends: list[list[FrequencyBackend]] = []
        for r in range(repetitions):
            row: list[FrequencyBackend] = []
            for level in range(1, num_levels + 1):
                if backend == "oracle":
                    row.append(
                        _OracleBackend(self.tracker, f"oracle[{r},{level}]")
                    )
                else:
                    expected_m = max(
                        1, int(round(m * min(1.0, 2.0 ** (1 - level))))
                    )
                    row.append(
                        FullSampleAndHold(
                            n=max(2, n >> (level - 1)),
                            m=expected_m,
                            p=p,
                            epsilon=epsilon,
                            seed=self._rng.randrange(2**62),
                            coin_protocol=coin_protocol,
                            tracker=self.tracker,
                            **inner_kwargs,
                        )
                    )
            self._backends.append(row)

    # ------------------------------------------------------------------
    # Stream processing (Algorithm 3 lines 2-7)
    # ------------------------------------------------------------------
    def _update(self, item: int) -> None:
        for r, sampler in enumerate(self._samplers):
            deepest = sampler.level_of(item)
            row = self._backends[r]
            for level_index in range(min(deepest, self.num_levels)):
                row[level_index]._update(item)

    # ------------------------------------------------------------------
    # Level-set estimation (Algorithm 3 lines 8-14)
    # ------------------------------------------------------------------
    def _band_of(self, value_p: float, m_tilde: float) -> int | None:
        """Band index ``i >= 1`` with ``value_p`` in
        ``[lambda*M/2^i, 2*lambda*M/2^i)``; None if out of range."""
        if value_p <= 0:
            return None
        top = 2.0 * self._lambda * m_tilde
        if value_p >= top:
            return 1  # clamp overshoots into the first band
        i = int(math.floor(math.log2(top / value_p)))
        return max(1, i)

    def level_for_band(self, band: int) -> int:
        """Algorithm 3 line 12: subsampling level read by band ``i``."""
        return min(self.num_levels, max(1, band - self._offset))

    def contributions(self) -> dict[int, float]:
        """Per-band contribution estimates ``C_i`` (line 13)."""
        m_tilde = 2.0 ** math.ceil(self.p * math.log2(max(2, self.m)))
        num_bands = int(math.ceil(math.log2(m_tilde))) + 2

        # Each backend's estimates are computed once and shared across
        # all bands that read its level.
        cache: dict[tuple[int, int], dict[int, float]] = {}

        def level_estimates(r: int, level: int) -> dict[int, float]:
            key = (r, level)
            if key not in cache:
                cache[key] = self._backends[r][level - 1].estimates()
            return cache[key]

        contributions: dict[int, float] = {}
        for band in range(1, num_bands + 1):
            level = self.level_for_band(band)
            rate = min(1.0, 2.0 ** (1 - level))
            per_copy = []
            for r in range(self.repetitions):
                total = 0.0
                for fhat in level_estimates(r, level).values():
                    value_p = fhat**self.p
                    if self._band_of(value_p, m_tilde) == band:
                        total += value_p
                per_copy.append(total / rate)
            contributions[band] = float(statistics.median(per_copy))
        return contributions

    def _answer_moment(self, q: Moment) -> MomentAnswer:
        """``Fp_hat = sum_i C_i`` (Algorithm 3 line 14)."""
        if q.p is not None and q.p != self.p:
            raise ValueError(
                f"this estimator is configured for p={self.p}, not p={q.p}"
            )
        return MomentAnswer(
            QueryKind.MOMENT, sum(self.contributions().values()), p=self.p
        )

    def fp_estimate(self) -> float:
        """``Fp_hat = sum_i C_i`` (Algorithm 3 line 14)."""
        return self.query(Moment()).value

    def lp_norm_estimate(self) -> float:
        """``||f||_p`` estimate: ``fp_estimate() ** (1/p)``."""
        return self.fp_estimate() ** (1.0 / self.p)

    def level_estimates(
        self, r: int, level: int, level_rule: str | None = None
    ) -> dict[int, float]:
        """Raw per-backend estimates (for point queries and tests)."""
        return self._backends[r][level - 1].estimates(level_rule)
