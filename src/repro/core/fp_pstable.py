"""``Fp`` estimation for ``p in (0, 1]`` via p-stable sketches (Thm 3.2).

The [JW19] construction quoted in Section 3.1: a sketch matrix ``D``
with p-stable entries is split row-wise into its positive part
``D^{(+)}`` and negative part ``D^{(-)}``.  On an insertion-only stream
both inner products ``<D^{(+)}, f>`` and ``<D^{(-)}, f>`` are monotone
non-decreasing, so each can be maintained by a *weighted Morris
counter* with ``poly(log, 1/eps)`` state changes; the signed sketch
coordinate is recovered as their difference.  For ``p < 1`` the key
bound ``|<D^{(+)},f>| + |<D^{(-)},f>| = O(||f||_p)`` ensures the Morris
approximation error on the two halves does not swamp the difference.

Two estimators over the ``k`` sketch coordinates are provided:

* ``"median"`` — Indyk's estimator: ``median_i |s_i| / median(|D_p|)``.
* ``"log-cosine"`` — the [KNW10] estimator
  ``-lambda^p * ln(mean_i cos(s_i / lambda))`` seeded with the median
  estimate as the scale ``lambda`` (more robust when ``p`` is close
  to 1).

The sketch matrix is never stored: entry ``D[i, j]`` is regenerated on
demand from a seed (:class:`~repro.hashing.pstable.DerandomizedStable`),
standing in for the ``O(log(1/eps)/log log(1/eps))``-wise independent
generation of [JW19] (DESIGN.md substitution note).

Coin protocols: ``"v1"`` keeps per-row ``MorrisCounter`` objects fed by
one sequential ``random.Random``.  ``"v2"`` (default) holds the levels
as ``int64`` arrays and drives every weighted climb from an indexed
Philox stream — update ``t`` row ``i`` consumes the coin at flat index
``t * num_rows + i`` — through the shared
:func:`~repro.core.counters.weighted_morris_step` kernel.  The chunk
kernel exploits that the climb condition is *monotone decreasing in
the level*: a screen computed against chunk-start levels is
conservative, so the (increasingly rare, as gaps outgrow the variate
magnitudes) flagged positions are settled row-vectorized while
everything else is provably a no-op — bit-identical to the scalar v2
loop by construction.
"""

from __future__ import annotations

import math
import random
import statistics

import numpy as np

from repro.core.counters import (
    MorrisCounter,
    climbed_level_v2,
    weighted_morris_step,
)
from repro.hashing.coins import PhiloxCoins
from repro.hashing.pstable import (
    cms_transform,
    stable_abs_median,
    stable_log_abs_mean,
)
from repro.query import Moment, MomentAnswer, QueryKind
from repro.state.algorithm import ChunkAudit, StreamAlgorithm
from repro.state.tracker import StateTracker

_HALF_PI = math.pi / 2.0


class PStableFpEstimator(StreamAlgorithm):
    """``(1+eps)``-approximate ``Fp`` for ``p in (0, 2)`` with few writes.

    Theorem 3.2 covers ``p in (0, 1]``; values up to 2 are accepted
    because the entropy estimator (Theorem 3.8) evaluates moments at
    interpolation nodes slightly above 1, where the construction still
    behaves well empirically.

    Parameters
    ----------
    p:
        Moment order in ``(0, 2)``.
    epsilon:
        Target relative accuracy; sets the default number of rows
        ``k ~ 1/eps^2``.
    num_rows:
        Explicit override of the sketch width.
    morris_a:
        Growth parameter of the two weighted Morris counters per row;
        smaller is more accurate and more write-hungry.
    variate_seed:
        Seed of the underlying ``(theta, r)`` uniforms.  Distinct
        sketches sharing a ``variate_seed`` evaluate *the same* random
        matrix at different ``p`` (common random numbers) — the entropy
        estimator relies on this to differentiate across ``p`` stably.
    coin_protocol:
        ``"v2"`` (default) for indexed Philox coins and the chunk
        kernel; ``"v1"`` for the sequential-RNG legacy path.
    """

    name = "PStableFp"
    mergeable = True
    supports = frozenset({QueryKind.MOMENT})
    _coin_protocol_aware = True

    def __init__(
        self,
        p: float,
        epsilon: float = 0.3,
        num_rows: int | None = None,
        morris_a: float = 0.02,
        seed: int | None = None,
        variate_seed: int | None = None,
        coin_protocol: str = "v2",
        tracker: StateTracker | None = None,
    ) -> None:
        if not 0.0 < p < 2.0:
            raise ValueError(f"p must be in (0, 2): {p}")
        if not 0 < epsilon <= 1:
            raise ValueError(f"epsilon must be in (0, 1]: {epsilon}")
        if coin_protocol not in ("v1", "v2"):
            raise ValueError(
                f"unknown coin protocol {coin_protocol!r}; "
                f"choose 'v1' or 'v2'"
            )
        super().__init__(tracker)
        self.p = p
        self.epsilon = epsilon
        if num_rows is None:
            num_rows = min(400, max(20, int(math.ceil(4.0 / epsilon**2))))
        self.num_rows = num_rows
        self.morris_a = morris_a
        self.seed = 0 if seed is None else seed
        self.variate_seed = self.seed if variate_seed is None else variate_seed
        self.coin_protocol = coin_protocol
        self._chunk_kernel_enabled = coin_protocol == "v2"

        if coin_protocol == "v1":
            self._rng = random.Random(self.seed)
            self._positive = [
                MorrisCounter(self.tracker, a=morris_a, rng=self._rng)
                for _ in range(num_rows)
            ]
            self._negative = [
                MorrisCounter(self.tracker, a=morris_a, rng=self._rng)
                for _ in range(num_rows)
            ]
        else:
            self._pos_levels = np.zeros(num_rows, dtype=np.int64)
            self._neg_levels = np.zeros(num_rows, dtype=np.int64)
            self._coins = PhiloxCoins(self.seed, "pstable.climb")
            self._merge_coins = PhiloxCoins(self.seed, "pstable.merge")
            self._merge_draws = 0
            self._updates = 0
            # Same space charge as the 2R tracked level registers of v1.
            self.tracker.allocate(2 * num_rows)
        # Small cache of per-item variate columns: the matrix is
        # regenerated from the seed, never stored, so the cache is a
        # speed optimization only (reads are free in the cost model).
        self._variate_cache: dict[int, np.ndarray] = {}
        self._cache_capacity = 8192

    # ------------------------------------------------------------------
    # Sketch maintenance
    # ------------------------------------------------------------------
    def _variates(self, item: int) -> np.ndarray:
        """Column ``D[:, item]``, regenerated deterministically.

        The ``(theta, r)`` uniforms depend only on ``(variate_seed,
        item)`` — not on ``p`` — so sketches sharing a variate seed see
        a common random matrix smoothly parameterized by ``p``.
        """
        column = self._variate_cache.get(item)
        if column is None:
            gen = np.random.default_rng(
                hash((self.variate_seed, item)) & 0x7FFFFFFF
            )
            theta = gen.uniform(-_HALF_PI, _HALF_PI, self.num_rows)
            r = gen.uniform(0.0, 1.0, self.num_rows)
            column = cms_transform(self.p, theta, r)
            if len(self._variate_cache) >= self._cache_capacity:
                self._variate_cache.clear()
            self._variate_cache[item] = column
        return column

    def _step_levels(
        self, column: np.ndarray, uniforms: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Post-update (pos, neg) level arrays for one v2 arrival.

        One coin per row drives whichever half the signed variate hits
        (the other half sees weight 0 and never reads its coin).
        """
        pos_w = np.where(column >= 0.0, column, 0.0)
        neg_w = np.where(column < 0.0, -column, 0.0)
        a = self.morris_a
        return (
            weighted_morris_step(a, self._pos_levels, pos_w, uniforms),
            weighted_morris_step(a, self._neg_levels, neg_w, uniforms),
        )

    def _update(self, item: int) -> None:
        column = self._variates(item)
        if self.coin_protocol == "v1":
            for row in range(self.num_rows):
                value = column[row]
                if value >= 0.0:
                    self._positive[row].add(value)
                else:
                    self._negative[row].add(-value)
            return
        t = self._updates
        self._updates = t + 1
        uniforms = self._coins.uniform_block(
            t * self.num_rows, self.num_rows
        )
        new_pos, new_neg = self._step_levels(column, uniforms)
        tracker = self.tracker
        needs = tracker.needs_cell_ids
        for prefix, levels, new in (
            ("pstable.pos", self._pos_levels, new_pos),
            ("pstable.neg", self._neg_levels, new_neg),
        ):
            for i in np.nonzero(new != levels)[0].tolist():
                applied = (
                    tracker.record_write(f"{prefix}[{i}]", True)
                    if needs
                    else tracker.count_write(True)
                )
                if applied:
                    levels[i] = new[i]

    def _update_chunk(self, chunk: np.ndarray) -> None:
        audit = ChunkAudit(len(chunk), self.tracker.needs_cell_ids)
        self._absorb_chunk(chunk, audit)
        audit.commit(self.tracker, len(chunk))

    #: Screening-block length: the no-op screen freezes its gaps at
    #: block start, so blocks bound how stale the gaps can get.  Levels
    #: climb fastest early in a stream — a whole-stream chunk screened
    #: once against level-0 gaps flags *every* position — while per-
    #: block refreshes let the screen tighten as the levels rise.
    _SCREEN_BLOCK = 1024

    def _absorb_chunk(
        self, chunk: np.ndarray, audit: ChunkAudit, offset: int = 0
    ) -> None:
        """Absorb a chunk's arrivals, accounting into ``audit`` at
        positions ``offset + i`` (shared with the entropy kernel)."""
        block = self._SCREEN_BLOCK
        for start in range(0, len(chunk), block):
            self._absorb_block(
                chunk[start:start + block], audit, offset + start
            )

    def _absorb_block(
        self, chunk: np.ndarray, audit: ChunkAudit, offset: int
    ) -> None:
        """One screening block of the chunk kernel.

        The screen against block-start gaps is conservative: the climb
        condition ``(w >= gap) | (u * gap < w)`` is monotone decreasing
        in the level, and levels only rise mid-block, so an unflagged
        position stays a no-op for every row under any later levels.
        """
        n = len(chunk)
        rows = self.num_rows
        t0 = self._updates
        self._updates = t0 + n
        uniforms = self._coins.uniform_block(t0 * rows, n * rows).reshape(
            n, rows
        )
        uniq, inverse = np.unique(chunk, return_inverse=True)
        matrix = np.empty((len(uniq), rows))
        for idx, item in enumerate(uniq.tolist()):
            matrix[idx] = self._variates(int(item))
        variates = matrix[inverse]
        magnitudes = np.abs(variates)
        a = self.morris_a
        gap_pos = np.power(1.0 + a, self._pos_levels.astype(np.float64))
        gap_neg = np.power(1.0 + a, self._neg_levels.astype(np.float64))
        gaps = np.where(variates >= 0.0, gap_pos[None, :], gap_neg[None, :])
        flagged = (
            (magnitudes >= gaps) | (uniforms * gaps < magnitudes)
        ).any(axis=1)
        for local in np.nonzero(flagged)[0].tolist():
            new_pos, new_neg = self._step_levels(
                variates[local], uniforms[local]
            )
            position = offset + local
            for prefix, levels, new in (
                ("pstable.pos", self._pos_levels, new_pos),
                ("pstable.neg", self._neg_levels, new_neg),
            ):
                changed = np.nonzero(new != levels)[0]
                for i in changed.tolist():
                    audit.write(f"{prefix}[{i}]", True, position)
                levels[changed] = new[changed]

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def _level_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Current (pos, neg) levels, protocol-independent."""
        if self.coin_protocol == "v2":
            return self._pos_levels, self._neg_levels
        return (
            np.array([c.level for c in self._positive], dtype=np.int64),
            np.array([c.level for c in self._negative], dtype=np.int64),
        )

    def coordinates(self) -> list[float]:
        """Signed sketch coordinates ``s_i = <D^{(i)}, f>`` (approx)."""
        if self.coin_protocol == "v1":
            return [
                self._positive[row].estimate - self._negative[row].estimate
                for row in range(self.num_rows)
            ]
        a = self.morris_a
        pos = (np.power(1.0 + a, self._pos_levels.astype(np.float64)) - 1.0) / a
        neg = (np.power(1.0 + a, self._neg_levels.astype(np.float64)) - 1.0) / a
        return [float(p) - float(q) for p, q in zip(pos, neg)]

    def lp_norm_estimate(self, estimator: str = "median") -> float:
        """``||f||_p`` estimate via the chosen estimator.

        ``"median"`` — Indyk's estimator (default);
        ``"log-cosine"`` — [KNW10]-style refinement;
        ``"log-mean"`` — ``exp(mean_i ln|s_i| - E[ln|Z_p|])``, exactly
        unbiased in log-space and maximally correlated across ``p``
        under common random numbers (the entropy estimator's choice).
        """
        if estimator not in ("median", "log-cosine", "log-mean"):
            raise ValueError(f"unknown estimator: {estimator!r}")
        coords = self.coordinates()
        if estimator == "log-mean":
            nonzero = [abs(value) for value in coords if value != 0.0]
            if not nonzero:
                return 0.0
            log_mean = sum(math.log(value) for value in nonzero) / len(nonzero)
            return math.exp(log_mean - stable_log_abs_mean(self.p))
        scale = stable_abs_median(self.p)
        median_estimate = float(
            statistics.median(abs(value) for value in coords)
        ) / scale
        if estimator == "median" or median_estimate == 0.0:
            return median_estimate
        # Log-cosine refinement around the median estimate's scale.
        lam = median_estimate
        mean_cos = float(np.mean(np.cos(np.asarray(coords) / lam)))
        if mean_cos <= 0.05:  # out of the estimator's reliable range
            return median_estimate
        norm_p = -(lam**self.p) * math.log(mean_cos)
        return norm_p ** (1.0 / self.p)

    def _answer_moment(self, q: Moment) -> MomentAnswer:
        """``Fp`` at the sketch's configured order (median estimator)."""
        if q.p is not None and q.p != self.p:
            raise ValueError(
                f"this sketch is configured for p={self.p}, not p={q.p}"
            )
        return MomentAnswer(
            QueryKind.MOMENT, self.lp_norm_estimate() ** self.p, p=self.p
        )

    def fp_estimate(self, estimator: str = "median") -> float:
        """``Fp = ||f||_p^p`` estimate.

        The default (median) estimator is the moment query; explicit
        estimator choices bypass the protocol's single answer shape.
        """
        if estimator == "median":
            return self.query(Moment()).value
        return self.lp_norm_estimate(estimator) ** self.p

    # ------------------------------------------------------------------
    # Mergeable sketch protocol
    # ------------------------------------------------------------------
    # Each row's positive/negative halves are monotone inner products
    # ``<D^{(+/-)}, f>``, which add across stream shards; two sketches
    # sharing a variate seed see the same matrix ``D``, so merging the
    # Morris counters row-wise merges the sketches.
    def _merge_same_type(self, other: "PStableFpEstimator") -> None:
        if (
            other.p,
            other.num_rows,
            other.morris_a,
            other.variate_seed,
            other.coin_protocol,
        ) != (
            self.p,
            self.num_rows,
            self.morris_a,
            self.variate_seed,
            self.coin_protocol,
        ):
            raise ValueError(
                f"incompatible p-stable sketches: "
                f"p={self.p}/rows={self.num_rows}/a={self.morris_a}"
                f"/variates={self.variate_seed}/{self.coin_protocol} vs "
                f"p={other.p}/rows={other.num_rows}/a={other.morris_a}"
                f"/variates={other.variate_seed}/{other.coin_protocol}"
            )
        if self.coin_protocol == "v1":
            for mine, theirs in zip(self._positive, other._positive):
                mine.merge_from(theirs)
            for mine, theirs in zip(self._negative, other._negative):
                mine.merge_from(theirs)
            return
        a = self.morris_a
        for levels, other_levels in (
            (self._pos_levels, other._pos_levels),
            (self._neg_levels, other._neg_levels),
        ):
            for i in range(self.num_rows):
                weight = (
                    math.pow(1.0 + a, int(other_levels[i])) - 1.0
                ) / a
                if weight > 0:
                    u = self._merge_coins.uniform(self._merge_draws)
                    self._merge_draws += 1
                    levels[i] = climbed_level_v2(
                        a, int(levels[i]), weight, u
                    )

    def _config_state(self) -> dict:
        return {
            "p": self.p,
            "epsilon": self.epsilon,
            "num_rows": self.num_rows,
            "morris_a": self.morris_a,
            "seed": self.seed,
            "variate_seed": self.variate_seed,
            "coin_protocol": self.coin_protocol,
        }

    def _payload_state(self) -> dict:
        pos, neg = self._level_arrays()
        payload = {
            "positive": [int(level) for level in pos],
            "negative": [int(level) for level in neg],
        }
        if self.coin_protocol == "v2":
            payload["updates"] = self._updates
            payload["merge_draws"] = self._merge_draws
        return payload

    def _load_payload(self, payload: dict) -> None:
        if self.coin_protocol == "v2":
            self._pos_levels = np.asarray(payload["positive"], dtype=np.int64)
            self._neg_levels = np.asarray(payload["negative"], dtype=np.int64)
            self._updates = int(payload.get("updates", 0))
            self._merge_draws = int(payload.get("merge_draws", 0))
            return
        for counter, level in zip(self._positive, payload["positive"]):
            counter.load_level(level)
        for counter, level in zip(self._negative, payload["negative"]):
            counter.load_level(level)
