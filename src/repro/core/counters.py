"""Approximate counters with few state changes (Theorem 1.5).

The paper's algorithms replace every exact per-item counter with a
*Morris counter* [Mor78, NY22]: a register holding only a level ``X``
that increments with probability ``(1+a)^{-X}``, so that counting to
``n`` costs ``O(log(a*n)/log(1+a))`` state changes instead of ``n``.
The estimate ``((1+a)^X - 1)/a`` is an unbiased estimator of the true
count with ``Var <= a * n^2 / 2``; choosing ``a = 2*eps^2*delta`` gives
a ``(1+eps)``-approximation with probability ``1 - delta`` (Chebyshev),
and a median over ``O(log 1/delta)`` copies upgrades the failure
probability exponentially (the NY22 parameterization behind Thm 1.5).

Three counter flavours share the :class:`ApproximateCounter` interface:

* :class:`ExactCounter` — writes on every update (the baseline).
* :class:`MorrisCounter` — unit and weighted increments, few writes.
* :class:`MedianMorrisCounter` — median of independent Morris copies.

All of them store their registers in tracked cells so state changes are
audited by the enclosing algorithm's
:class:`~repro.state.tracker.StateTracker`.
"""

from __future__ import annotations

import abc
import math
import random

from repro.state.algorithm import NotMergeableError
from repro.state.registers import TrackedValue
from repro.state.tracker import StateTracker


class ApproximateCounter(abc.ABC):
    """A monotone counter supporting weighted increments."""

    @abc.abstractmethod
    def add(self, weight: float = 1.0) -> None:
        """Increase the counted quantity by ``weight >= 0``."""

    @property
    @abc.abstractmethod
    def estimate(self) -> float:
        """Current estimate of the total added weight."""

    @abc.abstractmethod
    def release(self) -> None:
        """Free the counter's tracked memory (on eviction)."""


class ExactCounter(ApproximateCounter):
    """An exact counter: one state change per (effective) increment."""

    __slots__ = ("_cell",)

    def __init__(self, tracker: StateTracker, cell_id: str | None = None) -> None:
        cell_id = cell_id or tracker.fresh_cell_id("exact")
        self._cell: TrackedValue[float] = TrackedValue(tracker, cell_id, 0.0)

    def add(self, weight: float = 1.0) -> None:
        if weight < 0:
            raise ValueError(f"counter increments must be >= 0: {weight}")
        if weight == 0:
            return
        self._cell.set(self._cell.value + weight)

    @property
    def estimate(self) -> float:
        return self._cell.value

    def merge_from(self, other: "ApproximateCounter") -> None:
        """Absorb ``other``'s count (untracked: merges are offline)."""
        if not isinstance(other, ExactCounter):
            raise NotMergeableError(
                f"cannot merge {type(other).__name__} into ExactCounter"
            )
        self._cell.load(self._cell.value + other.estimate)

    def release(self) -> None:
        self._cell.release()


class MorrisCounter(ApproximateCounter):
    """Base-``(1+a)`` Morris counter with unbiased weighted increments.

    Parameters
    ----------
    tracker:
        State tracker charged for the level register.
    a:
        Growth parameter; smaller ``a`` means more accuracy and more
        state changes.  ``a -> 0`` degenerates to an exact counter.
    rng:
        Source of the increment coin flips.

    Notes
    -----
    Weighted increments generalize the classical unit increment while
    preserving unbiasedness: weight ``w`` first climbs whole levels
    deterministically while ``w`` exceeds the current level gap
    ``a*(1+a)^X``, then flips a coin with probability
    ``w_remainder / gap`` for the final level.  Unit increments with
    ``w=1`` reduce to the textbook behaviour once the gap exceeds 1.
    Monotone inner products maintained this way are exactly the
    mechanism [JW19] uses for the ``p < 1`` moment sketch (Thm 3.2).
    """

    __slots__ = ("a", "_rng", "_level")

    def __init__(
        self,
        tracker: StateTracker,
        a: float,
        rng: random.Random,
        cell_id: str | None = None,
    ) -> None:
        if a <= 0:
            raise ValueError(f"Morris parameter a must be positive: {a}")
        cell_id = cell_id or tracker.fresh_cell_id("morris")
        self.a = a
        self._rng = rng
        self._level: TrackedValue[int] = TrackedValue(tracker, cell_id, 0)

    @classmethod
    def with_accuracy(
        cls,
        tracker: StateTracker,
        epsilon: float,
        delta: float,
        rng: random.Random,
        cell_id: str | None = None,
    ) -> "MorrisCounter":
        """Counter achieving ``(1+epsilon)`` accuracy w.p. ``1-delta``.

        Chebyshev on ``Var <= a*n^2/2`` gives failure probability
        ``a / (2*epsilon^2)``; solving for ``a`` yields
        ``a = 2*epsilon^2*delta``.
        """
        if not 0 < epsilon:
            raise ValueError(f"epsilon must be positive: {epsilon}")
        if not 0 < delta < 1:
            raise ValueError(f"delta must be in (0, 1): {delta}")
        return cls(tracker, a=2.0 * epsilon * epsilon * delta, rng=rng, cell_id=cell_id)

    def _gap(self, level: int) -> float:
        """Estimate increase from one more level.

        ``((1+a)^{X+1} - (1+a)^X)/a = (1+a)^X`` — the classical Morris
        increment probability is its reciprocal ``(1+a)^{-X}``.
        """
        return (1.0 + self.a) ** level

    def _climbed_level(self, weight: float) -> int:
        """Level reached after absorbing ``weight`` (unbiased).

        Weight ``w`` first climbs whole levels deterministically while
        ``w`` exceeds the current level gap, then flips a coin with
        probability ``w_remainder / gap`` for the final level.
        """
        level = self._level.value
        remaining = weight
        gap = self._gap(level)
        while remaining >= gap:
            remaining -= gap
            level += 1
            gap = self._gap(level)
        if remaining > 0 and self._rng.random() < remaining / gap:
            level += 1
        return level

    def add(self, weight: float = 1.0) -> None:
        if weight < 0:
            raise ValueError(f"counter increments must be >= 0: {weight}")
        if weight == 0:
            return
        level = self._climbed_level(weight)
        if level != self._level.value:
            self._level.set(level)

    @property
    def estimate(self) -> float:
        level = self._level.value
        return ((1.0 + self.a) ** level - 1.0) / self.a

    @property
    def level(self) -> int:
        """Current stored level ``X`` (the only persisted word)."""
        return self._level.value

    def merge_from(self, other: "ApproximateCounter") -> None:
        """Absorb ``other``'s count; remains unbiased.

        The other counter's estimate is unbiased for its true count, so
        a weighted climb by that estimate keeps the merged estimator
        unbiased (tower property).  The level write goes through the
        untracked ``load`` path: merging is an offline reduce, not a
        stream update, so it is not charged as a state change.
        """
        if not isinstance(other, MorrisCounter):
            raise NotMergeableError(
                f"cannot merge {type(other).__name__} into MorrisCounter"
            )
        if other.a != self.a:
            raise ValueError(
                f"cannot merge Morris counters with different growth "
                f"parameters: {self.a} vs {other.a}"
            )
        weight = other.estimate
        if weight > 0:
            self._level.load(self._climbed_level(weight))

    def load_level(self, level: int) -> None:
        """Restore a serialized level (untracked; checkpoint path)."""
        self._level.load(int(level))

    def release(self) -> None:
        self._level.release()


class MedianMorrisCounter(ApproximateCounter):
    """Median of independent Morris counters (high-probability Thm 1.5).

    ``copies = O(log 1/delta)`` counters, each tuned for constant
    failure probability, are updated independently; the median estimate
    fails only if half the copies fail, i.e. with probability
    ``exp(-Omega(copies))``.
    """

    __slots__ = ("_copies",)

    def __init__(
        self,
        tracker: StateTracker,
        epsilon: float,
        delta: float,
        rng: random.Random,
        cell_id: str | None = None,
    ) -> None:
        if not 0 < delta < 1:
            raise ValueError(f"delta must be in (0, 1): {delta}")
        cell_id = cell_id or tracker.fresh_cell_id("medmorris")
        num_copies = max(1, int(math.ceil(4.0 * math.log(1.0 / delta))))
        if num_copies % 2 == 0:
            num_copies += 1
        self._copies = [
            # Each copy targets failure probability 1/5; the median
            # boosts it to delta.
            MorrisCounter.with_accuracy(
                tracker, epsilon, 0.2, rng, cell_id=f"{cell_id}.{i}"
            )
            for i in range(num_copies)
        ]

    def add(self, weight: float = 1.0) -> None:
        for copy in self._copies:
            copy.add(weight)

    @property
    def estimate(self) -> float:
        estimates = sorted(copy.estimate for copy in self._copies)
        return estimates[len(estimates) // 2]

    @property
    def num_copies(self) -> int:
        """Number of independent Morris copies behind the median."""
        return len(self._copies)

    @property
    def levels(self) -> list[int]:
        """Stored levels of every copy (the persisted words)."""
        return [copy.level for copy in self._copies]

    def merge_from(self, other: "ApproximateCounter") -> None:
        """Absorb another median-of-Morris counter, copy by copy."""
        if not isinstance(other, MedianMorrisCounter):
            raise NotMergeableError(
                f"cannot merge {type(other).__name__} into "
                f"MedianMorrisCounter"
            )
        if other.num_copies != self.num_copies:
            raise ValueError(
                f"cannot merge MedianMorrisCounters with different copy "
                f"counts: {self.num_copies} vs {other.num_copies}"
            )
        for mine, theirs in zip(self._copies, other._copies):
            mine.merge_from(theirs)

    def load_levels(self, levels: list[int]) -> None:
        """Restore serialized per-copy levels (checkpoint path)."""
        if len(levels) != len(self._copies):
            raise ValueError(
                f"expected {len(self._copies)} levels, got {len(levels)}"
            )
        for copy, level in zip(self._copies, levels):
            copy.load_level(level)

    def release(self) -> None:
        for copy in self._copies:
            copy.release()
