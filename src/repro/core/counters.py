"""Approximate counters with few state changes (Theorem 1.5).

The paper's algorithms replace every exact per-item counter with a
*Morris counter* [Mor78, NY22]: a register holding only a level ``X``
that increments with probability ``(1+a)^{-X}``, so that counting to
``n`` costs ``O(log(a*n)/log(1+a))`` state changes instead of ``n``.
The estimate ``((1+a)^X - 1)/a`` is an unbiased estimator of the true
count with ``Var <= a * n^2 / 2``; choosing ``a = 2*eps^2*delta`` gives
a ``(1+eps)``-approximation with probability ``1 - delta`` (Chebyshev),
and a median over ``O(log 1/delta)`` copies upgrades the failure
probability exponentially (the NY22 parameterization behind Thm 1.5).

Four counter flavours share the :class:`ApproximateCounter` interface:

* :class:`ExactCounter` — writes on every update (the baseline).
* :class:`MorrisCounter` — unit and weighted increments, few writes;
  coins come from a sequential ``random.Random`` (the v1 protocol).
* :class:`SkipMorrisCounter` — the v2 protocol's unit counter: the
  same distribution, but driven by index-addressable
  :class:`~repro.hashing.coins.PhiloxCoins` draws via geometric
  *skip-sampling* — instead of flipping one ``(1+a)^{-X}`` coin per
  arrival, it draws how many arrivals the current level survives
  (a geometric variate, by inversion from the coin at index ``X``)
  and counts down, so a chunk kernel can absorb ``k`` arrivals in
  ``O(levels climbed)`` work.
* :class:`MedianMorrisCounter` — median of independent Morris copies.

All of them store their registers in tracked cells so state changes are
audited by the enclosing algorithm's
:class:`~repro.state.tracker.StateTracker`.

:func:`weighted_morris_step` is the v2 protocol's weighted-increment
kernel, shared verbatim by the scalar and the chunked p-stable paths so
their levels agree bit for bit.
"""

from __future__ import annotations

import abc
import math
import random

import numpy as np

from repro.hashing.coins import PhiloxCoins
from repro.state.algorithm import NotMergeableError
from repro.state.registers import TrackedValue
from repro.state.tracker import StateTracker

#: Geometric thresholds are clipped here; beyond it a level is never
#: left within any feasible stream.
_MAX_THRESHOLD = 1 << 62


def weighted_morris_step(
    a: float,
    levels: np.ndarray,
    weights: np.ndarray,
    uniforms: np.ndarray,
) -> np.ndarray:
    """Vectorized v2 weighted Morris increment.

    For each position: weight ``w`` climbs ``d`` whole levels
    deterministically (the largest ``d`` with
    ``consumed(d) = gap * ((1+a)^d - 1)/a <= w``, found in closed form
    with ``floor(log1p(a*w/gap)/log1p(a))`` plus one-step fix-ups for
    float rounding), then the remainder flips the coin
    ``u * gap_new < remainder`` for one final level — the same
    distribution as :meth:`MorrisCounter._climbed_level`, but a pure
    function of ``(level, weight, uniform)``.  Zero-weight positions
    never change and consume no coin semantics.

    Both the scalar v2 update and the chunk kernels call *this*
    function, so chunked ≡ scalar holds bit for bit by construction.
    """
    levels = np.asarray(levels, dtype=np.int64)
    w = np.asarray(weights, dtype=np.float64)
    u = np.asarray(uniforms, dtype=np.float64)
    la = math.log1p(a)
    gap = np.power(1.0 + a, levels.astype(np.float64))
    positive = w > 0.0
    ratio = np.divide(a * w, gap, out=np.zeros_like(w), where=positive)
    d = np.floor(np.log1p(ratio) / la)
    d = np.where(positive, np.maximum(d, 0.0), 0.0)
    # consumed(d) <= w < consumed(d+1) must hold exactly; the closed
    # form can be off by one ulp-driven step in either direction.
    for _ in range(2):
        consumed = gap * np.expm1(d * la) / a
        d = np.where((consumed > w) & (d > 0.0), d - 1.0, d)
    for _ in range(2):
        consumed_next = gap * np.expm1((d + 1.0) * la) / a
        d = np.where(positive & (consumed_next <= w), d + 1.0, d)
    remainder = w - gap * np.expm1(d * la) / a
    new_levels = levels + d.astype(np.int64)
    new_gap = np.power(1.0 + a, new_levels.astype(np.float64))
    coin = positive & (remainder > 0.0) & (u * new_gap < remainder)
    return new_levels + coin.astype(np.int64)


def climbed_level_v2(a: float, level: int, weight: float, u: float) -> int:
    """Scalar wrapper over :func:`weighted_morris_step` (merge path)."""
    return int(
        weighted_morris_step(
            a,
            np.array([level], dtype=np.int64),
            np.array([float(weight)]),
            np.array([float(u)]),
        )[0]
    )


class ApproximateCounter(abc.ABC):
    """A monotone counter supporting weighted increments."""

    @abc.abstractmethod
    def add(self, weight: float = 1.0) -> None:
        """Increase the counted quantity by ``weight >= 0``."""

    @property
    @abc.abstractmethod
    def estimate(self) -> float:
        """Current estimate of the total added weight."""

    @abc.abstractmethod
    def release(self) -> None:
        """Free the counter's tracked memory (on eviction)."""


class ExactCounter(ApproximateCounter):
    """An exact counter: one state change per (effective) increment."""

    __slots__ = ("_cell",)

    def __init__(self, tracker: StateTracker, cell_id: str | None = None) -> None:
        cell_id = cell_id or tracker.fresh_cell_id("exact")
        self._cell: TrackedValue[float] = TrackedValue(tracker, cell_id, 0.0)

    def add(self, weight: float = 1.0) -> None:
        if weight < 0:
            raise ValueError(f"counter increments must be >= 0: {weight}")
        if weight == 0:
            return
        self._cell.set(self._cell.value + weight)

    @property
    def cell_id(self) -> str:
        return self._cell._cell_id

    def absorb(self, count: int) -> range:
        """Untracked bulk add of ``count`` unit increments.

        The chunk-kernel counterpart of ``count`` ``add()`` calls:
        every increment mutates an exact counter, so all 1-based
        ordinals are returned for the caller to audit.
        """
        if count > 0:
            self._cell.load(self._cell.value + count)
        return range(1, count + 1)

    @property
    def estimate(self) -> float:
        return self._cell.value

    def merge_from(self, other: "ApproximateCounter") -> None:
        """Absorb ``other``'s count (untracked: merges are offline)."""
        if not isinstance(other, ExactCounter):
            raise NotMergeableError(
                f"cannot merge {type(other).__name__} into ExactCounter"
            )
        self._cell.load(self._cell.value + other.estimate)

    def release(self) -> None:
        self._cell.release()


class MorrisCounter(ApproximateCounter):
    """Base-``(1+a)`` Morris counter with unbiased weighted increments.

    Parameters
    ----------
    tracker:
        State tracker charged for the level register.
    a:
        Growth parameter; smaller ``a`` means more accuracy and more
        state changes.  ``a -> 0`` degenerates to an exact counter.
    rng:
        Source of the increment coin flips.

    Notes
    -----
    Weighted increments generalize the classical unit increment while
    preserving unbiasedness: weight ``w`` first climbs whole levels
    deterministically while ``w`` exceeds the current level gap
    ``a*(1+a)^X``, then flips a coin with probability
    ``w_remainder / gap`` for the final level.  Unit increments with
    ``w=1`` reduce to the textbook behaviour once the gap exceeds 1.
    Monotone inner products maintained this way are exactly the
    mechanism [JW19] uses for the ``p < 1`` moment sketch (Thm 3.2).
    """

    __slots__ = ("a", "_rng", "_level")

    def __init__(
        self,
        tracker: StateTracker,
        a: float,
        rng: random.Random,
        cell_id: str | None = None,
    ) -> None:
        if a <= 0:
            raise ValueError(f"Morris parameter a must be positive: {a}")
        cell_id = cell_id or tracker.fresh_cell_id("morris")
        self.a = a
        self._rng = rng
        self._level: TrackedValue[int] = TrackedValue(tracker, cell_id, 0)

    @classmethod
    def with_accuracy(
        cls,
        tracker: StateTracker,
        epsilon: float,
        delta: float,
        rng: random.Random,
        cell_id: str | None = None,
    ) -> "MorrisCounter":
        """Counter achieving ``(1+epsilon)`` accuracy w.p. ``1-delta``.

        Chebyshev on ``Var <= a*n^2/2`` gives failure probability
        ``a / (2*epsilon^2)``; solving for ``a`` yields
        ``a = 2*epsilon^2*delta``.
        """
        if not 0 < epsilon:
            raise ValueError(f"epsilon must be positive: {epsilon}")
        if not 0 < delta < 1:
            raise ValueError(f"delta must be in (0, 1): {delta}")
        return cls(tracker, a=2.0 * epsilon * epsilon * delta, rng=rng, cell_id=cell_id)

    def _gap(self, level: int) -> float:
        """Estimate increase from one more level.

        ``((1+a)^{X+1} - (1+a)^X)/a = (1+a)^X`` — the classical Morris
        increment probability is its reciprocal ``(1+a)^{-X}``.
        """
        return (1.0 + self.a) ** level

    def _climbed_level(self, weight: float) -> int:
        """Level reached after absorbing ``weight`` (unbiased).

        Weight ``w`` first climbs whole levels deterministically while
        ``w`` exceeds the current level gap, then flips a coin with
        probability ``w_remainder / gap`` for the final level.
        """
        level = self._level.value
        remaining = weight
        gap = self._gap(level)
        while remaining >= gap:
            remaining -= gap
            level += 1
            gap = self._gap(level)
        if remaining > 0 and self._rng.random() < remaining / gap:
            level += 1
        return level

    def add(self, weight: float = 1.0) -> None:
        if weight < 0:
            raise ValueError(f"counter increments must be >= 0: {weight}")
        if weight == 0:
            return
        level = self._climbed_level(weight)
        if level != self._level.value:
            self._level.set(level)

    @property
    def estimate(self) -> float:
        level = self._level.value
        return ((1.0 + self.a) ** level - 1.0) / self.a

    @property
    def level(self) -> int:
        """Current stored level ``X`` (the only persisted word)."""
        return self._level.value

    def merge_from(self, other: "ApproximateCounter") -> None:
        """Absorb ``other``'s count; remains unbiased.

        The other counter's estimate is unbiased for its true count, so
        a weighted climb by that estimate keeps the merged estimator
        unbiased (tower property).  The level write goes through the
        untracked ``load`` path: merging is an offline reduce, not a
        stream update, so it is not charged as a state change.
        """
        if not isinstance(other, MorrisCounter):
            raise NotMergeableError(
                f"cannot merge {type(other).__name__} into MorrisCounter"
            )
        if other.a != self.a:
            raise ValueError(
                f"cannot merge Morris counters with different growth "
                f"parameters: {self.a} vs {other.a}"
            )
        weight = other.estimate
        if weight > 0:
            self._level.load(self._climbed_level(weight))

    def load_level(self, level: int) -> None:
        """Restore a serialized level (untracked; checkpoint path)."""
        self._level.load(int(level))

    def release(self) -> None:
        self._level.release()


class SkipMorrisCounter(ApproximateCounter):
    """Unit Morris counter on the v2 coin protocol (skip-sampling).

    The stored state is the level ``X`` (one tracked word) plus two
    untracked shadows: ``since``, the arrivals absorbed at the current
    level, and the geometric ``threshold`` at which the level is left.
    Entering level ``X`` draws the threshold by inversion from the coin
    at index ``X`` of the counter's :class:`PhiloxCoins` stream —
    levels only increase, so each index is consumed at most once and
    any path (scalar adds, bulk absorbs, merges, restores) that enters
    a level sees the same threshold.  ``threshold`` is therefore
    recomputable and never serialized; checkpoints carry only
    ``(level, since)``.

    Level 0 keeps v1's deterministic first step: the increment
    probability is 1, so the threshold is 1 and no coin is spent.
    """

    __slots__ = ("a", "cell_id", "_coins", "_level", "_since", "_threshold")

    def __init__(
        self,
        tracker: StateTracker,
        a: float,
        coins: PhiloxCoins,
        cell_id: str | None = None,
    ) -> None:
        if a <= 0:
            raise ValueError(f"Morris parameter a must be positive: {a}")
        cell_id = cell_id or tracker.fresh_cell_id("morris")
        self.a = a
        self.cell_id = cell_id
        self._coins = coins
        self._level: TrackedValue[int] = TrackedValue(tracker, cell_id, 0)
        self._since = 0
        self._threshold = 1

    def _geometric(self, level: int) -> int:
        """Arrivals level ``level`` survives: Geometric((1+a)^-level)."""
        if level <= 0:
            return 1
        u = self._coins.uniform(level)
        p = (1.0 + self.a) ** (-level)
        g = math.ceil(math.log1p(-u) / math.log1p(-p))
        return min(max(1, int(g)), _MAX_THRESHOLD)

    def add(self, weight: float = 1.0) -> None:
        if weight != 1.0:
            raise ValueError(
                f"SkipMorrisCounter only supports unit increments: {weight}"
            )
        self._since += 1
        if self._since >= self._threshold:
            level = self._level.value + 1
            if self._level.set(level):
                self._since = 0
                self._threshold = self._geometric(level)

    def absorb(self, count: int) -> list[int]:
        """Bulk-apply ``count`` unit arrivals (untracked; kernel path).

        Returns the 1-based arrival ordinals at which the level
        transitioned — exactly the arrivals a scalar :meth:`add` loop
        would have written on — so the caller can charge the enclosing
        chunk positions.  Work is ``O(levels climbed)``, not
        ``O(count)``.
        """
        transitions: list[int] = []
        consumed = 0
        while True:
            need = self._threshold - self._since
            if count - consumed < need:
                self._since += count - consumed
                return transitions
            consumed += need
            level = self._level.value + 1
            self._level.load(level)
            transitions.append(consumed)
            self._since = 0
            self._threshold = self._geometric(level)

    @property
    def estimate(self) -> float:
        level = self._level.value
        return ((1.0 + self.a) ** level - 1.0) / self.a

    @property
    def level(self) -> int:
        """Current stored level ``X`` (the only persisted word)."""
        return self._level.value

    @property
    def since(self) -> int:
        """Arrivals absorbed at the current level (untracked shadow)."""
        return self._since

    def merge_weight(self, weight: float, u: float) -> bool:
        """Absorb a merged-in estimate via one weighted climb.

        ``u`` comes from the enclosing sketch's dedicated merge stream
        (the level-indexed stream stays single-consumer).  Entering a
        new level redraws the threshold at that level's index; an
        unchanged level keeps ``since``/``threshold`` as they are,
        which is exact by geometric memorylessness.  Untracked, like
        every merge.  Returns whether the level changed.
        """
        level = climbed_level_v2(self.a, self._level.value, weight, u)
        if level == self._level.value:
            return False
        self._level.load(level)
        self._since = 0
        self._threshold = self._geometric(level)
        return True

    def restore(self, level: int, since: int) -> None:
        """Load a checkpointed ``(level, since)`` pair (untracked)."""
        level = int(level)
        self._level.load(level)
        self._threshold = self._geometric(level)
        self._since = int(since)

    def release(self) -> None:
        self._level.release()


class MedianMorrisCounter(ApproximateCounter):
    """Median of independent Morris counters (high-probability Thm 1.5).

    ``copies = O(log 1/delta)`` counters, each tuned for constant
    failure probability, are updated independently; the median estimate
    fails only if half the copies fail, i.e. with probability
    ``exp(-Omega(copies))``.
    """

    __slots__ = ("_copies",)

    def __init__(
        self,
        tracker: StateTracker,
        epsilon: float,
        delta: float,
        rng: random.Random,
        cell_id: str | None = None,
    ) -> None:
        if not 0 < delta < 1:
            raise ValueError(f"delta must be in (0, 1): {delta}")
        cell_id = cell_id or tracker.fresh_cell_id("medmorris")
        num_copies = max(1, int(math.ceil(4.0 * math.log(1.0 / delta))))
        if num_copies % 2 == 0:
            num_copies += 1
        self._copies = [
            # Each copy targets failure probability 1/5; the median
            # boosts it to delta.
            MorrisCounter.with_accuracy(
                tracker, epsilon, 0.2, rng, cell_id=f"{cell_id}.{i}"
            )
            for i in range(num_copies)
        ]

    def add(self, weight: float = 1.0) -> None:
        for copy in self._copies:
            copy.add(weight)

    @property
    def estimate(self) -> float:
        estimates = sorted(copy.estimate for copy in self._copies)
        return estimates[len(estimates) // 2]

    @property
    def num_copies(self) -> int:
        """Number of independent Morris copies behind the median."""
        return len(self._copies)

    @property
    def levels(self) -> list[int]:
        """Stored levels of every copy (the persisted words)."""
        return [copy.level for copy in self._copies]

    def merge_from(self, other: "ApproximateCounter") -> None:
        """Absorb another median-of-Morris counter, copy by copy."""
        if not isinstance(other, MedianMorrisCounter):
            raise NotMergeableError(
                f"cannot merge {type(other).__name__} into "
                f"MedianMorrisCounter"
            )
        if other.num_copies != self.num_copies:
            raise ValueError(
                f"cannot merge MedianMorrisCounters with different copy "
                f"counts: {self.num_copies} vs {other.num_copies}"
            )
        for mine, theirs in zip(self._copies, other._copies):
            mine.merge_from(theirs)

    def load_levels(self, levels: list[int]) -> None:
        """Restore serialized per-copy levels (checkpoint path)."""
        if len(levels) != len(self._copies):
            raise ValueError(
                f"expected {len(self._copies)} levels, got {len(levels)}"
            )
        for copy, level in zip(self._copies, levels):
            copy.load_level(level)

    def release(self) -> None:
        for copy in self._copies:
            copy.release()
