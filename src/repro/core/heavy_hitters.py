"""Public ``Lp``-heavy-hitter API (Theorem 1.1).

Wraps the Algorithm 3 stack: the level-1 (unsampled) FullSampleAndHold
copies provide one-sided frequency estimates for every candidate item,
and the level-set machinery provides the ``Fp`` estimate whose ``p``-th
root is the ``||f||_p`` threshold scale.  Since both live in the same
:class:`~repro.core.fp_estimation.FpEstimator`, a single pass over the
stream answers both queries with ``Õ(n^{1-1/p})`` state changes.

Reporting rule: with a ``2``-approximation of ``||f||_p`` and one-sided
frequency estimates, returning every item with
``fhat_j >= (epsilon/2) * norm_estimate`` reports all true
``epsilon``-heavy hitters and nothing below ``(epsilon/4) * ||f||_p``
(the guarantee discussed below Theorem 1.1).
"""

from __future__ import annotations

import statistics

from repro.core.fp_estimation import FpEstimator
from repro.query import (
    AllEstimates,
    MapAnswer,
    MultiPointQuery,
    Moment,
    MomentAnswer,
    PointQuery,
    QueryKind,
    ScalarAnswer,
)
from repro.query import HeavyHitters as HeavyHittersQuery
from repro.state.algorithm import StreamAlgorithm
from repro.state.tracker import StateTracker


class HeavyHitters(StreamAlgorithm):
    """One-pass ``Lp``-heavy hitters with few state changes.

    Parameters mirror :class:`~repro.core.fp_estimation.FpEstimator`;
    ``epsilon`` doubles as the default report threshold.
    """

    name = "HeavyHitters"
    supports = frozenset(
        {
            QueryKind.POINT,
            QueryKind.ALL_ESTIMATES,
            QueryKind.HEAVY_HITTERS,
            QueryKind.MOMENT,
        }
    )

    def __init__(
        self,
        n: int,
        m: int,
        p: float,
        epsilon: float,
        repetitions: int = 3,
        seed: int | None = None,
        coin_protocol: str = "v2",
        tracker: StateTracker | None = None,
        **fp_kwargs,
    ) -> None:
        super().__init__(tracker)
        self.n = n
        self.m = m
        self.p = p
        self.epsilon = epsilon
        self.coin_protocol = coin_protocol
        self._fp = FpEstimator(
            n=n,
            m=m,
            p=p,
            epsilon=epsilon,
            repetitions=repetitions,
            seed=seed,
            coin_protocol=coin_protocol,
            tracker=self.tracker,
            **fp_kwargs,
        )

    def _update(self, item: int) -> None:
        self._fp._update(item)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _answer_all_estimates(self, q: AllEstimates) -> MapAnswer:
        """Median-over-copies frequency estimates from the unsampled
        (level 1) FullSampleAndHold instances.

        Estimates are one-sided: up to the Morris ``(1+eps)`` factor,
        ``fhat_j <= f_j`` always, and ``fhat_j >= (1 - eps) * f_j`` for
        heavy hitters with the theorem's probability.
        """
        candidates: set[int] = set()
        # Point queries read the least-subsampled level that held the
        # item ("shallowest"): unless the stream's moment is so large
        # that level-1 counters churn (the regime Algorithm 2's deeper
        # levels exist for), it is the lowest-variance choice; callers
        # needing the paper's one-sided fallback can query the
        # underlying FpEstimator with level_rule="max".
        per_copy = [
            self._fp.level_estimates(r, 1, level_rule="shallowest")
            for r in range(self._fp.repetitions)
        ]
        for estimates in per_copy:
            candidates.update(estimates)
        return MapAnswer(
            QueryKind.ALL_ESTIMATES,
            {
                item: float(
                    statistics.median(est.get(item, 0.0) for est in per_copy)
                )
                for item in candidates
            },
        )

    def _answer_point(self, q: PointQuery) -> ScalarAnswer:
        return ScalarAnswer(
            QueryKind.POINT, self.estimates().get(q.item, 0.0)
        )

    def _answer_point_many(
        self, q: MultiPointQuery
    ) -> tuple[ScalarAnswer, ...]:
        """Batch point queries: the median-of-copies estimate map is
        built once and gathered, instead of once per item."""
        estimates = self.estimates()
        return tuple(
            ScalarAnswer(QueryKind.POINT, estimates.get(item, 0.0))
            for item in q.items
        )

    def _answer_heavy_hitters(self, q: HeavyHittersQuery) -> MapAnswer:
        """Items with ``fhat_j >= (phi/2) * norm_estimate``.

        Contains every true ``phi``-heavy hitter (with the theorem's
        probability) and no item below ``phi/4`` of the true norm when
        the norm estimate is within a factor 2.
        """
        phi = self.epsilon if q.phi is None else q.phi
        if not 0 < phi <= 1:
            raise ValueError(f"phi must be in (0, 1]: {phi}")
        threshold = 0.5 * phi * self.norm_estimate()
        return MapAnswer(
            QueryKind.HEAVY_HITTERS,
            {
                item: fhat
                for item, fhat in self.estimates().items()
                if fhat >= threshold
            },
        )

    def _answer_moment(self, q: Moment) -> MomentAnswer:
        """The underlying ``Fp`` estimate (Theorem 1.3)."""
        if q.p is not None and q.p != self.p:
            raise ValueError(
                f"this sketch is configured for p={self.p}, not p={q.p}"
            )
        return MomentAnswer(
            QueryKind.MOMENT, self._fp.fp_estimate(), p=self.p
        )

    def estimates(self) -> dict[int, float]:
        """Median-over-copies frequency estimates (see the all-estimates
        query hook for the level choice)."""
        return dict(self.query(AllEstimates()).values)

    def estimate(self, item: int) -> float:
        """Frequency estimate for one item (0 when never held)."""
        return self.query(PointQuery(item)).value

    def norm_estimate(self) -> float:
        """``||f||_p`` estimate from the level-set machinery."""
        return self._fp.lp_norm_estimate()

    def heavy_hitters(self, epsilon: float | None = None) -> dict[int, float]:
        """Items with ``fhat_j >= (epsilon/2) * norm_estimate``."""
        return dict(self.query(HeavyHittersQuery(epsilon)).values)

    def fp_estimate(self) -> float:
        """The underlying ``Fp`` estimate (Theorem 1.3)."""
        return self.query(Moment()).value
