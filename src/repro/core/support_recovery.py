"""Sparse support recovery with few state changes.

The paper's abstract lists *sparse support recovery* among the problems
solved with a near-optimal number of state changes: when the stream's
frequency vector is ``k``-sparse (at most ``k`` distinct items), report
the support exactly.

The state-change-frugal observation is that a dictionary of distinct
items only mutates on *first occurrences*: a ``k``-sparse stream causes
exactly ``k`` state changes regardless of the stream length, which is
optimal (every support element must be recorded).  The subtlety is
bounding the damage when the promise fails — an adversarial non-sparse
stream would otherwise force a write per fresh item.  The recovery
structure therefore freezes itself the moment it has seen more than
``capacity_factor * k`` distinct items: one final write records the
overflow, and from then on the memory state never changes again, so the
total number of state changes is at most ``capacity_factor * k + 1`` on
*any* stream.
"""

from __future__ import annotations

from repro.query import Distinct, QueryKind, ScalarAnswer
from repro.state.algorithm import StreamAlgorithm
from repro.state.registers import TrackedDict, TrackedValue
from repro.state.tracker import StateTracker


class SparseSupportRecovery(StreamAlgorithm):
    """Exact support recovery under a ``k``-sparsity promise.

    Parameters
    ----------
    k:
        Sparsity promise (maximum support size to recover).
    capacity_factor:
        Slack before freezing; the structure records up to
        ``capacity_factor * k`` distinct items so that mild promise
        violations can still be reported in full.

    Guarantees (measured by the tests):

    * ``k``-sparse stream: :meth:`support` is exactly the true support;
      state changes = number of distinct items ``<= k``.
    * any stream: state changes ``<= capacity_factor * k + 1`` and
      :attr:`overflowed` tells whether the promise failed.
    """

    name = "SparseSupportRecovery"
    supports = frozenset({QueryKind.DISTINCT})

    def __init__(
        self,
        k: int,
        capacity_factor: int = 2,
        tracker: StateTracker | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"sparsity k must be >= 1: {k}")
        if capacity_factor < 1:
            raise ValueError(
                f"capacity_factor must be >= 1: {capacity_factor}"
            )
        super().__init__(tracker)
        self.k = k
        self.capacity = capacity_factor * k
        self._items: TrackedDict[int, bool] = TrackedDict(
            self.tracker, "support"
        )
        self._overflowed = TrackedValue(self.tracker, "support.overflow", False)

    def _update(self, item: int) -> None:
        if self._overflowed.value:
            return  # frozen: no further state changes, ever
        if item in self._items:
            return  # a read; repeat occurrences are free
        if len(self._items) >= self.capacity:
            # The sparsity promise is broken: freeze with one final
            # write instead of chasing an unbounded support.
            self._overflowed.set(True)
            return
        self._items[item] = True

    @property
    def overflowed(self) -> bool:
        """True when more than ``capacity`` distinct items appeared."""
        return self._overflowed.value

    def _answer_distinct(self, q: Distinct) -> ScalarAnswer:
        """Number of recorded distinct items.

        Exact while the sparsity promise holds; a lower bound once
        :attr:`overflowed` is set.
        """
        return ScalarAnswer(QueryKind.DISTINCT, float(len(self._items)))

    def support(self) -> set[int]:
        """The recovered support.

        Exact when the stream respected the sparsity promise; when
        :attr:`overflowed` is True it is a subset of the true support.
        """
        return set(self._items.keys())

    def is_k_sparse(self) -> bool:
        """Whether the observed stream was ``k``-sparse."""
        return not self._overflowed.value and len(self._items) <= self.k
