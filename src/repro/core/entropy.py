"""Shannon entropy estimation with few state changes (Theorem 3.8).

The [HNO08] reduction quoted in Section 3.3: Shannon entropy is
recovered from ``(1+eps')``-approximations of a small number of
fractional moments ``F_{p_i}`` evaluated at interpolation nodes
clustered around ``p = 1``:

    k      = log(1/eps) + log log m                    (node count)
    ell    = 1 / (2 * (k+1) * log m)                   (cluster width)
    g(z)   = ell * (k^2 * (z - 1) + 1) / (2k^2 + 1)
    p_i    = 1 + g(cos(i * pi / k)),   i = 0..k        (Chebyshev-style)

Writing ``G(p) = ln F_p(f)``, the empirical Shannon entropy satisfies

    H = log2(m) - G'(1) / ln(2)

because ``F'(1) = sum_i f_i ln f_i`` and ``H = log2 m - F'(1)/(m ln 2)``
with ``F(1) = m``.  We interpolate ``G`` at the nodes (degree-``k``
Lagrange polynomial) and differentiate the interpolant at 1 — the
numerically-stable equivalent of the paper's ``2^{P(0)}`` evaluation
(DESIGN.md substitution 5).

Backends:

* ``"pstable"`` — per-node :class:`~repro.core.fp_pstable.PStableFpEstimator`
  (the streaming estimator of Theorem 3.8; state-change frugal).
  Differentiating noisy data amplifies the per-moment relative error by
  roughly ``1/width``, so the default streaming configuration widens
  the node cluster (``node_width``) beyond the paper's asymptotic
  ``ell``; EXPERIMENTS.md (E6) reports the measured accuracy honestly.
* ``"oracle"`` — exact moments from a tracked frequency table; isolates
  and validates the interpolation machinery (not write-frugal).
"""

from __future__ import annotations

import math
import random

import numpy as np

from repro.core.counters import MorrisCounter, SkipMorrisCounter
from repro.core.fp_pstable import PStableFpEstimator
from repro.hashing.coins import PhiloxCoins
from repro.query import Entropy, QueryKind, ScalarAnswer
from repro.state.algorithm import ChunkAudit, StreamAlgorithm
from repro.state.registers import TrackedDict
from repro.state.tracker import StateTracker


def hno08_nodes(k: int, log_m: float, node_width: float | None = None) -> list[float]:
    """The interpolation nodes ``p_0..p_k`` of [HNO08] Section 3.3.

    ``node_width`` overrides the asymptotic cluster width
    ``ell = 1/(2(k+1) log m)`` (useful when moment estimates are noisy;
    see the module docstring).
    """
    if k < 1:
        raise ValueError(f"need k >= 1 interpolation intervals: {k}")
    ell = node_width if node_width is not None else 1.0 / (2.0 * (k + 1) * log_m)
    if not 0 < ell < 1:
        raise ValueError(f"node width must be in (0, 1): {ell}")
    k2 = k * k
    nodes = []
    for i in range(k + 1):
        z = math.cos(i * math.pi / k)
        g = ell * (k2 * (z - 1.0) + 1.0) / (2.0 * k2 + 1.0)
        nodes.append(1.0 + g)
    return nodes


def lagrange_derivative_at(
    nodes: list[float], values: list[float], x: float
) -> float:
    """Derivative at ``x`` of the Lagrange interpolant through
    ``(nodes[i], values[i])``.

    Uses the direct formula ``sum_i values[i] * L_i'(x)`` with
    ``L_i'(x) = sum_{j != i} prod_{l != i, j} (x - p_l) / prod_{j != i}
    (p_i - p_j)``; fine for the small ``k`` the construction needs.
    """
    if len(nodes) != len(values):
        raise ValueError("nodes and values must have equal length")
    if len(set(nodes)) != len(nodes):
        raise ValueError("interpolation nodes must be distinct")
    total = 0.0
    count = len(nodes)
    for i in range(count):
        denominator = 1.0
        for j in range(count):
            if j != i:
                denominator *= nodes[i] - nodes[j]
        numerator = 0.0
        for j in range(count):
            if j == i:
                continue
            term = 1.0
            for l in range(count):
                if l != i and l != j:
                    term *= x - nodes[l]
            numerator += term
        total += values[i] * numerator / denominator
    return total


class EntropyEstimator(StreamAlgorithm):
    """Additive-``epsilon`` Shannon entropy in one pass (Theorem 3.8).

    Parameters
    ----------
    m:
        Stream-length hint (sets the default node geometry).
    epsilon:
        Target additive accuracy; sets the default node count
        ``k = ceil(log2(1/eps) + log2 log2 m)``.
    k:
        Explicit override of the number of interpolation intervals.
    node_width:
        Override of the node cluster width (see module docstring).
    backend:
        ``"pstable"`` (streaming, Theorem 3.8) or ``"oracle"``
        (exact moments; validation only).
    """

    name = "EntropyEstimator"
    supports = frozenset({QueryKind.ENTROPY})

    def __init__(
        self,
        m: int,
        epsilon: float = 0.25,
        k: int | None = None,
        node_width: float | None = None,
        backend: str = "pstable",
        num_rows: int | None = None,
        morris_a: float = 0.02,
        seed: int | None = None,
        coin_protocol: str = "v2",
        tracker: StateTracker | None = None,
    ) -> None:
        if m < 2:
            raise ValueError(f"stream-length hint must be >= 2: {m}")
        if not 0 < epsilon <= 1:
            raise ValueError(f"epsilon must be in (0, 1]: {epsilon}")
        if backend not in ("pstable", "oracle"):
            raise ValueError(f"unknown backend: {backend!r}")
        if coin_protocol not in ("v1", "v2"):
            raise ValueError(
                f"unknown coin protocol {coin_protocol!r}; "
                f"choose 'v1' or 'v2'"
            )
        super().__init__(tracker)
        self.m = m
        self.epsilon = epsilon
        self.backend_kind = backend
        self.coin_protocol = coin_protocol
        self._chunk_kernel_enabled = (
            coin_protocol == "v2" and backend == "pstable"
        )
        log_m = math.log2(m)
        if k is None:
            k = max(2, int(math.ceil(math.log2(1.0 / epsilon) + math.log2(max(2.0, log_m)))))
        self.k = k
        self.nodes = hno08_nodes(k, log_m, node_width)

        self._sketches: list[PStableFpEstimator] = []
        self._oracle: TrackedDict[int, int] | None = None
        if backend == "pstable":
            base_seed = 0 if seed is None else seed
            # All node sketches share one variate seed (common random
            # numbers): their errors are correlated across p, which is
            # what keeps the numerical derivative G'(1) stable.
            self._sketches = [
                PStableFpEstimator(
                    p=node,
                    epsilon=epsilon,
                    num_rows=num_rows,
                    morris_a=morris_a,
                    seed=base_seed + 7919 * i,
                    variate_seed=base_seed,
                    coin_protocol=coin_protocol,
                    tracker=self.tracker,
                )
                for i, node in enumerate(self.nodes)
            ]
        else:
            self._oracle = TrackedDict(self.tracker, "entropy-oracle")
        # A Morris counter supplies the stream length (G(1) = ln m and
        # the log2(m) offset) with few writes.  Under v2 it rides its
        # own indexed coin stream so the chunk kernel can batch-absorb
        # arrivals.
        if coin_protocol == "v2":
            self._length = SkipMorrisCounter(
                self.tracker,
                a=0.001,
                coins=PhiloxCoins(seed, "entropy.len"),
            )
        else:
            self._length = MorrisCounter(
                self.tracker, a=0.001, rng=random.Random(seed)
            )

    def _update(self, item: int) -> None:
        if self._oracle is not None:
            self._oracle[item] = self._oracle.get(item, 0) + 1
        else:
            for sketch in self._sketches:
                sketch._update(item)
        self._length.add()

    def _update_chunk(self, chunk: np.ndarray) -> None:
        # Node sketches share one audit: a chunk position is dirty iff
        # any sketch (or the length counter) mutated on that arrival,
        # exactly as the scalar loop would have ticked it.
        audit = ChunkAudit(len(chunk), self.tracker.needs_cell_ids)
        for sketch in self._sketches:
            sketch._absorb_chunk(chunk, audit)
        for ordinal in self._length.absorb(len(chunk)):
            audit.write(self._length.cell_id, True, ordinal - 1)
        audit.commit(self.tracker, len(chunk))

    # ------------------------------------------------------------------
    # Moment access
    # ------------------------------------------------------------------
    def _moment(self, index: int) -> float:
        """``F_{p_index}`` from the configured backend."""
        if self._oracle is not None:
            p = self.nodes[index]
            return sum(count**p for count in self._oracle.values())
        return self._sketches[index].fp_estimate(estimator="log-mean")

    # ------------------------------------------------------------------
    # Entropy
    # ------------------------------------------------------------------
    def entropy_estimate(self) -> float:
        """Estimated Shannon entropy (bits) of the stream so far."""
        return self.query(Entropy()).value

    def _answer_entropy(self, q: Entropy) -> ScalarAnswer:
        """Estimated Shannon entropy (bits) of the stream so far."""
        length = max(2.0, self._length.estimate)
        values = []
        for index in range(len(self.nodes)):
            moment = self._moment(index)
            if moment <= 0:
                return ScalarAnswer(QueryKind.ENTROPY, 0.0)
            values.append(math.log(moment))
        g_prime = lagrange_derivative_at(self.nodes, values, 1.0)
        entropy = math.log2(length) - g_prime / math.log(2.0)
        # Clamp to the valid entropy range [0, log2 m].
        return ScalarAnswer(
            QueryKind.ENTROPY, min(max(entropy, 0.0), math.log2(length))
        )
