"""Algorithm 1: ``SampleAndHold`` — heavy hitters with few state changes.

The paper's core subroutine (Section 2.1).  A reservoir of ``k`` slots
samples stream updates with probability ``rho ~ n^{1-1/p} * polylog /
(eps^2 * m)``; when an update matches a reservoir slot, the algorithm
*holds* the item by opening an approximate (Morris) counter for it.
When the number of held counters reaches the budget, counters are
pruned **per dyadic age group**: among counters initialized between
``t - 2^{z+1}`` and ``t - 2^z`` ago, only the half with the largest
estimates survive.  The age bucketing is the paper's key fix over
[EV02, BO13, BKSV14]-style global eviction, which loses heavy hitters
whose occurrences are spread thin (Section 1.4); the counter budget is
re-randomized after every prune (Lemma 2.1's protection against
adversarial timing).

State-change accounting: reservoir writes happen at rate ``rho``
(``Õ(n^{1-1/p})`` over the stream), Morris counters contribute
``polylog`` writes each, and prunes are rare — total
``Õ(n^{1-1/p})`` state changes while a dictionary baseline would use
``Theta(m)``.

Deviation from the paper's constants: the theoretical multipliers
(``gamma = 2^{20p}``, ``kappa ~ log^{11+3p}(nm)/eps^{4+4p}``) exceed any
laptop-scale stream; :class:`SampleAndHoldParams` keeps every
*functional form* but exposes the leading constants, with defaults
calibrated so the asymptotic shapes are measurable at
``n in [2^10, 2^20]`` (see DESIGN.md, substitution 1).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

import numpy as np

from repro.core.counters import (
    ApproximateCounter,
    ExactCounter,
    MorrisCounter,
    SkipMorrisCounter,
)
from repro.hashing.coins import PhiloxCoins
from repro.query import (
    AllEstimates,
    MapAnswer,
    MultiPointQuery,
    PointQuery,
    QueryKind,
    ScalarAnswer,
)
from repro.state.algorithm import ChunkAudit, StreamAlgorithm
from repro.state.registers import TrackedArray
from repro.state.tracker import StateTracker


@dataclass(frozen=True)
class SampleAndHoldParams:
    """Resolved parameters of one ``SampleAndHold`` instance.

    Produced by :meth:`SampleAndHoldParams.from_problem`, which mirrors
    Algorithm 1 lines 1–7: the sampling probability ``rho`` scales as
    ``scale^{1-1/p} * log2(nm) / (eps^2 * m)`` and the reservoir/counter
    budget ``kappa`` as ``scale^{1-2/p}`` for ``p >= 2`` (``polylog``
    for ``p < 2``), where ``scale = min(n, m)`` (lines 2–5 swap in ``m``
    when the stream is shorter than the universe).
    """

    #: Per-update sampling probability (Algorithm 1's ``rho``).
    sample_probability: float
    #: Base reservoir/counter unit (Algorithm 1's ``kappa``).
    kappa: int
    #: Lower end of the randomized budget interval for ``k``.
    budget_low: int
    #: Upper end of the randomized budget interval for ``k``.
    budget_high: int
    #: Morris counter growth parameter (accuracy/write trade-off).
    counter_a: float

    @classmethod
    def from_problem(
        cls,
        n: int,
        m: int,
        p: float,
        epsilon: float,
        sample_scale: float = 1.0,
        kappa_scale: float = 4.0,
        budget_scale: float = 0.5,
        counter_epsilon: float = 0.5,
        counter_delta: float = 0.25,
    ) -> "SampleAndHoldParams":
        """Derive practical parameters from the problem dimensions.

        ``sample_scale``, ``kappa_scale`` and ``budget_scale`` replace
        the paper's impractically-large theoretical constants while
        preserving every exponent and logarithmic factor.

        The default Morris accuracy (``counter_epsilon = 0.5``,
        ``counter_delta = 0.25``, i.e. ``a = 0.125``) is deliberately
        coarse: the paper's ``eps/log(nm)`` counter accuracy only pays
        off for counts far beyond laptop-scale streams, because a
        Morris counter is effectively exact (one write per update)
        until the count passes ``1/a``.  Tighten it per use case.
        """
        if n < 1 or m < 1:
            raise ValueError(f"need n, m >= 1: n={n}, m={m}")
        if p < 1:
            raise ValueError(f"SampleAndHold requires p >= 1: {p}")
        if not 0 < epsilon <= 1:
            raise ValueError(f"epsilon must be in (0, 1]: {epsilon}")

        scale = min(n, m)  # Algorithm 1 lines 2-5
        log_nm = math.log2(2 + n * m)
        rho = min(
            1.0,
            sample_scale
            * scale ** (1.0 - 1.0 / p)
            * log_nm
            / (epsilon**2 * m),
        )
        if p >= 2:
            kappa_base = scale ** (1.0 - 2.0 / p)
        else:
            kappa_base = 1.0
        kappa = max(4, int(round(kappa_scale * kappa_base / epsilon**2)))
        budget_low = max(
            2 * kappa, int(round(budget_scale * p * kappa * log_nm))
        )
        budget_high = max(budget_low + 1, int(round(1.01 * budget_low)))

        counter_a = 2.0 * counter_epsilon**2 * counter_delta
        return cls(
            sample_probability=rho,
            kappa=kappa,
            budget_low=budget_low,
            budget_high=budget_high,
            counter_a=counter_a,
        )


class _HeldCounter:
    """A held item's approximate counter plus its creation time."""

    __slots__ = ("counter", "created_at")

    def __init__(self, counter: ApproximateCounter, created_at: int) -> None:
        self.counter = counter
        self.created_at = created_at


class SampleAndHold(StreamAlgorithm):
    """Algorithm 1 of the paper, on tracked memory.

    Parameters
    ----------
    params:
        Resolved sizes/probabilities (see :class:`SampleAndHoldParams`).
    rng:
        Randomness for sampling, slot choice, and Morris coin flips;
        passing one forces ``coin_protocol="v1"``.
    seed:
        Seed for the coin streams (v2) or the default RNG (v1); runs
        with equal seeds are reproducible.
    coin_protocol:
        ``"v2"`` (default) draws every coin from an index-addressable
        Philox stream — arrival ``t`` owns the sampling/slot coins at
        index ``t``, prune ``j`` owns budget coin ``j``, and the
        ``i``-th held counter rides its own geometric-skip stream — so
        the chunk kernel can screen a whole chunk against the sampling
        coins at once and settle only the interesting arrivals.
        ``"v1"`` is the sequential-RNG legacy path.
    stream_label:
        Namespace prefix of the v2 coin streams; composite algorithms
        embedding many instances (full sample-and-hold) give each a
        distinct label so their streams stay independent.
    use_morris:
        When False, hold *exact* counters instead of Morris counters —
        the ablation of experiment A1 (accuracy up, state changes up).
    eviction:
        ``"age-bucketed"`` (the paper's dyadic maintenance, default) or
        ``"global"`` (keep the globally largest half — the
        [EV02, BO13, BKSV14]-style rule the Section 1.4 counterexample
        defeats; the ablation of experiment A2).
    """

    name = "SampleAndHold"
    supports = frozenset({QueryKind.POINT, QueryKind.ALL_ESTIMATES})

    def __init__(
        self,
        params: SampleAndHoldParams,
        rng: random.Random | None = None,
        use_morris: bool = True,
        eviction: str = "age-bucketed",
        seed: int | None = None,
        coin_protocol: str | None = None,
        stream_label: str = "sh",
        tracker: StateTracker | None = None,
    ) -> None:
        if eviction not in ("age-bucketed", "global"):
            raise ValueError(f"unknown eviction policy: {eviction!r}")
        if coin_protocol is None:
            # An explicit rng is inherently sequential: it implies v1.
            coin_protocol = "v1" if rng is not None else "v2"
        if coin_protocol not in ("v1", "v2"):
            raise ValueError(
                f"unknown coin protocol {coin_protocol!r}; "
                f"choose 'v1' or 'v2'"
            )
        if coin_protocol == "v2" and rng is not None:
            raise ValueError(
                "coin_protocol='v2' draws from indexed Philox streams; "
                "an explicit rng= requires coin_protocol='v1'"
            )
        super().__init__(tracker)
        self.params = params
        self.use_morris = use_morris
        self.eviction = eviction
        self.seed = 0 if seed is None else seed
        self.coin_protocol = coin_protocol
        self.stream_label = stream_label
        self._chunk_kernel_enabled = coin_protocol == "v2"
        if coin_protocol == "v1":
            self._rng = rng if rng is not None else random.Random(seed)
            self._coins_sample = None
            self._coins_slot = None
            self._coins_budget = None
        else:
            self._rng = None
            self._coins_sample = PhiloxCoins(
                self.seed, f"{stream_label}.sample"
            )
            self._coins_slot = PhiloxCoins(self.seed, f"{stream_label}.slot")
            self._coins_budget = PhiloxCoins(
                self.seed, f"{stream_label}.budget"
            )
        self._t = 0  # v2 arrival clock (coin index of the next arrival)
        self._created = 0  # held counters ever opened (stream ordinals)
        self._budget_draws = 0
        self._budget = self._draw_budget()
        # The reservoir is provisioned for the largest possible budget so
        # that budget re-draws never outgrow the array.
        self._reservoir: TrackedArray[int | None] = TrackedArray(
            self.tracker, "q", params.budget_high, fill=None
        )
        # Shadow read-index of reservoir contents; mirrors the tracked
        # array for O(1) membership tests (reads are free in the model).
        self._reservoir_members: dict[int, int] = {}
        self._held: dict[int, _HeldCounter] = {}
        self._prunes = 0

    # ------------------------------------------------------------------
    # Algorithm 1 main loop
    # ------------------------------------------------------------------
    def _update(self, item: int) -> None:
        if self._coins_sample is not None:
            idx = self._t
            self._t = idx + 1
            self._step(item, idx, self._coins_sample.uniform(idx))
            return
        held = self._held.get(item)
        if held is not None:
            # Line 10-11: update the (Morris) counter.
            held.counter.add()
            return
        if item in self._reservoir_members:
            # Lines 12-13: item is in the reservoir -> hold a counter.
            self._create_counter(item)
            return
        # Lines 15-18: sample into the reservoir with probability rho.
        if self._rng.random() < self.params.sample_probability:
            slot = self._rng.randrange(self._budget)
            evicted = self._reservoir[slot]
            if evicted is not None and self._reservoir_members.get(evicted) == slot:
                del self._reservoir_members[evicted]
            self._reservoir[slot] = item
            self._reservoir_members[item] = slot

    def _step(self, item: int, idx: int, u_sample: float) -> None:
        """One v2 arrival: the same branch structure as the v1 loop,
        with every coin read from its indexed stream."""
        held = self._held.get(item)
        if held is not None:
            held.counter.add()
            return
        if item in self._reservoir_members:
            self._create_counter(item)
            return
        if u_sample < self.params.sample_probability:
            u = self._coins_slot.uniform(idx)
            slot = min(int(u * self._budget), self._budget - 1)
            evicted = self._reservoir[slot]
            if evicted is not None and self._reservoir_members.get(evicted) == slot:
                del self._reservoir_members[evicted]
            self._reservoir[slot] = item
            self._reservoir_members[item] = slot

    def _new_counter(self) -> ApproximateCounter:
        """A fresh held counter on the configured coin protocol."""
        if not self.use_morris:
            counter: ApproximateCounter = ExactCounter(self.tracker)
        elif self._coins_sample is None:
            counter = MorrisCounter(
                self.tracker, a=self.params.counter_a, rng=self._rng
            )
        else:
            counter = SkipMorrisCounter(
                self.tracker,
                a=self.params.counter_a,
                coins=PhiloxCoins(
                    self.seed, f"{self.stream_label}.ctr{self._created}"
                ),
            )
        self._created += 1
        return counter

    def _create_counter(self, item: int) -> None:
        """Open an approximate counter for ``item`` (lines 13, 19-21)."""
        counter = self._new_counter()
        counter.add()  # the triggering occurrence counts
        # Two bookkeeping words: the held item id and its creation time.
        self.tracker.allocate(2)
        created_at = (
            self.tracker.timestep if self._coins_sample is None else self._t
        )
        self._held[item] = _HeldCounter(counter, created_at)
        if len(self._held) >= self._budget:
            self._prune_counters(created_at)

    # ------------------------------------------------------------------
    # Counter maintenance (lines 19-21): dyadic age groups
    # ------------------------------------------------------------------
    def _prune_counters(
        self,
        now: int,
        audit: ChunkAudit | None = None,
        position: int = 0,
    ) -> None:
        """Halve each dyadic age group, keeping the largest estimates.

        Counters created between ``t - 2^{z+1}`` and ``t - 2^z`` ago are
        compared only with each other, so a heavy hitter whose counter
        is young (hence small) is never outvoted by long-lived pseudo-
        heavy counters — the Section 1.4 counterexample's fix.  Under
        ``eviction="global"`` all counters are compared together
        (the classical rule; kept for the A2 ablation).
        """
        groups: dict[int, list[int]] = {}
        for item, held in self._held.items():
            if self.eviction == "global":
                z = 0
            else:
                age = max(1, now - held.created_at)
                z = age.bit_length() - 1  # dyadic bucket floor(log2(age))
            groups.setdefault(z, []).append(item)

        for members in groups.values():
            members.sort(key=lambda it: self._held[it].counter.estimate)
            for item in members[: len(members) // 2]:
                self._evict(item, audit, position)
        # Lemma 2.1: re-randomize the budget after each maintenance.
        self._budget = self._draw_budget()
        self._prunes += 1

    def _evict(
        self,
        item: int,
        audit: ChunkAudit | None = None,
        position: int = 0,
    ) -> None:
        held = self._held.pop(item)
        held.counter.release()
        self.tracker.free(2)
        if audit is None:
            self.tracker.mark_dirty()
        else:
            audit.mark(position)

    def _draw_budget(self) -> int:
        """Algorithm 1 line 7/20: ``k ~ Uni([budget_low, budget_high])``."""
        low, high = self.params.budget_low, self.params.budget_high
        if self._coins_budget is None:
            return self._rng.randint(low, high)
        u = self._coins_budget.uniform(self._budget_draws)
        self._budget_draws += 1
        span = high - low + 1
        return low + min(int(u * span), span - 1)

    # ------------------------------------------------------------------
    # Chunk kernel (v2 only)
    # ------------------------------------------------------------------
    def _update_chunk(self, chunk: np.ndarray) -> None:
        audit = ChunkAudit(len(chunk), self.tracker.needs_cell_ids)
        self._absorb_chunk(chunk, range(len(chunk)), audit)
        audit.commit(self.tracker, len(chunk))

    def _chunk_flags(
        self, items: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sampling coins and the conservative settle mask for ``items``
        arriving at clock ``self._t``.

        An arrival needs scalar settlement iff its item could touch
        state: it is already held or reservoir-resident, its sampling
        coin hits, or it equals an item whose coin hits in this chunk
        (that item may enter the reservoir and then be held on a later
        occurrence).  Everything unflagged is a provable no-op — the
        sampling coin misses and no lookup matches — so skipping it
        leaves state and audit exactly as the scalar loop would.
        """
        uniforms = self._coins_sample.uniform_block(self._t, len(items))
        hits = uniforms < self.params.sample_probability
        watch = [np.asarray(items[hits], dtype=np.int64)]
        if self._held:
            watch.append(
                np.fromiter(
                    self._held.keys(), dtype=np.int64, count=len(self._held)
                )
            )
        if self._reservoir_members:
            watch.append(
                np.fromiter(
                    self._reservoir_members.keys(),
                    dtype=np.int64,
                    count=len(self._reservoir_members),
                )
            )
        flagged = hits | np.isin(items, np.concatenate(watch))
        return uniforms, flagged

    def _absorb_chunk(self, items, positions, audit: ChunkAudit) -> None:
        """Settle a chunk's flagged arrivals in stream order,
        accounting into ``audit`` at the given positions."""
        t0 = self._t
        uniforms, flagged = self._chunk_flags(items)
        self._t = t0 + len(items)
        for i in np.nonzero(flagged)[0].tolist():
            self._step_absorb(
                int(items[i]),
                t0 + i,
                float(uniforms[i]),
                positions[i],
                audit,
            )

    def _step_absorb(
        self,
        item: int,
        idx: int,
        u_sample: float,
        position: int,
        audit: ChunkAudit,
    ) -> None:
        """The v2 arrival step with audit-side accounting: identical
        state transitions to :meth:`_step`, but writes land in the
        chunk audit and registers are stored untracked."""
        held = self._held.get(item)
        if held is not None:
            for _ in held.counter.absorb(1):
                audit.write(held.counter.cell_id, True, position)
            return
        if item in self._reservoir_members:
            counter = self._new_counter()
            for _ in counter.absorb(1):
                audit.write(counter.cell_id, True, position)
            self.tracker.allocate(2)
            created_at = idx + 1
            self._held[item] = _HeldCounter(counter, created_at)
            if len(self._held) >= self._budget:
                self._prune_counters(created_at, audit, position)
            return
        if u_sample < self.params.sample_probability:
            u = self._coins_slot.uniform(idx)
            slot = min(int(u * self._budget), self._budget - 1)
            evicted = self._reservoir[slot]
            if evicted is not None and self._reservoir_members.get(evicted) == slot:
                del self._reservoir_members[evicted]
            audit.write(f"q[{slot}]", item != evicted, position)
            self._reservoir.store_at(slot, item)
            self._reservoir_members[item] = slot

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _answer_point(self, q: PointQuery) -> ScalarAnswer:
        held = self._held.get(q.item)
        return ScalarAnswer(
            QueryKind.POINT,
            held.counter.estimate if held is not None else 0.0,
        )

    def _answer_point_many(
        self, q: MultiPointQuery
    ) -> tuple[ScalarAnswer, ...]:
        """Batch point queries: one bulk lookup pass over the held set
        (no per-item query construction or dispatch)."""
        get = self._held.get
        answers = []
        for item in q.items:
            held = get(item)
            answers.append(
                ScalarAnswer(
                    QueryKind.POINT,
                    held.counter.estimate if held is not None else 0.0,
                )
            )
        return tuple(answers)

    def _answer_all_estimates(self, q: AllEstimates) -> MapAnswer:
        return MapAnswer(
            QueryKind.ALL_ESTIMATES,
            {
                item: held.counter.estimate
                for item, held in self._held.items()
            },
        )

    def estimate(self, item: int) -> float:
        """Estimated frequency of ``item`` (one-sided: never above
        ``(1+eps_counter) * f_item``); 0 when the item is not held."""
        return self.query(PointQuery(item)).value

    def estimates(self) -> dict[int, float]:
        """Estimates of every currently held item (line 22)."""
        return dict(self.query(AllEstimates()).values)

    @property
    def num_held(self) -> int:
        """Number of currently held counters."""
        return len(self._held)

    @property
    def num_prunes(self) -> int:
        """Number of counter-maintenance rounds executed."""
        return self._prunes
