"""Distinct elements (``F0``) with few state changes.

The paper's introduction singles out distinct elements as a problem
where space-optimal *sampling* algorithms — the route to few state
changes — were not known.  The k-minimum-values (KMV) sketch is,
however, naturally state-change frugal: it stores the ``k`` smallest
hash values seen, and a stream update mutates the state only when its
hash beats the current ``k``-th minimum.  Over a stream with ``F0``
distinct items the expected number of such record-breaking events is

    k + k * (H_{F0} - H_k)  =  O(k * log F0),

independent of the stream length ``m`` — the same flavour of guarantee
the paper proves for moments (and repeated items never mutate anything
at all).  The estimator is the classical ``(k-1) / v_k`` with the
``k``-th smallest unit-hash ``v_k``, giving relative error
``~1/sqrt(k)``.

This module rounds out the library's coverage of the paper's problem
family; it is an extension, not a reproduction of a specific theorem
(EXPERIMENTS.md lists it under E10).
"""

from __future__ import annotations

import math

import numpy as np

from repro.hashing.prime_field import KWiseHash
from repro.query import Distinct, QueryKind, ScalarAnswer
from repro.state.algorithm import StreamAlgorithm
from repro.state.registers import TrackedArray
from repro.state.tracker import StateTracker


class KMVDistinctElements(StreamAlgorithm):
    """k-minimum-values ``F0`` estimator on tracked memory.

    Parameters
    ----------
    k:
        Number of minima retained; relative error ``~1/sqrt(k)``.
    seed:
        Hash seed (the sketch is deterministic given the seed).
    """

    name = "KMV"
    mergeable = True
    supports = frozenset({QueryKind.DISTINCT})

    def __init__(
        self,
        k: int,
        seed: int | None = None,
        tracker: StateTracker | None = None,
    ) -> None:
        if k < 2:
            raise ValueError(f"KMV needs k >= 2: {k}")
        super().__init__(tracker)
        self.k = k
        self.seed = 0 if seed is None else seed
        self._hash = KWiseHash(2, seed=self.seed)
        self.tracker.allocate(self._hash.description_words)
        # Sorted array of the k smallest unit hashes (1.0 = empty slot).
        self._minima: TrackedArray[float] = TrackedArray(
            self.tracker, "kmv", k, fill=1.0
        )
        # Shadow read-index for O(1) duplicate detection (mirrors the
        # tracked array; reads are free in the cost model).
        self._members: set[float] = set()

    @classmethod
    def for_accuracy(
        cls,
        epsilon: float,
        seed: int | None = None,
        tracker: StateTracker | None = None,
    ) -> "KMVDistinctElements":
        """Sketch with standard error ``~epsilon``."""
        if not 0 < epsilon <= 1:
            raise ValueError(f"epsilon must be in (0, 1]: {epsilon}")
        return cls(
            k=max(2, int(math.ceil(1.0 / epsilon**2))),
            seed=seed,
            tracker=tracker,
        )

    def _update(self, item: int) -> None:
        value = self._hash.unit(item)
        if value in self._members:
            return  # duplicate hash: a read, no state change
        if value >= self._minima[self.k - 1]:
            return  # not a record: a read, no state change
        # Insert into the sorted minima, dropping the old k-th value.
        evicted = self._minima[self.k - 1]
        position = self.k - 1
        while position > 0 and self._minima[position - 1] > value:
            self._minima[position] = self._minima[position - 1]
            position -= 1
        self._minima[position] = value
        if evicted < 1.0:
            self._members.discard(evicted)
        self._members.add(value)

    def _update_chunk(self, chunk: np.ndarray) -> None:
        # Candidate-filter pre-pass: hash the whole chunk vectorized,
        # then scalar-process only potential record-breakers.  The
        # k-th minimum only decreases during a chunk, so filtering on
        # its value at chunk entry is sound; the relative slack covers
        # the one-ulp difference between uint64->float64 unit hashes
        # and Python's correctly-rounded scalar division (a too-loose
        # filter only adds no-op scalar steps, never loses a record).
        # Culled updates are reads only — no writes, X_t = 0 — and are
        # bulk-ticked in one call.
        values = self._hash.unit_many(chunk)
        threshold = self._minima[self.k - 1] * (1.0 + 1e-9)
        candidates = np.flatnonzero(values < threshold)
        for position in candidates.tolist():
            self._scalar_step(int(chunk[position]))
        culled = len(chunk) - len(candidates)
        if culled:
            self.tracker.record_chunk(culled, 0, 0, 0)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_minima(self) -> int:
        """How many slots are currently occupied."""
        return sum(1 for value in self._minima if value < 1.0)

    def _answer_distinct(self, q: Distinct) -> ScalarAnswer:
        """Estimated number of distinct items.

        Exact (the occupied-slot count) while fewer than ``k`` distinct
        hashes have been seen; ``(k-1)/v_k`` once the sketch is full.
        """
        occupied = self.num_minima
        if occupied < self.k:
            return ScalarAnswer(QueryKind.DISTINCT, float(occupied))
        v_k = self._minima[self.k - 1]
        if v_k <= 0.0:
            return ScalarAnswer(QueryKind.DISTINCT, float(self.k))
        return ScalarAnswer(QueryKind.DISTINCT, (self.k - 1) / v_k)

    def f0_estimate(self) -> float:
        """Estimated number of distinct items (the distinct query)."""
        return self.query(Distinct()).value

    # ------------------------------------------------------------------
    # Mergeable sketch protocol
    # ------------------------------------------------------------------
    # Two KMV sketches over the same hash merge by taking the k smallest
    # of the union of minima — exactly the state of a single instance
    # that saw both streams.
    def _merge_same_type(self, other: "KMVDistinctElements") -> None:
        if (other.k, other.seed) != (self.k, self.seed):
            raise ValueError(
                f"incompatible KMV sketches: k={self.k}/seed={self.seed} "
                f"vs k={other.k}/seed={other.seed}"
            )
        union = {v for v in self._minima if v < 1.0}
        union.update(v for v in other._minima if v < 1.0)
        self._load_minima(sorted(union)[: self.k])

    def _load_minima(self, occupied: list[float]) -> None:
        self._minima.load(occupied + [1.0] * (self.k - len(occupied)))
        self._members = set(occupied)

    def _config_state(self) -> dict:
        return {"k": self.k, "seed": self.seed}

    def _payload_state(self) -> dict:
        return {"minima": [v for v in self._minima if v < 1.0]}

    def _load_payload(self, payload: dict) -> None:
        self._load_minima(sorted(float(v) for v in payload["minima"]))
