"""Columnar streams: the carrier type of the chunked data plane.

The paper's cost model measures *state changes*, not Python overhead,
yet a ``list[int]`` stream pays per-item Python dispatch at every layer
between the generator and the sketch.  :class:`ChunkedStream` keeps a
stream columnar end to end — a lazy sequence of contiguous
``np.ndarray`` chunks of dtype ``int64`` — so the runtime can route,
ship, and ingest whole chunks (:meth:`~repro.state.algorithm.Sketch.
process_chunk`, :meth:`~repro.runtime.sharded.ShardedRunner.ingest`)
while scalar consumers keep working unchanged:

* iterating a ``ChunkedStream`` yields plain Python ``int``s,
* ``len()``, indexing, slicing, and ``==`` against lists behave like
  the ``list[int]`` streams the generators used to return,
* :meth:`ChunkedStream.materialize` recovers the historical
  ``list[int]`` explicitly.

Two backings cover every producer:

* **array-backed** — the stream is one ``int64`` array (what the
  random generators draw anyway; the old code round-tripped it through
  ``.tolist()``); chunking is zero-copy slicing.
* **factory-backed** — ``source`` is a callable returning a fresh
  iterator of chunks, so file readers
  (:func:`repro.streams.traceio.trace_stream`) never hold the whole
  trace in memory.  Operations that need random access (``len``,
  indexing, ``materialize``) concatenate and cache the chunks.

Chunks are produced at :attr:`chunk_size` items (re-chunk with
:meth:`chunks` or :meth:`with_chunk_size`); ``chunks(start=k)`` skips
the first ``k`` items without materializing them, which is how
interrupted chunked runs resume from a
:class:`~repro.runtime.checkpoint.Checkpoint` offset.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

import numpy as np

#: Default items per chunk: large enough to amortize numpy call
#: overhead, small enough to stay cache-resident.
DEFAULT_CHUNK_SIZE = 8192


def as_chunk(values) -> np.ndarray:
    """Coerce ``values`` into a contiguous 1-D ``int64`` chunk."""
    chunk = np.ascontiguousarray(values, dtype=np.int64)
    if chunk.ndim != 1:
        raise ValueError(
            f"a stream chunk must be one-dimensional, got shape "
            f"{chunk.shape}"
        )
    return chunk


def _rechunk(
    pieces: Iterable[np.ndarray], size: int, start: int = 0
) -> Iterator[np.ndarray]:
    """Regroup a chunk iterator into chunks of exactly ``size`` items
    (the final chunk may be shorter), skipping the first ``start``."""
    pending: list[np.ndarray] = []
    buffered = 0
    for piece in pieces:
        piece = as_chunk(piece)
        if start:
            if len(piece) <= start:
                start -= len(piece)
                continue
            piece = piece[start:]
            start = 0
        if not len(piece):
            continue
        pending.append(piece)
        buffered += len(piece)
        while buffered >= size:
            merged = pending[0] if len(pending) == 1 else np.concatenate(
                pending
            )
            yield merged[:size]
            rest = merged[size:]
            pending = [rest] if len(rest) else []
            buffered = len(rest)
    if buffered:
        yield pending[0] if len(pending) == 1 else np.concatenate(pending)


class ChunkedStream:
    """A stream of ``int64`` items exposed as lazy columnar chunks.

    Parameters
    ----------
    source:
        Either anything :func:`as_chunk` accepts (an ``int64`` array,
        a list of ints — the stream is then array-backed), or a
        zero-argument callable returning a fresh iterator of chunks
        (factory-backed, for lazily-read traces).
    chunk_size:
        Items per chunk produced by :meth:`chunks` and ``__iter__``.
    """

    __slots__ = ("_array", "_factory", "_chunk_size")

    def __init__(
        self,
        source,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1: {chunk_size}")
        self._chunk_size = int(chunk_size)
        self._factory: Callable[[], Iterable[np.ndarray]] | None
        self._array: np.ndarray | None
        if callable(source):
            self._factory = source
            self._array = None
        else:
            self._factory = None
            self._array = as_chunk(source)

    @classmethod
    def from_items(
        cls, items: Iterable[int], chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> "ChunkedStream":
        """Array-backed stream from any iterable of ints."""
        return cls(np.fromiter(items, dtype=np.int64), chunk_size)

    # ------------------------------------------------------------------
    # Columnar access
    # ------------------------------------------------------------------
    @property
    def chunk_size(self) -> int:
        """Items per produced chunk."""
        return self._chunk_size

    def with_chunk_size(self, chunk_size: int) -> "ChunkedStream":
        """The same stream re-chunked at ``chunk_size`` (no copy)."""
        source = self._array if self._array is not None else self._factory
        return ChunkedStream(source, chunk_size)

    def chunks(
        self, chunk_size: int | None = None, start: int = 0
    ) -> Iterator[np.ndarray]:
        """Iterate the stream as ``int64`` chunks.

        ``chunk_size`` overrides the stream's own chunking for this
        iteration; ``start`` skips the first ``start`` items (the
        resume path for checkpointed runs).  Array-backed streams
        yield zero-copy views.
        """
        size = self._chunk_size if chunk_size is None else int(chunk_size)
        if size < 1:
            raise ValueError(f"chunk_size must be >= 1: {size}")
        if start < 0:
            raise ValueError(f"start must be >= 0: {start}")
        if self._array is not None:
            array = self._array
            for low in range(start, len(array), size):
                yield array[low:low + size]
            return
        yield from _rechunk(self._factory(), size, start)

    def to_array(self) -> np.ndarray:
        """The whole stream as one ``int64`` array.

        Factory-backed streams are drained once and cached, so
        repeated random access does not re-read the source.
        """
        if self._array is None:
            parts = [as_chunk(piece) for piece in self._factory()]
            self._array = (
                np.concatenate(parts)
                if parts
                else np.empty(0, dtype=np.int64)
            )
        return self._array

    def materialize(self) -> list[int]:
        """The historical ``list[int]`` form (Python ints)."""
        return self.to_array().tolist()

    # ------------------------------------------------------------------
    # list[int] compatibility
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[int]:
        """Yield plain Python ints, chunk by chunk."""
        for chunk in self.chunks():
            yield from chunk.tolist()

    def __len__(self) -> int:
        return len(self.to_array())

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ChunkedStream(
                self.to_array()[index], self._chunk_size
            )
        return int(self.to_array()[index])

    def __eq__(self, other) -> bool:
        if isinstance(other, ChunkedStream):
            return np.array_equal(self.to_array(), other.to_array())
        if isinstance(other, np.ndarray):
            return np.array_equal(self.to_array(), other)
        if isinstance(other, (list, tuple)):
            # Exact element comparison (no silent dtype coercion).
            return self.materialize() == list(other)
        return NotImplemented

    __hash__ = None  # mutable-ish container semantics, like list

    def __repr__(self) -> str:
        length = "?" if self._array is None else str(len(self._array))
        return (
            f"ChunkedStream(length={length}, "
            f"chunk_size={self._chunk_size})"
        )
