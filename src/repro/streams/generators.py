"""Workload generators for the experiment suite.

The paper's motivating workloads are skewed frequency distributions
(network flows, iceberg queries), so the primary generator is a Zipf
stream; uniform, permutation, round-robin and planted-heavy-hitter
streams cover the corner cases exercised by the theorems and the
Section 1.4 discussion.

All generators return :class:`~repro.streams.chunked.ChunkedStream`
values over the universe ``range(n)`` and take an explicit seed for
reproducibility.  The draws are identical to the historical
``list[int]`` returns (same RNG call sequences, same seeds) — the
columnar wrapper just skips the ``ndarray -> list -> ndarray`` round
trip the scalar data plane used to pay, while ``len()``, indexing,
iteration (as Python ints), and ``==`` against lists keep the old
call sites working.
"""

from __future__ import annotations

import random

import numpy as np

from repro.streams.chunked import ChunkedStream


def _zipf_draws(
    n: int, m: int, skew: float, seed: int | None
) -> np.ndarray:
    """``m`` Zipf draws as an ``int64`` array (shared RNG sequence)."""
    if n <= 0 or m < 0:
        raise ValueError(f"need n > 0 and m >= 0: n={n}, m={m}")
    if skew <= 0:
        raise ValueError(f"skew must be positive: {skew}")
    rng = np.random.default_rng(seed)
    weights = (np.arange(1, n + 1, dtype=np.float64)) ** (-skew)
    weights /= weights.sum()
    return rng.choice(n, size=m, p=weights).astype(np.int64)


def zipf_stream(
    n: int, m: int, skew: float = 1.1, seed: int | None = None
) -> ChunkedStream:
    """``m`` i.i.d. draws from a Zipf(``skew``) law over ``range(n)``.

    Item ``i`` has probability proportional to ``(i+1)^{-skew}``; item 0
    is the most frequent.
    """
    return ChunkedStream(_zipf_draws(n, m, skew, seed))


def uniform_stream(
    n: int, m: int, seed: int | None = None
) -> ChunkedStream:
    """``m`` i.i.d. uniform draws from ``range(n)``."""
    if n <= 0 or m < 0:
        raise ValueError(f"need n > 0 and m >= 0: n={n}, m={m}")
    rng = np.random.default_rng(seed)
    return ChunkedStream(rng.integers(0, n, size=m).astype(np.int64))


def permutation_stream(
    n: int, seed: int | None = None
) -> ChunkedStream:
    """A uniformly random permutation of ``range(n)``.

    Every frequency is exactly 1, so ``Fp = n`` for all ``p`` — the
    "flat" side of the lower-bound instances (stream ``S2`` in the
    proofs of Theorems 1.2/1.4).
    """
    if n <= 0:
        raise ValueError(f"need n > 0: {n}")
    rng = random.Random(seed)
    stream = list(range(n))
    rng.shuffle(stream)
    return ChunkedStream(np.array(stream, dtype=np.int64))


def round_robin_stream(n: int, m: int) -> ChunkedStream:
    """Deterministic cyclic stream ``0, 1, ..., n-1, 0, 1, ...``.

    The worst case for sample-based heavy hitters with clustered
    occurrences absent; useful as a no-heavy-hitter control.
    """
    if n <= 0 or m < 0:
        raise ValueError(f"need n > 0 and m >= 0: n={n}, m={m}")
    return ChunkedStream(np.arange(m, dtype=np.int64) % n)


def bursty_stream(
    n: int,
    m: int,
    num_bursts: int = 4,
    burst_fraction: float = 0.25,
    burst_intensity: float = 0.9,
    background_skew: float = 1.1,
    seed: int | None = None,
) -> ChunkedStream:
    """A flash-crowd stream: Zipf background with item-dominating bursts.

    The stream is cut into windows; ``num_bursts`` of them (covering
    ``burst_fraction`` of the updates in total) are *flash crowds*
    during which a randomly chosen flash item receives each update with
    probability ``burst_intensity``, the rest falling back to the Zipf
    background.  This is the workload where heavy-hitter trackers see
    their heavy set change abruptly — the stress case for eviction
    policies and per-shard write budgets (a hash-partitioned flash item
    concentrates its wear on one shard).
    """
    if num_bursts < 0:
        raise ValueError(f"num_bursts must be >= 0: {num_bursts}")
    if not 0.0 <= burst_fraction <= 1.0:
        raise ValueError(f"burst_fraction must be in [0, 1]: {burst_fraction}")
    if not 0.0 <= burst_intensity <= 1.0:
        raise ValueError(
            f"burst_intensity must be in [0, 1]: {burst_intensity}"
        )
    stream = _zipf_draws(n, m, background_skew, seed)
    if num_bursts == 0 or m == 0 or burst_fraction == 0.0:
        return ChunkedStream(stream)
    rng = random.Random(None if seed is None else seed + 0x0B57)
    burst_length = max(1, int(m * burst_fraction / num_bursts))
    for _ in range(num_bursts):
        start = rng.randrange(max(1, m - burst_length + 1))
        flash_item = rng.randrange(n)
        for t in range(start, min(m, start + burst_length)):
            if rng.random() < burst_intensity:
                stream[t] = flash_item
    return ChunkedStream(stream)


def phase_shift_stream(
    n: int,
    m: int,
    phases: int = 3,
    skew: float = 1.3,
    seed: int | None = None,
) -> ChunkedStream:
    """A Zipf stream whose item ranking is reshuffled each phase.

    The stream is split into ``phases`` equal segments; every segment
    draws from the same Zipf(``skew``) law but through a fresh random
    permutation of the universe, so the identity of the heavy items
    changes at each phase boundary while the frequency *profile* stays
    constant.  Algorithms that lock onto early heavy items (sample-and-
    hold variants) pay for every shift; per-phase state-change budgets
    make the cost visible.
    """
    if n <= 0 or m < 0:
        raise ValueError(f"need n > 0 and m >= 0: n={n}, m={m}")
    if phases < 1:
        raise ValueError(f"phases must be >= 1: {phases}")
    rng = np.random.default_rng(seed)
    weights = (np.arange(1, n + 1, dtype=np.float64)) ** (-skew)
    weights /= weights.sum()
    segments: list[np.ndarray] = []
    bounds = [round(m * k / phases) for k in range(phases + 1)]
    for phase in range(phases):
        length = bounds[phase + 1] - bounds[phase]
        ranking = rng.permutation(n)
        draws = rng.choice(n, size=length, p=weights)
        segments.append(ranking[draws].astype(np.int64))
    if not segments:
        return ChunkedStream(np.empty(0, dtype=np.int64))
    return ChunkedStream(np.concatenate(segments))


def planted_heavy_hitter_stream(
    n: int,
    m: int,
    heavy_items: dict[int, int],
    background: str = "uniform",
    skew: float = 1.1,
    seed: int | None = None,
) -> ChunkedStream:
    """A background stream with specified items planted at exact counts.

    Parameters
    ----------
    heavy_items:
        Mapping ``item -> frequency``; these occurrences are mixed
        uniformly at random into the background stream.
    background:
        ``"uniform"`` or ``"zipf"``; background draws avoid the planted
        items so the planted frequencies are exact.
    """
    planted_total = sum(heavy_items.values())
    if planted_total > m:
        raise ValueError(
            f"planted occurrences ({planted_total}) exceed stream length {m}"
        )
    for item, count in heavy_items.items():
        if not 0 <= item < n:
            raise ValueError(f"planted item {item} outside universe [0, {n})")
        if count <= 0:
            raise ValueError(f"planted count must be positive: {count}")

    rng = random.Random(seed)
    background_universe = [i for i in range(n) if i not in heavy_items]
    if not background_universe and planted_total < m:
        raise ValueError("no background items available to fill the stream")

    num_background = m - planted_total
    if background == "uniform":
        body = [rng.choice(background_universe) for _ in range(num_background)]
    elif background == "zipf":
        weights = [(i + 1) ** (-skew) for i in range(len(background_universe))]
        body = rng.choices(background_universe, weights=weights, k=num_background)
    else:
        raise ValueError(f"unknown background kind: {background!r}")

    for item, count in heavy_items.items():
        body.extend([item] * count)
    rng.shuffle(body)
    return ChunkedStream(np.array(body, dtype=np.int64))
