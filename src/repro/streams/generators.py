"""Workload generators for the experiment suite.

The paper's motivating workloads are skewed frequency distributions
(network flows, iceberg queries), so the primary generator is a Zipf
stream; uniform, permutation, round-robin and planted-heavy-hitter
streams cover the corner cases exercised by the theorems and the
Section 1.4 discussion.

All generators return plain ``list[int]`` streams over the universe
``range(n)`` and take an explicit seed for reproducibility.
"""

from __future__ import annotations

import random

import numpy as np


def zipf_stream(
    n: int, m: int, skew: float = 1.1, seed: int | None = None
) -> list[int]:
    """``m`` i.i.d. draws from a Zipf(``skew``) law over ``range(n)``.

    Item ``i`` has probability proportional to ``(i+1)^{-skew}``; item 0
    is the most frequent.
    """
    if n <= 0 or m < 0:
        raise ValueError(f"need n > 0 and m >= 0: n={n}, m={m}")
    if skew <= 0:
        raise ValueError(f"skew must be positive: {skew}")
    rng = np.random.default_rng(seed)
    weights = (np.arange(1, n + 1, dtype=np.float64)) ** (-skew)
    weights /= weights.sum()
    return rng.choice(n, size=m, p=weights).tolist()


def uniform_stream(n: int, m: int, seed: int | None = None) -> list[int]:
    """``m`` i.i.d. uniform draws from ``range(n)``."""
    if n <= 0 or m < 0:
        raise ValueError(f"need n > 0 and m >= 0: n={n}, m={m}")
    rng = np.random.default_rng(seed)
    return rng.integers(0, n, size=m).tolist()


def permutation_stream(n: int, seed: int | None = None) -> list[int]:
    """A uniformly random permutation of ``range(n)``.

    Every frequency is exactly 1, so ``Fp = n`` for all ``p`` — the
    "flat" side of the lower-bound instances (stream ``S2`` in the
    proofs of Theorems 1.2/1.4).
    """
    if n <= 0:
        raise ValueError(f"need n > 0: n={n}")
    rng = random.Random(seed)
    stream = list(range(n))
    rng.shuffle(stream)
    return stream


def round_robin_stream(n: int, m: int) -> list[int]:
    """Deterministic cyclic stream ``0, 1, ..., n-1, 0, 1, ...``.

    The worst case for sample-based heavy hitters with clustered
    occurrences absent; useful as a no-heavy-hitter control.
    """
    if n <= 0 or m < 0:
        raise ValueError(f"need n > 0 and m >= 0: n={n}, m={m}")
    return [t % n for t in range(m)]


def planted_heavy_hitter_stream(
    n: int,
    m: int,
    heavy_items: dict[int, int],
    background: str = "uniform",
    skew: float = 1.1,
    seed: int | None = None,
) -> list[int]:
    """A background stream with specified items planted at exact counts.

    Parameters
    ----------
    heavy_items:
        Mapping ``item -> frequency``; these occurrences are mixed
        uniformly at random into the background stream.
    background:
        ``"uniform"`` or ``"zipf"``; background draws avoid the planted
        items so the planted frequencies are exact.
    """
    planted_total = sum(heavy_items.values())
    if planted_total > m:
        raise ValueError(
            f"planted occurrences ({planted_total}) exceed stream length {m}"
        )
    for item, count in heavy_items.items():
        if not 0 <= item < n:
            raise ValueError(f"planted item {item} outside universe [0, {n})")
        if count <= 0:
            raise ValueError(f"planted count must be positive: {count}")

    rng = random.Random(seed)
    background_universe = [i for i in range(n) if i not in heavy_items]
    if not background_universe and planted_total < m:
        raise ValueError("no background items available to fill the stream")

    num_background = m - planted_total
    if background == "uniform":
        body = [rng.choice(background_universe) for _ in range(num_background)]
    elif background == "zipf":
        weights = [(i + 1) ** (-skew) for i in range(len(background_universe))]
        body = rng.choices(background_universe, weights=weights, k=num_background)
    else:
        raise ValueError(f"unknown background kind: {background!r}")

    for item, count in heavy_items.items():
        body.extend([item] * count)
    rng.shuffle(body)
    return body
