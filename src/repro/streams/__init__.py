"""Stream workloads: generators, ground truth, adversarial instances."""

from repro.streams.adversarial import (
    LowerBoundInstance,
    PseudoHeavyInstance,
    lower_bound_pair,
    pseudo_heavy_counterexample,
)
from repro.streams.frequency import FrequencyVector
from repro.streams.traceio import read_trace, write_trace
from repro.streams.generators import (
    bursty_stream,
    permutation_stream,
    phase_shift_stream,
    planted_heavy_hitter_stream,
    round_robin_stream,
    uniform_stream,
    zipf_stream,
)

__all__ = [
    "FrequencyVector",
    "LowerBoundInstance",
    "PseudoHeavyInstance",
    "bursty_stream",
    "lower_bound_pair",
    "permutation_stream",
    "phase_shift_stream",
    "planted_heavy_hitter_stream",
    "pseudo_heavy_counterexample",
    "read_trace",
    "write_trace",
    "round_robin_stream",
    "uniform_stream",
    "zipf_stream",
]
