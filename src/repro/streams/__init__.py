"""Stream workloads: generators, ground truth, adversarial instances."""

from repro.streams.adversarial import (
    LowerBoundInstance,
    PseudoHeavyInstance,
    lower_bound_pair,
    pseudo_heavy_counterexample,
)
from repro.streams.chunked import (
    DEFAULT_CHUNK_SIZE,
    ChunkedStream,
    as_chunk,
)
from repro.streams.frequency import FrequencyVector
from repro.streams.traceio import (
    read_trace,
    read_trace_chunks,
    trace_stream,
    write_trace,
)
from repro.streams.generators import (
    bursty_stream,
    permutation_stream,
    phase_shift_stream,
    planted_heavy_hitter_stream,
    round_robin_stream,
    uniform_stream,
    zipf_stream,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ChunkedStream",
    "FrequencyVector",
    "LowerBoundInstance",
    "PseudoHeavyInstance",
    "as_chunk",
    "bursty_stream",
    "lower_bound_pair",
    "permutation_stream",
    "phase_shift_stream",
    "planted_heavy_hitter_stream",
    "pseudo_heavy_counterexample",
    "read_trace",
    "read_trace_chunks",
    "trace_stream",
    "write_trace",
    "round_robin_stream",
    "uniform_stream",
    "zipf_stream",
]
