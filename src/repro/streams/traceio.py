"""Reading and writing stream traces as plain text files.

One integer item per line — the interchange format the CLI's
``audit --input`` consumes, so external traces (packet logs, query
logs) can be replayed through any algorithm in the library.

Reading is chunk-wise: :func:`read_trace_chunks` parses the file into
bounded ``int64`` arrays instead of slurping it whole, so arbitrarily
large traces stream through the columnar data plane in constant
memory.  :func:`trace_stream` wraps the reader into a lazy
:class:`~repro.streams.chunked.ChunkedStream`; :func:`read_trace`
keeps the historical ``list[int]`` return.  All readers accept a
``max_items`` guard and report malformed or negative entries with
their ``path:line`` location.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Iterator

import numpy as np

from repro.streams.chunked import DEFAULT_CHUNK_SIZE, ChunkedStream


def write_trace(path: str | pathlib.Path, stream: Iterable[int]) -> int:
    """Write a stream to ``path``; returns the number of items written."""
    count = 0
    with open(path, "w") as handle:
        for item in stream:
            handle.write(f"{int(item)}\n")
            count += 1
    return count


def read_trace_chunks(
    path: str | pathlib.Path,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    max_items: int | None = None,
) -> Iterator[np.ndarray]:
    """Read a trace file as a sequence of ``int64`` chunks.

    The file is parsed line by line (blank lines ignored) and yielded
    in arrays of at most ``chunk_size`` items, so the whole trace is
    never resident at once.  ``max_items`` stops the read after that
    many items — the guard for replaying a bounded prefix of a huge
    log.

    Raises
    ------
    ValueError
        On a malformed or negative entry (all algorithms expect
        universe items in ``range(n)``), with the ``path:line``
        location in the message.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1: {chunk_size}")
    if max_items is not None and max_items < 0:
        raise ValueError(f"max_items must be >= 0: {max_items}")
    if max_items == 0:
        return
    buffer: list[int] = []
    produced = 0
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            text = line.strip()
            if not text:
                continue
            try:
                item = int(text)
            except ValueError as error:
                raise ValueError(
                    f"{path}:{line_number}: not an integer: {text!r}"
                ) from error
            if item < 0:
                raise ValueError(
                    f"{path}:{line_number}: negative item: {item}"
                )
            buffer.append(item)
            produced += 1
            if len(buffer) >= chunk_size:
                yield np.array(buffer, dtype=np.int64)
                buffer = []
            if max_items is not None and produced >= max_items:
                break
    if buffer:
        yield np.array(buffer, dtype=np.int64)


def trace_stream(
    path: str | pathlib.Path,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    max_items: int | None = None,
) -> ChunkedStream:
    """A lazy :class:`ChunkedStream` over a trace file.

    The file is re-read on each iteration (nothing is cached until an
    operation needs random access), so replaying a multi-gigabyte
    trace through the sharded runtime stays constant-memory.
    """
    return ChunkedStream(
        lambda: read_trace_chunks(path, chunk_size, max_items),
        chunk_size,
    )


def read_trace(
    path: str | pathlib.Path, max_items: int | None = None
) -> list[int]:
    """Read a stream from ``path`` as a ``list[int]`` (blank lines
    ignored).

    Raises ``ValueError`` on malformed or negative entries, since all
    algorithms expect universe items in ``range(n)``.  ``max_items``
    bounds the read; the full file is parsed chunk-wise either way.
    """
    items: list[int] = []
    for chunk in read_trace_chunks(path, max_items=max_items):
        items.extend(chunk.tolist())
    return items
