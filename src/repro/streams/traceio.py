"""Reading and writing stream traces as plain text files.

One integer item per line — the interchange format the CLI's
``audit --input`` consumes, so external traces (packet logs, query
logs) can be replayed through any algorithm in the library.
"""

from __future__ import annotations

import pathlib
from typing import Iterable


def write_trace(path: str | pathlib.Path, stream: Iterable[int]) -> int:
    """Write a stream to ``path``; returns the number of items written."""
    count = 0
    with open(path, "w") as handle:
        for item in stream:
            handle.write(f"{int(item)}\n")
            count += 1
    return count


def read_trace(path: str | pathlib.Path) -> list[int]:
    """Read a stream from ``path`` (blank lines ignored).

    Raises ``ValueError`` on malformed or negative entries, since all
    algorithms expect universe items in ``range(n)``.
    """
    stream: list[int] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            text = line.strip()
            if not text:
                continue
            try:
                item = int(text)
            except ValueError as error:
                raise ValueError(
                    f"{path}:{line_number}: not an integer: {text!r}"
                ) from error
            if item < 0:
                raise ValueError(
                    f"{path}:{line_number}: negative item: {item}"
                )
            stream.append(item)
    return stream
