"""Adversarial stream constructions from the paper's proofs.

Two families are implemented:

* :func:`lower_bound_pair` — the hard pair ``(S1, S2)`` from the proofs
  of Theorems 1.2 and 1.4: ``S1`` hides a block ``B`` of ``~n^{1/p}``
  repetitions of one random item inside otherwise-distinct updates,
  while ``S2`` is a random permutation.  ``Fp(S1) ~ 2n`` vs
  ``Fp(S2) = n``, so any ``(2 - eps)``-approximation must distinguish
  them, yet the block's random position forces ``Omega(n^{1-1/p})``
  state changes.

* :func:`pseudo_heavy_counterexample` — the Section 1.4 stream that
  defeats per-counter maintenance (the [BO13, BKSV14] failure mode):
  "pseudo-heavy" items of frequency ``n^{1/4}`` arrive in concentrated
  special blocks, while the single true ``L2``-heavy hitter of
  frequency ``sqrt(n)`` trickles in ``n^{1/8}`` occurrences per block —
  locally small, globally heavy.  Algorithms that evict the smallest
  counters globally lose the heavy hitter; the paper's dyadic
  age-bucketed maintenance keeps it.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class LowerBoundInstance:
    """One draw of the Theorem 1.2/1.4 hard distribution."""

    #: Stream with the hidden heavy block.
    s1: list[int]
    #: Flat stream (random permutation of the universe).
    s2: list[int]
    #: The repeated item in ``s1``.
    heavy_item: int
    #: Start offset of the block ``B`` within ``s1``.
    block_start: int
    #: Number of repetitions of ``heavy_item`` (``~eps * n^{1/p}``).
    block_length: int


def lower_bound_pair(
    n: int, p: float, epsilon: float = 1.0, seed: int | None = None
) -> LowerBoundInstance:
    """Draw the hard pair ``(S1, S2)`` of Theorems 1.2 and 1.4.

    Parameters
    ----------
    n:
        Universe size; both streams have length ``n``.
    p:
        Moment order (block length scales as ``n^{1/p}``).
    epsilon:
        Heavy-hitter threshold scaling of Theorem 1.2; ``epsilon = 1``
        gives the Theorem 1.4 moment-gap instance.
    """
    if n < 4:
        raise ValueError(f"universe too small for the construction: n={n}")
    if p < 1:
        raise ValueError(f"the construction needs p >= 1: {p}")
    if not 0 < epsilon <= 1:
        raise ValueError(f"epsilon must be in (0, 1]: {epsilon}")

    rng = random.Random(seed)
    block_length = max(2, int(round(epsilon * n ** (1.0 / p))))
    if block_length > n:
        raise ValueError(
            f"block length {block_length} exceeds stream length {n}"
        )

    heavy_item = rng.randrange(n)
    # Distinct filler items, none equal to the heavy item.
    fillers = [i for i in range(n) if i != heavy_item]
    rng.shuffle(fillers)
    fillers = fillers[: n - block_length]

    block_start = rng.randrange(n - block_length + 1)
    s1 = (
        fillers[:block_start]
        + [heavy_item] * block_length
        + fillers[block_start:]
    )

    s2 = list(range(n))
    rng.shuffle(s2)
    return LowerBoundInstance(
        s1=s1,
        s2=s2,
        heavy_item=heavy_item,
        block_start=block_start,
        block_length=block_length,
    )


@dataclass(frozen=True)
class PseudoHeavyInstance:
    """One draw of the Section 1.4 counterexample stream."""

    stream: list[int]
    #: The single true L2-heavy hitter (frequency ``~sqrt(n)``).
    heavy_item: int
    #: Frequency of the heavy item.
    heavy_frequency: int
    #: Items with frequency ``~n^{1/4}`` concentrated in special blocks.
    pseudo_heavy_items: set[int]
    #: Frequency of each pseudo-heavy item.
    pseudo_heavy_frequency: int


def pseudo_heavy_counterexample(
    n: int, seed: int | None = None
) -> PseudoHeavyInstance:
    """Build the Section 1.4 stream that defeats global-eviction holding.

    The stream has ``sqrt(n)`` blocks of ``sqrt(n)`` updates.  The first
    ``n^{1/4}`` blocks are *special*: each carries ``n^{1/4}`` distinct
    pseudo-heavy items, each repeated ``n^{1/4}`` times.  After each
    special block, the following ``n^{1/8}`` blocks each contain
    ``n^{1/8}`` occurrences of the single true heavy hitter, padded with
    fresh light items.  All remaining blocks are entirely light items.

    ``F2 = Theta(n)`` and only the heavy hitter (frequency
    ``n^{1/4} * n^{1/8} * n^{1/8} = sqrt(n)``) crosses a constant-``eps``
    ``L2`` threshold.
    """
    if n < 256:
        raise ValueError(
            f"need n >= 256 so that n^{{1/8}} >= 2 blocks exist: n={n}"
        )
    rng = random.Random(seed)

    block_size = int(round(math.sqrt(n)))
    num_blocks = block_size
    quarter = max(2, int(round(n**0.25)))
    eighth = max(2, int(round(n**0.125)))

    num_special = quarter
    heavy_item = 0
    next_fresh = 1  # allocator for distinct pseudo-heavy and light ids

    def take_fresh(count: int) -> list[int]:
        nonlocal next_fresh
        ids = list(range(next_fresh, next_fresh + count))
        next_fresh += count
        return ids

    pseudo_heavy_items: set[int] = set()
    blocks: list[list[int]] = []
    # Which blocks carry heavy-hitter occurrences: the `eighth` blocks
    # following each special block (paper's T = x + S).
    heavy_blocks = set()
    for w in range(num_special):
        for x in range(1, eighth + 1):
            heavy_blocks.add(w + num_special * x)
    heavy_blocks = {b for b in heavy_blocks if num_special <= b < num_blocks}

    heavy_frequency = 0
    for b in range(num_blocks):
        if b < num_special:
            items = take_fresh(quarter)
            pseudo_heavy_items.update(items)
            block = [item for item in items for _ in range(quarter)]
            block = block[:block_size]
            while len(block) < block_size:
                block.extend(take_fresh(1))
            rng.shuffle(block)
        elif b in heavy_blocks:
            block = [heavy_item] * eighth
            heavy_frequency += eighth
            block.extend(take_fresh(block_size - eighth))
            rng.shuffle(block)
        else:
            block = take_fresh(block_size)
        blocks.append(block)

    stream = [item for block in blocks for item in block]
    return PseudoHeavyInstance(
        stream=stream,
        heavy_item=heavy_item,
        heavy_frequency=heavy_frequency,
        pseudo_heavy_items=pseudo_heavy_items,
        pseudo_heavy_frequency=quarter,
    )


def amplified_counterexample(
    num_pseudo: int = 60,
    pseudo_frequency: int = 60,
    heavy_frequency: int = 400,
    trickle_gap: int = 100,
    seed: int | None = None,
) -> PseudoHeavyInstance:
    """Finite-scale amplification of the Section 1.4 counterexample.

    The paper's instance separates the eviction policies only
    asymptotically (the pseudo-heavy/heavy count gap is ``n^{1/8}``,
    i.e. a factor 4 at ``n = 2^16``, which prunes cannot resolve).
    This variant makes the *mechanism* visible at laptop scale:

    * Phase 1 plants ``num_pseudo`` pseudo-heavy items, each appearing
      ``pseudo_frequency`` times in a concentrated burst — under global
      eviction their counters are immortal (always in the top half).
    * Phase 2 trickles the single true heavy hitter one occurrence
      every ``trickle_gap`` updates among fresh light items, so between
      consecutive counter-maintenance rounds the heavy counter stays
      far below ``pseudo_frequency`` — global eviction keeps killing
      it, while dyadic age bucketing only compares it against its
      same-age light peers (which it beats).

    The true heavy hitter's final frequency, ``heavy_frequency``,
    dominates every pseudo-heavy item, so any correct heavy-hitter
    algorithm must prefer it.
    """
    if num_pseudo < 1 or pseudo_frequency < 2:
        raise ValueError("need num_pseudo >= 1 and pseudo_frequency >= 2")
    if heavy_frequency <= pseudo_frequency:
        raise ValueError(
            "the true heavy hitter must dominate the pseudo-heavy items"
        )
    if trickle_gap < 1:
        raise ValueError(f"trickle_gap must be >= 1: {trickle_gap}")
    rng = random.Random(seed)

    heavy_item = 0
    pseudo_items = list(range(1, num_pseudo + 1))
    next_fresh = num_pseudo + 1

    phase1: list[int] = []
    for item in pseudo_items:
        phase1.extend([item] * pseudo_frequency)
    # Mild local shuffling keeps bursts concentrated but not periodic.
    rng.shuffle(phase1)

    phase2: list[int] = []
    for _ in range(heavy_frequency):
        phase2.append(heavy_item)
        # Fillers appear twice so that sampled fillers open counters
        # and keep the maintenance machinery firing (a once-only item
        # can never trigger the hold step).
        num_pairs = (trickle_gap - 1) // 2
        for fresh in range(next_fresh, next_fresh + num_pairs):
            phase2.extend((fresh, fresh))
        next_fresh += num_pairs
        if (trickle_gap - 1) % 2:
            phase2.append(next_fresh)
            next_fresh += 1

    return PseudoHeavyInstance(
        stream=phase1 + phase2,
        heavy_item=heavy_item,
        heavy_frequency=heavy_frequency,
        pseudo_heavy_items=set(pseudo_items),
        pseudo_heavy_frequency=pseudo_frequency,
    )
