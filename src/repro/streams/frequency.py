"""Ground-truth frequency vectors and the statistics the paper studies.

Every experiment compares an algorithm's output against the exact
quantity computed here from the full stream: ``Fp`` moments, ``Lp``
norms, Shannon entropy, and the ``Lp``-heavy-hitter set with the
paper's two-sided threshold (report everything ``>= eps * ||f||_p``,
never report anything ``< (eps/2) * ||f||_p``).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Mapping


class FrequencyVector:
    """Exact frequency vector ``f`` of an insertion-only stream."""

    def __init__(self, frequencies: Mapping[int, int]) -> None:
        for item, count in frequencies.items():
            if count < 0:
                raise ValueError(f"negative frequency for item {item}: {count}")
        self._freq: dict[int, int] = {
            item: count for item, count in frequencies.items() if count > 0
        }

    @classmethod
    def from_stream(cls, stream: Iterable[int]) -> "FrequencyVector":
        """Materialize ``f_i = |{t : u_t = i}|`` from the stream."""
        return cls(Counter(stream))

    # ------------------------------------------------------------------
    # Basic access
    # ------------------------------------------------------------------
    def __getitem__(self, item: int) -> int:
        return self._freq.get(item, 0)

    def __len__(self) -> int:
        """Number of distinct items (the support size / ``F0``)."""
        return len(self._freq)

    def items(self):
        return self._freq.items()

    @property
    def stream_length(self) -> int:
        """Total number of updates ``m = F1``."""
        return sum(self._freq.values())

    @property
    def support(self) -> set[int]:
        """Items with non-zero frequency."""
        return set(self._freq)

    # ------------------------------------------------------------------
    # Moments and norms
    # ------------------------------------------------------------------
    def fp_moment(self, p: float) -> float:
        """``Fp(f) = sum_i f_i^p`` (``F0`` counts distinct items)."""
        if p < 0:
            raise ValueError(f"moment order p must be >= 0: {p}")
        if p == 0:
            return float(len(self._freq))
        return float(sum(count**p for count in self._freq.values()))

    def lp_norm(self, p: float) -> float:
        """``||f||_p = Fp(f)^{1/p}``."""
        if p <= 0:
            raise ValueError(f"norm order p must be positive: {p}")
        return self.fp_moment(p) ** (1.0 / p)

    def shannon_entropy(self) -> float:
        """Empirical Shannon entropy (bits) of the stream distribution.

        ``H = -sum_i (f_i/m) * log2(f_i/m)``; 0 for an empty stream.
        """
        m = self.stream_length
        if m == 0:
            return 0.0
        entropy = 0.0
        for count in self._freq.values():
            q = count / m
            entropy -= q * math.log2(q)
        return entropy

    # ------------------------------------------------------------------
    # Heavy hitters
    # ------------------------------------------------------------------
    def heavy_hitters(self, p: float, epsilon: float) -> set[int]:
        """Items with ``f_i >= epsilon * ||f||_p`` (must be reported)."""
        if not 0 < epsilon <= 1:
            raise ValueError(f"epsilon must be in (0, 1]: {epsilon}")
        threshold = epsilon * self.lp_norm(p)
        return {item for item, count in self._freq.items() if count >= threshold}

    def forbidden_items(self, p: float, epsilon: float) -> set[int]:
        """Items with ``f_i < (epsilon/2) * ||f||_p`` (must not be reported)."""
        if not 0 < epsilon <= 1:
            raise ValueError(f"epsilon must be in (0, 1]: {epsilon}")
        threshold = 0.5 * epsilon * self.lp_norm(p)
        return {item for item, count in self._freq.items() if count < threshold}

    def linf_error(self, estimates: Mapping[int, float]) -> float:
        """``max_i |f_i - fhat_i|`` over the union of supports.

        Items absent from ``estimates`` are treated as estimated 0, and
        estimated items absent from ``f`` as true 0, matching the
        guarantee ``||fhat - f||_inf`` of Theorem 1.1.
        """
        items = self.support | set(estimates)
        if not items:
            return 0.0
        return max(
            abs(self._freq.get(item, 0) - estimates.get(item, 0.0))
            for item in items
        )
