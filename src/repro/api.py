"""Top-level ``Engine`` facade: one object from stream to answers.

Before this module existed every caller rebuilt the same pipeline by
hand: look a sketch up in the registry, decide between a bare instance
and a :class:`~repro.runtime.sharded.ShardedRunner`, ingest, then
probe the sketch with ``hasattr`` ladders to extract answers.  The
``Engine`` composes those steps once, on top of the unified query
protocol (:mod:`repro.query`)::

    from repro.api import Engine
    from repro.query import HeavyHitters, Moment

    engine = Engine("heavy-hitters", n=4096, m=65536, epsilon=0.8, seed=7)
    report = engine.run(stream, queries=[HeavyHitters(), Moment()])
    report.answer(QueryKind.MOMENT).value   # the F2 estimate
    report.audit.state_changes              # the paper's sum_t X_t
    report.wall_time_s                      # ingest + reduce wall time

``shards=K`` switches ingestion to the sharded runtime transparently;
answers still come from one merged sketch, and ``executor="thread"``
or ``executor="process"`` additionally fans the shards out over a
thread pool or the pipelined shared-memory ``multiprocessing`` pool,
with bit-identical results.  One ``seed`` drives the registry factory
(sketch randomness), the shard partitioner, and the stream-independent
RNGs, so two engines built with the same arguments produce identical
reports end to end.

Streams can be passed explicitly or named: ``run(workload="bursty")``
materializes a registered scenario (:mod:`repro.workloads`) sized by
the engine's ``n``/``m``/``seed``, and ``run(workload=Workload(...))``
replays a fully-pinned spec — the spec string is echoed in the
:class:`RunReport` as provenance.

Accounting is pluggable per run: ``run(tracking="trace")`` keeps the
full per-cell wear histogram, ``run(budget=WriteBudget(2048,
"freeze"))`` enforces a cap on the run's state changes (split across
shards), and ``run(nvm="pcm")`` prices the run on a memory technology
via a simulated wear-leveled device — all surfaced as typed
``RunReport`` fields (``budget``, ``shard_budgets``, ``nvm``).  The
default is the scalar-counter aggregate backend, the fast path.

Capability discovery needs no instance: :attr:`Engine.supports`
mirrors the registry's :class:`~repro.registry.SketchSpec.supports`
declaration, and :meth:`Engine.default_queries` builds one
parameter-free query per supported kind.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro import registry
from repro.nvm import (
    NVMCostModel,
    NVMDevice,
    NVMRunReport,
    price_run,
    resolve_nvm,
)
from repro.query import (
    AllEstimates,
    Answer,
    Distinct,
    Entropy,
    HeavyHitters,
    Moment,
    MultiPointQuery,
    Query,
    QueryKind,
    UnsupportedQueryError,
)
from repro.runtime.parallel import (
    DEFAULT_PIPELINE_DEPTH,
    resolve_start_method,
)
from repro.runtime.sharded import ShardedRunner
from repro.state.algorithm import Sketch
from repro.state.budget import BudgetReport, WriteBudget
from repro.state.report import StateChangeReport
from repro.state.tracker import TRACKING_MODES, BudgetBackend
from repro.streams.chunked import ChunkedStream
from repro.workloads import Workload

#: Parameter-free query constructors, in presentation order (point
#: queries need an item, so they cannot be defaulted).
_DEFAULT_QUERIES: tuple[tuple[QueryKind, type], ...] = (
    (QueryKind.HEAVY_HITTERS, HeavyHitters),
    (QueryKind.ALL_ESTIMATES, AllEstimates),
    (QueryKind.MOMENT, Moment),
    (QueryKind.DISTINCT, Distinct),
    (QueryKind.ENTROPY, Entropy),
)


@dataclass(frozen=True)
class RunReport:
    """Everything one :meth:`Engine.run` produced.

    Attributes
    ----------
    sketch:
        Registry name of the algorithm that ran.
    num_shards / partition / seed:
        The ingestion configuration, echoed for provenance.
    items_processed:
        Stream updates consumed.
    wall_time_s:
        Wall-clock seconds spent ingesting and merge-reducing
        (queries are timed separately by callers that care).
    answers:
        ``(query, answer)`` pairs, in the order requested.
    audit:
        The merged run's state-change report (the paper's cost model).
    shard_reports:
        Per-shard audits (length 1 when unsharded).
    skew:
        Max-over-mean shard load (1.0 = perfectly balanced).
    executor:
        ``"serial"``, ``"thread"``, or ``"process"`` — where shard
        ingest ran.
    workload:
        Spec string of the named workload that generated the stream
        (``None`` when the caller passed an explicit stream).
    tracking:
        Accounting backend the shards ran on (``"aggregate"``,
        ``"trace"``, or ``"budget"``).
    budget:
        The distributed run's combined
        :class:`~repro.state.budget.BudgetReport` (limits and denials
        summed over shards); ``None`` for unbudgeted runs.
    shard_budgets:
        Per-shard budget outcomes (empty for unbudgeted runs).
    nvm:
        The run priced on a memory technology
        (:class:`~repro.nvm.NVMRunReport`) when ``nvm=`` was given.
    """

    sketch: str
    num_shards: int
    partition: str
    seed: int
    items_processed: int
    wall_time_s: float
    answers: tuple[tuple[Query, Answer], ...]
    audit: StateChangeReport
    shard_reports: tuple[StateChangeReport, ...]
    skew: float
    executor: str = "serial"
    workload: str | None = None
    tracking: str = "aggregate"
    budget: BudgetReport | None = None
    shard_budgets: tuple[BudgetReport, ...] = ()
    nvm: NVMRunReport | None = None
    chunk_size: int | None = None

    def answer(self, kind: QueryKind) -> Answer:
        """The first answer of the given kind.

        Raises ``KeyError`` when no requested query had that kind.
        """
        for query, answer in self.answers:
            if query.kind is kind:
                return answer
        raise KeyError(f"no {kind!s} answer in this report")

    def summary(self) -> str:
        """One-line human-readable run summary."""
        workload = f" workload={self.workload}" if self.workload else ""
        budget = f" [{self.budget.summary()}]" if self.budget else ""
        nvm = f" [{self.nvm.summary()}]" if self.nvm else ""
        return (
            f"{self.sketch}: items={self.items_processed} "
            f"shards={self.num_shards} ({self.partition}/{self.executor}) "
            f"state_changes={self.audit.state_changes} "
            f"peak_words={self.audit.peak_words} "
            f"wall={self.wall_time_s:.3f}s{workload}{budget}{nvm}"
        )


class Engine:
    """Facade composing registry lookup, (sharded) ingestion, queries.

    Parameters
    ----------
    sketch:
        Registry name (see :func:`repro.registry.names`).
    n, m, epsilon:
        Sizing hints forwarded to the registry factory.
    seed:
        The single randomness seed: it reaches the sketch factory of
        every shard (so shards share hash functions and merge
        losslessly) and the shard partitioner.  Runs with equal
        arguments are reproducible end to end.
    shards:
        Number of ingestion shards ``K >= 1``; ``K > 1`` requires a
        mergeable sketch.
    partition:
        ``"hash"`` (default) or ``"round-robin"``; see
        :class:`~repro.runtime.sharded.ShardedRunner`.
    batch_size:
        Items buffered per shard before a ``process_many`` flush.
    executor:
        ``"serial"`` (default), ``"thread"`` (deferred thread pool
        over the live shards — no serialization round trip), or
        ``"process"`` (the pipelined shared-memory pool when
        ``pipeline_depth > 0``, the historical barrier pool at
        ``pipeline_depth=0``).  Results are bit-identical; only the
        wall-clock changes.
    max_workers:
        Pool size cap (``None``: one worker per shard, capped by the
        CPUs the process may run on).
    pipeline_depth:
        Ring-buffer slots per shard for the pipelined process
        executor — how far routing may run ahead of worker ingest
        before back-pressure blocks; ``0`` selects the barrier pool.
    start_method:
        Explicit ``multiprocessing`` start-method override (``"fork"``
        / ``"forkserver"`` / ``"spawn"``); ``None`` applies the
        thread-safety policy of
        :func:`~repro.runtime.parallel.resolve_start_method`.
    coin_protocol:
        ``"v1"`` (sequential RNG) or ``"v2"`` (indexed Philox coins,
        the randomized families' default) — forwarded to every shard's
        factory.  ``None`` keeps each sketch's default; a non-``None``
        value on a coin-free sketch raises at construction (see
        :func:`repro.registry.create`).
    """

    def __init__(
        self,
        sketch: str,
        *,
        n: int = 4096,
        m: int = 65536,
        epsilon: float = 0.5,
        seed: int = 0,
        shards: int = 1,
        partition: str = "hash",
        batch_size: int = 1024,
        executor: str = "serial",
        max_workers: int | None = None,
        coin_protocol: str | None = None,
        pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
        start_method: str | None = None,
    ) -> None:
        self.spec = registry.spec(sketch)
        if shards < 1:
            raise ValueError(f"need at least one shard: {shards}")
        if coin_protocol is not None and (
            sketch not in registry.COIN_PROTOCOL_AWARE
        ):
            raise ValueError(
                f"{sketch!r} has no coin protocol; coin_protocol= "
                f"applies to {sorted(registry.COIN_PROTOCOL_AWARE)}"
            )
        if executor not in ("serial", "thread", "process"):
            raise ValueError(
                f"unknown executor {executor!r}; "
                f"choose from ('serial', 'thread', 'process')"
            )
        if executor == "process" and (
            self.spec.cls._config_state is Sketch._config_state
        ):
            # Fail at construction, not deep inside run(): the process
            # executor round-trips shards through to_state/from_state,
            # which this family does not implement.  (The thread
            # executor works on the live objects and has no such
            # requirement.)
            raise ValueError(
                f"{sketch!r} does not support state serialization and "
                f"cannot use the process executor; use "
                f"executor='serial' or executor='thread'"
            )
        if pipeline_depth < 0:
            raise ValueError(
                f"pipeline_depth must be >= 0: {pipeline_depth}"
            )
        if start_method is not None:
            resolve_start_method(start_method)  # validate eagerly
        if shards > 1 and not self.spec.mergeable:
            raise ValueError(
                f"{sketch!r} is not mergeable and cannot be sharded; "
                f"mergeable sketches: {registry.mergeable_names()}"
            )
        self.sketch_name = sketch
        self.n = n
        self.m = m
        self.epsilon = epsilon
        self.seed = seed
        self.shards = shards
        self.partition = partition
        self.batch_size = batch_size
        self.executor = executor
        self.max_workers = max_workers
        self.coin_protocol = coin_protocol
        self.pipeline_depth = pipeline_depth
        self.start_method = start_method
        self._merged: Sketch | None = None

    # ------------------------------------------------------------------
    # Capabilities
    # ------------------------------------------------------------------
    @property
    def supports(self) -> frozenset[QueryKind]:
        """Query kinds the configured sketch declares."""
        return self.spec.supports

    def default_queries(self) -> list[Query]:
        """One parameter-free query per supported kind.

        Point queries are omitted (they need an item); pass explicit
        :class:`~repro.query.PointQuery` objects to :meth:`run` for
        those.
        """
        return [
            query_cls()
            for kind, query_cls in _DEFAULT_QUERIES
            if kind in self.spec.supports
        ]

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(
        self,
        stream: Iterable[int] | None = None,
        queries: Sequence[Query] | None = None,
        *,
        workload: Workload | str | None = None,
        tracking: str = "aggregate",
        budget: WriteBudget | int | None = None,
        budget_split: str = "even",
        nvm: str | NVMCostModel | None = None,
        nvm_cells: int = 1024,
        nvm_wear_leveling: str = "round-robin",
        chunk_size: int | None = None,
    ) -> RunReport:
        """Ingest a stream, merge-reduce, answer ``queries``.

        The stream comes from exactly one of two places: an explicit
        ``stream`` iterable, or a named ``workload`` — either a
        registered scenario name (materialized with the engine's
        ``n``/``m``/``seed``, so the whole run hangs off one seed) or a
        fully-pinned :class:`~repro.workloads.Workload` spec.

        ``queries=None`` runs :meth:`default_queries`; pass an explicit
        (possibly empty) sequence to control exactly what is asked.
        The ingestion always goes through the sharded runtime — one
        shard degenerates to plain batched ingestion — so audits are
        comparable across shard counts by construction.

        Accounting is pluggable per run: ``tracking`` selects the
        backend (``"aggregate"`` — the fast-path default — ``"trace"``
        for per-cell wear histograms, ``"budget"``), ``budget`` caps
        the run's state changes with a
        :class:`~repro.state.budget.WriteBudget` (an int means
        ``WriteBudget(limit)`` with the default ``raise`` policy),
        split across shards per ``budget_split``
        (``"even"``/``"replicate"``), and ``nvm`` prices the run on a
        memory technology (``"pcm"``/``"nand"``/``"dram"`` or an
        :class:`~repro.nvm.NVMCostModel`) by attaching an
        :class:`~repro.nvm.NVMDevice` of ``nvm_cells`` physical cells
        to every shard's write trace — which requires the trace
        backend (implied) and the serial executor (listeners cannot
        cross a process pool), and is incompatible with a budget.

        Ingestion is columnar whenever the stream allows it: named
        workloads materialize as
        :class:`~repro.streams.chunked.ChunkedStream` values and flow
        chunk-wise through the vectorized router and
        ``process_chunk`` kernels, bit-identical to the scalar path.
        ``chunk_size`` re-chunks the stream (and wraps a plain
        iterable into chunks); ``None`` keeps the stream's own
        chunking — the scalar per-item path applies only to plain
        iterables.  Note that wrapping a plain iterable materializes
        it into one ``int64`` array first; for huge one-shot sources
        prefer a :class:`~repro.streams.chunked.ChunkedStream` (e.g.
        :func:`~repro.streams.traceio.trace_stream`), which stays
        lazy, or omit ``chunk_size`` to keep the bounded-memory
        scalar batching.
        """
        if (stream is None) == (workload is None):
            raise ValueError(
                "pass exactly one of stream= or workload= to Engine.run"
            )
        if tracking not in TRACKING_MODES:
            raise ValueError(
                f"unknown tracking mode {tracking!r}; "
                f"choose from {TRACKING_MODES}"
            )
        if budget is not None:
            if tracking == "trace":
                raise ValueError(
                    "a write budget runs on the 'budget' backend, which "
                    "keeps no per-cell trace; drop tracking= or pass "
                    "tracking='budget'"
                )
            if not isinstance(budget, WriteBudget):
                budget = WriteBudget(budget)
        device = None
        nvm_model = None
        if nvm is not None:
            nvm_model = resolve_nvm(nvm)
            if budget is not None or tracking == "budget":
                raise ValueError(
                    "nvm= needs the write trace of the trace backend; "
                    "it cannot be combined with a write budget"
                )
            if self.executor != "serial":
                raise ValueError(
                    "nvm= attaches write listeners, which cannot cross "
                    "a process pool and are not safe under concurrent "
                    "shard threads; use executor='serial'"
                )
            tracking = "trace"
            device = NVMDevice(
                nvm_cells,
                nvm_model,
                wear_leveling=nvm_wear_leveling,
                seed=self.seed,
            )
        if budget is not None:
            tracking = "budget"
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1: {chunk_size}")
        workload_name = None
        if workload is not None:
            if isinstance(workload, str):
                workload = Workload(
                    workload, n=self.n, m=self.m, seed=self.seed
                )
            workload_name = workload.describe()
            stream = workload.materialize()
        if chunk_size is not None and not hasattr(stream, "chunks"):
            # An explicit chunk size asks for columnar ingestion even
            # from a plain iterable; ndarrays are chunked zero-copy.
            stream = (
                ChunkedStream(stream, chunk_size)
                if isinstance(stream, np.ndarray)
                else ChunkedStream.from_items(stream, chunk_size)
            )
        runner = ShardedRunner.from_registry(
            self.sketch_name,
            self.shards,
            n=self.n,
            m=self.m,
            epsilon=self.epsilon,
            seed=self.seed,
            partition=self.partition,
            batch_size=self.batch_size,
            executor=self.executor,
            max_workers=self.max_workers,
            tracking=tracking,
            budget=budget,
            budget_split=budget_split,
            chunk_size=chunk_size,
            coin_protocol=self.coin_protocol,
            pipeline_depth=self.pipeline_depth,
            start_method=self.start_method,
        )
        if device is not None:
            for shard in runner.shards:
                device.attach(shard.tracker)
        start = time.perf_counter()
        result = runner.run(stream)
        wall_time_s = time.perf_counter() - start
        self._merged = result.merged

        merged_budget = None
        merged_tracker = result.merged.tracker
        if isinstance(merged_tracker, BudgetBackend):
            merged_budget = merged_tracker.budget_report()
        nvm_report = None
        if device is not None and nvm_model is not None:
            nvm_report = price_run(nvm_model, result.merged_report, device)

        if queries is None:
            queries = self.default_queries()
        answers = tuple((q, result.merged.query(q)) for q in queries)
        return RunReport(
            sketch=self.sketch_name,
            num_shards=self.shards,
            partition=self.partition,
            seed=self.seed,
            items_processed=result.merged.items_processed,
            wall_time_s=wall_time_s,
            answers=answers,
            audit=result.merged_report,
            shard_reports=result.shard_reports,
            skew=result.skew,
            executor=self.executor,
            workload=workload_name,
            tracking=tracking,
            budget=merged_budget,
            shard_budgets=tuple(
                report
                for report in result.budget_reports
                if report is not None
            ),
            nvm=nvm_report,
            chunk_size=chunk_size,
        )

    # ------------------------------------------------------------------
    # Live serving
    # ------------------------------------------------------------------
    def live(
        self,
        *,
        snapshot_every: int | None = None,
        tracking: str = "aggregate",
        budget: WriteBudget | int | None = None,
        budget_split: str = "even",
        chunk_size: int | None = None,
        snapshot_mode: str = "incremental",
        answer_cache: int = 256,
    ):
        """A :class:`~repro.serve.LiveEngine` with this engine's config.

        The live engine shares the sketch/sizing/seed/shard/partition
        configuration, so a mid-stream snapshot it serves is
        bit-identical to what :meth:`run` would report over the same
        stream prefix.  The executor is always serial — live ingest is
        in-process by construction.  ``snapshot_every=None`` keeps the
        serving default cadence.
        """
        from repro.serve.engine import DEFAULT_SNAPSHOT_EVERY, LiveEngine

        return LiveEngine(
            self.sketch_name,
            n=self.n,
            m=self.m,
            epsilon=self.epsilon,
            seed=self.seed,
            shards=self.shards,
            partition=self.partition,
            snapshot_every=(
                DEFAULT_SNAPSHOT_EVERY
                if snapshot_every is None
                else snapshot_every
            ),
            tracking=tracking,
            budget=budget,
            budget_split=budget_split,
            chunk_size=chunk_size,
            snapshot_mode=snapshot_mode,
            answer_cache=answer_cache,
            coin_protocol=self.coin_protocol,
        )

    # ------------------------------------------------------------------
    # Post-run queries
    # ------------------------------------------------------------------
    @property
    def merged(self) -> Sketch:
        """The merged sketch of the last :meth:`run`."""
        if self._merged is None:
            raise RuntimeError("Engine.run() has not been called yet")
        return self._merged

    def query(self, q: Query) -> Answer:
        """Ask the merged sketch of the last run one more question."""
        return self.merged.query(q)

    def query_many(self, q: MultiPointQuery) -> tuple[Answer, ...]:
        """Batch point queries against the merged sketch of the last
        run — bit-identical to a loop of :meth:`query` calls over
        ``PointQuery(item)`` but answered through the family's
        vectorized kernel."""
        return self.merged.query_many(q)

    def can_answer(self, q: Query | QueryKind) -> bool:
        """Whether the configured sketch declares this query's kind."""
        kind = q if isinstance(q, QueryKind) else q.kind
        return kind in self.spec.supports


__all__ = ["Engine", "RunReport", "UnsupportedQueryError"]
