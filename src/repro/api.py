"""Top-level ``Engine`` facade: one object from stream to answers.

Before this module existed every caller rebuilt the same pipeline by
hand: look a sketch up in the registry, decide between a bare instance
and a :class:`~repro.runtime.sharded.ShardedRunner`, ingest, then
probe the sketch with ``hasattr`` ladders to extract answers.  The
``Engine`` composes those steps once, on top of the unified query
protocol (:mod:`repro.query`)::

    from repro.api import Engine
    from repro.query import HeavyHitters, Moment

    engine = Engine("heavy-hitters", n=4096, m=65536, epsilon=0.8, seed=7)
    report = engine.run(stream, queries=[HeavyHitters(), Moment()])
    report.answer(QueryKind.MOMENT).value   # the F2 estimate
    report.audit.state_changes              # the paper's sum_t X_t
    report.wall_time_s                      # ingest + reduce wall time

``shards=K`` switches ingestion to the sharded runtime transparently;
answers still come from one merged sketch, and ``executor="process"``
additionally fans the shards out over a ``multiprocessing`` pool with
bit-identical results.  One ``seed`` drives the registry factory
(sketch randomness), the shard partitioner, and the stream-independent
RNGs, so two engines built with the same arguments produce identical
reports end to end.

Streams can be passed explicitly or named: ``run(workload="bursty")``
materializes a registered scenario (:mod:`repro.workloads`) sized by
the engine's ``n``/``m``/``seed``, and ``run(workload=Workload(...))``
replays a fully-pinned spec — the spec string is echoed in the
:class:`RunReport` as provenance.

Capability discovery needs no instance: :attr:`Engine.supports`
mirrors the registry's :class:`~repro.registry.SketchSpec.supports`
declaration, and :meth:`Engine.default_queries` builds one
parameter-free query per supported kind.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro import registry
from repro.query import (
    AllEstimates,
    Answer,
    Distinct,
    Entropy,
    HeavyHitters,
    Moment,
    Query,
    QueryKind,
    UnsupportedQueryError,
)
from repro.runtime.sharded import ShardedRunner
from repro.state.algorithm import Sketch
from repro.state.report import StateChangeReport
from repro.workloads import Workload

#: Parameter-free query constructors, in presentation order (point
#: queries need an item, so they cannot be defaulted).
_DEFAULT_QUERIES: tuple[tuple[QueryKind, type], ...] = (
    (QueryKind.HEAVY_HITTERS, HeavyHitters),
    (QueryKind.ALL_ESTIMATES, AllEstimates),
    (QueryKind.MOMENT, Moment),
    (QueryKind.DISTINCT, Distinct),
    (QueryKind.ENTROPY, Entropy),
)


@dataclass(frozen=True)
class RunReport:
    """Everything one :meth:`Engine.run` produced.

    Attributes
    ----------
    sketch:
        Registry name of the algorithm that ran.
    num_shards / partition / seed:
        The ingestion configuration, echoed for provenance.
    items_processed:
        Stream updates consumed.
    wall_time_s:
        Wall-clock seconds spent ingesting and merge-reducing
        (queries are timed separately by callers that care).
    answers:
        ``(query, answer)`` pairs, in the order requested.
    audit:
        The merged run's state-change report (the paper's cost model).
    shard_reports:
        Per-shard audits (length 1 when unsharded).
    skew:
        Max-over-mean shard load (1.0 = perfectly balanced).
    executor:
        ``"serial"`` or ``"process"`` — where shard ingest ran.
    workload:
        Spec string of the named workload that generated the stream
        (``None`` when the caller passed an explicit stream).
    """

    sketch: str
    num_shards: int
    partition: str
    seed: int
    items_processed: int
    wall_time_s: float
    answers: tuple[tuple[Query, Answer], ...]
    audit: StateChangeReport
    shard_reports: tuple[StateChangeReport, ...]
    skew: float
    executor: str = "serial"
    workload: str | None = None

    def answer(self, kind: QueryKind) -> Answer:
        """The first answer of the given kind.

        Raises ``KeyError`` when no requested query had that kind.
        """
        for query, answer in self.answers:
            if query.kind is kind:
                return answer
        raise KeyError(f"no {kind!s} answer in this report")

    def summary(self) -> str:
        """One-line human-readable run summary."""
        workload = f" workload={self.workload}" if self.workload else ""
        return (
            f"{self.sketch}: items={self.items_processed} "
            f"shards={self.num_shards} ({self.partition}/{self.executor}) "
            f"state_changes={self.audit.state_changes} "
            f"peak_words={self.audit.peak_words} "
            f"wall={self.wall_time_s:.3f}s{workload}"
        )


class Engine:
    """Facade composing registry lookup, (sharded) ingestion, queries.

    Parameters
    ----------
    sketch:
        Registry name (see :func:`repro.registry.names`).
    n, m, epsilon:
        Sizing hints forwarded to the registry factory.
    seed:
        The single randomness seed: it reaches the sketch factory of
        every shard (so shards share hash functions and merge
        losslessly) and the shard partitioner.  Runs with equal
        arguments are reproducible end to end.
    shards:
        Number of ingestion shards ``K >= 1``; ``K > 1`` requires a
        mergeable sketch.
    partition:
        ``"hash"`` (default) or ``"round-robin"``; see
        :class:`~repro.runtime.sharded.ShardedRunner`.
    batch_size:
        Items buffered per shard before a ``process_many`` flush.
    executor:
        ``"serial"`` (default) or ``"process"`` — whether shard ingest
        runs in-process or on a ``multiprocessing`` pool.  Results are
        bit-identical; only the wall-clock changes.
    max_workers:
        Process-pool size cap (``None``: one worker per shard, capped
        by the machine's cores).
    """

    def __init__(
        self,
        sketch: str,
        *,
        n: int = 4096,
        m: int = 65536,
        epsilon: float = 0.5,
        seed: int = 0,
        shards: int = 1,
        partition: str = "hash",
        batch_size: int = 1024,
        executor: str = "serial",
        max_workers: int | None = None,
    ) -> None:
        self.spec = registry.spec(sketch)
        if shards < 1:
            raise ValueError(f"need at least one shard: {shards}")
        if executor not in ("serial", "process"):
            raise ValueError(
                f"unknown executor {executor!r}; "
                f"choose from ('serial', 'process')"
            )
        if executor == "process" and (
            self.spec.cls._config_state is Sketch._config_state
        ):
            # Fail at construction, not deep inside run(): the process
            # executor round-trips shards through to_state/from_state,
            # which this family does not implement.
            raise ValueError(
                f"{sketch!r} does not support state serialization and "
                f"cannot use the process executor; use executor='serial'"
            )
        if shards > 1 and not self.spec.mergeable:
            raise ValueError(
                f"{sketch!r} is not mergeable and cannot be sharded; "
                f"mergeable sketches: {registry.mergeable_names()}"
            )
        self.sketch_name = sketch
        self.n = n
        self.m = m
        self.epsilon = epsilon
        self.seed = seed
        self.shards = shards
        self.partition = partition
        self.batch_size = batch_size
        self.executor = executor
        self.max_workers = max_workers
        self._merged: Sketch | None = None

    # ------------------------------------------------------------------
    # Capabilities
    # ------------------------------------------------------------------
    @property
    def supports(self) -> frozenset[QueryKind]:
        """Query kinds the configured sketch declares."""
        return self.spec.supports

    def default_queries(self) -> list[Query]:
        """One parameter-free query per supported kind.

        Point queries are omitted (they need an item); pass explicit
        :class:`~repro.query.PointQuery` objects to :meth:`run` for
        those.
        """
        return [
            query_cls()
            for kind, query_cls in _DEFAULT_QUERIES
            if kind in self.spec.supports
        ]

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(
        self,
        stream: Iterable[int] | None = None,
        queries: Sequence[Query] | None = None,
        *,
        workload: Workload | str | None = None,
    ) -> RunReport:
        """Ingest a stream, merge-reduce, answer ``queries``.

        The stream comes from exactly one of two places: an explicit
        ``stream`` iterable, or a named ``workload`` — either a
        registered scenario name (materialized with the engine's
        ``n``/``m``/``seed``, so the whole run hangs off one seed) or a
        fully-pinned :class:`~repro.workloads.Workload` spec.

        ``queries=None`` runs :meth:`default_queries`; pass an explicit
        (possibly empty) sequence to control exactly what is asked.
        The ingestion always goes through the sharded runtime — one
        shard degenerates to plain batched ingestion — so audits are
        comparable across shard counts by construction.
        """
        if (stream is None) == (workload is None):
            raise ValueError(
                "pass exactly one of stream= or workload= to Engine.run"
            )
        workload_name = None
        if workload is not None:
            if isinstance(workload, str):
                workload = Workload(
                    workload, n=self.n, m=self.m, seed=self.seed
                )
            workload_name = workload.describe()
            stream = workload.materialize()
        runner = ShardedRunner.from_registry(
            self.sketch_name,
            self.shards,
            n=self.n,
            m=self.m,
            epsilon=self.epsilon,
            seed=self.seed,
            partition=self.partition,
            batch_size=self.batch_size,
            executor=self.executor,
            max_workers=self.max_workers,
        )
        start = time.perf_counter()
        result = runner.run(stream)
        wall_time_s = time.perf_counter() - start
        self._merged = result.merged

        if queries is None:
            queries = self.default_queries()
        answers = tuple((q, result.merged.query(q)) for q in queries)
        return RunReport(
            sketch=self.sketch_name,
            num_shards=self.shards,
            partition=self.partition,
            seed=self.seed,
            items_processed=result.merged.items_processed,
            wall_time_s=wall_time_s,
            answers=answers,
            audit=result.merged_report,
            shard_reports=result.shard_reports,
            skew=result.skew,
            executor=self.executor,
            workload=workload_name,
        )

    # ------------------------------------------------------------------
    # Post-run queries
    # ------------------------------------------------------------------
    @property
    def merged(self) -> Sketch:
        """The merged sketch of the last :meth:`run`."""
        if self._merged is None:
            raise RuntimeError("Engine.run() has not been called yet")
        return self._merged

    def query(self, q: Query) -> Answer:
        """Ask the merged sketch of the last run one more question."""
        return self.merged.query(q)

    def can_answer(self, q: Query | QueryKind) -> bool:
        """Whether the configured sketch declares this query's kind."""
        kind = q if isinstance(q, QueryKind) else q.kind
        return kind in self.spec.supports


__all__ = ["Engine", "RunReport", "UnsupportedQueryError"]
