"""Ablation experiments A1 (counters), A2 (eviction), A3 (NVM wear).

A1 — exact vs Morris hold-counters inside SampleAndHold: the accuracy /
state-change trade the paper buys with Theorem 1.5.

A2 — the Section 1.4 counterexample: global smallest-counter eviction
([EV02, BO13, BKSV14]-style) loses the true heavy hitter on the pseudo-
heavy stream; the paper's dyadic age-bucketed eviction keeps it.

A3 — the motivating NVM consequence: device lifetime under each
algorithm's measured write trace on a simulated device.
"""

from __future__ import annotations

import math
import random
import statistics
from dataclasses import dataclass

from repro.baselines import CountMin, MisraGries, SpaceSaving
from repro.core import FullSampleAndHold, SampleAndHold, SampleAndHoldParams
from repro.nvm import PCM, NVMDevice
from repro.streams import FrequencyVector, zipf_stream


# ----------------------------------------------------------------------
# A1: exact vs Morris hold counters
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CounterAblationRow:
    counter_kind: str
    mean_state_changes: float
    mean_heavy_rel_error: float


def counter_ablation(
    n: int = 1024,
    m: int = 30000,
    p: float = 2.0,
    epsilon: float = 0.5,
    trials: int = 5,
    seed: int = 0,
) -> list[CounterAblationRow]:
    """A1: state changes and heavy-item error, exact vs Morris."""
    rows = []
    for use_morris, kind in ((True, "morris"), (False, "exact")):
        changes, errors = [], []
        for t in range(trials):
            stream = zipf_stream(n, m, skew=1.4, seed=seed + t)
            f = FrequencyVector.from_stream(stream)
            heavy_item = max(f.support, key=lambda item: f[item])
            params = SampleAndHoldParams.from_problem(
                n=n, m=m, p=p, epsilon=epsilon
            )
            algo = SampleAndHold(
                params, rng=random.Random(seed + 50 + t), use_morris=use_morris
            )
            algo.process_stream(stream)
            changes.append(algo.state_changes)
            estimate = algo.estimate(heavy_item)
            errors.append(abs(estimate - f[heavy_item]) / f[heavy_item])
        rows.append(
            CounterAblationRow(
                counter_kind=kind,
                mean_state_changes=float(statistics.mean(changes)),
                mean_heavy_rel_error=float(statistics.mean(errors)),
            )
        )
    return rows


def format_counter_ablation(rows: list[CounterAblationRow]) -> str:
    lines = [
        "A1 counter ablation (SampleAndHold hold-counters):",
        f"{'counters':>10}{'state changes':>16}{'heavy rel err':>15}",
    ]
    for row in rows:
        lines.append(
            f"{row.counter_kind:>10}{row.mean_state_changes:>16.1f}"
            f"{row.mean_heavy_rel_error:>15.3f}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# A2: eviction policy on the Section 1.4 counterexample
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EvictionAblationRow:
    policy: str
    detection_rate: float
    mean_heavy_estimate: float
    heavy_frequency: float


def eviction_ablation(
    trials: int = 8,
    sample_probability: float = 0.1,
    budget: int = 48,
    seed: int = 0,
) -> list[EvictionAblationRow]:
    """A2: who finds the heavy hitter on the Section 1.4 stream?

    The *same* SampleAndHold code runs twice per instance — once with
    the paper's dyadic age-bucketed maintenance, once with the
    classical global smallest-half rule — so the eviction policy is the
    only variable.  The workload is the amplified finite-scale variant
    of the Section 1.4 counterexample (see
    :func:`~repro.streams.adversarial.amplified_counterexample`; the
    paper-exponent instance only separates asymptotically).
    """
    from repro.streams.adversarial import amplified_counterexample

    policies = ("age-bucketed", "global")
    labels = {
        "age-bucketed": "age-bucketed (paper)",
        "global": "global smallest (naive)",
    }
    detections = {policy: 0 for policy in policies}
    estimates = {policy: [] for policy in policies}
    heavy_freqs = []
    for t in range(trials):
        inst = amplified_counterexample(
            num_pseudo=100, pseudo_frequency=100, seed=seed + t
        )
        heavy_freqs.append(inst.heavy_frequency)
        # Detected = the heavy estimate exceeds half a pseudo-heavy
        # count (far below its true frequency, far above noise).
        detect_level = 0.5 * inst.pseudo_heavy_frequency
        params = SampleAndHoldParams(
            sample_probability=sample_probability,
            kappa=8,
            budget_low=budget,
            budget_high=budget + 2,
            counter_a=0.125,
        )
        for policy in policies:
            algo = SampleAndHold(
                params,
                rng=random.Random(seed + 100 + t),
                eviction=policy,
                use_morris=False,
            )
            algo.process_stream(inst.stream)
            est = algo.estimate(inst.heavy_item)
            estimates[policy].append(est)
            detections[policy] += est >= detect_level

    return [
        EvictionAblationRow(
            policy=labels[policy],
            detection_rate=detections[policy] / trials,
            mean_heavy_estimate=float(statistics.mean(estimates[policy])),
            heavy_frequency=float(statistics.mean(heavy_freqs)),
        )
        for policy in policies
    ]


def format_eviction_ablation(rows: list[EvictionAblationRow]) -> str:
    lines = [
        "A2 eviction ablation (Section 1.4 pseudo-heavy stream):",
        f"{'policy':<28}{'detection rate':>15}{'heavy est':>12}"
        f"{'true freq':>11}",
    ]
    for row in rows:
        lines.append(
            f"{row.policy:<28}{row.detection_rate:>15.2f}"
            f"{row.mean_heavy_estimate:>12.1f}{row.heavy_frequency:>11.1f}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# A3: NVM device lifetime under each algorithm
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NVMWearRow:
    algorithm: str
    wear_policy: str
    total_writes: int
    max_cell_wear: int
    lifetime_workloads: float


def nvm_wear_comparison(
    n: int = 8192,
    m: int = 65536,
    epsilon: float = 0.5,
    num_cells: int = 4096,
    seed: int = 0,
) -> list[NVMWearRow]:
    """A3: run Table 1's contenders against a simulated PCM device."""
    stream = zipf_stream(n, m, skew=1.1, seed=seed)
    k = max(2, int(math.ceil(2.0 / epsilon)))
    rows = []
    for name, make in (
        ("Misra-Gries", lambda: MisraGries(k=k)),
        ("CountMin", lambda: CountMin.for_accuracy(epsilon, seed=seed)),
        ("SpaceSaving", lambda: SpaceSaving(k=k)),
        (
            "FullSampleAndHold",
            lambda: FullSampleAndHold(
                n=n, m=m, p=2, epsilon=epsilon, seed=seed, repetitions=1
            ),
        ),
    ):
        for policy in ("none", "round-robin"):
            algo = make()
            device = NVMDevice(
                num_cells, PCM, wear_leveling=policy, seed=seed
            )
            device.attach(algo.tracker)
            algo.process_stream(stream)
            rows.append(
                NVMWearRow(
                    algorithm=name,
                    wear_policy=policy,
                    total_writes=device.total_writes,
                    max_cell_wear=device.max_wear,
                    lifetime_workloads=device.lifetime_workloads(),
                )
            )
    return rows


def format_nvm_wear(rows: list[NVMWearRow]) -> str:
    lines = [
        "A3 NVM wear (PCM device, endurance 1e8 writes/cell):",
        f"{'algorithm':<20}{'leveling':<13}{'writes':>10}"
        f"{'max wear':>10}{'lifetime (workloads)':>22}",
    ]
    for row in rows:
        lifetime = (
            f"{row.lifetime_workloads:.3g}"
            if row.lifetime_workloads != float("inf")
            else "inf"
        )
        lines.append(
            f"{row.algorithm:<20}{row.wear_policy:<13}{row.total_writes:>10}"
            f"{row.max_cell_wear:>10}{lifetime:>22}"
        )
    return "\n".join(lines)
