"""Experiment T1: regenerate the paper's Table 1 empirically.

Table 1 compares the number of internal state changes of classical
heavy-hitter summaries (``O(m)``: Misra–Gries [MG82], CountMin [CM05],
SpaceSaving [MAA05], CountSketch [CCF04]) against the paper's
``Õ(n^{1-1/p})`` algorithm.  Here every algorithm runs on the shared
tracked-memory substrate over the same stream, and the table reports
the *measured* state changes, per-update change fraction, and peak
space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baselines import CountMin, CountSketch, MisraGries, SpaceSaving
from repro.core import FullSampleAndHold
from repro.streams import zipf_stream


@dataclass(frozen=True)
class Table1Row:
    """One algorithm's audit on the shared workload."""

    algorithm: str
    paper_bound: str
    state_changes: int
    change_fraction: float
    peak_words: int


def run_table1(
    n: int = 2**14,
    m: int | None = None,
    epsilon: float = 0.5,
    p: float = 2.0,
    skew: float = 1.1,
    seed: int = 0,
) -> list[Table1Row]:
    """Run every Table 1 contender on one Zipf stream and audit it.

    Defaults put the sweep in the regime where the paper's sampling
    rate ``rho ~ n^{1-1/p} log(nm) / (eps^2 m)`` is comfortably below
    1, so the state-change gap is visible (at very small ``n``/``m``
    the theoretical rate saturates and every algorithm writes often).
    """
    if m is None:
        m = 8 * n
    stream = zipf_stream(n, m, skew=skew, seed=seed)
    k = max(2, int(math.ceil(2.0 / epsilon)))

    contenders = [
        ("Misra-Gries [MG82]", "O(m)", MisraGries(k=k)),
        ("CountMin [CM05]", "O(m)", CountMin.for_accuracy(epsilon, seed=seed)),
        ("SpaceSaving [MAA05]", "O(m)", SpaceSaving(k=k)),
        (
            "CountSketch [CCF04]",
            "O(m)",
            CountSketch.for_accuracy(max(0.2, epsilon), seed=seed),
        ),
        (
            "FullSampleAndHold (this paper)",
            "~O(n^{1-1/p})",
            FullSampleAndHold(n=n, m=m, p=p, epsilon=epsilon, seed=seed),
        ),
    ]

    rows = []
    for name, bound, algo in contenders:
        algo.process_stream(stream)
        report = algo.report()
        rows.append(
            Table1Row(
                algorithm=name,
                paper_bound=bound,
                state_changes=report.state_changes,
                change_fraction=report.state_change_fraction,
                peak_words=report.peak_words,
            )
        )
    return rows


def format_table1(rows: list[Table1Row], n: int, m: int) -> str:
    """Render the measured Table 1 as aligned text."""
    header = (
        f"Table 1 (measured): state changes on a Zipf stream, "
        f"n={n}, m={m}\n"
    )
    lines = [
        header,
        f"{'Algorithm':<34}{'Paper bound':<16}{'State changes':>14}"
        f"{'Frac/update':>13}{'Peak words':>12}",
        "-" * 89,
    ]
    for row in rows:
        lines.append(
            f"{row.algorithm:<34}{row.paper_bound:<16}"
            f"{row.state_changes:>14}{row.change_fraction:>13.4f}"
            f"{row.peak_words:>12}"
        )
    return "\n".join(lines)
