"""Sharded-ingestion scaling experiment (the runtime's accuracy audit).

Runs a registry sketch at 1/2/4/8 shards over the same stream and
compares the merge-reduced estimates against the single-instance
baseline and the exact ground truth.  The theory being checked:

* linear sketches (CountMin, CountSketch, AMS) merge losslessly, so
  the merged estimates must be *identical* to the single-instance run
  at every shard count;
* summary-based families (Misra-Gries, SpaceSaving) stay within their
  additive error bound (which sums across shards);
* the merged state-change total equals the sum of the shard totals —
  sharding redistributes, but does not create, state changes.

All runs go through the :class:`~repro.api.Engine` facade and scoring
goes through the unified query protocol: a sketch declaring ``POINT``
is scored on the top-``k`` true items via
:class:`~repro.query.PointQuery`; otherwise its best scalar kind
(moment, distinct, entropy — in that preference order) is queried and
compared against the matching exact statistic.  No per-family
special-casing: the declared capabilities drive the scoring, and the
error columns keep the same meaning either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro import registry, workloads
from repro.api import Engine
from repro.runtime.parallel import DEFAULT_PIPELINE_DEPTH
from repro.query import (
    Answer,
    Distinct,
    Entropy,
    Moment,
    PointQuery,
    Query,
    QueryKind,
)
from repro.streams import FrequencyVector

#: Query kinds a sketch can be scored on, most informative first.
_SCORING_KINDS: tuple[QueryKind, ...] = (
    QueryKind.POINT,
    QueryKind.MOMENT,
    QueryKind.DISTINCT,
    QueryKind.ENTROPY,
)


@dataclass(frozen=True)
class ShardScalingRow:
    """One shard count's accuracy/state-change measurements."""

    num_shards: int
    state_changes: int
    sum_shard_state_changes: int
    peak_words: int
    skew: float
    #: Mean |estimate - truth| over the top items (point-capable
    #: sketches) or |scalar estimate - exact statistic| (scalar kinds).
    mean_abs_error: float
    #: Max |estimate - single-instance estimate| over the same queries.
    max_dev_from_single: float


def is_scorable(sketch_cls: type) -> bool:
    """Whether :func:`shard_scaling` can score this sketch class.

    Scoring needs a declared ``POINT`` capability or one of the scalar
    kinds (moment/distinct/entropy); samplers like ``reservoir``
    declare none of them.
    """
    supports = frozenset(getattr(sketch_cls, "supports", ()))
    return any(kind in supports for kind in _SCORING_KINDS)


def _scoring_kind(supports: frozenset[QueryKind]) -> QueryKind:
    """The preferred scorable kind among the declared capabilities."""
    for kind in _SCORING_KINDS:
        if kind in supports:
            return kind
    raise TypeError(
        f"no scorable query kind among {sorted(str(k) for k in supports)}"
    )


def _scalar_query(kind: QueryKind) -> Query:
    """The parameter-free scalar query for a scoring kind."""
    return {
        QueryKind.MOMENT: Moment(),
        QueryKind.DISTINCT: Distinct(),
        QueryKind.ENTROPY: Entropy(),
    }[kind]


def _scalar_truth(
    kind: QueryKind, answer: Answer, truth: FrequencyVector
) -> float:
    """Exact statistic matching a scalar answer.

    Moment answers carry the order ``p`` they resolved, so the truth
    is computed at exactly that order.
    """
    if kind is QueryKind.MOMENT:
        return truth.fp_moment(answer.p)
    if kind is QueryKind.DISTINCT:
        return truth.fp_moment(0.0)
    return truth.shannon_entropy()


def shard_scaling(
    sketch: str = "count-min",
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    n: int = 4096,
    m: int = 65536,
    epsilon: float = 0.1,
    skew: float = 1.2,
    partition: str = "hash",
    top_k: int = 20,
    seed: int = 0,
    workload: str = "zipf",
    executor: str = "serial",
    workload_params: dict | None = None,
    chunk_size: int | None = None,
    coin_protocol: str | None = None,
    pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
    start_method: str | None = None,
) -> list[ShardScalingRow]:
    """Compare shard counts against the single-instance baseline.

    All runs (including the 1-shard baseline) share the same stream —
    any scenario registered in :mod:`repro.workloads` — and the same
    sketch seed, so differences are attributable to the
    partition/merge pipeline alone.  ``executor="process"`` runs the
    multi-shard rows on the pipelined shared-memory pool
    (``pipeline_depth=0``: the barrier pool) and ``executor="thread"``
    on a thread pool; results are bit-identical to serial by
    construction, making this sweep a live equivalence audit.
    ``coin_protocol`` pins the randomized families' coin protocol for
    every row (including the baseline), so shard-scaling sweeps can
    compare v1 against v2 like ``repro run`` does.
    """
    spec = workloads.scenario_spec(workload)
    params = dict(workload_params or {})
    if "skew" in spec.param_names:
        params.setdefault("skew", skew)
    stream = workloads.generate(workload, n=n, m=m, seed=seed, **params)
    truth = FrequencyVector.from_stream(stream)
    top_items = [
        item
        for item, _ in sorted(truth.items(), key=lambda kv: -kv[1])[:top_k]
    ]

    def engine_for(num_shards: int) -> Engine:
        return Engine(
            sketch,
            n=n,
            m=m,
            epsilon=epsilon,
            seed=seed,
            shards=num_shards,
            partition=partition,
            executor=executor if num_shards > 1 else "serial",
            coin_protocol=coin_protocol,
            pipeline_depth=pipeline_depth,
            start_method=start_method,
        )

    kind = _scoring_kind(registry.spec(sketch).supports)
    single = engine_for(1)
    single_report = single.run(stream, queries=(), chunk_size=chunk_size)
    if kind is QueryKind.POINT:
        single_estimates = {
            item: single.query(PointQuery(item)).value for item in top_items
        }
    else:
        single_answer = single.query(_scalar_query(kind))
        single_scalar = single_answer.value
        truth_scalar = _scalar_truth(kind, single_answer, truth)

    rows = []
    for num_shards in shard_counts:
        if num_shards == 1:
            # The 1-shard row is byte-identical to the baseline run
            # (same sketch, seed, stream, and ingestion path) — reuse
            # it instead of re-ingesting the whole stream.
            engine, report = single, single_report
        else:
            engine = engine_for(num_shards)
            report = engine.run(stream, queries=(), chunk_size=chunk_size)
        if kind is QueryKind.POINT:
            estimates = {
                item: engine.query(PointQuery(item)).value
                for item in top_items
            }
            mean_abs_error = sum(
                abs(estimates[item] - truth[item]) for item in top_items
            ) / max(1, len(top_items))
            max_dev = max(
                (
                    abs(estimates[item] - single_estimates[item])
                    for item in top_items
                ),
                default=0.0,
            )
        else:
            merged_answer = engine.query(_scalar_query(kind))
            mean_abs_error = abs(merged_answer.value - truth_scalar)
            max_dev = abs(merged_answer.value - single_scalar)
        rows.append(
            ShardScalingRow(
                num_shards=num_shards,
                state_changes=report.audit.state_changes,
                sum_shard_state_changes=sum(
                    shard.state_changes for shard in report.shard_reports
                ),
                peak_words=report.audit.peak_words,
                skew=report.skew,
                mean_abs_error=mean_abs_error,
                max_dev_from_single=max_dev,
            )
        )
    return rows


def format_shard_scaling(
    rows: Sequence[ShardScalingRow], sketch: str, partition: str
) -> str:
    """Render the scaling sweep as an aligned text table."""
    lines = [
        f"Sharded ingestion scaling — {sketch} ({partition}-partitioned)",
        f"{'shards':>7}{'state chg':>12}{'sum(shards)':>13}"
        f"{'peak words':>12}{'skew':>7}{'mae(truth)':>12}{'dev(single)':>13}",
    ]
    for row in rows:
        lines.append(
            f"{row.num_shards:>7}{row.state_changes:>12}"
            f"{row.sum_shard_state_changes:>13}{row.peak_words:>12}"
            f"{row.skew:>7.2f}{row.mean_abs_error:>12.2f}"
            f"{row.max_dev_from_single:>13.2f}"
        )
    return "\n".join(lines)
