"""Sharded-ingestion scaling experiment (the runtime's accuracy audit).

Runs a registry sketch at 1/2/4/8 shards over the same stream and
compares the merge-reduced estimates against the single-instance
baseline and the exact ground truth.  The theory being checked:

* linear sketches (CountMin, CountSketch, AMS) merge losslessly, so
  the merged estimates must be *identical* to the single-instance run
  at every shard count;
* summary-based families (Misra-Gries, SpaceSaving) stay within their
  additive error bound (which sums across shards);
* the merged state-change total equals the sum of the shard totals —
  sharding redistributes, but does not create, state changes.

Frequency sketches (per-item ``estimate(item)``) are scored on the
top-``k`` true items; aggregate estimators (AMS ``F2``, KMV ``F0``,
p-stable ``Fp``) are scored on their single scalar estimate against
the exact moment — the error columns keep the same meaning either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro import registry
from repro.runtime.sharded import ShardedRunner
from repro.streams import FrequencyVector, zipf_stream


@dataclass(frozen=True)
class ShardScalingRow:
    """One shard count's accuracy/state-change measurements."""

    num_shards: int
    state_changes: int
    sum_shard_state_changes: int
    peak_words: int
    skew: float
    #: Mean |estimate - truth| over the top items (frequency sketches)
    #: or |scalar estimate - exact moment| (aggregate estimators).
    mean_abs_error: float
    #: Max |estimate - single-instance estimate| over the same queries.
    max_dev_from_single: float


def is_scorable(sketch_cls: type) -> bool:
    """Whether :func:`shard_scaling` can score this sketch class.

    Scoring needs either a per-item ``estimate(item)`` or one of the
    aggregate moment queries (``f2_estimate``/``f0_estimate``/
    ``fp_estimate``); samplers like ``reservoir`` have neither.
    """
    return any(
        hasattr(sketch_cls, query)
        for query in ("estimate", "f2_estimate", "f0_estimate", "fp_estimate")
    )


def _scalar_estimate(sketch) -> float:
    """Aggregate query for sketches without per-item estimates."""
    if hasattr(sketch, "f2_estimate"):
        return float(sketch.f2_estimate())
    if hasattr(sketch, "f0_estimate"):
        return float(sketch.f0_estimate())
    if hasattr(sketch, "fp_estimate"):
        return float(sketch.fp_estimate())
    raise TypeError(
        f"{type(sketch).__name__} exposes neither estimate(item) nor an "
        f"aggregate estimate; cannot score it"
    )


def _scalar_truth(sketch, truth: FrequencyVector) -> float:
    """Exact moment matching :func:`_scalar_estimate`'s query."""
    if hasattr(sketch, "f2_estimate"):
        return truth.fp_moment(2.0)
    if hasattr(sketch, "f0_estimate"):
        return truth.fp_moment(0.0)
    return truth.fp_moment(sketch.p)


def shard_scaling(
    sketch: str = "count-min",
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    n: int = 4096,
    m: int = 65536,
    epsilon: float = 0.1,
    skew: float = 1.2,
    partition: str = "hash",
    top_k: int = 20,
    seed: int = 0,
) -> list[ShardScalingRow]:
    """Compare shard counts against the single-instance baseline.

    All runs (including the 1-shard baseline) share the same stream and
    the same sketch seed, so differences are attributable to the
    partition/merge pipeline alone.
    """
    stream = zipf_stream(n, m, skew=skew, seed=seed)
    truth = FrequencyVector.from_stream(stream)
    top_items = [
        item
        for item, _ in sorted(truth.items(), key=lambda kv: -kv[1])[:top_k]
    ]

    single = registry.create(sketch, n=n, m=m, epsilon=epsilon, seed=seed)
    single.process_many(stream)
    per_item = hasattr(single, "estimate")
    if per_item:
        single_estimates = {
            item: single.estimate(item) for item in top_items
        }
    else:
        single_scalar = _scalar_estimate(single)
        truth_scalar = _scalar_truth(single, truth)

    rows = []
    for num_shards in shard_counts:
        runner = ShardedRunner.from_registry(
            sketch,
            num_shards,
            n=n,
            m=m,
            epsilon=epsilon,
            seed=seed,
            partition=partition,
        )
        result = runner.run(stream)
        if per_item:
            estimates = {
                item: result.merged.estimate(item) for item in top_items
            }
            mean_abs_error = sum(
                abs(estimates[item] - truth[item]) for item in top_items
            ) / max(1, len(top_items))
            max_dev = max(
                (
                    abs(estimates[item] - single_estimates[item])
                    for item in top_items
                ),
                default=0.0,
            )
        else:
            merged_scalar = _scalar_estimate(result.merged)
            mean_abs_error = abs(merged_scalar - truth_scalar)
            max_dev = abs(merged_scalar - single_scalar)
        rows.append(
            ShardScalingRow(
                num_shards=num_shards,
                state_changes=result.merged_report.state_changes,
                sum_shard_state_changes=sum(
                    report.state_changes for report in result.shard_reports
                ),
                peak_words=result.merged_report.peak_words,
                skew=result.skew,
                mean_abs_error=mean_abs_error,
                max_dev_from_single=max_dev,
            )
        )
    return rows


def format_shard_scaling(
    rows: Sequence[ShardScalingRow], sketch: str, partition: str
) -> str:
    """Render the scaling sweep as an aligned text table."""
    lines = [
        f"Sharded ingestion scaling — {sketch} ({partition}-partitioned)",
        f"{'shards':>7}{'state chg':>12}{'sum(shards)':>13}"
        f"{'peak words':>12}{'skew':>7}{'mae(truth)':>12}{'dev(single)':>13}",
    ]
    for row in rows:
        lines.append(
            f"{row.num_shards:>7}{row.state_changes:>12}"
            f"{row.sum_shard_state_changes:>13}{row.peak_words:>12}"
            f"{row.skew:>7.2f}{row.mean_abs_error:>12.2f}"
            f"{row.max_dev_from_single:>13.2f}"
        )
    return "\n".join(lines)
