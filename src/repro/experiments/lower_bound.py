"""Experiment E7: the lower-bound budget/advantage curve.

Theorem 1.4: distinguishing the hard pair (hence any
``(2-eps)``-approximation of ``Fp``) needs ``>= n^{1-1/p}/2`` state
changes.  The experiment sweeps a write budget ``B = c * n^{1-1/p}``
and plays the distinguishing game with the budgeted strawman; the
measured advantage should transition from ~0 to ~1 around ``c ~ 1``,
tracing the bound's threshold empirically.

The budget is not honor-system: every contestant runs on the public
:class:`~repro.state.tracker.BudgetBackend` with a
``policy="freeze"`` :class:`~repro.state.budget.WriteBudget` — exactly
the "algorithm with at most ``B`` state changes" the theorem
quantifies over.  The strawman still *spreads* its budget by sampling
at rate ``B / m`` (spending it on the stream prefix would miss late
blocks), but the cap itself is enforced by the accounting substrate,
so ``mean_state_changes <= budget`` holds structurally and
``budgeted_factory`` can wrap any sketch constructor into a
lower-bound contestant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.lower_bounds import SampledDistinguisher, run_distinguishing_game
from repro.state.algorithm import StreamAlgorithm
from repro.state.budget import WriteBudget
from repro.state.tracker import BudgetBackend


def budgeted_factory(
    factory: Callable[..., StreamAlgorithm],
    budget: int,
    policy: str = "freeze",
) -> Callable[..., StreamAlgorithm]:
    """Wrap a sketch factory so every instance runs under an enforced
    write budget.

    ``factory`` must accept a ``tracker=`` keyword (every sketch in
    the library does); the returned callable forwards its arguments
    and injects a fresh :class:`BudgetBackend` per instance, so each
    game run gets its own cap.
    """
    def build(*args, **kwargs) -> StreamAlgorithm:
        kwargs["tracker"] = BudgetBackend(WriteBudget(budget, policy))
        return factory(*args, **kwargs)

    return build


@dataclass(frozen=True)
class BudgetPoint:
    """One budget setting's game outcome."""

    budget_factor: float
    budget: int
    accuracy: float
    advantage: float
    mean_state_changes: float


def budget_advantage_curve(
    n: int = 4096,
    p: float = 2.0,
    budget_factors: tuple[float, ...] = (0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
    trials: int = 20,
    seed: int = 0,
) -> list[BudgetPoint]:
    """Sweep ``B = c * n^{1-1/p}`` and measure distinguishing power.

    Each strawman instance runs on a frozen-at-``B`` budget backend,
    so the reported ``mean_state_changes`` is a *certified* spend —
    the substrate denied everything past the cap.
    """
    points = []
    base = n ** (1.0 - 1.0 / p)
    for factor in budget_factors:
        budget = max(1, int(round(factor * base)))
        factory = budgeted_factory(SampledDistinguisher, budget)
        result = run_distinguishing_game(
            algorithm_factory=lambda s, b=budget, make=factory: make(
                b, n, rng=random.Random(s)
            ),
            decide=lambda algo: algo.guesses_s1(),
            n=n,
            p=p,
            trials=trials,
            seed=seed,
        )
        mean_changes = 0.5 * (
            result.mean_state_changes_s1 + result.mean_state_changes_s2
        )
        assert mean_changes <= budget, (
            f"budget backend failed to enforce {budget}: {mean_changes}"
        )
        points.append(
            BudgetPoint(
                budget_factor=factor,
                budget=budget,
                accuracy=result.accuracy,
                advantage=result.advantage,
                mean_state_changes=mean_changes,
            )
        )
    return points


def format_budget_curve(points: list[BudgetPoint], n: int, p: float) -> str:
    base = n ** (1.0 - 1.0 / p)
    lines = [
        f"E7 lower-bound game: n={n}, p={p}, threshold n^(1-1/p)={base:.0f}",
        "(state changes hard-capped by BudgetBackend, policy=freeze)",
        f"{'budget/n^(1-1/p)':>18}{'budget':>9}{'accuracy':>10}"
        f"{'advantage':>11}{'state chg':>11}",
    ]
    for point in points:
        lines.append(
            f"{point.budget_factor:>18.3f}{point.budget:>9}"
            f"{point.accuracy:>10.3f}{point.advantage:>11.3f}"
            f"{point.mean_state_changes:>11.1f}"
        )
    return "\n".join(lines)
