"""Experiment harness: one module per experiment family (see DESIGN.md
Section 4 for the experiment index T1, E1-E8, A1-A3)."""

from repro.experiments.ablation import (
    counter_ablation,
    eviction_ablation,
    format_counter_ablation,
    format_eviction_ablation,
    format_nvm_wear,
    nvm_wear_comparison,
)
from repro.experiments.accuracy import (
    entropy_accuracy,
    format_morris_tradeoff,
    fp_accuracy,
    heavy_hitter_accuracy,
    morris_tradeoff,
    pstable_accuracy,
)
from repro.experiments.lower_bound import (
    budget_advantage_curve,
    format_budget_curve,
)
from repro.experiments.scaling import (
    fp_scaling,
    heavy_hitter_scaling,
    loglog_slope,
    state_change_scaling,
)
from repro.experiments.sharding import (
    format_shard_scaling,
    is_scorable,
    shard_scaling,
)
from repro.experiments.table1 import format_table1, run_table1

__all__ = [
    "budget_advantage_curve",
    "counter_ablation",
    "entropy_accuracy",
    "eviction_ablation",
    "format_budget_curve",
    "format_counter_ablation",
    "format_eviction_ablation",
    "format_morris_tradeoff",
    "format_nvm_wear",
    "format_shard_scaling",
    "is_scorable",
    "format_table1",
    "fp_accuracy",
    "fp_scaling",
    "heavy_hitter_accuracy",
    "heavy_hitter_scaling",
    "loglog_slope",
    "morris_tradeoff",
    "nvm_wear_comparison",
    "pstable_accuracy",
    "run_table1",
    "shard_scaling",
    "state_change_scaling",
]
