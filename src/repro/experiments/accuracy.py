"""Experiments E2/E3/E5/E6/E8: accuracy trials for every theorem.

Each theorem promises an approximation guarantee with probability at
least 2/3; the trials here replay the estimator over independent seeds
and report the empirical success rate together with the error
distribution, which is the measurable counterpart of the guarantee.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass

from repro.core import FpEstimator, HeavyHitters, MorrisCounter
from repro.core.entropy import EntropyEstimator
from repro.core.fp_pstable import PStableFpEstimator
from repro.state import StateTracker
from repro.streams import FrequencyVector, planted_heavy_hitter_stream, zipf_stream


@dataclass(frozen=True)
class TrialStats:
    """Success rate and error spread over repeated runs."""

    label: str
    trials: int
    successes: int
    median_rel_error: float
    max_rel_error: float
    mean_state_changes: float

    @property
    def success_rate(self) -> float:
        return self.successes / self.trials if self.trials else 0.0

    def format(self) -> str:
        return (
            f"{self.label:<40} success {self.successes}/{self.trials} "
            f"({self.success_rate:.2f}); rel err median "
            f"{self.median_rel_error:.3f} max {self.max_rel_error:.3f}; "
            f"state changes ~{self.mean_state_changes:.0f}"
        )


def _stats(label, errors, successes, state_changes) -> TrialStats:
    return TrialStats(
        label=label,
        trials=len(errors),
        successes=successes,
        median_rel_error=float(statistics.median(errors)),
        max_rel_error=float(max(errors)),
        mean_state_changes=float(statistics.mean(state_changes)),
    )


def heavy_hitter_accuracy(
    n: int = 1024,
    m: int = 16384,
    p: float = 2.0,
    epsilon: float = 0.5,
    trials: int = 10,
    seed: int = 0,
) -> TrialStats:
    """E2: does ``||fhat - f||_inf <= (eps/2) ||f||_p`` hold (Thm 1.1)?

    The error is evaluated on the heavy-hitter support (items the
    theorem's guarantee is about: everything above ``(eps/4)||f||_p``);
    light items are estimated 0 by design and contribute at most their
    own (sub-threshold) frequency.
    """
    errors, state_changes = [], []
    successes = 0
    for t in range(trials):
        heavy_fraction = 0.25 + 0.05 * (t % 3)
        heavy = {7: int(heavy_fraction * m), 11: int(0.1 * m)}
        stream = planted_heavy_hitter_stream(n, m, heavy, seed=seed + t)
        f = FrequencyVector.from_stream(stream)
        threshold = 0.5 * epsilon * f.lp_norm(p)

        algo = HeavyHitters(
            n=n, m=m, p=p, epsilon=epsilon, seed=seed + 100 + t,
            # Finer Morris counters (a ~ 0.016) keep the per-item noise
            # well inside the (eps/2)||f||_p band at these scales.
            inner_kwargs={
                "repetitions": 1,
                "counter_epsilon": 0.2,
                "counter_delta": 0.2,
            },
        )
        algo.process_stream(stream)
        estimates = algo.estimates()

        watched = {
            item
            for item, count in f.items()
            if count >= 0.25 * epsilon * f.lp_norm(p)
        }
        err = max(
            abs(f[item] - estimates.get(item, 0.0)) for item in watched
        )
        errors.append(err / f.lp_norm(p))
        successes += err <= threshold
        state_changes.append(algo.state_changes)
    return _stats(
        f"E2 heavy hitters p={p} eps={epsilon}", errors, successes, state_changes
    )


def fp_accuracy(
    n: int = 1024,
    m: int = 8192,
    p: float = 2.0,
    epsilon_target: float = 0.5,
    trials: int = 10,
    backend: str = "sample-hold",
    seed: int = 0,
) -> TrialStats:
    """E3: is ``|Fp_hat - Fp| <= eps * Fp`` (Thm 1.3)?"""
    errors, state_changes = [], []
    successes = 0
    for t in range(trials):
        stream = zipf_stream(n, m, skew=1.3, seed=seed + t)
        truth = FrequencyVector.from_stream(stream).fp_moment(p)
        algo = FpEstimator(
            n=n,
            m=m,
            p=p,
            epsilon=epsilon_target,
            backend=backend,
            seed=seed + 100 + t,
            inner_kwargs={"repetitions": 1} if backend == "sample-hold" else None,
        )
        algo.process_stream(stream)
        rel = abs(algo.fp_estimate() - truth) / truth
        errors.append(rel)
        successes += rel <= epsilon_target
        state_changes.append(algo.state_changes)
    return _stats(
        f"E3 Fp p={p} backend={backend}", errors, successes, state_changes
    )


def pstable_accuracy(
    n: int = 512,
    m: int = 8192,
    p: float = 0.5,
    epsilon_target: float = 0.3,
    num_rows: int = 150,
    trials: int = 10,
    seed: int = 0,
) -> TrialStats:
    """E5: p < 1 moment accuracy of the p-stable Morris sketch (Thm 3.2)."""
    errors, state_changes = [], []
    successes = 0
    for t in range(trials):
        stream = zipf_stream(n, m, skew=1.2, seed=seed + t)
        truth = FrequencyVector.from_stream(stream).fp_moment(p)
        algo = PStableFpEstimator(p=p, num_rows=num_rows, seed=seed + 100 + t)
        algo.process_stream(stream)
        rel = abs(algo.fp_estimate() - truth) / truth
        errors.append(rel)
        successes += rel <= epsilon_target
        state_changes.append(algo.state_changes)
    return _stats(f"E5 p-stable Fp p={p}", errors, successes, state_changes)


def entropy_accuracy(
    n: int = 256,
    m: int = 6000,
    skew: float = 1.5,
    additive_target: float = 1.0,
    num_rows: int = 200,
    trials: int = 8,
    backend: str = "pstable",
    seed: int = 0,
) -> TrialStats:
    """E6: additive entropy error of the HNO08 estimator (Thm 3.8).

    Errors here are *absolute* (bits), reported in the rel-error fields.
    """
    errors, state_changes = [], []
    successes = 0
    for t in range(trials):
        stream = zipf_stream(n, m, skew=skew, seed=seed + t)
        truth = FrequencyVector.from_stream(stream).shannon_entropy()
        algo = EntropyEstimator(
            m=m,
            k=2,
            node_width=0.4,
            num_rows=num_rows,
            morris_a=0.008,
            backend=backend,
            seed=seed + 100 + t,
        )
        algo.process_stream(stream)
        err = abs(algo.entropy_estimate() - truth)
        errors.append(err)
        successes += err <= additive_target
        state_changes.append(algo.state_changes)
    return _stats(
        f"E6 entropy backend={backend} (abs bits)", errors, successes, state_changes
    )


@dataclass(frozen=True)
class MorrisTradeoffRow:
    """One point of the Morris accuracy/write trade-off curve (E8)."""

    a: float
    count: int
    mean_rel_error: float
    mean_state_changes: float


def morris_tradeoff(
    count: int = 100_000,
    a_values: tuple[float, ...] = (0.5, 0.125, 0.03, 0.008),
    trials: int = 10,
    seed: int = 0,
) -> list[MorrisTradeoffRow]:
    """E8: Theorem 1.5's trade-off — state changes vs accuracy."""
    rows = []
    for a in a_values:
        rels, changes = [], []
        for t in range(trials):
            tracker = StateTracker()
            counter = MorrisCounter(tracker, a=a, rng=random.Random(seed + t))
            for _ in range(count):
                counter.add()
                tracker.tick()
            rels.append(abs(counter.estimate - count) / count)
            changes.append(tracker.state_changes)
        rows.append(
            MorrisTradeoffRow(
                a=a,
                count=count,
                mean_rel_error=float(statistics.mean(rels)),
                mean_state_changes=float(statistics.mean(changes)),
            )
        )
    return rows


def format_morris_tradeoff(rows: list[MorrisTradeoffRow]) -> str:
    lines = [
        f"E8 Morris counter trade-off (count to {rows[0].count}):",
        f"{'a':>10}{'mean rel err':>14}{'state changes':>16}",
    ]
    for row in rows:
        lines.append(
            f"{row.a:>10.4f}{row.mean_rel_error:>14.4f}"
            f"{row.mean_state_changes:>16.1f}"
        )
    return "\n".join(lines)
