"""Extension experiments A4 (Morris-celled sketches) and E10 (KMV F0).

A4 — can classical sketches be made write-frugal by swapping exact
cells for Morris counters?  Partially: once a cell has aggregated
enough colliding mass its Morris level stops moving, so writes drop —
dramatically on skewed streams (hot cells saturate immediately) and
only mildly on near-uniform ones (cold cells keep mutating until their
aggregate load warms up).  The hybrid's saving is thus load- and
skew-dependent, whereas the paper's sample-and-hold design is
sublinear regardless, with per-item (not per-cell) estimates.

E10 — distinct elements: the KMV sketch's state changes grow like
``k log F0`` (record-breaking events), independent of the stream
length, while its ``F0`` estimate stays within ``~1/sqrt(k)``.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.baselines import CountMin, CountMinMorris
from repro.core import FullSampleAndHold
from repro.core.distinct import KMVDistinctElements
from repro.streams import uniform_stream, zipf_stream


# ----------------------------------------------------------------------
# A4: Morris-celled CountMin vs exact CountMin vs sample-and-hold
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SketchHybridRow:
    algorithm: str
    workload: str
    state_changes: int
    change_fraction: float


def sketch_hybrid_comparison(
    n_skewed: int = 64,
    n_uniform: int = 50_000,
    m: int = 50_000,
    seed: int = 0,
) -> list[SketchHybridRow]:
    """A4: state changes of three designs on skewed vs uniform streams."""
    workloads = {
        "skewed (Zipf 2.0)": zipf_stream(n_skewed, m, skew=2.0, seed=seed),
        "uniform": uniform_stream(n_uniform, m, seed=seed),
    }
    rows = []
    for workload_name, stream in workloads.items():
        n = n_skewed if "skew" in workload_name else n_uniform
        contenders = [
            ("CountMin (exact cells)", CountMin(width=1024, depth=2, seed=seed)),
            (
                "CountMin (Morris cells)",
                CountMinMorris(width=1024, depth=2, a=0.25, seed=seed),
            ),
            (
                "FullSampleAndHold",
                FullSampleAndHold(
                    n=n, m=m, p=2, epsilon=1.0, seed=seed, repetitions=1
                ),
            ),
        ]
        for name, algo in contenders:
            algo.process_stream(stream)
            rows.append(
                SketchHybridRow(
                    algorithm=name,
                    workload=workload_name,
                    state_changes=algo.state_changes,
                    change_fraction=algo.state_changes / m,
                )
            )
    return rows


def format_sketch_hybrid(rows: list[SketchHybridRow]) -> str:
    lines = [
        "A4 sketch-hybrid ablation (Morris cells inside CountMin):",
        f"{'algorithm':<26}{'workload':<20}{'state changes':>14}"
        f"{'frac/update':>13}",
    ]
    for row in rows:
        lines.append(
            f"{row.algorithm:<26}{row.workload:<20}"
            f"{row.state_changes:>14}{row.change_fraction:>13.4f}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# E10: KMV distinct elements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KMVResult:
    k: int
    trials: int
    median_rel_error: float
    mean_state_changes_by_m: dict[int, float]


def kmv_experiment(
    n: int = 30_000,
    ms: tuple[int, ...] = (20_000, 80_000),
    k: int = 256,
    trials: int = 5,
    seed: int = 0,
) -> KMVResult:
    """E10: F0 accuracy plus state-change growth in ``m``."""
    errors = []
    changes: dict[int, list[int]] = {m: [] for m in ms}
    for t in range(trials):
        for m in ms:
            stream = uniform_stream(n, m, seed=seed + 31 * t)
            algo = KMVDistinctElements(k=k, seed=seed + 97 * t)
            algo.process_stream(stream)
            changes[m].append(algo.state_changes)
            if m == max(ms):
                truth = len(set(stream))
                errors.append(abs(algo.f0_estimate() - truth) / truth)
    return KMVResult(
        k=k,
        trials=trials,
        median_rel_error=float(statistics.median(errors)),
        mean_state_changes_by_m={
            m: float(statistics.mean(values)) for m, values in changes.items()
        },
    )


def format_kmv(result: KMVResult) -> str:
    lines = [
        f"E10 KMV distinct elements (k={result.k}, {result.trials} trials):",
        f"  median rel error: {result.median_rel_error:.3f}",
    ]
    for m, mean_changes in sorted(result.mean_state_changes_by_m.items()):
        lines.append(
            f"  m={m:>7}: mean state changes {mean_changes:.1f} "
            f"({mean_changes / m:.4f}/update)"
        )
    return "\n".join(lines)
