"""Experiments E1/E4: state-change scaling exponents vs theory.

Theorems 1.1 and 1.3 predict ``Õ(n^{1-1/p})`` state changes.  These
experiments sweep the universe size ``n`` (with ``m`` proportional),
measure the state changes of the heavy-hitter / moment estimators, and
fit the log-log slope; the theory predicts a slope of ``1 - 1/p`` up to
logarithmic wiggle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core import FpEstimator, FullSampleAndHold
from repro.state.algorithm import StreamAlgorithm
from repro.streams import zipf_stream


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a slope")
    log_x = [math.log(x) for x in xs]
    log_y = [math.log(max(1e-12, y)) for y in ys]
    mean_x = sum(log_x) / len(log_x)
    mean_y = sum(log_y) / len(log_y)
    covariance = sum(
        (lx - mean_x) * (ly - mean_y) for lx, ly in zip(log_x, log_y)
    )
    variance = sum((lx - mean_x) ** 2 for lx in log_x)
    return covariance / variance


@dataclass(frozen=True)
class ScalingResult:
    """State-change counts over an ``n`` sweep plus the fitted slope."""

    p: float
    ns: tuple[int, ...]
    state_changes: tuple[int, ...]
    fitted_slope: float
    theory_slope: float

    def format(self, label: str) -> str:
        lines = [
            f"{label}: state changes vs n (p={self.p})",
            f"{'n':>10}{'state changes':>16}",
        ]
        for n, changes in zip(self.ns, self.state_changes):
            lines.append(f"{n:>10}{changes:>16}")
        lines.append(
            f"fitted log-log slope = {self.fitted_slope:.3f} "
            f"(theory: 1 - 1/p = {self.theory_slope:.3f})"
        )
        return "\n".join(lines)


def state_change_scaling(
    algorithm_factory: Callable[[int, int, int], StreamAlgorithm],
    p: float,
    ns: Sequence[int],
    m_factor: int = 4,
    skew: float = 1.05,
    seed: int = 0,
) -> ScalingResult:
    """Sweep ``n`` and fit the state-change growth exponent.

    ``algorithm_factory(n, m, seed)`` builds the algorithm under test.
    """
    changes = []
    for i, n in enumerate(ns):
        m = m_factor * n
        stream = zipf_stream(n, m, skew=skew, seed=seed + i)
        algo = algorithm_factory(n, m, seed + i)
        algo.process_stream(stream)
        changes.append(algo.state_changes)
    return ScalingResult(
        p=p,
        ns=tuple(ns),
        state_changes=tuple(changes),
        fitted_slope=loglog_slope(ns, changes),
        theory_slope=1.0 - 1.0 / p,
    )


def heavy_hitter_scaling(
    p: float,
    ns: Sequence[int] = (2**10, 2**12, 2**14, 2**16),
    epsilon: float = 1.0,
    seed: int = 0,
) -> ScalingResult:
    """E1: FullSampleAndHold state changes vs ``n``."""
    return state_change_scaling(
        lambda n, m, s: FullSampleAndHold(
            n=n, m=m, p=p, epsilon=epsilon, seed=s, repetitions=1
        ),
        p=p,
        ns=ns,
        seed=seed,
    )


def fp_scaling(
    p: float,
    ns: Sequence[int] = (2**10, 2**12, 2**14),
    epsilon: float = 1.0,
    seed: int = 0,
) -> ScalingResult:
    """E4: FpEstimator state changes vs ``n``."""
    return state_change_scaling(
        lambda n, m, s: FpEstimator(
            n=n,
            m=m,
            p=p,
            epsilon=epsilon,
            seed=s,
            repetitions=1,
            inner_kwargs={"repetitions": 1},
        ),
        p=p,
        ns=ns,
        seed=seed,
    )
