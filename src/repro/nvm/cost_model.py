"""Asymmetric read/write cost models for non-volatile memory.

The paper's motivation (Section 1.1): NVM reads are cheap, writes are
expensive — higher energy, higher latency, and bounded endurance
([BFG+15, MSCT14, BT11]).  :class:`NVMCostModel` turns a
:class:`~repro.state.report.StateChangeReport` into energy/latency
totals so that the state-change audit of an algorithm can be priced on
a concrete technology.  The presets use order-of-magnitude constants
from the literature the paper cites; they are meant for *relative*
comparisons between algorithms, not absolute device predictions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.state.report import StateChangeReport


@dataclass(frozen=True)
class NVMCostModel:
    """Per-operation costs of one memory technology.

    Attributes
    ----------
    name:
        Technology label.
    read_energy_nj / write_energy_nj:
        Energy per word read/write, nanojoules.
    read_latency_ns / write_latency_ns:
        Latency per word read/write, nanoseconds.
    endurance:
        Writes a cell tolerates before wearing out.
    """

    name: str
    read_energy_nj: float
    write_energy_nj: float
    read_latency_ns: float
    write_latency_ns: float
    endurance: float

    def __post_init__(self) -> None:
        for field_name in (
            "read_energy_nj",
            "write_energy_nj",
            "read_latency_ns",
            "write_latency_ns",
            "endurance",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    @property
    def write_read_energy_ratio(self) -> float:
        """How many reads one write costs (the asymmetry factor)."""
        return self.write_energy_nj / self.read_energy_nj

    def energy_nj(
        self, report: StateChangeReport, reads_per_update: float = 2.0
    ) -> float:
        """Total energy of a run: reads on every update, plus writes.

        ``reads_per_update`` models the lookups an algorithm performs
        per stream update (hash probes, reservoir scans); the write
        side comes from the audited mutation count.
        """
        read_cost = report.stream_length * reads_per_update * self.read_energy_nj
        write_cost = report.total_writes * self.write_energy_nj
        return read_cost + write_cost

    def latency_ns(
        self, report: StateChangeReport, reads_per_update: float = 2.0
    ) -> float:
        """Total memory latency of a run (reads + writes, serialized)."""
        read_cost = report.stream_length * reads_per_update * self.read_latency_ns
        write_cost = report.total_writes * self.write_latency_ns
        return read_cost + write_cost


#: Phase-change memory: ~10-50x write/read energy asymmetry, endurance
#: ~10^8 ([LIMB09, QGR11] via the paper's Section 1.1).
PCM = NVMCostModel(
    name="PCM",
    read_energy_nj=1.0,
    write_energy_nj=30.0,
    read_latency_ns=50.0,
    write_latency_ns=500.0,
    endurance=1e8,
)

#: NAND flash: block writes are very expensive; cell endurance
#: 10^4 - 10^6 ([BT11]).
NAND_FLASH = NVMCostModel(
    name="NAND",
    read_energy_nj=2.0,
    write_energy_nj=200.0,
    read_latency_ns=25_000.0,
    write_latency_ns=200_000.0,
    endurance=1e5,
)

#: DRAM control: symmetric costs, effectively unbounded endurance.
DRAM = NVMCostModel(
    name="DRAM",
    read_energy_nj=1.0,
    write_energy_nj=1.0,
    read_latency_ns=10.0,
    write_latency_ns=10.0,
    endurance=1e16,
)
