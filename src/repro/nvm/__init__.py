"""NVM wear simulation: the paper's Section 1.1 motivation, made
measurable (experiment A3)."""

from repro.nvm.cost_model import DRAM, NAND_FLASH, PCM, NVMCostModel
from repro.nvm.device import (
    NVM_PRESETS,
    NVMDevice,
    NVMRunReport,
    price_run,
    resolve_nvm,
)

__all__ = [
    "DRAM",
    "NAND_FLASH",
    "NVM_PRESETS",
    "NVMCostModel",
    "NVMDevice",
    "NVMRunReport",
    "PCM",
    "price_run",
    "resolve_nvm",
]
