"""NVM wear simulation: the paper's Section 1.1 motivation, made
measurable (experiment A3)."""

from repro.nvm.cost_model import DRAM, NAND_FLASH, PCM, NVMCostModel
from repro.nvm.device import NVMDevice

__all__ = ["DRAM", "NAND_FLASH", "PCM", "NVMCostModel", "NVMDevice"]
