"""Cell-level NVM device simulator driven by real write traces.

An :class:`NVMDevice` subscribes to a
:class:`~repro.state.tracker.StateTracker`'s write trace (the listener
interface), maps each *logical* cell the algorithm writes to a
*physical* cell, and accumulates per-cell wear.  Three placement
policies reproduce the wear-leveling spectrum the paper's Section 1.1
surveys ([Cha07, CHK07, EGMP14]):

* ``"none"`` — direct mapping: each logical cell gets a fixed physical
  cell; hot counters burn through their cell's endurance first.
* ``"round-robin"`` — an ideal remapping layer cycles writes across all
  physical cells, equalizing wear (the garbage-collector behaviour the
  paper describes as standard, making *total* writes the right
  objective).
* ``"random"`` — randomized remapping; near-equal wear in expectation.

Device lifetime is reported as the number of identical workloads the
device survives before its first cell exceeds endurance.
"""

from __future__ import annotations

import random

from repro.nvm.cost_model import NVMCostModel
from repro.state.tracker import StateTracker

_POLICIES = ("none", "round-robin", "random")


class NVMDevice:
    """A simulated NVM cell array with pluggable wear leveling.

    Parameters
    ----------
    num_cells:
        Physical cells available.
    cost_model:
        Technology (supplies the endurance limit).
    wear_leveling:
        One of ``"none"``, ``"round-robin"``, ``"random"``.
    count_silent_writes:
        When True, writes that store an unchanged value still wear the
        cell (a controller without read-before-write optimization).
    """

    def __init__(
        self,
        num_cells: int,
        cost_model: NVMCostModel,
        wear_leveling: str = "none",
        count_silent_writes: bool = False,
        seed: int | None = None,
    ) -> None:
        if num_cells < 1:
            raise ValueError(f"need at least one cell: {num_cells}")
        if wear_leveling not in _POLICIES:
            raise ValueError(
                f"wear_leveling must be one of {_POLICIES}: {wear_leveling!r}"
            )
        self.num_cells = num_cells
        self.cost_model = cost_model
        self.wear_leveling = wear_leveling
        self.count_silent_writes = count_silent_writes
        self._rng = random.Random(seed)
        self._wear = [0] * num_cells
        self._mapping: dict[str, int] = {}
        self._next_physical = 0
        self._total_writes = 0

    # ------------------------------------------------------------------
    # Write trace consumption
    # ------------------------------------------------------------------
    def attach(self, tracker: StateTracker) -> None:
        """Subscribe to a tracker's write trace."""
        tracker.add_listener(self.on_write)

    def on_write(self, timestep: int, cell_id: str, mutated: bool) -> None:
        """Tracker listener: wear one physical cell per write."""
        if not mutated and not self.count_silent_writes:
            return
        physical = self._place(cell_id)
        self._wear[physical] += 1
        self._total_writes += 1

    def _place(self, cell_id: str) -> int:
        if self.wear_leveling == "round-robin":
            physical = self._next_physical
            self._next_physical = (self._next_physical + 1) % self.num_cells
            return physical
        if self.wear_leveling == "random":
            return self._rng.randrange(self.num_cells)
        # Direct mapping: first-touch allocation, stable thereafter.
        physical = self._mapping.get(cell_id)
        if physical is None:
            physical = self._next_physical % self.num_cells
            self._next_physical += 1
            self._mapping[cell_id] = physical
        return physical

    # ------------------------------------------------------------------
    # Wear metrics
    # ------------------------------------------------------------------
    @property
    def total_writes(self) -> int:
        """Writes absorbed by the device so far."""
        return self._total_writes

    @property
    def max_wear(self) -> int:
        """Wear of the most-written physical cell."""
        return max(self._wear)

    @property
    def mean_wear(self) -> float:
        """Average per-cell wear."""
        return self._total_writes / self.num_cells

    @property
    def wear_imbalance(self) -> float:
        """``max_wear / mean_wear`` (1.0 = perfectly leveled)."""
        mean = self.mean_wear
        return self.max_wear / mean if mean > 0 else 0.0

    @property
    def is_worn_out(self) -> bool:
        """Whether any cell has exceeded its endurance."""
        return self.max_wear > self.cost_model.endurance

    def lifetime_workloads(self) -> float:
        """How many repeats of the observed workload the device
        survives before the hottest cell exceeds endurance."""
        if self.max_wear == 0:
            return float("inf")
        return self.cost_model.endurance / self.max_wear
