"""Cell-level NVM device simulator driven by real write traces.

An :class:`NVMDevice` subscribes to a
:class:`~repro.state.tracker.StateTracker`'s write trace (the listener
interface), maps each *logical* cell the algorithm writes to a
*physical* cell, and accumulates per-cell wear.  Three placement
policies reproduce the wear-leveling spectrum the paper's Section 1.1
surveys ([Cha07, CHK07, EGMP14]):

* ``"none"`` — direct mapping: each logical cell gets a fixed physical
  cell; hot counters burn through their cell's endurance first.
* ``"round-robin"`` — an ideal remapping layer cycles writes across all
  physical cells, equalizing wear (the garbage-collector behaviour the
  paper describes as standard, making *total* writes the right
  objective).
* ``"random"`` — randomized remapping; near-equal wear in expectation.

Device lifetime is reported as the number of identical workloads the
device survives before its first cell exceeds endurance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.nvm.cost_model import DRAM, NAND_FLASH, PCM, NVMCostModel
from repro.state.report import StateChangeReport
from repro.state.tracker import StateTracker

_POLICIES = ("none", "round-robin", "random")

#: Named technology presets accepted wherever an ``nvm=`` knob exists
#: (the :class:`~repro.api.Engine`, the CLI).
NVM_PRESETS: dict[str, NVMCostModel] = {
    "pcm": PCM,
    "nand": NAND_FLASH,
    "dram": DRAM,
}


def resolve_nvm(model: str | NVMCostModel) -> NVMCostModel:
    """Accept a preset name (``"pcm"``/``"nand"``/``"dram"``) or a
    fully-specified :class:`NVMCostModel`."""
    if isinstance(model, NVMCostModel):
        return model
    try:
        return NVM_PRESETS[model.lower()]
    except (KeyError, AttributeError):
        raise ValueError(
            f"unknown NVM preset {model!r}; choose from "
            f"{sorted(NVM_PRESETS)} or pass an NVMCostModel"
        ) from None


class NVMDevice:
    """A simulated NVM cell array with pluggable wear leveling.

    Parameters
    ----------
    num_cells:
        Physical cells available.
    cost_model:
        Technology (supplies the endurance limit).
    wear_leveling:
        One of ``"none"``, ``"round-robin"``, ``"random"``.
    count_silent_writes:
        When True, writes that store an unchanged value still wear the
        cell (a controller without read-before-write optimization).
    """

    def __init__(
        self,
        num_cells: int,
        cost_model: NVMCostModel,
        wear_leveling: str = "none",
        count_silent_writes: bool = False,
        seed: int | None = None,
    ) -> None:
        if num_cells < 1:
            raise ValueError(f"need at least one cell: {num_cells}")
        if wear_leveling not in _POLICIES:
            raise ValueError(
                f"wear_leveling must be one of {_POLICIES}: {wear_leveling!r}"
            )
        self.num_cells = num_cells
        self.cost_model = cost_model
        self.wear_leveling = wear_leveling
        self.count_silent_writes = count_silent_writes
        self._rng = random.Random(seed)
        self._wear = [0] * num_cells
        self._mapping: dict[str, int] = {}
        self._next_physical = 0
        self._total_writes = 0

    # ------------------------------------------------------------------
    # Write trace consumption
    # ------------------------------------------------------------------
    def attach(self, tracker: StateTracker) -> None:
        """Subscribe to a tracker's write trace.

        Only the trace backend exposes a write trace; attaching to an
        aggregate or budget backend is rejected with guidance.
        """
        add_listener = getattr(tracker, "add_listener", None)
        if add_listener is None:
            raise TypeError(
                f"{type(tracker).__name__} has no write trace to "
                f"observe; run the sketch on a TraceBackend "
                f"(tracking='trace') to drive an NVM device"
            )
        add_listener(self.on_write)

    def on_write(self, timestep: int, cell_id: str, mutated: bool) -> None:
        """Tracker listener: wear one physical cell per write."""
        if not mutated and not self.count_silent_writes:
            return
        physical = self._place(cell_id)
        self._wear[physical] += 1
        self._total_writes += 1

    def _place(self, cell_id: str) -> int:
        if self.wear_leveling == "round-robin":
            physical = self._next_physical
            self._next_physical = (self._next_physical + 1) % self.num_cells
            return physical
        if self.wear_leveling == "random":
            return self._rng.randrange(self.num_cells)
        # Direct mapping: first-touch allocation, stable thereafter.
        physical = self._mapping.get(cell_id)
        if physical is None:
            physical = self._next_physical % self.num_cells
            self._next_physical += 1
            self._mapping[cell_id] = physical
        return physical

    # ------------------------------------------------------------------
    # Wear metrics
    # ------------------------------------------------------------------
    @property
    def total_writes(self) -> int:
        """Writes absorbed by the device so far."""
        return self._total_writes

    @property
    def max_wear(self) -> int:
        """Wear of the most-written physical cell."""
        return max(self._wear)

    @property
    def mean_wear(self) -> float:
        """Average per-cell wear."""
        return self._total_writes / self.num_cells

    @property
    def wear_imbalance(self) -> float:
        """``max_wear / mean_wear`` (1.0 = perfectly leveled)."""
        mean = self.mean_wear
        return self.max_wear / mean if mean > 0 else 0.0

    @property
    def is_worn_out(self) -> bool:
        """Whether any cell has exceeded its endurance."""
        return self.max_wear > self.cost_model.endurance

    def lifetime_workloads(self) -> float:
        """How many repeats of the observed workload the device
        survives before the hottest cell exceeds endurance."""
        if self.max_wear == 0:
            return float("inf")
        return self.cost_model.endurance / self.max_wear


@dataclass(frozen=True)
class NVMRunReport:
    """One run priced on one memory technology.

    Produced by :func:`price_run` and surfaced in
    :class:`~repro.api.RunReport` when the Engine runs with
    ``nvm=...``: the energy/latency totals come from the state-change
    audit through the :class:`NVMCostModel`, the wear figures from the
    cell-level :class:`NVMDevice` that observed the write trace.
    """

    model: str
    energy_nj: float
    latency_ns: float
    device_writes: int
    max_wear: int
    wear_imbalance: float
    lifetime_workloads: float

    def summary(self) -> str:
        """One-line human-readable pricing summary."""
        lifetime = (
            "inf"
            if self.lifetime_workloads == float("inf")
            else f"{self.lifetime_workloads:.3g}"
        )
        return (
            f"nvm={self.model} energy={self.energy_nj:.4g}nJ "
            f"latency={self.latency_ns:.4g}ns "
            f"max_wear={self.max_wear} "
            f"imbalance={self.wear_imbalance:.2f} "
            f"lifetime={lifetime} workloads"
        )


def price_run(
    model: NVMCostModel,
    report: StateChangeReport,
    device: NVMDevice,
    reads_per_update: float = 2.0,
) -> NVMRunReport:
    """Price an audited run on ``model`` using ``device``'s wear."""
    return NVMRunReport(
        model=model.name,
        energy_nj=model.energy_nj(report, reads_per_update),
        latency_ns=model.latency_ns(report, reads_per_update),
        device_writes=device.total_writes,
        max_wear=device.max_wear,
        wear_imbalance=device.wear_imbalance,
        lifetime_workloads=device.lifetime_workloads(),
    )
