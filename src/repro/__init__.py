"""repro — reproduction of *Streaming Algorithms with Few State Changes*
(Jayaram, Woodruff, Zhou; PODS 2024, arXiv:2406.06821).

The package provides the paper's state-change-frugal streaming
algorithms (heavy hitters, ``Fp`` moments, entropy), the classical
baselines they are compared against, an instrumented-memory substrate
that measures the number of internal state changes, adversarial
instances from the lower-bound proofs, and an NVM wear simulator for
the motivating hardware model.

Quick start (the :class:`~repro.api.Engine` facade + typed queries)::

    from repro import Engine, zipf_stream
    from repro.query import HeavyHitters, Moment

    n, m = 1 << 14, 1 << 16
    engine = Engine("heavy-hitters", n=n, m=m, epsilon=0.5, seed=0)
    report = engine.run(
        zipf_stream(n, m, seed=0), queries=[HeavyHitters(), Moment()]
    )
    print(report.audit.summary())         # state-change audit
    print(report.answers)                 # typed (query, answer) pairs

Algorithm classes remain directly usable (``HeavyHitters(...)``,
``algo.process_stream(...)``, ``algo.query(...)``).  See DESIGN.md for
the full system inventory and EXPERIMENTS.md for the paper-vs-measured
record.
"""

from repro.api import Engine, RunReport
from repro.core import (
    ExactCounter,
    FpEstimator,
    FullSampleAndHold,
    HeavyHitters,
    MedianMorrisCounter,
    MorrisCounter,
    SampleAndHold,
    SampleAndHoldParams,
)
from repro.core.entropy import EntropyEstimator
from repro.core.fp_pstable import PStableFpEstimator
from repro.core.support_recovery import SparseSupportRecovery
# The query/answer vocabulary deliberately stays namespaced under
# `repro.query` (one of its names, `HeavyHitters`, would collide with
# the algorithm class exported here); only the collision-free
# capability enum and the typed error are re-exported.
from repro.query import QueryKind, UnsupportedQueryError
from repro.runtime import (
    Checkpoint,
    ShardedRunner,
    ShardedRunResult,
    ShardIngestError,
)
from repro.state import (
    AggregateBackend,
    BudgetBackend,
    BudgetReport,
    NotMergeableError,
    NotSerializableError,
    Sketch,
    StateChangeReport,
    StateTracker,
    StreamAlgorithm,
    TraceBackend,
    TrackerBackend,
    WriteBudget,
    WriteBudgetExceededError,
    make_tracker,
)
from repro.streams import (
    ChunkedStream,
    FrequencyVector,
    bursty_stream,
    lower_bound_pair,
    permutation_stream,
    phase_shift_stream,
    planted_heavy_hitter_stream,
    pseudo_heavy_counterexample,
    round_robin_stream,
    uniform_stream,
    zipf_stream,
)
from repro.workloads import Workload

__version__ = "1.0.0"

__all__ = [
    # NOTE: `HeavyHitters` is the algorithm class; the query types
    # (incl. the query of the same name) live in `repro.query`.
    "AggregateBackend",
    "BudgetBackend",
    "BudgetReport",
    "Checkpoint",
    "ChunkedStream",
    "Engine",
    "EntropyEstimator",
    "ExactCounter",
    "FpEstimator",
    "FrequencyVector",
    "FullSampleAndHold",
    "HeavyHitters",
    "MedianMorrisCounter",
    "MorrisCounter",
    "NotMergeableError",
    "NotSerializableError",
    "PStableFpEstimator",
    "QueryKind",
    "RunReport",
    "SampleAndHold",
    "SampleAndHoldParams",
    "ShardIngestError",
    "ShardedRunResult",
    "ShardedRunner",
    "Sketch",
    "SparseSupportRecovery",
    "StateChangeReport",
    "StateTracker",
    "StreamAlgorithm",
    "TraceBackend",
    "TrackerBackend",
    "UnsupportedQueryError",
    "Workload",
    "WriteBudget",
    "WriteBudgetExceededError",
    "bursty_stream",
    "make_tracker",
    "lower_bound_pair",
    "permutation_stream",
    "phase_shift_stream",
    "planted_heavy_hitter_stream",
    "pseudo_heavy_counterexample",
    "round_robin_stream",
    "uniform_stream",
    "zipf_stream",
]
