"""repro — reproduction of *Streaming Algorithms with Few State Changes*
(Jayaram, Woodruff, Zhou; PODS 2024, arXiv:2406.06821).

The package provides the paper's state-change-frugal streaming
algorithms (heavy hitters, ``Fp`` moments, entropy), the classical
baselines they are compared against, an instrumented-memory substrate
that measures the number of internal state changes, adversarial
instances from the lower-bound proofs, and an NVM wear simulator for
the motivating hardware model.

Quick start::

    from repro import HeavyHitters, zipf_stream

    n, m = 1 << 14, 1 << 16
    algo = HeavyHitters(n=n, m=m, p=2, epsilon=0.5, seed=0)
    algo.process_stream(zipf_stream(n, m, seed=0))
    print(algo.report().summary())        # state-change audit
    print(algo.heavy_hitters())           # the heavy-hitter list

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core import (
    ExactCounter,
    FpEstimator,
    FullSampleAndHold,
    HeavyHitters,
    MedianMorrisCounter,
    MorrisCounter,
    SampleAndHold,
    SampleAndHoldParams,
)
from repro.core.entropy import EntropyEstimator
from repro.core.fp_pstable import PStableFpEstimator
from repro.core.support_recovery import SparseSupportRecovery
from repro.runtime import Checkpoint, ShardedRunner, ShardedRunResult
from repro.state import (
    NotMergeableError,
    NotSerializableError,
    Sketch,
    StateChangeReport,
    StateTracker,
    StreamAlgorithm,
)
from repro.streams import (
    FrequencyVector,
    lower_bound_pair,
    permutation_stream,
    planted_heavy_hitter_stream,
    pseudo_heavy_counterexample,
    round_robin_stream,
    uniform_stream,
    zipf_stream,
)

__version__ = "1.0.0"

__all__ = [
    "Checkpoint",
    "EntropyEstimator",
    "ExactCounter",
    "FpEstimator",
    "FrequencyVector",
    "FullSampleAndHold",
    "HeavyHitters",
    "MedianMorrisCounter",
    "MorrisCounter",
    "NotMergeableError",
    "NotSerializableError",
    "PStableFpEstimator",
    "SampleAndHold",
    "SampleAndHoldParams",
    "ShardedRunResult",
    "ShardedRunner",
    "Sketch",
    "SparseSupportRecovery",
    "StateChangeReport",
    "StateTracker",
    "StreamAlgorithm",
    "lower_bound_pair",
    "permutation_stream",
    "planted_heavy_hitter_stream",
    "pseudo_heavy_counterexample",
    "round_robin_stream",
    "uniform_stream",
    "zipf_stream",
]
