"""The Theorem 1.2/1.4 distinguishing game, run empirically.

The lower-bound proofs reduce ``Fp`` approximation (and ``Lp``-heavy
hitters) to distinguishing the hard pair ``(S1, S2)``: ``S1`` hides a
block of ``~n^{1/p}`` copies of one item at a random position, ``S2``
is a permutation, and ``Fp(S1) / Fp(S2) -> 2``.  Any algorithm whose
state changes fewer than ``~n^{1-1/p}`` times is (with constant
probability) in the same state before and after the block, hence
cannot tell the streams apart.

This module makes the argument measurable:

* :class:`SampledDistinguisher` — a write-budgeted strawman that
  records ``B`` uniformly-sampled stream items and declares "S1" on
  seeing a duplicate.  Two samples collide only if both land in the
  hidden block, so its advantage rises from ~0 to ~1 precisely as the
  budget crosses ``n^{1-1/p}`` — the lower bound's knee, traced
  empirically (experiment E7).
* :func:`run_distinguishing_game` — runs any algorithm factory over a
  population of instances and reports accuracy plus the measured
  state-change audit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.state.algorithm import StreamAlgorithm
from repro.state.registers import TrackedDict
from repro.state.tracker import StateTracker
from repro.streams.adversarial import lower_bound_pair


class SampledDistinguisher(StreamAlgorithm):
    """Write-budgeted duplicate detector (the lower-bound strawman).

    Samples each update with probability ``budget / m`` and stores the
    sampled items; its only evidence for "S1" is a duplicate among
    samples.  State changes are ``~budget`` by construction, so its
    success probability as a function of ``budget / n^{1-1/p}`` traces
    the Theorem 1.4 threshold.
    """

    name = "SampledDistinguisher"

    def __init__(
        self,
        budget: int,
        m: int,
        rng: random.Random | None = None,
        seed: int | None = None,
        tracker: StateTracker | None = None,
    ) -> None:
        if budget < 1:
            raise ValueError(f"budget must be >= 1: {budget}")
        if m < 1:
            raise ValueError(f"stream length hint must be >= 1: {m}")
        super().__init__(tracker)
        self.budget = budget
        self.m = m
        self._rng = rng if rng is not None else random.Random(seed)
        self._probability = min(1.0, budget / m)
        self._samples: TrackedDict[int, int] = TrackedDict(self.tracker, "dup")
        self._duplicate_seen = False

    def _update(self, item: int) -> None:
        if self._rng.random() >= self._probability:
            return
        if item in self._samples:
            # Reads are free; the duplicate flag is one tracked write.
            # mark_dirty() may deny the write under an enforced budget
            # backend, in which case the flag must stay unset — the
            # strawman is only allowed evidence it paid for.
            if not self._duplicate_seen and self.tracker.mark_dirty():
                self._duplicate_seen = True
            return
        self._samples[item] = 1

    @property
    def saw_duplicate(self) -> bool:
        """Whether any sampled item repeated (evidence for ``S1``)."""
        return self._duplicate_seen

    def guesses_s1(self) -> bool:
        """The strawman's decision."""
        return self._duplicate_seen


@dataclass(frozen=True)
class GameResult:
    """Outcome of a distinguishing-game population run."""

    #: Fraction of instances classified correctly (0.5 = coin flip).
    accuracy: float
    #: Mean state changes on the ``S1`` runs.
    mean_state_changes_s1: float
    #: Mean state changes on the ``S2`` runs.
    mean_state_changes_s2: float
    #: Number of instances played.
    trials: int

    @property
    def advantage(self) -> float:
        """Distinguishing advantage ``2 * accuracy - 1``."""
        return 2.0 * self.accuracy - 1.0


def run_distinguishing_game(
    algorithm_factory: Callable[[int], StreamAlgorithm],
    decide: Callable[[StreamAlgorithm], bool],
    n: int,
    p: float,
    trials: int = 20,
    epsilon: float = 1.0,
    seed: int = 0,
) -> GameResult:
    """Play the Theorem 1.2/1.4 game over a population of hard pairs.

    Parameters
    ----------
    algorithm_factory:
        Builds a fresh algorithm given a per-run seed.
    decide:
        Reads the finished algorithm and returns True for "this was
        S1" (the block stream).
    n, p, epsilon:
        Hard-instance parameters (see
        :func:`~repro.streams.adversarial.lower_bound_pair`).
    trials:
        Instances played; each instance contributes one ``S1`` run and
        one ``S2`` run.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1: {trials}")
    correct = 0
    changes_s1 = 0
    changes_s2 = 0
    for t in range(trials):
        instance = lower_bound_pair(n, p, epsilon=epsilon, seed=seed + 7 * t)

        algo1 = algorithm_factory(seed + 1000 + t)
        algo1.process_stream(instance.s1)
        correct += decide(algo1) is True
        changes_s1 += algo1.state_changes

        algo2 = algorithm_factory(seed + 2000 + t)
        algo2.process_stream(instance.s2)
        correct += decide(algo2) is False
        changes_s2 += algo2.state_changes

    return GameResult(
        accuracy=correct / (2 * trials),
        mean_state_changes_s1=changes_s1 / trials,
        mean_state_changes_s2=changes_s2 / trials,
        trials=trials,
    )
