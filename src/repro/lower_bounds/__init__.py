"""Empirical counterpart of the paper's lower bounds (Section 4)."""

from repro.lower_bounds.distinguisher import (
    GameResult,
    SampledDistinguisher,
    run_distinguishing_game,
)

__all__ = [
    "GameResult",
    "SampledDistinguisher",
    "run_distinguishing_game",
]
