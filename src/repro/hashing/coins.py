"""Index-addressable coin streams: the v2 coin protocol's RNG layer.

The v1 protocol draws coins from a sequential ``random.Random``: coin
``t`` exists only after coins ``0..t-1`` were consumed, which forces
the randomized families through the scalar per-update loop — a chunk
kernel cannot replay draws out of order.  The v2 protocol replaces the
sequential generator with a *counter-based* RNG: every draw has an
index,
and the draw at index ``i`` is a pure function of ``(seed, label, i)``.

Concretely, a :class:`PhiloxCoins` stream is ``numpy.random.Philox``
keyed by ``(seed, blake2b(label))``.  Philox is a counter-mode block
cipher: output word ``i`` is obtained by pointing the 256-bit counter
at block ``i // 4`` and reading word ``i % 4`` — no sequential state,
so a vectorized kernel can fetch the exact coins positions
``[t0, t0 + n)`` would have consumed, in one call, and a scalar path
can re-derive any single coin on demand.  Both see bit-identical
values by construction, which is what the chunked ≡ scalar contract
of the v2 kernels rests on.

Uniforms use the standard 53-bit construction ``(word >> 11) * 2**-53``
(the same mapping ``numpy.random.Generator.random`` applies), so every
draw lies in ``[0, 1)``.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: 53-bit mantissa scaling: ``(word >> 11) * 2**-53`` is uniform on
#: [0, 1) with the full double precision resolution.
_SCALE = 2.0**-53

#: Words fetched ahead on a cache miss; sequential consumers (the
#: scalar v2 paths walk their indices in order) amortize one Philox
#: construction over this many draws.
_BLOCK = 256

_MASK64 = (1 << 64) - 1


def stream_key(seed: int, label: str) -> np.ndarray:
    """The 128-bit Philox key of stream ``label`` under ``seed``.

    Word 0 is the seed; word 1 hashes the label, so distinct labels
    under one seed (and one label under distinct seeds) yield
    independent streams.
    """
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest()
    return np.array(
        [
            np.uint64(int(seed) & _MASK64),
            np.uint64(int.from_bytes(digest, "big")),
        ],
        dtype=np.uint64,
    )


class PhiloxCoins:
    """One labelled stream of index-addressable uniform coins.

    ``uniform(i)`` and ``uniform_block(start, count)`` are pure
    functions of the construction arguments — the instance carries a
    read-ahead cache but no behavioural state, so nothing here needs
    serializing: a restored sketch rebuilds its streams from
    ``(seed, label)`` alone and sees the same coins.
    """

    __slots__ = ("seed", "label", "_key", "_cache_start", "_cache")

    def __init__(self, seed: int | None, label: str) -> None:
        self.seed = 0 if seed is None else int(seed)
        self.label = label
        self._key = stream_key(self.seed, label)
        self._cache_start = 0
        self._cache: np.ndarray | None = None

    def _raw(self, start: int, count: int) -> np.ndarray:
        """Raw 64-bit output words at indices ``[start, start+count)``.

        Philox's counter advances one *block* (four output words) per
        increment, so index ``start`` lives at word ``start % 4`` of
        block ``start // 4``.
        """
        block, offset = divmod(int(start), 4)
        bits = np.random.Philox(
            key=self._key, counter=[block, 0, 0, 0]
        ).random_raw(offset + count)
        return bits[offset:] if offset else bits

    def uniform_block(self, start: int, count: int) -> np.ndarray:
        """Uniforms on [0, 1) at draw indices ``[start, start+count)``.

        The returned array may alias the read-ahead cache: treat it as
        read-only.
        """
        cache = self._cache
        if (
            cache is not None
            and self._cache_start <= start
            and start + count <= self._cache_start + len(cache)
        ):
            lo = start - self._cache_start
            return cache[lo : lo + count]
        words = self._raw(start, max(count, _BLOCK))
        self._cache = (words >> np.uint64(11)) * _SCALE
        self._cache_start = start
        return self._cache[:count]

    def uniform(self, index: int) -> float:
        """The single uniform draw at ``index``."""
        return float(self.uniform_block(index, 1)[0])


__all__ = ["PhiloxCoins", "stream_key"]
