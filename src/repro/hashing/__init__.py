"""Hashing and pseudorandomness substrate.

* k-wise independent hash families over ``GF(2^61 - 1)``
  (:mod:`repro.hashing.prime_field`),
* nested stream/universe subsampling (:mod:`repro.hashing.subsample`),
* p-stable variate generation and derandomization
  (:mod:`repro.hashing.pstable`).
"""

from repro.hashing.prime_field import MERSENNE_P, KWiseHash, hash_to_unit
from repro.hashing.pstable import (
    DerandomizedStable,
    sample_pstable,
    sample_pstable_array,
    stable_abs_median,
)
from repro.hashing.subsample import NestedStreamSampler, NestedUniverseSampler

__all__ = [
    "MERSENNE_P",
    "KWiseHash",
    "hash_to_unit",
    "DerandomizedStable",
    "sample_pstable",
    "sample_pstable_array",
    "stable_abs_median",
    "NestedStreamSampler",
    "NestedUniverseSampler",
]
