"""k-wise independent hash families over a Mersenne prime field.

Streaming sketches need limited-independence hash functions whose
description fits in a few words: CountMin needs pairwise independence,
CountSketch needs 4-wise, and the p-stable sketch of [JW19] needs
``O(log(1/eps)/log log(1/eps))``-wise independence.  The standard
construction is a random degree-``(k-1)`` polynomial over ``GF(P)`` with
``P = 2^61 - 1`` (a Mersenne prime, enabling fast modular reduction).
"""

from __future__ import annotations

import random
from typing import Sequence

import numpy as np

#: Mersenne prime 2^61 - 1; universe items must be < MERSENNE_P.
MERSENNE_P = (1 << 61) - 1

_P64 = np.uint64(MERSENNE_P)
_MASK32 = np.uint64((1 << 32) - 1)
_MASK29 = np.uint64((1 << 29) - 1)
_U3 = np.uint64(3)
_U29 = np.uint64(29)
_U32 = np.uint64(32)
_U61 = np.uint64(61)


def _mod_mersenne(x: int) -> int:
    """Reduce ``x`` modulo ``2^61 - 1`` without a division.

    Valid for ``0 <= x < 2^122``, which covers products of two reduced
    residues.
    """
    x = (x & MERSENNE_P) + (x >> 61)
    if x >= MERSENNE_P:
        x -= MERSENNE_P
    return x


def _reduce_many(x: np.ndarray) -> np.ndarray:
    """Fully reduce a ``uint64`` array with values ``< 2^62`` mod ``P``."""
    x = (x & _P64) + (x >> _U61)
    return np.where(x >= _P64, x - _P64, x)


def _mulmod_many(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise ``a * b mod (2^61 - 1)`` for reduced ``uint64`` arrays.

    The 122-bit product never materializes: with ``a = a1*2^32 + a0``
    (and likewise ``b``), every partial product fits ``uint64`` —
    ``a0*b0 < 2^64``, ``a1*b0 + a0*b1 < 2^62``, ``a1*b1 < 2^58`` — and
    the powers of two fold down via ``2^64 ≡ 8`` and ``2^61 ≡ 1``
    (mod ``P``).  Exactly matches the scalar
    ``_mod_mersenne(a * b)`` on every input, which the chunked kernels'
    bit-identity guarantee rests on.
    """
    a0 = a & _MASK32
    a1 = a >> _U32
    b0 = b & _MASK32
    b1 = b >> _U32
    low = a0 * b0
    mid = a1 * b0 + a0 * b1
    acc = (
        ((a1 * b1) << _U3)          # 2^64 ≡ 2^3
        + (mid >> _U29)             # mid_hi * 2^61 ≡ mid_hi
        + ((mid & _MASK29) << _U32)
        + (low & _P64)
        + (low >> _U61)
    )
    return _reduce_many(acc)


class KWiseHash:
    """A k-wise independent hash function ``h: [P] -> [P]``.

    Parameters
    ----------
    k:
        Independence level (polynomial degree ``k - 1``); ``k >= 1``.
    seed:
        Seeds the coefficient draw; runs with equal seeds share the
        hash function (needed for nested subsampling across levels).
    rng:
        Optional explicit PRNG; overrides ``seed``.
    """

    __slots__ = ("k", "_coeffs", "_coeffs_u64")

    def __init__(
        self,
        k: int,
        seed: int | None = None,
        rng: random.Random | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"independence level k must be >= 1: {k}")
        if rng is None:
            rng = random.Random(seed)
        self.k = k
        # Leading coefficient non-zero so the polynomial has exact degree
        # k-1; the remaining coefficients are uniform in GF(P).
        coeffs = [rng.randrange(MERSENNE_P) for _ in range(k - 1)]
        coeffs.append(rng.randrange(1, MERSENNE_P))
        self._coeffs: Sequence[int] = tuple(coeffs)
        self._coeffs_u64 = tuple(np.uint64(c) for c in coeffs)

    def __call__(self, x: int) -> int:
        """Evaluate the polynomial at ``x`` by Horner's rule."""
        acc = 0
        for c in reversed(self._coeffs):
            acc = _mod_mersenne(_mod_mersenne(acc * x) + c)
        return acc

    def many(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`__call__`: hash a whole ``int64`` chunk.

        Returns a ``uint64`` array with ``many(xs)[i] == self(xs[i])``
        exactly — same Horner recurrence, same full reduction — so the
        chunked kernels produce bit-identical buckets, signs, and
        records to the scalar path.
        """
        x = np.asarray(xs).astype(np.uint64)
        acc = np.zeros(len(x), dtype=np.uint64)
        for c in reversed(self._coeffs_u64):
            acc = _reduce_many(_mulmod_many(acc, x) + c)
        return acc

    def unit(self, x: int) -> float:
        """Hash into ``[0, 1)`` (uniform under k-wise independence)."""
        return self(x) / MERSENNE_P

    def unit_many(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`unit`.

        Caveat: hashes exceed 2^53, so ``uint64 -> float64`` rounding
        may differ from Python's correctly-rounded ``int / int`` by one
        ulp — callers comparing against scalar :meth:`unit` values must
        leave a relative slack (see the KMV candidate pre-pass).
        """
        return self.many(xs) / MERSENNE_P

    def bucket(self, x: int, num_buckets: int) -> int:
        """Hash into ``range(num_buckets)``."""
        if num_buckets <= 0:
            raise ValueError(f"num_buckets must be positive: {num_buckets}")
        return self(x) % num_buckets

    def bucket_many(self, xs: np.ndarray, num_buckets: int) -> np.ndarray:
        """Vectorized :meth:`bucket`; returns an ``int64`` array."""
        if num_buckets <= 0:
            raise ValueError(f"num_buckets must be positive: {num_buckets}")
        return (self.many(xs) % np.uint64(num_buckets)).astype(np.int64)

    def sign(self, x: int) -> int:
        """Hash into ``{-1, +1}`` (for CountSketch-style sketches)."""
        return 1 if self(x) & 1 else -1

    def sign_many(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`sign`; returns an ``int64`` array of ±1."""
        odd = (self.many(xs) & np.uint64(1)).astype(np.int64)
        return 2 * odd - 1

    @property
    def description_words(self) -> int:
        """Words needed to store the hash function (its coefficients)."""
        return self.k


def hash_to_unit(seed: int, *parts: int) -> float:
    """Deterministic pseudo-uniform ``[0,1)`` value from ``(seed, parts)``.

    Used to derandomize per-(row, item) random variates: the same
    ``(seed, parts)`` tuple always yields the same value, so a sketch
    can regenerate an item's randomness on demand instead of storing a
    full random matrix (the trick [JW19] attributes to limited-
    independence generation).
    """
    mix = random.Random(hash((seed,) + parts))
    return mix.random()
