"""k-wise independent hash families over a Mersenne prime field.

Streaming sketches need limited-independence hash functions whose
description fits in a few words: CountMin needs pairwise independence,
CountSketch needs 4-wise, and the p-stable sketch of [JW19] needs
``O(log(1/eps)/log log(1/eps))``-wise independence.  The standard
construction is a random degree-``(k-1)`` polynomial over ``GF(P)`` with
``P = 2^61 - 1`` (a Mersenne prime, enabling fast modular reduction).
"""

from __future__ import annotations

import random
from typing import Sequence

#: Mersenne prime 2^61 - 1; universe items must be < MERSENNE_P.
MERSENNE_P = (1 << 61) - 1


def _mod_mersenne(x: int) -> int:
    """Reduce ``x`` modulo ``2^61 - 1`` without a division.

    Valid for ``0 <= x < 2^122``, which covers products of two reduced
    residues.
    """
    x = (x & MERSENNE_P) + (x >> 61)
    if x >= MERSENNE_P:
        x -= MERSENNE_P
    return x


class KWiseHash:
    """A k-wise independent hash function ``h: [P] -> [P]``.

    Parameters
    ----------
    k:
        Independence level (polynomial degree ``k - 1``); ``k >= 1``.
    seed:
        Seeds the coefficient draw; runs with equal seeds share the
        hash function (needed for nested subsampling across levels).
    rng:
        Optional explicit PRNG; overrides ``seed``.
    """

    __slots__ = ("k", "_coeffs")

    def __init__(
        self,
        k: int,
        seed: int | None = None,
        rng: random.Random | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"independence level k must be >= 1: {k}")
        if rng is None:
            rng = random.Random(seed)
        self.k = k
        # Leading coefficient non-zero so the polynomial has exact degree
        # k-1; the remaining coefficients are uniform in GF(P).
        coeffs = [rng.randrange(MERSENNE_P) for _ in range(k - 1)]
        coeffs.append(rng.randrange(1, MERSENNE_P))
        self._coeffs: Sequence[int] = tuple(coeffs)

    def __call__(self, x: int) -> int:
        """Evaluate the polynomial at ``x`` by Horner's rule."""
        acc = 0
        for c in reversed(self._coeffs):
            acc = _mod_mersenne(_mod_mersenne(acc * x) + c)
        return acc

    def unit(self, x: int) -> float:
        """Hash into ``[0, 1)`` (uniform under k-wise independence)."""
        return self(x) / MERSENNE_P

    def bucket(self, x: int, num_buckets: int) -> int:
        """Hash into ``range(num_buckets)``."""
        if num_buckets <= 0:
            raise ValueError(f"num_buckets must be positive: {num_buckets}")
        return self(x) % num_buckets

    def sign(self, x: int) -> int:
        """Hash into ``{-1, +1}`` (for CountSketch-style sketches)."""
        return 1 if self(x) & 1 else -1

    @property
    def description_words(self) -> int:
        """Words needed to store the hash function (its coefficients)."""
        return self.k


def hash_to_unit(seed: int, *parts: int) -> float:
    """Deterministic pseudo-uniform ``[0,1)`` value from ``(seed, parts)``.

    Used to derandomize per-(row, item) random variates: the same
    ``(seed, parts)`` tuple always yields the same value, so a sketch
    can regenerate an item's randomness on demand instead of storing a
    full random matrix (the trick [JW19] attributes to limited-
    independence generation).
    """
    mix = random.Random(hash((seed,) + parts))
    return mix.random()
