"""Subsampling primitives used by Algorithms 2 and 3.

Two distinct subsampling modes appear in the paper:

* **Stream subsampling** (Algorithm 2, ``FullSampleAndHold``): each
  stream *update* survives independently with probability
  ``p_x = min(1, 2^{1-x})``.  Levels are nested: an update surviving at
  level ``x`` also survives at every level ``< x``.  Implemented by
  drawing one uniform ``u`` per update and admitting it to all levels
  with ``p_x >= u``.

* **Universe subsampling** (Algorithm 3): each universe *element* is
  assigned a maximum survival level via a hash function, so that the
  induced subsets ``I_1 ⊇ I_2 ⊇ ...`` are consistent across the whole
  stream (every occurrence of an item lands in exactly the same
  levels).
"""

from __future__ import annotations

import math
import random

from repro.hashing.prime_field import KWiseHash


class NestedUniverseSampler:
    """Hash-based nested subsets ``I_1 ⊇ I_2 ⊇ ... ⊇ I_L`` of ``[n]``.

    Level 1 contains every element (``p_1 = 1``); level ``l`` keeps each
    element with probability ``2^{1-l}``.  Element ``j`` belongs to all
    levels ``l <= level_of(j)``.

    Parameters
    ----------
    num_levels:
        Deepest level ``L``.
    seed:
        Hash seed; equal seeds give identical subsets.
    independence:
        k-wise independence of the underlying hash (default pairwise
        suffices for the variance bounds used in Lemma 3.6's analysis).
    """

    def __init__(
        self, num_levels: int, seed: int | None = None, independence: int = 2
    ) -> None:
        if num_levels < 1:
            raise ValueError(f"num_levels must be >= 1: {num_levels}")
        self.num_levels = num_levels
        self._hash = KWiseHash(independence, seed=seed)

    def level_of(self, item: int) -> int:
        """Deepest level containing ``item`` (in ``[1, num_levels]``).

        ``P[level_of(j) >= l] = 2^{1-l}``, so membership in level ``l``
        happens with exactly the paper's rate ``p_l = min(1, 2^{1-l})``.
        """
        u = self._hash.unit(item)
        if u <= 0.0:
            return self.num_levels
        # level >= l  iff  u < 2^{1-l}  iff  l < 1 - log2(u)
        deepest = int(math.floor(1.0 - math.log2(u)))
        return max(1, min(self.num_levels, deepest))

    def contains(self, item: int, level: int) -> bool:
        """Whether ``item`` belongs to subset ``I_level``."""
        if not 1 <= level <= self.num_levels:
            raise ValueError(
                f"level {level} outside [1, {self.num_levels}]"
            )
        return self.level_of(item) >= level

    def rate(self, level: int) -> float:
        """Survival probability ``p_l = min(1, 2^{1-l})`` of a level."""
        return min(1.0, 2.0 ** (1 - level))


class NestedStreamSampler:
    """Per-update nested sampling at rates ``p_x = min(1, 2^{1-x})``.

    Each call to :meth:`draw_level` consumes one uniform variate and
    returns the deepest level the update survives to; the update belongs
    to every level up to and including that depth.  Unlike universe
    subsampling this is independent across updates, matching Algorithm 2
    (which subsamples positions of ``[m]``, not identities).
    """

    def __init__(self, num_levels: int, rng: random.Random) -> None:
        if num_levels < 1:
            raise ValueError(f"num_levels must be >= 1: {num_levels}")
        self.num_levels = num_levels
        self._rng = rng

    def draw_level(self) -> int:
        """Deepest surviving level for the next stream update."""
        u = self._rng.random()
        if u <= 0.0:
            return self.num_levels
        deepest = int(math.floor(1.0 - math.log2(u)))
        return max(1, min(self.num_levels, deepest))

    def rate(self, level: int) -> float:
        """Survival probability of ``level``."""
        return min(1.0, 2.0 ** (1 - level))
