"""Name → factory registry of every streaming algorithm in the library.

The CLI, the experiment harness, and the sharded runtime all construct
sketches through this registry so that algorithm names, default sizing
rules, and mergeability are defined in exactly one place.  Every
factory takes the same keyword signature::

    create("count-min", n=4096, m=65536, epsilon=0.1, seed=0)

where ``n``/``m`` are the universe-size/stream-length hints, ``epsilon``
the target accuracy, and ``seed`` the randomness seed.  Factories that
ignore a hint (e.g. ``exact``) simply drop it.

The registry also maps serialized state back to classes:
:func:`sketch_class` resolves the ``"algorithm"`` field written by
:meth:`~repro.state.algorithm.Sketch.to_state`, which is how
:class:`~repro.runtime.checkpoint.Checkpoint` restores sketches without
the caller naming the type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.baselines import (
    AMSSketch,
    CountMin,
    CountMinMorris,
    CountSketch,
    ExactFrequencyCounter,
    MisraGries,
    NaiveSampleAndHold,
    ReservoirSampler,
    SpaceSaving,
)
from repro.core import (
    FullSampleAndHold,
    HeavyHitters,
    SparseSupportRecovery,
)
from repro.core.adaptive import AdaptiveFullSampleAndHold
from repro.core.distinct import KMVDistinctElements
from repro.core.entropy import EntropyEstimator
from repro.core.fp_pstable import PStableFpEstimator
from repro.query import QueryKind
from repro.state.algorithm import Sketch
from repro.state.tracker import TrackerBackend

#: Factory signature shared by every registry entry.
SketchFactory = Callable[..., Sketch]


@dataclass(frozen=True)
class SketchSpec:
    """One registered algorithm: its name, class, and default factory.

    ``supports`` surfaces the class's query-capability declaration
    (see :mod:`repro.query`) so callers can enumerate which sketches
    answer which query kinds without constructing or probing one.
    """

    name: str
    cls: type
    factory: SketchFactory
    mergeable: bool
    supports: frozenset[QueryKind]
    summary: str


_SPECS: dict[str, SketchSpec] = {}
_CLASSES: dict[str, type] = {}


def register(
    name: str, cls: type, factory: SketchFactory, summary: str = ""
) -> None:
    """Add an algorithm to the registry (rejects duplicate names)."""
    if name in _SPECS:
        raise ValueError(f"algorithm {name!r} is already registered")
    _SPECS[name] = SketchSpec(
        name=name,
        cls=cls,
        factory=factory,
        mergeable=bool(getattr(cls, "mergeable", False)),
        supports=frozenset(getattr(cls, "supports", frozenset())),
        summary=summary,
    )
    _CLASSES[cls.__name__] = cls


def names() -> list[str]:
    """Sorted names of every registered algorithm."""
    return sorted(_SPECS)


def mergeable_names() -> list[str]:
    """Sorted names of the algorithms that support :meth:`Sketch.merge`."""
    return sorted(s.name for s in _SPECS.values() if s.mergeable)


def supporting(*kinds: QueryKind) -> list[str]:
    """Sorted names of the algorithms answering every given query kind."""
    wanted = frozenset(kinds)
    return sorted(
        s.name for s in _SPECS.values() if wanted <= s.supports
    )


def support_matrix() -> dict[str, frozenset[QueryKind]]:
    """name → declared query kinds for every registered algorithm."""
    return {name: _SPECS[name].supports for name in names()}


def spec(name: str) -> SketchSpec:
    """Look up one registered algorithm by name."""
    try:
        return _SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; choose from {names()}"
        ) from None


#: Algorithms whose factories understand the ``coin_protocol`` switch
#: (the randomized families; everything else is coin-free).
COIN_PROTOCOL_AWARE = frozenset(
    {
        "adaptive-sample-and-hold",
        "count-min-morris",
        "entropy",
        "heavy-hitters",
        "pstable-fp",
        "reservoir",
        "sample-and-hold",
    }
)


def create(
    name: str,
    n: int = 4096,
    m: int = 65536,
    epsilon: float = 0.5,
    seed: int = 0,
    tracker: TrackerBackend | None = None,
    coin_protocol: str | None = None,
) -> Sketch:
    """Build a fresh sketch by registry name with uniform sizing hints.

    ``tracker`` selects the accounting backend the sketch runs on (see
    :func:`repro.state.tracker.make_tracker`); ``None`` keeps each
    class's default — the full-trace ``StateTracker``.

    ``coin_protocol`` forces ``"v1"`` (sequential RNG) or ``"v2"``
    (indexed Philox coins, the default) on the randomized families;
    ``None`` keeps each class's default.  Passing it for a coin-free
    algorithm is an error rather than a silent no-op.
    """
    if coin_protocol is None:
        return spec(name).factory(
            n=n, m=m, epsilon=epsilon, seed=seed, tracker=tracker
        )
    if name not in COIN_PROTOCOL_AWARE:
        raise ValueError(
            f"{name!r} has no coin protocol (it draws no stream-time "
            f"randomness); coin_protocol= applies to "
            f"{sorted(COIN_PROTOCOL_AWARE)}"
        )
    return spec(name).factory(
        n=n,
        m=m,
        epsilon=epsilon,
        seed=seed,
        tracker=tracker,
        coin_protocol=coin_protocol,
    )


def sketch_class(state_name: str) -> type:
    """Resolve a serialized ``"algorithm"`` class name back to its class."""
    try:
        return _CLASSES[state_name]
    except KeyError:
        raise KeyError(
            f"unknown sketch class {state_name!r}; known: "
            f"{sorted(_CLASSES)}"
        ) from None


# ----------------------------------------------------------------------
# Registrations (the CLI's historical sizing rules, now shared)
# ----------------------------------------------------------------------
register(
    "heavy-hitters",
    HeavyHitters,
    lambda n, m, epsilon, seed, tracker=None, coin_protocol=None: HeavyHitters(
        n=n, m=m, p=2, epsilon=epsilon, seed=seed, tracker=tracker,
        inner_kwargs={"repetitions": 1},
        **({} if coin_protocol is None else {"coin_protocol": coin_protocol}),
    ),
    "Lp heavy hitters with few state changes (Theorem 1.1)",
)
register(
    "sample-and-hold",
    FullSampleAndHold,
    lambda n, m, epsilon, seed, tracker=None, coin_protocol=None: FullSampleAndHold(
        n=n, m=m, p=2, epsilon=epsilon, seed=seed, repetitions=1,
        tracker=tracker,
        **({} if coin_protocol is None else {"coin_protocol": coin_protocol}),
    ),
    "Algorithm 2: level grid of SampleAndHold instances",
)
register(
    "adaptive-sample-and-hold",
    AdaptiveFullSampleAndHold,
    lambda n, m, epsilon, seed, tracker=None, coin_protocol=None: AdaptiveFullSampleAndHold(
        n=n, p=2, epsilon=epsilon, seed=seed, tracker=tracker,
        **({} if coin_protocol is None else {"coin_protocol": coin_protocol}),
    ),
    "Algorithm 2 with the doubling trick for unknown stream length",
)
register(
    "misra-gries",
    MisraGries,
    lambda n, m, epsilon, seed, tracker=None: MisraGries(
        k=max(2, int(2 / epsilon)), tracker=tracker
    ),
    "deterministic heavy hitters, Theta(m) state changes",
)
register(
    "space-saving",
    SpaceSaving,
    lambda n, m, epsilon, seed, tracker=None: SpaceSaving(
        k=max(1, int(2 / epsilon)), tracker=tracker
    ),
    "top-k overestimating counters, Theta(m) state changes",
)
register(
    "count-min",
    CountMin,
    lambda n, m, epsilon, seed, tracker=None: CountMin.for_accuracy(
        epsilon, seed=seed, tracker=tracker
    ),
    "classic CountMin sketch (linear, mergeable)",
)
register(
    "count-min-morris",
    CountMinMorris,
    lambda n, m, epsilon, seed, tracker=None, coin_protocol=None: CountMinMorris.for_accuracy(
        epsilon, seed=seed, tracker=tracker,
        **({} if coin_protocol is None else {"coin_protocol": coin_protocol}),
    ),
    "CountMin with Morris-counter cells (ablation A4)",
)
register(
    "count-sketch",
    CountSketch,
    lambda n, m, epsilon, seed, tracker=None: CountSketch.for_accuracy(
        max(0.2, epsilon), seed=seed, tracker=tracker
    ),
    "classic CountSketch (linear, mergeable)",
)
register(
    "ams",
    AMSSketch,
    lambda n, m, epsilon, seed, tracker=None: AMSSketch.for_accuracy(
        max(0.25, epsilon), seed=seed, tracker=tracker
    ),
    "AMS F2 estimator (linear, mergeable)",
)
register(
    "exact",
    ExactFrequencyCounter,
    lambda n, m, epsilon, seed, tracker=None: ExactFrequencyCounter(tracker=tracker),
    "exact dictionary counts: zero error, m state changes",
)
register(
    "kmv",
    KMVDistinctElements,
    lambda n, m, epsilon, seed, tracker=None: KMVDistinctElements.for_accuracy(
        max(0.05, epsilon / 4), seed=seed, tracker=tracker
    ),
    "k-minimum-values distinct elements (mergeable)",
)
register(
    "pstable-fp",
    PStableFpEstimator,
    lambda n, m, epsilon, seed, tracker=None, coin_protocol=None: PStableFpEstimator(
        p=1.0, epsilon=max(0.2, epsilon), seed=seed, tracker=tracker,
        **({} if coin_protocol is None else {"coin_protocol": coin_protocol}),
    ),
    "p-stable Fp sketch on Morris counters (Theorem 3.2)",
)
register(
    "entropy",
    EntropyEstimator,
    lambda n, m, epsilon, seed, tracker=None, coin_protocol=None: EntropyEstimator(
        m=max(2, m), epsilon=min(1.0, max(0.1, epsilon)), seed=seed,
        tracker=tracker,
        **({} if coin_protocol is None else {"coin_protocol": coin_protocol}),
    ),
    "Shannon entropy via interpolated moments (Theorem 3.8)",
)
register(
    "reservoir",
    ReservoirSampler,
    lambda n, m, epsilon, seed, tracker=None, coin_protocol=None: ReservoirSampler(
        k=max(1, int(2 / epsilon)), seed=seed, tracker=tracker,
        coin_protocol=coin_protocol,
    ),
    "uniform reservoir sample (Algorithm R)",
)
register(
    "naive-sample-hold",
    NaiveSampleAndHold,
    lambda n, m, epsilon, seed, tracker=None: NaiveSampleAndHold(
        sample_probability=min(1.0, 64.0 / max(1, m)),
        capacity=max(2, int(2 / epsilon)),
        seed=seed,
        tracker=tracker,
    ),
    "[EV02]-style sample-and-hold with global eviction (ablation A2)",
)
register(
    "support-recovery",
    SparseSupportRecovery,
    lambda n, m, epsilon, seed, tracker=None: SparseSupportRecovery(
        k=max(1, int(1 / epsilon)), tracker=tracker
    ),
    "exact support of k-sparse streams",
)
