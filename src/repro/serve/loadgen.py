"""Load generator: a measurable serving workload against a LiveEngine.

"Serves heavy traffic" is a claim about *mixed* load — appends and
queries interleaved — and this module makes it measurable: feed a
stream to a :class:`~repro.serve.engine.LiveEngine` in fixed-size
appends, fire a configurable mix of queries between appends, and
report sustained rates (``items/s`` ingested, ``queries/s`` answered)
plus the staleness distribution the queries actually observed.  The
serving benchmark (``benchmarks/bench_serving.py``) runs this harness
at a fixed ingest rate and records queries/sec as the repo's next
in-tree trend file.

The query mix is a ``kind name -> weight`` mapping over the unified
query protocol's kinds; queries are drawn with a seeded RNG, so a load
run is as reproducible as everything else in the repo.  Point queries
draw a random item from the universe; parameterized kinds use their
defaults.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.query import (
    AllEstimates,
    Distinct,
    Entropy,
    HeavyHitters,
    Moment,
    PointQuery,
    Query,
    QueryKind,
)
from repro.serve.engine import LiveEngine
from repro.streams.chunked import as_chunk

#: kind name → parameter-free constructor (point queries need an item
#: and are built separately).
_MIX_QUERIES: dict[str, type] = {
    str(QueryKind.ALL_ESTIMATES): AllEstimates,
    str(QueryKind.HEAVY_HITTERS): HeavyHitters,
    str(QueryKind.MOMENT): Moment,
    str(QueryKind.ENTROPY): Entropy,
    str(QueryKind.DISTINCT): Distinct,
}


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one load-generator run.

    Rates are computed over the run's wall time; staleness fields
    summarize the ``updates_behind`` every answered query observed
    (how far the answering snapshot trailed the head).  The
    ``refresh_*`` / ``append_lock_*`` / ``snapshot_*`` fields mirror
    :meth:`~repro.serve.engine.LiveEngine.stats` at the end of the
    run: snapshot-merge timings, time appends spent stalled on the
    ingest lock, and the memoized merge-tree's reuse counters.
    """

    items: int
    appends: int
    queries: int
    wall_time_s: float
    snapshots: int
    mean_staleness: float
    max_staleness: int
    query_mix: tuple[tuple[str, float], ...]
    batch_size: int = 1
    refresh_count: int = 0
    refresh_mean_ms: float = 0.0
    refresh_max_ms: float = 0.0
    append_lock_wait_ms: float = 0.0
    append_lock_held_ms: float = 0.0
    snapshot_nodes_built: int = 0
    snapshot_nodes_reused: int = 0
    snapshot_leaves_cloned: int = 0
    snapshot_leaves_reused: int = 0
    snapshot_full_rebuilds: int = 0

    @property
    def items_per_s(self) -> float:
        """Sustained ingest rate over the whole run."""
        return self.items / self.wall_time_s if self.wall_time_s else 0.0

    @property
    def queries_per_s(self) -> float:
        """Sustained query-answer rate over the whole run."""
        return (
            self.queries / self.wall_time_s if self.wall_time_s else 0.0
        )

    def summary(self) -> str:
        """One-line human-readable load summary."""
        return (
            f"items={self.items} ({self.items_per_s:,.0f}/s) "
            f"queries={self.queries} ({self.queries_per_s:,.0f}/s) "
            f"snapshots={self.snapshots} "
            f"staleness mean={self.mean_staleness:.0f} "
            f"max={self.max_staleness} "
            f"refresh mean={self.refresh_mean_ms:.2f}ms "
            f"append-stall={self.append_lock_wait_ms:.1f}ms"
        )


def default_query_mix(engine: LiveEngine) -> dict[str, float]:
    """An even mix over the engine's declared query capabilities.

    Point queries are included whenever the family answers them;
    ``all-estimates`` is excluded (it materializes the full item map
    on every call, which drowns the per-query timing signal — opt in
    explicitly to measure it).
    """
    mix: dict[str, float] = {}
    for kind in engine.supports:
        name = str(kind)
        if name == str(QueryKind.ALL_ESTIMATES):
            continue
        mix[name] = 1.0
    if not mix:
        raise ValueError(
            f"{engine.sketch_name!r} declares no mixable query kind; "
            f"pass an explicit query_mix"
        )
    return mix


def _draw_query(
    rng: random.Random,
    names: list[str],
    weights: list[float],
    universe: int,
) -> Query:
    """One query drawn from the mix (seeded)."""
    name = rng.choices(names, weights=weights)[0]
    if name == str(QueryKind.POINT):
        return PointQuery(rng.randrange(universe))
    return _MIX_QUERIES[name]()


def generate_load(
    engine: LiveEngine,
    stream: Iterable[int] | np.ndarray,
    *,
    append_size: int = 2048,
    queries_per_append: int = 8,
    batch_size: int = 1,
    query_mix: Mapping[str, float] | None = None,
    max_staleness: int | None = None,
    seed: int = 0,
) -> LoadReport:
    """Drive ``engine`` with interleaved appends and queries.

    ``stream`` is consumed in ``append_size`` slices (the ingest
    rate knob: items per serving batch); after every append,
    ``queries_per_append`` queries drawn from ``query_mix`` are
    answered (the query-rate knob).  ``query_mix`` maps query-kind
    names to weights (default: an even mix over the engine's
    capabilities, minus ``all-estimates``); ``max_staleness`` is
    forwarded to every query.  ``batch_size > 1`` groups the drawn
    queries into :meth:`~repro.serve.engine.LiveEngine.queries`
    calls of that size — the batch read path (one consistent cut per
    group, point queries through the vectorized kernel) under the
    exact same query sequence, so batch and scalar runs answer
    identical queries.  Returns the measured rates and the staleness
    distribution.
    """
    if append_size < 1:
        raise ValueError(f"append_size must be >= 1: {append_size}")
    if queries_per_append < 0:
        raise ValueError(
            f"queries_per_append must be >= 0: {queries_per_append}"
        )
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1: {batch_size}")
    mix = dict(query_mix) if query_mix is not None else default_query_mix(
        engine
    )
    for name in mix:
        if name != str(QueryKind.POINT) and name not in _MIX_QUERIES:
            raise ValueError(
                f"unknown query kind {name!r} in query_mix; choose "
                f"from {sorted([*_MIX_QUERIES, str(QueryKind.POINT)])}"
            )
    names = sorted(mix)
    weights = [float(mix[name]) for name in names]
    rng = random.Random(seed)
    chunks = getattr(stream, "to_array", None)
    array = chunks() if chunks is not None else as_chunk(
        stream if isinstance(stream, np.ndarray) else list(stream)
    )

    items = 0
    appends = 0
    queries = 0
    staleness_total = 0
    staleness_max = 0
    start = time.perf_counter()
    for low in range(0, len(array), append_size):
        items += engine.append(array[low:low + append_size])
        appends += 1
        # The queries are drawn up front (one RNG draw sequence no
        # matter the batching) and answered in batch_size groups.
        drawn = [
            _draw_query(rng, names, weights, engine.n)
            for _ in range(queries_per_append)
        ]
        for group_low in range(0, len(drawn), batch_size):
            group = drawn[group_low:group_low + batch_size]
            if batch_size == 1:
                answers = (
                    engine.query(group[0], max_staleness=max_staleness),
                )
            else:
                answers = engine.queries(
                    group, max_staleness=max_staleness
                )
            for answer in answers:
                queries += 1
                staleness_total += answer.updates_behind
                staleness_max = max(
                    staleness_max, answer.updates_behind
                )
    wall_time_s = time.perf_counter() - start
    stats = engine.stats()
    return LoadReport(
        items=items,
        appends=appends,
        queries=queries,
        wall_time_s=wall_time_s,
        snapshots=engine.snapshots_taken,
        mean_staleness=staleness_total / queries if queries else 0.0,
        max_staleness=staleness_max,
        query_mix=tuple((name, float(mix[name])) for name in names),
        batch_size=batch_size,
        refresh_count=stats["refresh_count"],
        refresh_mean_ms=stats["refresh_mean_ms"],
        refresh_max_ms=stats["refresh_max_ms"],
        append_lock_wait_ms=stats["append_lock_wait_ms"],
        append_lock_held_ms=stats["append_lock_held_ms"],
        snapshot_nodes_built=stats["snapshot_nodes_built"],
        snapshot_nodes_reused=stats["snapshot_nodes_reused"],
        snapshot_leaves_cloned=stats["snapshot_leaves_cloned"],
        snapshot_leaves_reused=stats["snapshot_leaves_reused"],
        snapshot_full_rebuilds=stats["snapshot_full_rebuilds"],
    )
