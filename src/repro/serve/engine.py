"""The live serving engine: concurrent ingest + online queries.

Everything before this module was ``Engine.run()`` — ingest a stream
to completion, then query.  :class:`LiveEngine` is the long-lived
counterpart: it owns a serial :class:`~repro.runtime.sharded.
ShardedRunner` and accepts interleaved :meth:`LiveEngine.append` and
:meth:`LiveEngine.query` calls, answering queries from periodic
non-destructive merged snapshots
(:meth:`~repro.runtime.sharded.ShardedRunner.merged_snapshot`) so a
query never observes a half-applied append.

**Snapshot cadence.**  Appends are split at exact multiples of
``snapshot_every``: whenever the global update index crosses a
boundary, the engine captures a consistent shard *cut* under the
ingest lock, then — after the lock is released — merges it into a
fresh :class:`LiveSnapshot` and notifies every subscribed collector
(:mod:`repro.serve.collectors`).  The merge rides the runner's
memoized merge tree (``snapshot_mode="incremental"``), so a refresh
with one dirty shard out of ``S`` re-merges only that shard's path to
the root.  Because the cut points are
update-index-aligned — the same chunk-offset arithmetic the checkpoint
machinery uses — the snapshot taken at index ``k`` is bit-identical to
a fresh batch run over the first ``k`` updates, regardless of how the
appends were sized (``tests/test_live_engine.py`` asserts this for
all 16 families under both coin protocols).

**Staleness.**  Queries are answered from the newest snapshot and
tagged with how far it trails the head: a :class:`LiveAnswer` carries
the snapshot's update index, the head index, and the difference
(``updates_behind``).  ``max_staleness=`` bounds the lag per query
(the engine refreshes first when the bound would be violated), and
``refresh=True`` forces an exact-head answer.

**Read path.**  The engine is thread-safe, and reads are designed to
stay off the ingest lock: :meth:`LiveEngine.query`,
:meth:`LiveEngine.queries`, and :meth:`LiveEngine.query_batch` take
the lock only long enough to capture the ``(snapshot, head)`` pair —
refreshing first if a staleness bound demands it — then answer
against the immutable snapshot *outside* the lock, so a slow query
(or a large batch) never stalls concurrent appends.  Answers are
memoized in a snapshot-keyed :class:`_AnswerCache` (key:
``(snapshot_index, query)``; queries are frozen dataclasses, hence
hashable) which is dropped wholesale on every snapshot refresh —
sound because a snapshot's answers are pure deterministic reads.
Batch reads (:class:`~repro.query.MultiPointQuery` via
:meth:`LiveEngine.query_batch`, or point queries inside
:meth:`LiveEngine.queries`) route through the family's vectorized
``query_many`` kernel, bit-identical to the scalar loop.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Sequence

import numpy as np

from repro import registry
from repro.query import (
    Answer,
    MultiPointQuery,
    PointQuery,
    Query,
    QueryKind,
)
from repro.runtime.sharded import ShardedRunner
from repro.serve.collectors import Collector, QueryCollector
from repro.state.algorithm import Sketch
from repro.state.budget import WriteBudget
from repro.state.report import StateChangeReport
from repro.state.tracker import TRACKING_MODES
from repro.streams.chunked import as_chunk

#: Default snapshot cadence, aligned with the columnar chunk default.
DEFAULT_SNAPSHOT_EVERY = 8192


@dataclass(frozen=True)
class LiveSnapshot:
    """One consistent cut of the live run.

    Attributes
    ----------
    sketch:
        The merged copy — query it like a batch run's merged sketch;
        it is immutable as far as the engine is concerned (later
        appends go to the live shards, never to a snapshot).
    update_index:
        Stream position of the cut: the snapshot summarizes exactly
        the first ``update_index`` updates.
    """

    sketch: Sketch
    update_index: int

    @cached_property
    def report(self) -> StateChangeReport:
        """The combined state-change audit at the cut.

        Computed lazily on first access and cached on the instance
        (``cached_property`` writes ``__dict__`` directly, bypassing
        the frozen ``__setattr__``), so cadence refreshes that nobody
        audits never pay for report construction.
        """
        return self.sketch.report()

    def answer(self, query: Query) -> Answer:
        """Answer a typed query against this cut."""
        return self.sketch.query(query)

    def answer_many(self, query: MultiPointQuery) -> tuple[Answer, ...]:
        """Answer a batch of point queries against this cut through
        the family's vectorized kernel (bit-identical to a loop of
        :meth:`answer` calls over ``PointQuery(item)``)."""
        return self.sketch.query_many(query)


@dataclass(frozen=True)
class LiveAnswer:
    """A query answer tagged with its staleness metadata.

    ``answer`` came from the snapshot taken at ``snapshot_index``;
    the engine had ingested ``head`` updates when the query ran, so
    the answer trails the stream by ``updates_behind`` updates
    (0 = exact).
    """

    answer: Answer
    snapshot_index: int
    head: int

    @property
    def updates_behind(self) -> int:
        """How many ingested updates the answering snapshot missed."""
        return self.head - self.snapshot_index

    @property
    def kind(self) -> QueryKind:
        """The answered query kind (delegates to the answer)."""
        return self.answer.kind


class _AnswerCache:
    """Snapshot-keyed memo of query answers.

    Keys are ``(snapshot_index, query)`` — every query type is a
    frozen (hence hashable) dataclass, including
    :class:`~repro.query.MultiPointQuery` whose items normalize to a
    tuple.  Sound because answers are pure deterministic reads of an
    immutable snapshot: two snapshots cut at the same update index
    answer identically, so the index alone keys the snapshot.  The
    engine still calls :meth:`clear` on every refresh (cadence or
    forced), keeping the cache from accumulating entries for cuts no
    query will ask about again.

    Bounded by ``capacity`` with FIFO eviction; guarded by its own
    lock so cache traffic never touches the engine's ingest lock.
    """

    __slots__ = ("capacity", "hits", "misses", "_entries", "_lock")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple[int, Query], object] = (
            OrderedDict()
        )
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple[int, Query]) -> object:
        """The cached answer for ``key``, or ``None`` on a miss."""
        with self._lock:
            found = self._entries.get(key)
            if found is None:
                self.misses += 1
            else:
                self.hits += 1
            return found

    def put(self, key: tuple[int, Query], answer: object) -> None:
        with self._lock:
            if key not in self._entries:
                while len(self._entries) >= self.capacity:
                    self._entries.popitem(last=False)
                self._entries[key] = answer

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class _PendingCut:
    """One snapshot build in flight.

    ``cut`` (the runner's consistent shard cut) and ``index`` (the
    update index it was taken at) are captured under the ingest lock;
    the merge itself happens off-lock in
    :meth:`LiveEngine._build_pending`, which stores the result in
    ``snapshot`` and sets ``built`` so the enqueuing caller can wait
    for *its own* cut regardless of which thread drained the queue.
    """

    __slots__ = ("cut", "index", "notify", "snapshot", "built")

    def __init__(self, cut: list, index: int, notify: bool) -> None:
        self.cut = cut
        self.index = index
        self.notify = notify
        self.snapshot: LiveSnapshot | None = None
        self.built = threading.Event()


class LiveEngine:
    """Long-lived engine: interleaved appends and snapshot-consistent
    queries over a sharded sketch.

    Parameters mirror :class:`~repro.api.Engine` where they overlap —
    one ``seed`` drives the shard factories and the partitioner, so a
    live run is exactly as reproducible as a batch one.

    Parameters
    ----------
    sketch:
        Registry name (see :func:`repro.registry.names`).
    n, m, epsilon, seed:
        Sizing hints and the randomness seed, forwarded to every
        shard's factory.
    shards, partition:
        Ingestion sharding; ``K > 1`` requires a mergeable family
        (snapshots merge shard copies).  The executor is always
        serial — a live engine ingests in-process; the process
        executor's one-shot pool cannot interleave with queries.
    snapshot_every:
        The snapshot cadence in updates.  Appends are split at exact
        multiples, each boundary produces a fresh snapshot and one
        collector sample.
    tracking, budget, budget_split:
        Accounting backend / enforced write budget per
        :meth:`~repro.runtime.sharded.ShardedRunner.from_registry`;
        a live run's budget semantics (freeze/degrade/raise) are
        identical to a batch run's over the same updates.
    chunk_size:
        Columnar routing chunk size (``None``: the stream's own).
    coin_protocol:
        Coin protocol override for the randomized families.
    snapshot_mode:
        ``"incremental"`` (default) memoizes the runner's merge tree
        across refreshes — only shards that ingested since the last
        cut are re-cloned and re-merged; ``"full"`` rebuilds every
        snapshot from scratch (the reference path).  Both produce
        bit-identical snapshots.
    answer_cache:
        Capacity of the snapshot-keyed answer cache (entries); ``0``
        disables caching.  Safe at any size — answers are pure
        deterministic reads of an immutable snapshot, and the cache
        is dropped on every refresh.
    """

    def __init__(
        self,
        sketch: str,
        *,
        n: int = 4096,
        m: int = 65536,
        epsilon: float = 0.5,
        seed: int = 0,
        shards: int = 1,
        partition: str = "hash",
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        tracking: str = "aggregate",
        budget: WriteBudget | int | None = None,
        budget_split: str = "even",
        chunk_size: int | None = None,
        coin_protocol: str | None = None,
        snapshot_mode: str = "incremental",
        answer_cache: int = 256,
    ) -> None:
        self.spec = registry.spec(sketch)  # raises on unknown names
        if snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1: {snapshot_every}"
            )
        if shards > 1 and not self.spec.mergeable:
            raise ValueError(
                f"{sketch!r} is not mergeable and cannot be sharded; "
                f"mergeable sketches: {registry.mergeable_names()}"
            )
        if tracking not in TRACKING_MODES:
            raise ValueError(
                f"unknown tracking mode {tracking!r}; "
                f"choose from {TRACKING_MODES}"
            )
        if budget is not None:
            if tracking == "trace":
                raise ValueError(
                    "a write budget runs on the 'budget' backend; "
                    "drop tracking= or pass tracking='budget'"
                )
            tracking = "budget"
        self.sketch_name = sketch
        self.n = n
        self.seed = seed
        self.shards = shards
        self.partition = partition
        self.snapshot_every = snapshot_every
        self.tracking = tracking
        self._runner = ShardedRunner.from_registry(
            sketch,
            shards,
            n=n,
            m=m,
            epsilon=epsilon,
            seed=seed,
            partition=partition,
            executor="serial",
            tracking=tracking,
            budget=budget,
            budget_split=budget_split,
            chunk_size=chunk_size,
            coin_protocol=coin_protocol,
            snapshot_mode=snapshot_mode,
        )
        if answer_cache < 0:
            raise ValueError(
                f"answer_cache must be >= 0: {answer_cache}"
            )
        self.snapshot_mode = self._runner.snapshot_mode
        self._lock = threading.RLock()
        self._ingested = 0
        self._snapshot: LiveSnapshot | None = None
        self._collectors: list[Collector] = []
        self._snapshots_taken = 0
        self._answer_cache = (
            _AnswerCache(answer_cache) if answer_cache else None
        )
        # Off-lock refresh plane: cuts captured under the ingest lock
        # queue here and are built/published under _publish_lock only
        # (never under self._lock — see _build_pending).
        self._publish_lock = threading.Lock()
        self._pending: deque[_PendingCut] = deque()
        self._refresh_count = 0
        self._refresh_last_s = 0.0
        self._refresh_total_s = 0.0
        self._refresh_max_s = 0.0
        self._append_calls = 0
        self._append_wait_s = 0.0
        self._append_held_s = 0.0

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    @property
    def head(self) -> int:
        """Updates ingested so far (the stream position)."""
        return self._ingested

    @property
    def snapshot_index(self) -> int:
        """Stream position of the newest snapshot (0 before any)."""
        snapshot = self._snapshot
        return 0 if snapshot is None else snapshot.update_index

    @property
    def updates_behind(self) -> int:
        """How far the newest snapshot trails the head."""
        return self._ingested - self.snapshot_index

    @property
    def snapshots_taken(self) -> int:
        """Merged snapshots built so far (cadence + forced)."""
        return self._snapshots_taken

    @property
    def collectors(self) -> tuple[Collector, ...]:
        """The registered subscriptions."""
        return tuple(self._collectors)

    @property
    def answer_cache(self) -> _AnswerCache | None:
        """The snapshot-keyed answer cache (``None`` when disabled)."""
        return self._answer_cache

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    def subscribe(self, collector: Collector) -> Collector:
        """Register a collector; it samples every snapshot from now on.

        Returns the collector for chaining
        (``series = engine.subscribe(StateChangesCollector()).series``).
        """
        with self._lock:
            self._collectors.append(collector)
        return collector

    def subscribe_query(self, query: Query) -> QueryCollector:
        """Shorthand: subscribe a :class:`QueryCollector` for ``query``."""
        collector = QueryCollector(query)
        self.subscribe(collector)
        return collector

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def append(self, items: Iterable[int] | np.ndarray) -> int:
        """Ingest a batch of updates; returns the number consumed.

        The batch is routed through the sharded columnar data plane,
        split at snapshot-cadence boundaries: crossing a boundary cuts
        the snapshot at exactly that update index and notifies the
        collectors, so the cut points — and therefore every collector
        series — are independent of how callers size their appends.

        Only the *cut* (cheap per-shard epoch capture) happens under
        the ingest lock; the merge itself runs after the lock is
        released (:meth:`_build_pending`), so a concurrent ``append``
        on another thread never stalls behind a snapshot merge.
        """
        chunks = getattr(items, "chunks", None)
        if chunks is not None:
            pieces: Iterable[np.ndarray] = chunks()
        elif isinstance(items, np.ndarray):
            pieces = (items,)
        else:
            pieces = (np.asarray(list(items), dtype=np.int64),)
        count = 0
        entered = time.perf_counter()
        with self._lock:
            acquired = time.perf_counter()
            for piece in pieces:
                piece = as_chunk(piece)
                position = 0
                while position < len(piece):
                    boundary = self.snapshot_every - (
                        self._ingested % self.snapshot_every
                    )
                    take = min(len(piece) - position, boundary)
                    segment = piece[position:position + take]
                    ingested = self._runner.ingest(segment)
                    self._ingested += ingested
                    count += ingested
                    position += take
                    if self._ingested % self.snapshot_every == 0:
                        self._enqueue_cut(notify=True)
            self._append_calls += 1
            self._append_wait_s += acquired - entered
            self._append_held_s += time.perf_counter() - acquired
        self._build_pending()
        return count

    def finish(self) -> LiveSnapshot:
        """Take a final head snapshot and give collectors their last
        sample (a partial interval, unless the head sits exactly on a
        cadence boundary — collectors deduplicate that case).

        The engine stays usable: further appends and queries continue
        from the same state.
        """
        return self._refresh_now(notify=True)

    # ------------------------------------------------------------------
    # Snapshots + queries
    # ------------------------------------------------------------------
    def _enqueue_cut(self, notify: bool) -> _PendingCut:
        """Capture a cut at the current head and queue it for an
        off-lock build.  The caller must hold the ingest lock — the
        cut and the queue position are what make snapshot indices
        monotone in queue order."""
        entry = _PendingCut(
            self._runner.snapshot_cut(), self._ingested, notify
        )
        self._pending.append(entry)
        return entry

    def _build_pending(self) -> None:
        """Build and publish every queued cut, in cut order.

        Must be called **without** the ingest lock: building takes
        ``_publish_lock`` and then briefly ``self._lock`` to publish,
        so draining under the ingest lock would deadlock against a
        concurrent drainer (and would defeat the point — the merge is
        the expensive part being moved off the append path).

        Publication double-checks monotonicity (``update_index``):
        whichever thread drains, the installed snapshot only moves
        forward, and the enqueuer of a losing older cut still gets its
        own snapshot through its :class:`_PendingCut`.  Collector
        notification happens in queue order — identical to the legacy
        in-lock ordering because cuts are enqueued under the ingest
        lock.
        """
        while self._pending:
            with self._publish_lock:
                try:
                    entry = self._pending.popleft()
                except IndexError:
                    return
                started = time.perf_counter()
                merged = self._runner.merged_from_cut(entry.cut)
                elapsed = time.perf_counter() - started
                snapshot = LiveSnapshot(
                    sketch=merged, update_index=entry.index
                )
                with self._lock:
                    self._refresh_count += 1
                    self._refresh_last_s = elapsed
                    self._refresh_total_s += elapsed
                    if elapsed > self._refresh_max_s:
                        self._refresh_max_s = elapsed
                    self._snapshots_taken += 1
                    current = self._snapshot
                    if (
                        current is None
                        or current.update_index <= entry.index
                    ):
                        self._snapshot = snapshot
                        if self._answer_cache is not None:
                            self._answer_cache.clear()
                entry.snapshot = snapshot
                entry.built.set()
                if entry.notify:
                    for collector in self._collectors:
                        collector.on_snapshot(snapshot)

    def _refresh_now(self, notify: bool = False) -> LiveSnapshot:
        """Cut at the head, build off-lock, return *that* snapshot."""
        with self._lock:
            entry = self._enqueue_cut(notify)
        self._build_pending()
        entry.built.wait()
        return entry.snapshot

    def snapshot(self, refresh: bool = False) -> LiveSnapshot:
        """The newest consistent cut (``refresh=True``: cut at head).

        The first call on a pristine engine materializes the empty
        snapshot at index 0.  Forced refreshes update what queries
        answer from but do **not** feed collector series — those
        sample on the cadence only, so forcing a snapshot never skews
        a subscription's time axis.
        """
        with self._lock:
            snapshot = self._snapshot
            entry = None
            if snapshot is None or (
                refresh and snapshot.update_index < self._ingested
            ):
                entry = self._enqueue_cut(notify=False)
        if entry is None:
            return snapshot
        self._build_pending()
        entry.built.wait()
        return entry.snapshot

    def _current_cut(
        self,
        *,
        refresh: bool = False,
        max_staleness: int | None = None,
    ) -> tuple[LiveSnapshot, int]:
        """The ``(snapshot, head)`` pair every read answers from.

        The ingest lock is held just long enough to capture a
        consistent pair — or, when the staleness bound demands a
        fresher cut, to capture the cut itself.  The merge and the
        answering both happen outside the lock; a staleness-bounded
        query answers from the snapshot built from *its* cut even if
        a newer cut wins the publication race.
        """
        if max_staleness is not None and max_staleness < 0:
            raise ValueError(
                f"max_staleness must be >= 0: {max_staleness}"
            )
        with self._lock:
            snapshot = self._snapshot
            head = self._ingested
            stale = (
                snapshot is None
                or refresh
                and snapshot.update_index < head
                or max_staleness is not None
                and head - snapshot.update_index > max_staleness
            )
            entry = self._enqueue_cut(notify=False) if stale else None
        if entry is not None:
            self._build_pending()
            entry.built.wait()
            snapshot = entry.snapshot
        return snapshot, head

    def _answer_cached(self, snapshot: LiveSnapshot, query: Query):
        """Answer ``query`` against ``snapshot`` through the answer
        cache (when enabled); runs outside the ingest lock."""
        cache = self._answer_cache
        if cache is None:
            if isinstance(query, MultiPointQuery):
                return snapshot.answer_many(query)
            return snapshot.answer(query)
        key = (snapshot.update_index, query)
        found = cache.get(key)
        if found is None:
            if isinstance(query, MultiPointQuery):
                found = snapshot.answer_many(query)
            else:
                found = snapshot.answer(query)
            cache.put(key, found)
        return found

    def query(
        self,
        query: Query,
        *,
        refresh: bool = False,
        max_staleness: int | None = None,
    ) -> LiveAnswer:
        """Answer a typed query from the newest snapshot.

        ``max_staleness=k`` guarantees the answer trails the head by
        at most ``k`` updates, refreshing the snapshot first if the
        standing one is older; ``refresh=True`` is ``max_staleness=0``.
        The default answers from whatever snapshot exists — the lock
        is held only to capture the snapshot reference, the answer is
        computed off-lock (and memoized per ``(snapshot_index,
        query)``), so queries never stall a concurrent append.
        """
        snapshot, head = self._current_cut(
            refresh=refresh, max_staleness=max_staleness
        )
        return LiveAnswer(
            answer=self._answer_cached(snapshot, query),
            snapshot_index=snapshot.update_index,
            head=head,
        )

    def queries(
        self, qs: Sequence[Query], **kwargs
    ) -> tuple[LiveAnswer, ...]:
        """Answer several queries against one consistent snapshot.

        The snapshot is captured **once** under the lock and every
        query answers from that same cut off-lock, so the batch is
        one consistent read (and never holds up concurrent appends —
        earlier revisions answered item-by-item inside the lock).
        Point queries that miss the cache are batched through the
        family's vectorized ``query_many`` kernel; answers are
        bit-identical to a loop of :meth:`query` calls, and every
        returned :class:`LiveAnswer` carries the same
        ``(snapshot_index, head)`` pair.
        """
        qs = tuple(qs)
        snapshot, head = self._current_cut(**kwargs)
        answers = self._answer_batch(snapshot, qs)
        return tuple(
            LiveAnswer(
                answer=answer,
                snapshot_index=snapshot.update_index,
                head=head,
            )
            for answer in answers
        )

    def query_batch(
        self, items: Iterable[int], **kwargs
    ) -> tuple[LiveAnswer, ...]:
        """Batch point queries against one consistent snapshot.

        Shorthand for :meth:`queries` over ``PointQuery(item)`` —
        but the whole batch is one :class:`~repro.query.
        MultiPointQuery` through the vectorized kernel and one answer
        cache entry (the query's items tuple is its cache identity).
        """
        query = MultiPointQuery(tuple(items))
        snapshot, head = self._current_cut(**kwargs)
        answers = self._answer_cached(snapshot, query)
        return tuple(
            LiveAnswer(
                answer=answer,
                snapshot_index=snapshot.update_index,
                head=head,
            )
            for answer in answers
        )

    def _answer_batch(
        self, snapshot: LiveSnapshot, qs: Sequence[Query]
    ) -> list[Answer]:
        """Answer ``qs`` against one snapshot, off-lock.

        Cache hits are served directly; point-query misses are
        gathered into one :class:`~repro.query.MultiPointQuery`
        through the family's kernel (when the family declares POINT);
        everything else answers through the scalar path.  Each
        individual answer lands in the cache under its own query key,
        so a later scalar :meth:`query` for the same item hits.
        """
        answers: list[Answer | None] = [None] * len(qs)
        point_at: list[int] = []
        point_items: list[int] = []
        batchable = QueryKind.POINT in snapshot.sketch.supports
        cache = self._answer_cache
        for position, query in enumerate(qs):
            if cache is not None:
                key = (snapshot.update_index, query)
                found = cache.get(key)
                if found is not None:
                    answers[position] = found
                    continue
            if batchable and isinstance(query, PointQuery):
                point_at.append(position)
                point_items.append(query.item)
                continue
            if isinstance(query, MultiPointQuery):
                answer = snapshot.answer_many(query)
            else:
                answer = snapshot.answer(query)
            if cache is not None:
                cache.put((snapshot.update_index, query), answer)
            answers[position] = answer
        if point_at:
            batch = snapshot.answer_many(
                MultiPointQuery(tuple(point_items))
            )
            for position, answer in zip(point_at, batch):
                answers[position] = answer
                if cache is not None:
                    cache.put(
                        (snapshot.update_index, qs[position]), answer
                    )
        return answers

    # ------------------------------------------------------------------
    # Capabilities
    # ------------------------------------------------------------------
    @property
    def supports(self) -> frozenset[QueryKind]:
        """Query kinds the configured sketch declares."""
        return self.spec.supports

    def stats(self) -> dict:
        """Serving + snapshot-refresh metrics, one flat dict.

        Engine-side: refresh timings (``refresh_last_ms`` /
        ``refresh_mean_ms`` / ``refresh_max_ms`` over
        ``refresh_count`` merges) and append-path lock accounting
        (``append_lock_wait_ms`` is total time appends spent waiting
        to *enter* the ingest lock — the stall the off-lock refresh
        plane exists to shrink; ``append_lock_held_ms`` is total time
        spent inside it).  Runner-side (``snapshot_*``): the memoized
        merge-tree counters — leaves cloned vs reused, internal nodes
        built vs reused, and full rebuilds.
        """
        with self._lock:
            refresh_count = self._refresh_count
            mean_ms = (
                self._refresh_total_s / refresh_count * 1000.0
                if refresh_count
                else 0.0
            )
            data = {
                "head": self._ingested,
                "snapshot_index": self.snapshot_index,
                "snapshots_taken": self._snapshots_taken,
                "snapshot_mode": self.snapshot_mode,
                "refresh_count": refresh_count,
                "refresh_last_ms": self._refresh_last_s * 1000.0,
                "refresh_mean_ms": mean_ms,
                "refresh_max_ms": self._refresh_max_s * 1000.0,
                "append_calls": self._append_calls,
                "append_lock_wait_ms": self._append_wait_s * 1000.0,
                "append_lock_held_ms": self._append_held_s * 1000.0,
            }
        for name, value in self._runner.snapshot_stats().items():
            data[f"snapshot_{name}"] = value
        return data

    def summary(self) -> str:
        """One-line human-readable serving status."""
        return (
            f"{self.sketch_name}: head={self._ingested} "
            f"snapshot@{self.snapshot_index} "
            f"(behind={self.updates_behind}, "
            f"cadence={self.snapshot_every}) "
            f"shards={self.shards} ({self.partition}) "
            f"collectors={len(self._collectors)}"
        )
