"""Collectors: online query subscriptions sampled on the snapshot cadence.

Batch runs answer queries once, at the end; the paper's central
object — the state-change counter ``sum_t X_t`` — is a *time series*,
and production monitoring asks time-series questions ("how many heavy
hitters now?", "how fast is the wear budget draining?").  A collector
is a standing subscription registered on a
:class:`~repro.serve.engine.LiveEngine`: every time the engine takes a
cadence snapshot (every ``snapshot_every`` updates, plus the final
partial snapshot at :meth:`~repro.serve.engine.LiveEngine.finish`),
each registered collector observes the immutable
:class:`~repro.serve.engine.LiveSnapshot` and appends one sample to
its series.  Because cadence snapshots land at exact multiples of
``snapshot_every`` regardless of how the appends were sized, two runs
of the same stream produce identical series — the subscription API is
as reproducible as the batch one.

Three collectors cover the common shapes:

* :class:`QueryCollector` — any typed query from :mod:`repro.query`,
  answered against every snapshot; the sample value is the query's
  :class:`~repro.query.Answer`.
* :class:`StateChangesCollector` — the paper's state-changes-over-time
  curve, read straight off the snapshot audit.  No query needed: the
  cost model is tracked by the substrate, so the flagship plot of the
  paper falls out of the subscription API directly.
* :class:`AuditCollector` — the full
  :class:`~repro.state.report.StateChangeReport` per sample, for
  callers charting several audit fields at once.

Subclass :class:`Collector` and override :meth:`Collector.observe` for
anything else; samples are ``(update_index, value)`` pairs in
:attr:`Collector.series`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.query import Answer, Query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.engine import LiveSnapshot


class Collector:
    """Base subscription: one sample per cadence snapshot.

    Subclasses override :meth:`observe` to turn a snapshot into a
    sample value; the base class owns the series bookkeeping and
    guarantees at most one sample per update index (the final
    :meth:`~repro.serve.engine.LiveEngine.finish` snapshot can
    coincide with a cadence boundary).
    """

    #: Short registry-style name; the socket server's ``subscribe``
    #: verb resolves collectors by it.
    name = "collector"

    def __init__(self) -> None:
        self.series: list[tuple[int, Any]] = []

    def on_snapshot(self, snapshot: "LiveSnapshot") -> None:
        """Record one sample for ``snapshot`` (deduplicated by index)."""
        if self.series and self.series[-1][0] == snapshot.update_index:
            return
        self.series.append((snapshot.update_index, self.observe(snapshot)))

    def observe(self, snapshot: "LiveSnapshot") -> Any:
        """Turn one snapshot into this collector's sample value."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Series access
    # ------------------------------------------------------------------
    def indexes(self) -> list[int]:
        """Update indexes the series was sampled at (ascending)."""
        return [index for index, _ in self.series]

    def values(self) -> list[Any]:
        """Sample values, aligned with :meth:`indexes`."""
        return [value for _, value in self.series]

    def __len__(self) -> int:
        return len(self.series)


class QueryCollector(Collector):
    """A typed query answered against every snapshot.

    The sample value is the :class:`~repro.query.Answer` the merged
    snapshot returned, so heterogeneous answers (scalar, moment, map)
    keep their types; :meth:`scalar_values` unwraps the common
    scalar case.
    """

    name = "query"

    def __init__(self, query: Query) -> None:
        super().__init__()
        self.query = query

    def observe(self, snapshot: "LiveSnapshot") -> Answer:
        return snapshot.sketch.query(self.query)

    def scalar_values(self) -> list[float]:
        """The ``.value`` of every sampled answer (scalar kinds only)."""
        return [answer.value for _, answer in self.series]


class StateChangesCollector(Collector):
    """The paper's curve: cumulative ``sum_t X_t`` sampled over time.

    Values are monotone non-decreasing by construction (state changes
    only accumulate); plot ``indexes()`` against ``values()`` for the
    state-changes-vs-stream-position figure.
    """

    name = "state-changes"

    def observe(self, snapshot: "LiveSnapshot") -> int:
        return snapshot.report.state_changes


class AuditCollector(Collector):
    """The full state-change report per sample.

    For callers tracking several audit fields (writes, peak words,
    state-change fraction) off one subscription.
    """

    name = "audit"

    def observe(self, snapshot: "LiveSnapshot"):
        return snapshot.report
