"""JSON-lines socket front end for the live serving engine.

``repro serve`` binds a TCP socket and speaks a newline-delimited JSON
protocol: every request is one JSON object on one line, every response
one JSON object on one line.  The verbs:

========== ============================================= ==============
verb       request fields                                response
========== ============================================= ==============
append     ``items`` (list of ints)                      ``appended``, ``head``
query      ``kind`` (query-kind name) + kind params      answer fields + ``snapshot_index``, ``updates_behind``
           (``item``, ``phi``, ``p``), optional
           ``refresh`` / ``max_staleness``
query-batch ``items`` (list of ints), optional           ``answers`` (list of answer fields) + one shared
           ``refresh`` / ``max_staleness``               ``snapshot_index``, ``head``, ``updates_behind``
subscribe  ``kind`` (``state-changes`` or a query kind   ``id``
           + params)
series     ``id`` (from subscribe)                       ``series`` of ``[index, value]``
snapshot   —                                             ``snapshot_index``, ``head``, ``state_changes``, ``peak_words``
stats      —                                             engine status fields
shutdown   —                                             ``head``; the server stops
========== ============================================= ==============

Every response carries ``"ok": true``; failures answer
``{"ok": false, "error": "..."}`` on the same connection and the
session keeps serving (a malformed request must not take the engine
down).  Query responses embed their staleness metadata, so a remote
client sees exactly what an in-process :class:`~repro.serve.engine.
LiveAnswer` carries.

The protocol logic lives in :class:`LiveSession` as a pure
``dict -> dict`` mapping, so tests (and embedders) can drive it
without sockets; :class:`LiveServer` wraps it in a threading TCP
server whose handler serializes engine access through the engine's
own lock.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Any

from repro.query import (
    AllEstimates,
    Answer,
    Distinct,
    Entropy,
    HeavyHitters,
    MapAnswer,
    Moment,
    MomentAnswer,
    PointQuery,
    Query,
    QueryKind,
    UnsupportedQueryError,
)
from repro.serve.collectors import (
    Collector,
    QueryCollector,
    StateChangesCollector,
)
from repro.serve.engine import LiveEngine
from repro.state.budget import WriteBudgetExceededError


class ProtocolError(ValueError):
    """A request the protocol cannot serve (bad verb, missing field)."""


def _build_query(request: dict[str, Any]) -> Query:
    """Typed query from a request's ``kind`` + parameter fields."""
    kind = request.get("kind")
    if kind == str(QueryKind.POINT):
        item = request.get("item")
        if not isinstance(item, int):
            raise ProtocolError(
                "point queries need an integer 'item' field"
            )
        return PointQuery(item)
    if kind == str(QueryKind.ALL_ESTIMATES):
        return AllEstimates()
    if kind == str(QueryKind.HEAVY_HITTERS):
        phi = request.get("phi")
        return HeavyHitters(phi=None if phi is None else float(phi))
    if kind == str(QueryKind.MOMENT):
        p = request.get("p")
        return Moment(p=None if p is None else float(p))
    if kind == str(QueryKind.ENTROPY):
        return Entropy()
    if kind == str(QueryKind.DISTINCT):
        return Distinct()
    raise ProtocolError(
        f"unknown query kind {kind!r}; choose from "
        f"{sorted(str(k) for k in QueryKind)}"
    )


def _answer_fields(answer: Answer) -> dict[str, Any]:
    """JSON-safe fields of a typed answer (kind + value/values [+ p])."""
    fields: dict[str, Any] = {"kind": str(answer.kind)}
    if isinstance(answer, MapAnswer):
        # JSON object keys are strings; clients int() them back.
        fields["values"] = {
            str(item): value for item, value in answer.values.items()
        }
    else:
        fields["value"] = answer.value
        if isinstance(answer, MomentAnswer):
            fields["p"] = answer.p
    return fields


def _sample_value(value: Any) -> Any:
    """JSON-safe collector sample (Answer envelopes are unwrapped)."""
    if isinstance(value, MapAnswer):
        return {str(item): v for item, v in value.values.items()}
    if isinstance(value, Answer):
        return value.value
    return value


class LiveSession:
    """One engine's verb dispatcher: request dict → response dict.

    Stateless beyond the collector registry (``subscribe`` hands out
    integer ids that ``series`` resolves), so any number of
    connections can share one session — the engine's lock serializes
    the actual state transitions.
    """

    def __init__(self, engine: LiveEngine) -> None:
        self.engine = engine
        self._collectors: dict[int, Collector] = {}
        self._next_id = 0
        self._id_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle(self, request: dict[str, Any]) -> tuple[dict[str, Any], bool]:
        """Serve one request; returns ``(response, keep_serving)``."""
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be an object"}, True
        op = request.get("op")
        handler = getattr(self, f"_op_{str(op).replace('-', '_')}", None)
        if op is None or handler is None:
            return (
                {
                    "ok": False,
                    "error": f"unknown op {op!r}; choose from "
                    f"{sorted(self.verbs())}",
                },
                True,
            )
        try:
            return handler(request)
        except (
            ProtocolError,
            UnsupportedQueryError,
            WriteBudgetExceededError,
            # RuntimeError covers engine-lifecycle violations — e.g.
            # snapshotting a runner that was already merge()d — which
            # must answer in-band, not kill the connection.
            RuntimeError,
            ValueError,
            TypeError,
            KeyError,
        ) as error:
            return {"ok": False, "error": str(error)}, True

    @classmethod
    def verbs(cls) -> list[str]:
        """The protocol's verb names."""
        return sorted(
            name[len("_op_"):].replace("_", "-")
            for name in dir(cls)
            if name.startswith("_op_")
        )

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    def _op_append(self, request: dict) -> tuple[dict, bool]:
        items = request.get("items")
        if not isinstance(items, list) or not all(
            isinstance(item, int) for item in items
        ):
            raise ProtocolError(
                "append needs an 'items' list of integers"
            )
        appended = self.engine.append(items)
        return (
            {"ok": True, "appended": appended, "head": self.engine.head},
            True,
        )

    def _op_query(self, request: dict) -> tuple[dict, bool]:
        query = _build_query(request)
        max_staleness = request.get("max_staleness")
        live = self.engine.query(
            query,
            refresh=bool(request.get("refresh", False)),
            max_staleness=(
                None if max_staleness is None else int(max_staleness)
            ),
        )
        response = {"ok": True, **_answer_fields(live.answer)}
        response["snapshot_index"] = live.snapshot_index
        response["head"] = live.head
        response["updates_behind"] = live.updates_behind
        return response, True

    def _op_query_batch(self, request: dict) -> tuple[dict, bool]:
        items = request.get("items")
        if not isinstance(items, list) or not all(
            isinstance(item, int) for item in items
        ):
            raise ProtocolError(
                "query-batch needs an 'items' list of integers"
            )
        max_staleness = request.get("max_staleness")
        live = self.engine.query_batch(
            items,
            refresh=bool(request.get("refresh", False)),
            max_staleness=(
                None if max_staleness is None else int(max_staleness)
            ),
        )
        # One consistent cut: every answer shares the batch's
        # (snapshot_index, head), so the staleness triple is hoisted.
        response: dict[str, Any] = {
            "ok": True,
            "answers": [_answer_fields(a.answer) for a in live],
        }
        if live:
            first = live[0]
            response["snapshot_index"] = first.snapshot_index
            response["head"] = first.head
            response["updates_behind"] = first.updates_behind
        else:
            response["snapshot_index"] = self.engine.snapshot_index
            response["head"] = self.engine.head
            response["updates_behind"] = self.engine.updates_behind
        return response, True

    def _op_subscribe(self, request: dict) -> tuple[dict, bool]:
        kind = request.get("kind")
        if kind == StateChangesCollector.name:
            collector: Collector = StateChangesCollector()
        else:
            collector = QueryCollector(_build_query(request))
        self.engine.subscribe(collector)
        with self._id_lock:
            collector_id = self._next_id
            self._next_id += 1
            self._collectors[collector_id] = collector
        return {"ok": True, "id": collector_id, "kind": kind}, True

    def _op_series(self, request: dict) -> tuple[dict, bool]:
        collector_id = request.get("id")
        collector = self._collectors.get(collector_id)
        if collector is None:
            raise ProtocolError(
                f"unknown collector id {collector_id!r}; subscribe first"
            )
        series = [
            [index, _sample_value(value)]
            for index, value in collector.series
        ]
        return {"ok": True, "id": collector_id, "series": series}, True

    def _op_snapshot(self, request: dict) -> tuple[dict, bool]:
        snapshot = self.engine.snapshot(
            refresh=bool(request.get("refresh", True))
        )
        return (
            {
                "ok": True,
                "snapshot_index": snapshot.update_index,
                "head": self.engine.head,
                "items": snapshot.sketch.items_processed,
                "state_changes": snapshot.report.state_changes,
                "peak_words": snapshot.report.peak_words,
            },
            True,
        )

    def _op_stats(self, request: dict) -> tuple[dict, bool]:
        engine = self.engine
        cache = engine.answer_cache
        return (
            {
                "ok": True,
                "answer_cache": (
                    None
                    if cache is None
                    else {
                        "capacity": cache.capacity,
                        "entries": len(cache),
                        "hits": cache.hits,
                        "misses": cache.misses,
                    }
                ),
                "sketch": engine.sketch_name,
                "updates_behind": engine.updates_behind,
                "snapshot_every": engine.snapshot_every,
                "shards": engine.shards,
                "partition": engine.partition,
                "tracking": engine.tracking,
                "collectors": len(engine.collectors),
                "supports": sorted(str(k) for k in engine.supports),
                # head / snapshot_index / snapshots_taken plus the
                # snapshot-refresh metrics (refresh_* timings,
                # append-lock accounting, memoized-tree counters).
                **engine.stats(),
            },
            True,
        )

    def _op_shutdown(self, request: dict) -> tuple[dict, bool]:
        self.engine.finish()
        return {"ok": True, "head": self.engine.head}, False


class _LineHandler(socketserver.StreamRequestHandler):
    """One connection: JSON lines in, JSON lines out."""

    def handle(self) -> None:
        server: LiveServer = self.server  # type: ignore[assignment]
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except json.JSONDecodeError as error:
                response, alive = (
                    {"ok": False, "error": f"bad JSON: {error}"},
                    True,
                )
            else:
                response, alive = server.session.handle(request)
            self.wfile.write(
                (json.dumps(response) + "\n").encode("utf-8")
            )
            self.wfile.flush()
            if not alive:
                # shutdown() must come from outside the serve_forever
                # thread; handler threads qualify.
                threading.Thread(
                    target=server.shutdown, daemon=True
                ).start()
                return


class LiveServer(socketserver.ThreadingTCPServer):
    """Threaded JSON-lines TCP server around one :class:`LiveSession`.

    ``port=0`` binds an ephemeral port; read the actual one from
    :attr:`address`.  Each connection gets a handler thread; the
    engine's internal lock makes interleaved appends and queries from
    different connections safe, and queries that hit an existing
    snapshot never wait on an in-flight append.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        engine: LiveEngine,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        super().__init__((host, port), _LineHandler)
        self.session = LiveSession(engine)

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        host, port = self.server_address[:2]
        return str(host), int(port)


def serve(
    engine: LiveEngine,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: Any = None,
) -> None:
    """Run a :class:`LiveServer` until a ``shutdown`` verb arrives.

    ``ready`` (a callable) is invoked with the bound ``(host, port)``
    once the socket is listening — the CLI prints its "serving" line
    from it, which is what smoke tests wait on.
    """
    with LiveServer(engine, host, port) as server:
        if ready is not None:
            ready(server.address)
        server.serve_forever(poll_interval=0.05)


def request(
    host: str, port: int, payload: dict[str, Any], timeout: float = 10.0
) -> dict[str, Any]:
    """One-shot client helper: send one verb, return the response.

    Opens a connection per call — fine for tests and smoke checks;
    throughput-sensitive clients should hold one connection and
    stream lines.
    """
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.sendall((json.dumps(payload) + "\n").encode("utf-8"))
        reader = conn.makefile("r", encoding="utf-8")
        line = reader.readline()
    if not line:
        raise ConnectionError("server closed the connection mid-request")
    return json.loads(line)
