"""Serving plane: long-lived engines, online queries, subscriptions.

The batch pipeline (:class:`~repro.api.Engine`) ingests to completion
and then answers; this package is the live counterpart —
:class:`LiveEngine` interleaves appends with snapshot-consistent,
staleness-tagged queries, :mod:`collectors <repro.serve.collectors>`
turn standing queries into sampled time series (the paper's
state-changes-over-time curve is the built-in
:class:`StateChangesCollector`), :mod:`server <repro.serve.server>`
exposes it all over a JSON-lines socket (``repro serve``), and
:mod:`loadgen <repro.serve.loadgen>` measures queries/sec under a
configurable ingest rate.  See the "Serving plane" section of
``docs/ARCHITECTURE.md``.
"""

from repro.serve.collectors import (
    AuditCollector,
    Collector,
    QueryCollector,
    StateChangesCollector,
)
from repro.serve.engine import (
    DEFAULT_SNAPSHOT_EVERY,
    LiveAnswer,
    LiveEngine,
    LiveSnapshot,
)
from repro.serve.loadgen import (
    LoadReport,
    default_query_mix,
    generate_load,
)
from repro.serve.server import LiveServer, LiveSession, serve

__all__ = [
    "AuditCollector",
    "Collector",
    "DEFAULT_SNAPSHOT_EVERY",
    "LiveAnswer",
    "LiveEngine",
    "LiveServer",
    "LiveSession",
    "LiveSnapshot",
    "LoadReport",
    "QueryCollector",
    "StateChangesCollector",
    "default_query_mix",
    "generate_load",
    "serve",
]
