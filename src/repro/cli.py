"""Command-line interface: audit algorithms and reproduce experiments.

Six subcommands::

    python -m repro audit --algorithm heavy-hitters --workload zipf \
        --n 4096 --m 65536            # run one algorithm, print audit
    python -m repro run --algorithm count-min --workload bursty \
        --shards 4 --executor process # scenario x sketch x shards
    python -m repro shard --sketch count-min --shards 1,2,4,8 \
        --epsilon 0.1                 # sharded vs single-instance runs
    python -m repro serve --algorithm count-min --port 7391 \
        --snapshot-every 1024         # live JSON-lines serving socket
    python -m repro table1            # regenerate Table 1
    python -m repro reproduce --quick # run the main experiment suite

``audit`` can also read a stream of integers from a file (one item per
line) via ``--input``, which is how external traces are replayed; any
workload flag accepts every scenario registered in
:mod:`repro.workloads` (``bursty``, ``phase-shift``, ``trace-replay``,
...).

Subcommands run through the :class:`~repro.api.Engine` facade and the
unified query protocol: what gets printed for an algorithm follows its
declared capabilities (:attr:`~repro.registry.SketchSpec.supports`),
not ``hasattr`` probes, so every registered name works with ``audit``
and (if mergeable) ``shard``.
"""

from __future__ import annotations

import argparse
import importlib.metadata
import sys
from typing import Sequence

from repro import registry, workloads
from repro.api import Engine
from repro.nvm import NVM_PRESETS
from repro.runtime.parallel import DEFAULT_PIPELINE_DEPTH
from repro.query import (
    AllEstimates,
    Distinct,
    Entropy,
    HeavyHitters,
    Moment,
    QueryKind,
)
from repro.state import (
    BUDGET_POLICIES,
    TRACKING_MODES,
    WriteBudget,
    WriteBudgetExceededError,
)
from repro.streams import FrequencyVector


def _version() -> str:
    """Installed distribution version, falling back to the package's
    own ``__version__`` for PYTHONPATH-based checkouts."""
    try:
        return importlib.metadata.version("repro")
    except importlib.metadata.PackageNotFoundError:
        from repro import __version__

        return __version__


def _build_engine(name: str, **kwargs) -> Engine:
    """Construct an Engine, translating bad names into exit messages."""
    try:
        return Engine(name, **kwargs)
    except KeyError:
        raise SystemExit(
            f"unknown algorithm {name!r}; choose from {registry.names()}"
        ) from None
    except ValueError as error:
        raise SystemExit(str(error)) from None


def _workload_params(args: argparse.Namespace) -> dict:
    """Scenario knobs the CLI exposes, filtered to what the scenario takes."""
    spec = workloads.scenario_spec(args.workload)
    available = {
        "skew": getattr(args, "skew", None),
        "path": getattr(args, "trace", None),
    }
    return {
        key: value
        for key, value in available.items()
        if value is not None and key in spec.param_names
    }


def _generate_workload(args: argparse.Namespace) -> list[int]:
    """Materialize the named --workload, exiting on bad names/params."""
    try:
        return workloads.generate(
            args.workload,
            n=args.n,
            m=args.m,
            seed=args.seed,
            **_workload_params(args),
        )
    except KeyError:
        raise SystemExit(
            f"unknown workload {args.workload!r}; choose from "
            f"{workloads.scenario_names()}"
        ) from None
    except (ValueError, OSError) as error:
        # e.g. trace-replay without --trace, or an unreadable file.
        raise SystemExit(str(error)) from None


def _load_stream(args: argparse.Namespace) -> list[int]:
    """Stream from --input file or a generated workload."""
    if args.input:
        from repro.streams.traceio import read_trace

        return read_trace(args.input)
    return _generate_workload(args)


def _print_answers(engine: Engine, stream: list[int] | None = None) -> None:
    """Print the most specific answer the sketch's capabilities declare.

    What to print follows the declared capabilities, most specific
    kind first — no hasattr probes.
    """
    supports = engine.supports
    if QueryKind.HEAVY_HITTERS in supports:
        found = engine.query(HeavyHitters()).values
        print(f"heavy hitters: "
              f"{ {k: round(v) for k, v in sorted(found.items())} }")
    elif QueryKind.ALL_ESTIMATES in supports:
        estimates = engine.query(AllEstimates()).values
        top = sorted(estimates.items(), key=lambda kv: -kv[1])[:5]
        print(f"top estimates: { {k: round(v) for k, v in top} }")
    elif QueryKind.DISTINCT in supports:
        truth = f" (true {len(set(stream))})" if stream is not None else ""
        print(f"distinct estimate: "
              f"{engine.query(Distinct()).value:.1f}{truth}")
    elif QueryKind.MOMENT in supports:
        answer = engine.query(Moment())
        print(f"F{answer.p:g} estimate: {answer.value:.4g}")
    elif QueryKind.ENTROPY in supports:
        print(f"entropy estimate: "
              f"{engine.query(Entropy()).value:.3f} bits")


def _cmd_audit(args: argparse.Namespace) -> int:
    stream = _load_stream(args)
    n = args.n if not args.input else max(stream) + 1
    engine = _build_engine(
        args.algorithm,
        n=n,
        m=len(stream),
        epsilon=args.epsilon,
        seed=args.seed,
    )
    # The audit is the whole point here, so run on the trace backend
    # (per-cell wear histograms are worth the slower ingest).
    report = engine.run(stream, queries=(), tracking="trace")
    print(f"algorithm: {args.algorithm}")
    print(f"audit:     {report.audit.summary()}")
    print(f"writes:    {report.audit.total_writes} "
          f"(max cell wear {report.audit.max_cell_wear})")
    _print_answers(engine, stream)
    if args.truth:
        f = FrequencyVector.from_stream(stream)
        print(f"ground truth: F2={f.fp_moment(2):.4g} "
              f"H={f.shannon_entropy():.3f} distinct={len(f)}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    """One reproducible scenario × sketch × shard-count run."""
    try:
        workloads.scenario_spec(args.workload)
    except KeyError:
        raise SystemExit(
            f"unknown workload {args.workload!r}; choose from "
            f"{workloads.scenario_names()}"
        ) from None
    engine = _build_engine(
        args.algorithm,
        n=args.n,
        m=args.m,
        epsilon=args.epsilon,
        seed=args.seed,
        shards=args.shards,
        partition=args.partition,
        executor=args.executor,
        coin_protocol=args.coin_protocol,
        pipeline_depth=args.pipeline_depth,
        start_method=args.start_method,
    )
    workload = workloads.Workload(
        args.workload,
        n=args.n,
        m=args.m,
        seed=args.seed,
        params=_workload_params(args),
    )
    budget = None
    if args.budget is not None:
        if args.budget < 0:
            raise SystemExit(f"--budget must be >= 0: {args.budget}")
        budget = WriteBudget(args.budget, args.budget_policy)
    try:
        report = engine.run(
            workload=workload,
            tracking=args.tracking,
            budget=budget,
            budget_split=args.budget_split,
            nvm=args.nvm,
            nvm_cells=args.nvm_cells,
            chunk_size=args.chunk_size,
        )
    except WriteBudgetExceededError as error:
        # policy="raise" doing its job: surface the abort, not a trace.
        raise SystemExit(f"aborted: {error}") from None
    except (ValueError, OSError) as error:
        # e.g. trace-replay without a file, or an unreadable trace.
        raise SystemExit(str(error)) from None
    # report.summary() already carries the bracketed budget/NVM
    # outcome, so only the audit and per-shard details get own lines.
    print(report.summary())
    print(f"audit:   {report.audit.summary()}")
    if args.shards > 1:
        per_shard = ", ".join(
            str(shard.state_changes) for shard in report.shard_reports
        )
        print(f"shards:  state_changes=[{per_shard}] "
              f"skew={report.skew:.2f}")
        if report.shard_budgets:
            per_budget = ", ".join(
                f"{b.state_changes}/"
                f"{'inf' if b.limit == float('inf') else int(b.limit)}"
                for b in report.shard_budgets
            )
            print(f"         budgets=[{per_budget}]")
    _print_answers(engine)
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    from repro.experiments import (
        format_shard_scaling,
        is_scorable,
        shard_scaling,
    )

    try:
        shard_counts = tuple(
            int(part) for part in args.shards.split(",") if part.strip()
        )
    except ValueError:
        raise SystemExit(
            f"--shards must be a comma-separated list of ints: "
            f"{args.shards!r}"
        ) from None
    if not shard_counts or any(count < 1 for count in shard_counts):
        raise SystemExit(f"shard counts must be >= 1: {args.shards!r}")
    try:
        spec = registry.spec(args.sketch)
    except KeyError:
        raise SystemExit(
            f"unknown sketch {args.sketch!r}; choose from {registry.names()}"
        ) from None
    if not spec.mergeable and max(shard_counts) > 1:
        raise SystemExit(
            f"{args.sketch!r} is not mergeable and cannot be sharded; "
            f"mergeable sketches: {registry.mergeable_names()}"
        )
    if not is_scorable(spec.cls):
        raise SystemExit(
            f"{args.sketch!r} declares no scorable query kind "
            f"(point/moment/distinct/entropy); its capabilities: "
            f"{sorted(str(k) for k in spec.supports) or 'none'}"
        )
    try:
        workloads.scenario_spec(args.workload)
    except KeyError:
        raise SystemExit(
            f"unknown workload {args.workload!r}; choose from "
            f"{workloads.scenario_names()}"
        ) from None
    try:
        rows = shard_scaling(
            sketch=args.sketch,
            shard_counts=shard_counts,
            n=args.n,
            m=args.m,
            epsilon=args.epsilon,
            skew=args.skew,
            partition=args.partition,
            seed=args.seed,
            workload=args.workload,
            executor=args.executor,
            workload_params=_workload_params(args),
            chunk_size=args.chunk_size,
            coin_protocol=args.coin_protocol,
            pipeline_depth=args.pipeline_depth,
        )
    except (ValueError, OSError) as error:
        # e.g. trace-replay without --trace, or an unreadable file.
        raise SystemExit(str(error)) from None
    print(format_shard_scaling(rows, args.sketch, args.partition))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the live serving engine behind the JSON-lines socket."""
    from repro.serve import LiveEngine, LiveSession
    from repro.serve.server import serve as serve_forever
    from repro.state import WriteBudget as _WriteBudget

    budget = None
    if args.budget is not None:
        if args.budget < 0:
            raise SystemExit(f"--budget must be >= 0: {args.budget}")
        budget = _WriteBudget(args.budget, args.budget_policy)
    try:
        engine = LiveEngine(
            args.algorithm,
            n=args.n,
            m=args.m,
            epsilon=args.epsilon,
            seed=args.seed,
            shards=args.shards,
            partition=args.partition,
            snapshot_every=args.snapshot_every,
            tracking=args.tracking,
            budget=budget,
            coin_protocol=args.coin_protocol,
            snapshot_mode=args.snapshot_mode,
            answer_cache=args.answer_cache,
        )
    except KeyError:
        raise SystemExit(
            f"unknown algorithm {args.algorithm!r}; "
            f"choose from {registry.names()}"
        ) from None
    except ValueError as error:
        raise SystemExit(str(error)) from None

    def ready(address: tuple[str, int]) -> None:
        host, port = address
        print(
            f"serving {args.algorithm} on {host}:{port} "
            f"(snapshot_every={args.snapshot_every}, "
            f"verbs: {', '.join(LiveSession.verbs())})",
            flush=True,
        )

    try:
        serve_forever(engine, host=args.host, port=args.port, ready=ready)
    except OSError as error:  # e.g. port already bound
        raise SystemExit(str(error)) from None
    except KeyboardInterrupt:
        pass
    print(f"shutdown: head={engine.head} "
          f"state_changes={engine.snapshot().report.state_changes}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments import format_table1, run_table1

    rows = run_table1(n=args.n, m=args.m, epsilon=args.epsilon, seed=args.seed)
    print(format_table1(rows, args.n, args.m or 8 * args.n))
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments import (
        budget_advantage_curve,
        eviction_ablation,
        format_budget_curve,
        format_eviction_ablation,
        format_morris_tradeoff,
        format_table1,
        fp_accuracy,
        heavy_hitter_accuracy,
        morris_tradeoff,
        run_table1,
    )

    trials = 3 if args.quick else 10
    print(format_table1(run_table1(seed=args.seed), 2**14, 2**17))
    print()
    print(heavy_hitter_accuracy(trials=trials, seed=args.seed).format())
    print(fp_accuracy(trials=trials, epsilon_target=0.75, seed=args.seed).format())
    print()
    print(format_morris_tradeoff(morris_tradeoff(count=20000, trials=trials)))
    print()
    print(format_budget_curve(
        budget_advantage_curve(trials=5 if args.quick else 20, seed=args.seed),
        4096, 2.0,
    ))
    print()
    print(format_eviction_ablation(eviction_ablation(trials=trials, seed=args.seed)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Streaming algorithms with few state changes "
        "(PODS 2024 reproduction)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    audit = sub.add_parser("audit", help="run one algorithm, print its audit")
    audit.add_argument("--algorithm", default="heavy-hitters")
    audit.add_argument("--workload", default="zipf",
                       help="registered workload scenario name")
    audit.add_argument("--trace",
                       help="trace file for --workload trace-replay")
    audit.add_argument("--input", help="file of integers, one per line")
    audit.add_argument("--n", type=int, default=4096)
    audit.add_argument("--m", type=int, default=65536)
    audit.add_argument("--skew", type=float, default=1.2)
    audit.add_argument("--epsilon", type=float, default=0.5)
    audit.add_argument("--seed", type=int, default=0)
    audit.add_argument("--truth", action="store_true",
                       help="also compute exact ground truth")
    audit.set_defaults(func=_cmd_audit)

    run = sub.add_parser(
        "run",
        help="one scenario x sketch x shard-count run via the Engine",
    )
    run.add_argument("--algorithm", default="count-min")
    run.add_argument("--workload", default="zipf",
                     help="registered workload scenario name")
    run.add_argument("--trace",
                     help="trace file for --workload trace-replay")
    run.add_argument("--shards", type=int, default=1)
    run.add_argument("--coin-protocol", default=None,
                     choices=("v1", "v2"), dest="coin_protocol",
                     help="force the randomized families' coin protocol "
                          "(v1: sequential RNG; v2: indexed Philox coins)")
    run.add_argument("--executor", default="serial",
                     choices=["serial", "thread", "process"])
    run.add_argument("--pipeline-depth", type=int,
                     default=DEFAULT_PIPELINE_DEPTH, dest="pipeline_depth",
                     help="ring-buffer slots per shard for the pipelined "
                          "process executor (0: barrier pool)")
    run.add_argument("--start-method", default=None, dest="start_method",
                     choices=["fork", "forkserver", "spawn"],
                     help="multiprocessing start method (default: fork "
                          "when single-threaded, else forkserver/spawn)")
    run.add_argument("--partition", default="hash",
                     choices=["hash", "round-robin"])
    run.add_argument("--n", type=int, default=4096)
    run.add_argument("--m", type=int, default=65536)
    run.add_argument("--skew", type=float, default=None,
                     help="skew override for skew-parameterized scenarios")
    run.add_argument("--epsilon", type=float, default=0.5)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--tracking", default="aggregate",
                     choices=list(TRACKING_MODES),
                     help="state-accounting backend for the run")
    run.add_argument("--budget", type=int, default=None,
                     help="cap on state changes (enforced by the "
                          "budget backend)")
    run.add_argument("--budget-policy", default="raise",
                     choices=list(BUDGET_POLICIES),
                     help="what happens past the budget")
    run.add_argument("--budget-split", default="even",
                     choices=["even", "replicate"],
                     help="divide the budget across shards, or give "
                          "each shard the full limit")
    run.add_argument("--nvm", default=None,
                     choices=sorted(NVM_PRESETS),
                     help="price the run on a memory technology "
                          "(implies --tracking trace, serial executor)")
    run.add_argument("--nvm-cells", type=int, default=1024,
                     help="physical cells of the simulated NVM device")
    run.add_argument("--chunk-size", type=int, default=None,
                     help="items per columnar ingest chunk (default: "
                          "the stream's own chunking)")
    run.set_defaults(func=_cmd_run)

    shard = sub.add_parser(
        "shard",
        help="compare sharded ingestion against a single instance",
    )
    shard.add_argument("--sketch", default="count-min")
    shard.add_argument("--shards", default="1,2,4,8",
                       help="comma-separated shard counts")
    shard.add_argument("--partition", default="hash",
                       choices=["hash", "round-robin"])
    shard.add_argument("--executor", default="serial",
                       choices=["serial", "thread", "process"])
    shard.add_argument("--pipeline-depth", type=int,
                       default=DEFAULT_PIPELINE_DEPTH,
                       dest="pipeline_depth",
                       help="ring-buffer slots per shard for the "
                            "pipelined process executor (0: barrier pool)")
    shard.add_argument("--workload", default="zipf",
                       help="registered workload scenario name")
    shard.add_argument("--trace",
                       help="trace file for --workload trace-replay")
    shard.add_argument("--n", type=int, default=4096)
    shard.add_argument("--m", type=int, default=65536)
    shard.add_argument("--skew", type=float, default=1.2)
    shard.add_argument("--epsilon", type=float, default=0.1)
    shard.add_argument("--seed", type=int, default=0)
    shard.add_argument("--chunk-size", type=int, default=None,
                       help="items per columnar ingest chunk (default: "
                            "the stream's own chunking)")
    shard.add_argument("--coin-protocol", default=None,
                       choices=("v1", "v2"), dest="coin_protocol",
                       help="force the randomized families' coin protocol "
                            "(v1: sequential RNG; v2: indexed Philox coins)")
    shard.set_defaults(func=_cmd_shard)

    serve = sub.add_parser(
        "serve",
        help="live serving: JSON-lines socket over a LiveEngine",
    )
    serve.add_argument("--algorithm", default="count-min")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0: pick an ephemeral port and "
                            "print it)")
    serve.add_argument("--shards", type=int, default=1)
    serve.add_argument("--partition", default="hash",
                       choices=["hash", "round-robin"])
    serve.add_argument("--snapshot-every", type=int, default=8192,
                       dest="snapshot_every",
                       help="snapshot cadence in updates (collector "
                            "sampling interval)")
    serve.add_argument("--n", type=int, default=4096)
    serve.add_argument("--m", type=int, default=65536)
    serve.add_argument("--epsilon", type=float, default=0.5)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--tracking", default="aggregate",
                       choices=list(TRACKING_MODES),
                       help="state-accounting backend for the live run")
    serve.add_argument("--budget", type=int, default=None,
                       help="cap on state changes (enforced by the "
                            "budget backend)")
    serve.add_argument("--budget-policy", default="raise",
                       choices=list(BUDGET_POLICIES),
                       help="what happens past the budget")
    serve.add_argument("--coin-protocol", default=None,
                       choices=("v1", "v2"), dest="coin_protocol",
                       help="force the randomized families' coin protocol")
    serve.add_argument("--snapshot-mode", default="incremental",
                       choices=["incremental", "full"],
                       dest="snapshot_mode",
                       help="snapshot refresh strategy: memoized "
                            "merge tree vs full rebuild (both are "
                            "bit-identical)")
    serve.add_argument("--answer-cache", type=int, default=256,
                       dest="answer_cache",
                       help="snapshot-keyed answer cache capacity "
                            "(0: disable)")
    serve.set_defaults(func=_cmd_serve)

    table1 = sub.add_parser("table1", help="regenerate Table 1")
    table1.add_argument("--n", type=int, default=2**14)
    table1.add_argument("--m", type=int, default=None)
    table1.add_argument("--epsilon", type=float, default=0.5)
    table1.add_argument("--seed", type=int, default=0)
    table1.set_defaults(func=_cmd_table1)

    reproduce = sub.add_parser(
        "reproduce", help="run the main experiment suite"
    )
    reproduce.add_argument("--quick", action="store_true")
    reproduce.add_argument("--seed", type=int, default=0)
    reproduce.set_defaults(func=_cmd_reproduce)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
