"""State-change accounting backends: the instrumented memory all
algorithms run on.

Every streaming algorithm in this library — the paper's algorithms and
the Table 1 baselines alike — stores its working memory in *tracked
registers* (:mod:`repro.state.registers`) bound to a single tracker
backend.  The backend implements the paper's cost model (Section 1.5):

* ``tick()`` is called exactly once per stream update; if any register
  cell changed value since the previous tick, the update counts as one
  *state change* (``X_t = 1``).
* Writes that store the value already present do **not** change the
  state (``sigma_t == sigma_{t-1}``) and are counted separately as
  ``silent`` write attempts.
* Space is accounted in *words*; allocation and deallocation update a
  live-word counter whose maximum is the reported space usage.

Accounting is **pluggable**: the cost model has one definition but
several deployments, and the backend class decides what one write
costs in bookkeeping:

* :class:`AggregateBackend` — the default fast path.  Scalar counters
  only (``__slots__``-backed, no per-cell ``Counter``, no listener
  machinery at all), so the ingest hot loop pays two integer
  increments per write.  This is what the runtime and the
  :class:`~repro.api.Engine` run on unless asked otherwise.
* :class:`TraceBackend` — the full observability mode: per-cell
  mutation histogram plus the listener interface that downstream
  consumers (the NVM wear simulator in :mod:`repro.nvm`, audits)
  subscribe to.  ``StateTracker`` — the substrate's historical name —
  is an alias of this class, so directly-constructed sketches keep
  their full audit.
* :class:`BudgetBackend` — enforces a
  :class:`~repro.state.budget.WriteBudget`: the run may change state
  at most ``limit`` times, and the budget's policy (``raise`` /
  ``freeze`` / ``degrade``) decides what happens to the excess.  This
  generalizes the lower-bound strawman of Theorem 1.2/1.4 — *any*
  sketch can run as "an algorithm with at most ``B`` state changes".

All backends report identical :class:`StateChangeReport` aggregate
fields on identical runs (an unlimited budget denies nothing); only
the per-cell histogram, the listener stream, and the enforcement
differ.  Backend identity and budget remainders survive
``to_state()``/``load_state()`` round trips bit for bit, which is what
the process executor's serial-equivalence guarantee rests on.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable, Protocol

from repro.state.budget import (
    BudgetReport,
    WriteBudget,
    WriteBudgetExceededError,
)
from repro.state.report import StateChangeReport

#: Signature of a write listener: ``(timestep, cell_id, mutated)``.
WriteListener = Callable[[int, str, bool], None]

#: Valid ``tracking=`` mode names, in documentation order.
TRACKING_MODES = ("aggregate", "trace", "budget")


class SupportsWriteListener(Protocol):
    """Objects that can observe the write trace (e.g. an NVM device)."""

    def on_write(self, timestep: int, cell_id: str, mutated: bool) -> None:
        """Called for every write attempt issued through the tracker."""


class TrackerBackend:
    """Shared counters and clock of every accounting backend.

    The base class *is* the aggregate fast path: scalar counters, no
    per-cell state, no listeners.  Subclasses layer observability
    (:class:`TraceBackend`) or enforcement (:class:`BudgetBackend`) on
    top of the same interface, so registers and sketches are backend-
    agnostic.

    Two write entry points exist so the hot path can skip cell-label
    construction entirely: registers call :meth:`record_write` (with a
    cell id) only when :attr:`needs_cell_ids` is set, and the label-
    free :meth:`count_write` otherwise.  Both return ``True`` iff the
    write may be applied — only budget policies ever answer ``False``.
    """

    #: Backend mode name, serialized into snapshots.
    kind: str = "aggregate"
    #: Whether registers must construct per-cell labels for writes.
    needs_cell_ids: bool = False

    __slots__ = (
        "_timestep",
        "_dirty",
        "_state_changes",
        "_total_writes",
        "_write_attempts",
        "_current_words",
        "_peak_words",
        "_next_cell_id",
    )

    def __init__(self) -> None:
        self._timestep = 0
        self._dirty = False
        self._state_changes = 0
        self._total_writes = 0
        self._write_attempts = 0
        self._current_words = 0
        self._peak_words = 0
        self._next_cell_id = 0

    def fresh_cell_id(self, prefix: str) -> str:
        """Deterministic id for a dynamically created counter cell.

        Ids are numbered per tracker (not per process), so rebuilding a
        sketch from a snapshot — possibly in a different worker process
        — reproduces the exact same cell labels as the original
        construction.  The sharded runtime's process executor relies on
        this for byte-identical serial/parallel audits.
        """
        cell_id = f"{prefix}#{self._next_cell_id}"
        self._next_cell_id += 1
        return cell_id

    # ------------------------------------------------------------------
    # Stream clock
    # ------------------------------------------------------------------
    @property
    def timestep(self) -> int:
        """Number of ``tick()`` calls so far (the stream position ``t``)."""
        return self._timestep

    def tick(self) -> bool:
        """Advance the stream clock by one update.

        Returns True iff the state changed during the update that just
        ended (the paper's indicator ``X_t``).
        """
        changed = self._dirty
        if changed:
            self._state_changes += 1
        self._dirty = False
        self._timestep += 1
        return changed

    # ------------------------------------------------------------------
    # Write path (called by tracked registers)
    # ------------------------------------------------------------------
    def count_write(self, mutated: bool) -> bool:
        """Record one label-free write attempt; returns "apply it?".

        ``mutated`` is False when the stored value equals the previous
        contents; such writes are "silent" and do not set the dirty
        flag (the memory state is unchanged, so
        ``sigma_t == sigma_{t-1}``).
        """
        self._write_attempts += 1
        if mutated:
            self._total_writes += 1
            self._dirty = True
        return True

    def record_write(self, cell_id: str, mutated: bool) -> bool:
        """Record one write attempt against ``cell_id``.

        The base backend keeps no per-cell state, so the label is
        dropped; :class:`TraceBackend` overrides this to feed the
        histogram and the listeners.
        """
        return self.count_write(mutated)

    def mark_dirty(self) -> bool:
        """Force the current update to count as a state change.

        Used for structural mutations that have no single-cell identity
        (e.g. freeing a block of counters).  Returns ``True`` iff the
        mutation was admitted (budget policies may answer ``False``).
        """
        self._dirty = True
        return True

    # ------------------------------------------------------------------
    # Bulk write path (called by vectorized chunk kernels)
    # ------------------------------------------------------------------
    @property
    def has_listeners(self) -> bool:
        """Whether per-write observers are attached (trace backend only).

        Listeners need one callback per write in stream order, which a
        bulk-accounted chunk cannot replay — chunked ingest falls back
        to the scalar loop while this is True.
        """
        return False

    def bulk_admit(self, k: int) -> int:
        """Longest prefix of the next ``k`` updates that may run
        without per-update admission gating.

        Unbudgeted backends admit everything.  Budget backends bound
        the prefix so no update inside it can be denied or aborted
        (every update causes at most one state change), returning 0
        once exhausted — the signal to fall back to the per-update
        scalar gate, which implements the policy exactly.
        """
        return k

    def record_chunk(
        self,
        updates: int,
        state_changes: int,
        writes: int,
        attempts: int,
        cell_writes: dict[str, int] | None = None,
    ) -> None:
        """Account a whole ingested chunk in one call.

        ``updates`` ticks are advanced at once, of which
        ``state_changes`` had ``X_t = 1``; ``writes`` mutating writes
        out of ``attempts`` attempts are charged.  Vectorized kernels
        compute these counts exactly (per family, per chunk), so a
        chunked run reports the identical audit a scalar run would —
        the backends just skip the per-item bookkeeping dispatch.

        ``cell_writes`` (cell id → mutation count) feeds the trace
        backend's wear histogram; other backends ignore it, matching
        :meth:`record_write` dropping labels.
        """
        if updates < 0 or not 0 <= state_changes <= updates:
            raise ValueError(
                f"need 0 <= state_changes <= updates: "
                f"{state_changes}, {updates}"
            )
        if writes < 0 or attempts < writes:
            raise ValueError(
                f"need 0 <= writes <= attempts: {writes}, {attempts}"
            )
        self._timestep += updates
        self._state_changes += state_changes
        self._total_writes += writes
        self._write_attempts += attempts

    # ------------------------------------------------------------------
    # Space accounting (words)
    # ------------------------------------------------------------------
    def allocate(self, words: int) -> None:
        """Account for ``words`` newly-live memory words."""
        if words < 0:
            raise ValueError(f"cannot allocate negative words: {words}")
        self._current_words += words
        if self._current_words > self._peak_words:
            self._peak_words = self._current_words

    def free(self, words: int) -> None:
        """Release ``words`` previously-allocated memory words."""
        if words < 0:
            raise ValueError(f"cannot free negative words: {words}")
        if words > self._current_words:
            raise ValueError(
                f"freeing {words} words but only {self._current_words} live"
            )
        self._current_words -= words

    # ------------------------------------------------------------------
    # Distributed runs: audit merging and serialization
    # ------------------------------------------------------------------
    def merge_child(self, other: "TrackerBackend") -> None:
        """Fold a merged shard's audit into this tracker.

        Every counter is combined additively — the merged tracker
        describes the *distributed run as a whole*: its stream length,
        state changes, writes, wear histogram, and space are the sums
        over both shards (both shards' memory was live during the run,
        so peak and current words add too).  Consequently the merged
        :meth:`report` equals the elementwise sum of the shard reports.
        """
        if other is self:
            raise ValueError("cannot merge a tracker into itself")
        self._timestep += other._timestep
        self._state_changes += other._state_changes
        self._total_writes += other._total_writes
        self._write_attempts += other._write_attempts
        self._current_words += other._current_words
        self._peak_words += other._peak_words
        self._dirty = self._dirty or other._dirty

    def _histogram(self) -> dict[str, int]:
        """Per-cell mutation counts (empty unless the backend traces)."""
        return {}

    def _fresh(self) -> "TrackerBackend":
        """A new, empty backend carrying this backend's configuration."""
        return type(self)()

    def clone(self) -> "TrackerBackend":
        """Duplicate every counter into a new backend of the same mode.

        The fast-path twin of ``tracker_from_state(to_state())`` +
        :meth:`load_state`, and bit-identical to it: the dirty flag
        resets (a restored tracker never carries an in-flight update)
        and listeners are not carried over.  ``_next_cell_id`` *is*
        copied so a clone that later creates cells labels them exactly
        as the original would.
        """
        dup = self._fresh()
        dup._timestep = self._timestep
        dup._state_changes = self._state_changes
        dup._total_writes = self._total_writes
        dup._write_attempts = self._write_attempts
        dup._current_words = self._current_words
        dup._peak_words = self._peak_words
        dup._next_cell_id = self._next_cell_id
        dup._dirty = False
        return dup

    def to_state(self) -> dict:
        """Snapshot every counter into a JSON-safe dict.

        The snapshot is self-describing: the ``"backend"`` tag (plus
        budget extras, see :class:`BudgetBackend`) lets
        :func:`tracker_from_state` rebuild the same backend in another
        process, so accounting mode and budget remainders survive the
        executor round trip bit-identically.
        """
        return {
            "backend": self.kind,
            "timestep": self._timestep,
            "state_changes": self._state_changes,
            "total_writes": self._total_writes,
            "write_attempts": self._write_attempts,
            "current_words": self._current_words,
            "peak_words": self._peak_words,
            "cell_writes": dict(self._histogram()),
        }

    def load_state(self, state: dict) -> None:
        """Overwrite every counter from a :meth:`to_state` snapshot.

        Used when a sketch is restored from a checkpoint: the snapshot
        already accounts for the words the constructor re-allocated, so
        the restore replaces (not adds to) the current counters.
        """
        self._timestep = int(state["timestep"])
        self._state_changes = int(state["state_changes"])
        self._total_writes = int(state["total_writes"])
        self._write_attempts = int(state["write_attempts"])
        self._current_words = int(state["current_words"])
        self._peak_words = int(state["peak_words"])
        self._dirty = False

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    @property
    def state_changes(self) -> int:
        """Number of updates whose processing mutated the state."""
        return self._state_changes

    @property
    def total_writes(self) -> int:
        """Number of cell mutations across the whole run."""
        return self._total_writes

    @property
    def peak_words(self) -> int:
        """High-water mark of live words."""
        return self._peak_words

    @property
    def current_words(self) -> int:
        """Words live right now."""
        return self._current_words

    def report(self) -> StateChangeReport:
        """Snapshot the audit into an immutable report."""
        return StateChangeReport(
            stream_length=self._timestep,
            state_changes=self._state_changes,
            total_writes=self._total_writes,
            total_write_attempts=self._write_attempts,
            peak_words=self._peak_words,
            current_words=self._current_words,
            cell_writes=dict(self._histogram()),
        )


class AggregateBackend(TrackerBackend):
    """The default fast path: scalar counters only.

    No per-cell histogram, no listener dispatch, nothing per write
    beyond two integer increments.  Registers bound to this backend
    skip cell-label construction entirely (:attr:`needs_cell_ids` is
    False), which is where most of the ingest speedup over
    :class:`TraceBackend` comes from
    (``benchmarks/bench_throughput.py``).
    """

    __slots__ = ()


class TraceBackend(TrackerBackend):
    """Full observability: per-cell wear histogram + write listeners.

    This is the substrate's historical behaviour (``StateTracker`` is
    an alias).  Audits that need :attr:`StateChangeReport.cell_writes`
    or :attr:`~StateChangeReport.max_cell_wear`, and consumers of the
    raw write trace (the NVM simulator), run on this backend.

    Parameters
    ----------
    record_cells:
        When True (default), keep the per-cell mutation histogram.
        Turn off for very large experiments where only the listener
        stream matters.
    """

    kind = "trace"
    needs_cell_ids = True

    __slots__ = ("_record_cells", "_cell_writes", "_listeners")

    def __init__(self, record_cells: bool = True) -> None:
        super().__init__()
        self._record_cells = record_cells
        self._cell_writes: Counter[str] = Counter()
        self._listeners: list[WriteListener] = []

    def record_write(self, cell_id: str, mutated: bool) -> bool:
        self._write_attempts += 1
        if mutated:
            self._total_writes += 1
            self._dirty = True
            if self._record_cells:
                self._cell_writes[cell_id] += 1
        for listener in self._listeners:
            listener(self._timestep, cell_id, mutated)
        return True

    def count_write(self, mutated: bool) -> bool:
        # Registers always hand this backend real cell ids
        # (needs_cell_ids is True); direct label-free callers still get
        # correct aggregate accounting under a synthetic label.
        return self.record_write("(untraced)", mutated)

    @property
    def has_listeners(self) -> bool:
        return bool(self._listeners)

    def record_chunk(
        self,
        updates: int,
        state_changes: int,
        writes: int,
        attempts: int,
        cell_writes: dict[str, int] | None = None,
    ) -> None:
        """Bulk accounting plus the per-cell wear histogram.

        Callers must not bulk-account while listeners are attached
        (checked here; chunked ingest already falls back on
        :attr:`has_listeners`) — a listener expects one callback per
        write, which a folded chunk cannot replay.
        """
        if self._listeners:
            raise RuntimeError(
                "cannot bulk-account a chunk while write listeners are "
                "attached; ingest through the scalar path instead"
            )
        super().record_chunk(
            updates, state_changes, writes, attempts, cell_writes
        )
        if self._record_cells and cell_writes:
            self._cell_writes.update(cell_writes)

    def add_listener(self, listener: WriteListener) -> None:
        """Subscribe ``listener`` to the raw write trace."""
        self._listeners.append(listener)

    def remove_listener(self, listener: WriteListener) -> None:
        """Unsubscribe a previously added listener."""
        self._listeners.remove(listener)

    def merge_child(self, other: TrackerBackend) -> None:
        """Fold a shard's audit in, aggregating wear by *cell label*.

        Labels are per tracker (``table[r][c]``, ``morris#0``, ...), so
        two shards' physically distinct cells with the same label sum
        into one entry — the merged ``max_cell_wear`` is a per-label
        total, not a per-device maximum.  Per-device wear bounds should
        be read off the per-shard reports, which remain exact.
        """
        super().merge_child(other)
        if self._record_cells:
            self._cell_writes.update(other._histogram())

    def _histogram(self) -> dict[str, int]:
        return self._cell_writes

    def _fresh(self) -> "TrackerBackend":
        return TraceBackend(record_cells=self._record_cells)

    def clone(self) -> "TrackerBackend":
        dup = super().clone()
        dup._cell_writes = Counter(self._cell_writes)
        return dup

    def to_state(self) -> dict:
        state = super().to_state()
        state["record_cells"] = self._record_cells
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self._record_cells = bool(state.get("record_cells", True))
        self._cell_writes = Counter(
            {
                str(cell): int(count)
                for cell, count in state.get("cell_writes", {}).items()
            }
        )


#: Historical name of the full-observability tracker; every sketch
#: constructed without an explicit backend still runs on it.
StateTracker = TraceBackend


class BudgetBackend(TrackerBackend):
    """Aggregate accounting plus an enforced write budget.

    The budget caps *state changes* (the paper's ``sum_t X_t``), not
    write attempts: all mutations inside one already-admitted update
    belong to the same state change and are free.  Enforcement has two
    hooks:

    * :meth:`admit_update` — consulted by
      :meth:`~repro.state.algorithm.Sketch.process` /
      :meth:`~repro.state.algorithm.Sketch.process_many` before each
      update.  Once the budget is exhausted, ``freeze`` denies every
      further update (the sketch's memory is effectively read-only —
      no partially-applied updates, no stuck eviction loops) and
      ``degrade`` admits a geometrically thinning trickle (the 1st,
      2nd, 4th, 8th, … denied update is let through).
    * :meth:`count_write` / :meth:`record_write` / :meth:`mark_dirty`
      — the ``raise`` policy aborts precisely at the first write that
      would cause state change ``limit + 1``, and denied direct writes
      under the other policies are refused (registers do not apply
      them).

    Policy decisions are pure functions of the serialized counters, so
    a budgeted run resumed from a snapshot — or re-executed in a
    worker process — makes bit-identical admissions.
    """

    kind = "budget"

    __slots__ = (
        "_budget",
        "_limit",
        "_denied",
        "_denied_since_admit",
        "_stride",
    )

    def __init__(
        self, budget: WriteBudget | int | float | None = None
    ) -> None:
        super().__init__()
        if budget is None:
            budget = WriteBudget(math.inf)
        elif not isinstance(budget, WriteBudget):
            budget = WriteBudget(budget)
        self._budget = budget
        self._limit = budget.limit
        self._denied = 0
        self._denied_since_admit = 0
        self._stride = 1

    @property
    def budget(self) -> WriteBudget:
        """The enforced budget (immutable)."""
        return self._budget

    @property
    def exhausted(self) -> bool:
        """Whether the limit has been reached."""
        return self._state_changes >= self._limit

    @property
    def denied(self) -> int:
        """Updates (or direct writes) the policy has turned away."""
        return self._denied

    # ------------------------------------------------------------------
    # Enforcement
    # ------------------------------------------------------------------
    def admit_update(self) -> bool:
        """Whether the next stream update may mutate state.

        The sketch's clock discipline calls this once per update; a
        denied update is skipped wholesale (its tick still advances the
        stream clock, with ``X_t = 0``).
        """
        if self._state_changes < self._limit:
            return True
        policy = self._budget.policy
        if policy == "raise":
            # Precise enforcement happens at the first mutating write
            # (a silent update after exhaustion is still legal).
            return True
        if (
            policy == "degrade"
            and self._denied_since_admit >= self._stride
        ):
            self._stride <<= 1
            self._denied_since_admit = 0
            return True
        self._denied += 1
        self._denied_since_admit += 1
        return False

    def _admit_write(self) -> bool:
        """Policy decision for a state-changing write past the limit."""
        policy = self._budget.policy
        if policy == "raise":
            raise WriteBudgetExceededError(self._limit, self._timestep)
        if policy == "degrade":
            # The update-level gate admitted this update; its writes
            # all belong to the one admitted state change.
            return True
        self._denied += 1
        return False

    def count_write(self, mutated: bool) -> bool:
        self._write_attempts += 1
        if mutated:
            if not self._dirty and self._state_changes >= self._limit:
                if not self._admit_write():
                    return False
            self._total_writes += 1
            self._dirty = True
        return True

    # ------------------------------------------------------------------
    # Bulk write path
    # ------------------------------------------------------------------
    def bulk_admit(self, k: int) -> int:
        """Prefix of the next ``k`` updates that needs no gating.

        Each update causes at most one state change, so before the
        ``i``-th update of the prefix the spent budget is at most
        ``state_changes + i - 1 < limit`` — no policy (deny or raise)
        can trigger inside it.  Once exhausted the answer is 0 and
        chunked ingest falls back to the per-update gate, which cuts
        over at the exact update index a scalar run would.
        """
        remaining = self._limit - self._state_changes
        if remaining <= 0:
            return 0
        if math.isinf(remaining):
            return k
        return min(k, int(remaining))

    def record_chunk(
        self,
        updates: int,
        state_changes: int,
        writes: int,
        attempts: int,
        cell_writes: dict[str, int] | None = None,
    ) -> None:
        if self._state_changes + state_changes > self._limit:
            raise ValueError(
                f"bulk-accounting {state_changes} state changes would "
                f"overrun the budget ({self._state_changes} of "
                f"{self._limit} spent); gate the chunk with bulk_admit()"
            )
        super().record_chunk(
            updates, state_changes, writes, attempts, cell_writes
        )

    def mark_dirty(self) -> bool:
        if not self._dirty and self._state_changes >= self._limit:
            if not self._admit_write():
                return False
        self._dirty = True
        return True

    # ------------------------------------------------------------------
    # Reporting and serialization
    # ------------------------------------------------------------------
    def budget_report(self) -> BudgetReport:
        """How the budget was spent so far."""
        return BudgetReport(
            limit=self._limit,
            policy=self._budget.policy,
            state_changes=self._state_changes,
            denied=self._denied,
            exhausted=self.exhausted,
        )

    def _fresh(self) -> "TrackerBackend":
        return BudgetBackend(self._budget)

    def clone(self) -> "TrackerBackend":
        dup = super().clone()
        dup._denied = self._denied
        dup._denied_since_admit = self._denied_since_admit
        dup._stride = self._stride
        return dup

    def merge_child(self, other: TrackerBackend) -> None:
        """Fold a shard in; per-shard limits and denials add."""
        super().merge_child(other)
        if isinstance(other, BudgetBackend):
            self._limit += other._limit
            self._denied += other._denied
            # Keep the public budget value consistent with the folded
            # limit: after a merge this tracker describes the whole
            # distributed run.
            self._budget = WriteBudget(self._limit, self._budget.policy)

    def to_state(self) -> dict:
        state = super().to_state()
        state["budget"] = {
            "limit": None if self._limit == math.inf else int(self._limit),
            "policy": self._budget.policy,
            "denied": self._denied,
            "denied_since_admit": self._denied_since_admit,
            "stride": self._stride,
        }
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        budget = state.get("budget") or {}
        limit = budget.get("limit")
        policy = budget.get("policy", self._budget.policy)
        self._budget = WriteBudget(
            math.inf if limit is None else int(limit), policy
        )
        self._limit = self._budget.limit
        self._denied = int(budget.get("denied", 0))
        self._denied_since_admit = int(budget.get("denied_since_admit", 0))
        self._stride = int(budget.get("stride", 1))


# ----------------------------------------------------------------------
# Backend construction
# ----------------------------------------------------------------------
def make_tracker(
    tracking: str = "aggregate",
    *,
    budget: WriteBudget | int | float | None = None,
    record_cells: bool = True,
) -> TrackerBackend:
    """Build a tracker backend from a mode name.

    Passing a ``budget`` selects the budget backend regardless of the
    default ``tracking`` value (a budget *is* a tracking mode);
    combining a budget with an explicit ``tracking="trace"`` is
    rejected, because the budget backend keeps no per-cell state.
    """
    if budget is not None:
        if tracking not in ("aggregate", "budget"):
            raise ValueError(
                f"a write budget runs on the 'budget' backend, not "
                f"{tracking!r}; drop tracking= or pass tracking='budget'"
            )
        return BudgetBackend(budget)
    if tracking == "aggregate":
        return AggregateBackend()
    if tracking == "trace":
        return TraceBackend(record_cells=record_cells)
    if tracking == "budget":
        return BudgetBackend()
    raise ValueError(
        f"unknown tracking mode {tracking!r}; choose from {TRACKING_MODES}"
    )


def tracker_from_state(state: dict) -> TrackerBackend:
    """Rebuild the backend a :meth:`TrackerBackend.to_state` snapshot
    came from (mode, budget configuration), with fresh counters.

    Legacy snapshots without a ``"backend"`` tag predate the backend
    architecture, when every tracker carried the full trace semantics —
    they restore as :class:`TraceBackend`.
    """
    kind = state.get("backend", "trace")
    if kind == "aggregate":
        return AggregateBackend()
    if kind == "trace":
        return TraceBackend(
            record_cells=bool(state.get("record_cells", True))
        )
    if kind == "budget":
        budget = state.get("budget") or {}
        limit = budget.get("limit")
        return BudgetBackend(
            WriteBudget(
                math.inf if limit is None else int(limit),
                budget.get("policy", "raise"),
            )
        )
    raise ValueError(
        f"unknown tracker backend {kind!r}; choose from {TRACKING_MODES}"
    )
