"""State-change accounting: the instrumented memory all algorithms run on.

Every streaming algorithm in this library — the paper's algorithms and
the Table 1 baselines alike — stores its working memory in *tracked
registers* (:mod:`repro.state.registers`) bound to a single
:class:`StateTracker`.  The tracker implements the paper's cost model
(Section 1.5):

* ``tick()`` is called exactly once per stream update; if any register
  cell changed value since the previous tick, the update counts as one
  *state change* (``X_t = 1``).
* Writes that store the value already present do **not** change the
  state (``sigma_t == sigma_{t-1}``) and are counted separately as
  ``silent`` write attempts.
* Space is accounted in *words*; allocation and deallocation update a
  live-word counter whose maximum is the reported space usage.

The tracker also exposes a listener interface so that downstream
consumers (e.g. the NVM wear simulator in :mod:`repro.nvm`) can observe
the raw write trace without the algorithms knowing about them.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Protocol

from repro.state.report import StateChangeReport

#: Signature of a write listener: ``(timestep, cell_id, mutated)``.
WriteListener = Callable[[int, str, bool], None]


class SupportsWriteListener(Protocol):
    """Objects that can observe the write trace (e.g. an NVM device)."""

    def on_write(self, timestep: int, cell_id: str, mutated: bool) -> None:
        """Called for every write attempt issued through the tracker."""


class StateTracker:
    """Counts state changes, cell writes, and live words for one run.

    Parameters
    ----------
    record_cells:
        When True (default), keep a per-cell mutation histogram.  Turn
        off for very large experiments where only the aggregate counts
        matter.
    """

    def __init__(self, record_cells: bool = True) -> None:
        self._record_cells = record_cells
        self._timestep = 0
        self._dirty = False
        self._state_changes = 0
        self._total_writes = 0
        self._write_attempts = 0
        self._current_words = 0
        self._peak_words = 0
        self._cell_writes: Counter[str] = Counter()
        self._listeners: list[WriteListener] = []
        self._next_cell_id = 0

    def fresh_cell_id(self, prefix: str) -> str:
        """Deterministic id for a dynamically created counter cell.

        Ids are numbered per tracker (not per process), so rebuilding a
        sketch from a snapshot — possibly in a different worker process
        — reproduces the exact same cell labels as the original
        construction.  The sharded runtime's process executor relies on
        this for byte-identical serial/parallel audits.
        """
        cell_id = f"{prefix}#{self._next_cell_id}"
        self._next_cell_id += 1
        return cell_id

    # ------------------------------------------------------------------
    # Stream clock
    # ------------------------------------------------------------------
    @property
    def timestep(self) -> int:
        """Number of ``tick()`` calls so far (the stream position ``t``)."""
        return self._timestep

    def tick(self) -> bool:
        """Advance the stream clock by one update.

        Returns True iff the state changed during the update that just
        ended (the paper's indicator ``X_t``).
        """
        changed = self._dirty
        if changed:
            self._state_changes += 1
        self._dirty = False
        self._timestep += 1
        return changed

    # ------------------------------------------------------------------
    # Write path (called by tracked registers)
    # ------------------------------------------------------------------
    def record_write(self, cell_id: str, mutated: bool) -> None:
        """Record one write attempt against ``cell_id``.

        ``mutated`` is False when the stored value equals the previous
        contents; such writes are "silent" and do not set the dirty flag
        (the memory state is unchanged, so ``sigma_t == sigma_{t-1}``).
        """
        self._write_attempts += 1
        if mutated:
            self._total_writes += 1
            self._dirty = True
            if self._record_cells:
                self._cell_writes[cell_id] += 1
        for listener in self._listeners:
            listener(self._timestep, cell_id, mutated)

    def mark_dirty(self) -> None:
        """Force the current update to count as a state change.

        Used for structural mutations that have no single-cell identity
        (e.g. freeing a block of counters).
        """
        self._dirty = True

    # ------------------------------------------------------------------
    # Space accounting (words)
    # ------------------------------------------------------------------
    def allocate(self, words: int) -> None:
        """Account for ``words`` newly-live memory words."""
        if words < 0:
            raise ValueError(f"cannot allocate negative words: {words}")
        self._current_words += words
        if self._current_words > self._peak_words:
            self._peak_words = self._current_words

    def free(self, words: int) -> None:
        """Release ``words`` previously-allocated memory words."""
        if words < 0:
            raise ValueError(f"cannot free negative words: {words}")
        if words > self._current_words:
            raise ValueError(
                f"freeing {words} words but only {self._current_words} live"
            )
        self._current_words -= words

    # ------------------------------------------------------------------
    # Distributed runs: audit merging and serialization
    # ------------------------------------------------------------------
    def merge_child(self, other: "StateTracker") -> None:
        """Fold a merged shard's audit into this tracker.

        Every counter is combined additively — the merged tracker
        describes the *distributed run as a whole*: its stream length,
        state changes, writes, wear histogram, and space are the sums
        over both shards (both shards' memory was live during the run,
        so peak and current words add too).  Consequently the merged
        :meth:`report` equals the elementwise sum of the shard reports.

        The wear histogram aggregates by *cell label*, and labels are
        per tracker (``table[r][c]``, ``morris#0``, ...), so two
        shards' physically distinct cells with the same label sum into
        one entry — the merged ``max_cell_wear`` is a per-label total,
        not a per-device maximum.  Per-device wear bounds should be
        read off the per-shard reports, which remain exact.
        """
        if other is self:
            raise ValueError("cannot merge a tracker into itself")
        self._timestep += other._timestep
        self._state_changes += other._state_changes
        self._total_writes += other._total_writes
        self._write_attempts += other._write_attempts
        self._current_words += other._current_words
        self._peak_words += other._peak_words
        self._dirty = self._dirty or other._dirty
        if self._record_cells:
            self._cell_writes.update(other._cell_writes)

    def to_state(self) -> dict:
        """Snapshot every counter into a JSON-safe dict."""
        return {
            "timestep": self._timestep,
            "state_changes": self._state_changes,
            "total_writes": self._total_writes,
            "write_attempts": self._write_attempts,
            "current_words": self._current_words,
            "peak_words": self._peak_words,
            "cell_writes": dict(self._cell_writes),
        }

    def load_state(self, state: dict) -> None:
        """Overwrite every counter from a :meth:`to_state` snapshot.

        Used when a sketch is restored from a checkpoint: the snapshot
        already accounts for the words the constructor re-allocated, so
        the restore replaces (not adds to) the current counters.
        """
        self._timestep = int(state["timestep"])
        self._state_changes = int(state["state_changes"])
        self._total_writes = int(state["total_writes"])
        self._write_attempts = int(state["write_attempts"])
        self._current_words = int(state["current_words"])
        self._peak_words = int(state["peak_words"])
        self._dirty = False
        self._cell_writes = Counter(
            {str(cell): int(count) for cell, count in state["cell_writes"].items()}
        )

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def add_listener(self, listener: WriteListener) -> None:
        """Subscribe ``listener`` to the raw write trace."""
        self._listeners.append(listener)

    def remove_listener(self, listener: WriteListener) -> None:
        """Unsubscribe a previously added listener."""
        self._listeners.remove(listener)

    @property
    def state_changes(self) -> int:
        """Number of updates whose processing mutated the state."""
        return self._state_changes

    @property
    def total_writes(self) -> int:
        """Number of cell mutations across the whole run."""
        return self._total_writes

    @property
    def peak_words(self) -> int:
        """High-water mark of live words."""
        return self._peak_words

    @property
    def current_words(self) -> int:
        """Words live right now."""
        return self._current_words

    def report(self) -> StateChangeReport:
        """Snapshot the audit into an immutable report."""
        return StateChangeReport(
            stream_length=self._timestep,
            state_changes=self._state_changes,
            total_writes=self._total_writes,
            total_write_attempts=self._write_attempts,
            peak_words=self._peak_words,
            current_words=self._current_words,
            cell_writes=dict(self._cell_writes),
        )
