"""Tracked registers: the memory cells streaming algorithms write to.

Three container shapes cover every algorithm in the library:

* :class:`TrackedValue` — a single word (a counter, a flag, a sample).
* :class:`TrackedArray` — a fixed-length array of words (a reservoir,
  a sketch row).
* :class:`TrackedDict` — a dynamic key-value store whose live size is
  charged against the space budget (the hold-counter table, Misra-Gries
  summaries).

Every mutation is routed through the owning tracker backend
(:mod:`repro.state.tracker`), which decides whether the write changed
the state — and, for budget backends, whether it may be *applied* at
all: the write methods consult the backend before storing, so an
exhausted :class:`~repro.state.tracker.BudgetBackend` can refuse
mutations and the register contents stay exactly as audited.  Writes
of an identical value are "silent": they cost a write *attempt* but
not a state change, matching the paper's definition that ``X_t = 1``
only when ``sigma_t != sigma_{t-1}``.

Each register binds its backend's write entry point once at
construction: cell-label strings (``table[3]``, ``hold[17]``) are only
built when the backend declares
:attr:`~repro.state.tracker.TrackerBackend.needs_cell_ids` — the
aggregate fast path never pays for label formatting.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterator, TypeVar

from repro.state.tracker import TrackerBackend

T = TypeVar("T")
K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class TrackedValue(Generic[T]):
    """A single tracked memory word."""

    __slots__ = ("_tracker", "_cell_id", "_value", "_count")

    def __init__(
        self, tracker: TrackerBackend, cell_id: str, initial: T
    ) -> None:
        self._tracker = tracker
        self._cell_id = cell_id
        self._value = initial
        # Bound label-free fast path; None when the backend wants ids.
        self._count = None if tracker.needs_cell_ids else tracker.count_write
        tracker.allocate(1)

    @property
    def value(self) -> T:
        """Read the cell (free under the asymmetric cost model)."""
        return self._value

    def set(self, new_value: T) -> bool:
        """Write ``new_value``; returns True iff the contents changed.

        A budget backend may refuse the write, in which case the cell
        keeps its previous contents and the method returns False.
        """
        mutated = new_value != self._value
        count = self._count
        if count is None:
            applied = self._tracker.record_write(self._cell_id, mutated)
        else:
            applied = count(mutated)
        if applied:
            self._value = new_value
            return mutated
        return False

    def load(self, value: T) -> None:
        """Overwrite the cell without touching the audit.

        Reserved for offline operations outside the streaming cost
        model — sketch merges and checkpoint restores — which must not
        be charged as stream-time writes.
        """
        self._value = value

    def clone_to(self, tracker: TrackerBackend) -> "TrackedValue[T]":
        """Duplicate this register onto an already-cloned backend.

        The clone fast path: the target tracker is a
        :meth:`~repro.state.tracker.TrackerBackend.clone` of this
        register's backend, so its word counters already cover this
        cell — no ``allocate()`` here, only a contents copy and a
        rebind of the label-free write entry point.
        """
        dup: TrackedValue[T] = TrackedValue.__new__(TrackedValue)
        dup._tracker = tracker
        dup._cell_id = self._cell_id
        dup._value = self._value
        dup._count = None if tracker.needs_cell_ids else tracker.count_write
        return dup

    def release(self) -> None:
        """Free the word (e.g. when a counter is evicted)."""
        self._tracker.free(1)

    def __repr__(self) -> str:
        return f"TrackedValue({self._cell_id}={self._value!r})"


class TrackedArray(Generic[T]):
    """A fixed-length array of tracked words (reservoirs, sketch rows)."""

    __slots__ = ("_tracker", "_name", "_cells", "_count")

    def __init__(
        self, tracker: TrackerBackend, name: str, length: int, fill: T
    ) -> None:
        if length < 0:
            raise ValueError(f"array length must be non-negative: {length}")
        self._tracker = tracker
        self._name = name
        self._cells: list[T] = [fill] * length
        self._count = None if tracker.needs_cell_ids else tracker.count_write
        tracker.allocate(length)

    def __len__(self) -> int:
        return len(self._cells)

    def __getitem__(self, index: int) -> T:
        return self._cells[index]

    def __setitem__(self, index: int, new_value: T) -> None:
        cells = self._cells
        mutated = new_value != cells[index]
        count = self._count
        if count is None:
            applied = self._tracker.record_write(
                f"{self._name}[{index}]", mutated
            )
        else:
            applied = count(mutated)
        if applied:
            cells[index] = new_value

    def __iter__(self) -> Iterator[T]:
        return iter(self._cells)

    def index_of(self, value: T) -> int | None:
        """Linear scan for ``value``; None when absent (a read, free)."""
        try:
            return self._cells.index(value)
        except ValueError:
            return None

    def load(self, values: list[T]) -> None:
        """Replace the whole contents without touching the audit.

        Reserved for merges and checkpoint restores; the length is
        fixed at construction, so replacements must match it.
        """
        if len(values) != len(self._cells):
            raise ValueError(
                f"load of {len(values)} values into array of "
                f"length {len(self._cells)}"
            )
        self._cells = list(values)

    def add_at(self, indices, deltas) -> None:
        """Add ``deltas`` to the cells at ``indices`` without touching
        the audit.

        The bulk counterpart of per-cell ``load``: chunk kernels that
        have already accounted a whole chunk via
        :meth:`~repro.state.tracker.TrackerBackend.record_chunk` apply
        the folded per-bucket deltas here, touching only the hit cells
        — per-chunk work scales with the number of touched buckets,
        not the array width.
        """
        cells = self._cells
        for index, delta in zip(indices, deltas):
            cells[index] += delta

    def store_at(self, index: int, value: T) -> None:
        """Overwrite one cell without touching the audit.

        The single-cell counterpart of :meth:`load`, for chunk kernels
        that settle individual positions after bulk accounting
        (reservoir slots, sample-and-hold admissions).
        """
        self._cells[index] = value

    def clone_to(self, tracker: TrackerBackend) -> "TrackedArray[T]":
        """Duplicate this array onto an already-cloned backend.

        No ``allocate()`` (the cloned tracker's word counters already
        include the array); the cell list is copied so the clone and
        the original never share mutable storage.
        """
        dup: TrackedArray[T] = TrackedArray.__new__(TrackedArray)
        dup._tracker = tracker
        dup._name = self._name
        dup._cells = list(self._cells)
        dup._count = None if tracker.needs_cell_ids else tracker.count_write
        return dup

    def release(self) -> None:
        """Free the whole array."""
        self._tracker.free(len(self._cells))
        self._cells = []

    def __repr__(self) -> str:
        return f"TrackedArray({self._name}, len={len(self._cells)})"


class TrackedDict(Generic[K, V]):
    """A dynamic tracked map; each live entry costs ``entry_words`` words.

    Insertion allocates, deletion frees, and every value overwrite is a
    write attempt against the per-key cell.  Used for hold-counter
    tables and dictionary-based baselines.
    """

    __slots__ = ("_tracker", "_name", "_entry_words", "_data", "_count")

    def __init__(
        self, tracker: TrackerBackend, name: str, entry_words: int = 1
    ) -> None:
        if entry_words <= 0:
            raise ValueError(f"entry_words must be positive: {entry_words}")
        self._tracker = tracker
        self._name = name
        self._entry_words = entry_words
        self._data: dict[K, V] = {}
        self._count = None if tracker.needs_cell_ids else tracker.count_write

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __getitem__(self, key: K) -> V:
        return self._data[key]

    def get(self, key: K, default: V | None = None) -> V | None:
        return self._data.get(key, default)

    def __setitem__(self, key: K, value: V) -> None:
        data = self._data
        count = self._count
        if key in data:
            mutated = data[key] != value
            if count is None:
                applied = self._tracker.record_write(
                    f"{self._name}[{key!r}]", mutated
                )
            else:
                applied = count(mutated)
            if applied:
                data[key] = value
        else:
            if count is None:
                applied = self._tracker.record_write(
                    f"{self._name}[{key!r}]", True
                )
            else:
                applied = count(True)
            if applied:
                self._tracker.allocate(self._entry_words)
                data[key] = value

    def __delitem__(self, key: K) -> None:
        if key not in self._data:
            raise KeyError(key)
        count = self._count
        if count is None:
            applied = self._tracker.record_write(
                f"{self._name}[{key!r}]", True
            )
        else:
            applied = count(True)
        if applied:
            del self._data[key]
            self._tracker.free(self._entry_words)

    def pop(self, key: K) -> V:
        """Remove and return the entry for ``key``."""
        value = self._data[key]
        del self[key]
        return value

    def keys(self):
        return self._data.keys()

    def values(self):
        return self._data.values()

    def items(self):
        return self._data.items()

    def load(self, mapping: dict[K, V]) -> None:
        """Replace the whole contents without touching the audit.

        Reserved for merges and checkpoint restores.  Space accounting
        is deliberately untouched: after a merge the tracker already
        carries both shards' allocations (see
        :meth:`~repro.state.tracker.TrackerBackend.merge_child`), and a
        restore reconciles live words centrally in
        :meth:`~repro.state.algorithm.Sketch.from_state`.
        """
        self._data = dict(mapping)

    def load_update(self, mapping: dict[K, V]) -> None:
        """Merge entries in place without touching the audit.

        The bulk counterpart of per-cell ``load``: chunk kernels that
        have already accounted a segment via
        :meth:`~repro.state.tracker.TrackerBackend.record_chunk` (and
        :meth:`~repro.state.tracker.TrackerBackend.allocate` for
        inserts) apply the merged values here, touching only the
        changed entries — never copying the table.  New keys append in
        ``mapping`` order, matching scalar insertion order.
        """
        self._data.update(mapping)

    def clone_to(self, tracker: TrackerBackend) -> "TrackedDict[K, V]":
        """Duplicate this map onto an already-cloned backend.

        No per-entry ``allocate()`` (the cloned tracker already counts
        the live entries); the backing dict is copied, preserving
        insertion order.
        """
        dup: TrackedDict[K, V] = TrackedDict.__new__(TrackedDict)
        dup._tracker = tracker
        dup._name = self._name
        dup._entry_words = self._entry_words
        dup._data = dict(self._data)
        dup._count = None if tracker.needs_cell_ids else tracker.count_write
        return dup

    def clear(self) -> None:
        """Drop every entry, freeing its space.

        A budget backend that refuses the structural mutation leaves
        the contents in place.
        """
        if not self._data:
            return
        if self._tracker.mark_dirty():
            self._tracker.free(self._entry_words * len(self._data))
            self._data.clear()

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)

    def __repr__(self) -> str:
        return f"TrackedDict({self._name}, entries={len(self._data)})"
