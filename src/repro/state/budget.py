"""Write budgets: the lower-bound cost measure made enforceable.

Theorem 1.2/1.4 lower-bound any ``(2-eps)``-approximation of ``Fp`` by
the number of internal state changes it performs (``>= n^{1-1/p}/2``).
:class:`WriteBudget` turns that measure into a runtime contract: a
sketch running on a :class:`~repro.state.tracker.BudgetBackend` may
change state at most ``limit`` times, and the ``policy`` decides what
happens to the updates that would exceed it:

* ``"raise"``   — abort the run with :class:`WriteBudgetExceededError`
  at the first update that would cause state change ``limit + 1``
  (hard real-time / wear-critical deployments).
* ``"freeze"``  — stop mutating: once ``limit`` state changes have
  happened the sketch's memory is read-only and later updates are
  skipped; queries keep answering from the frozen state.  This is the
  policy the lower-bound experiments run under — it realizes exactly
  the "algorithm with at most ``B`` state changes" the theorems
  quantify over.
* ``"degrade"`` — admit a geometrically thinning trickle of updates
  after exhaustion (the 1st, then the 2nd, 4th, 8th, … denied update
  is admitted), so the sketch stays loosely fresh at ``limit +
  O(log overage)`` total state changes.

Budgets are frozen values: :meth:`WriteBudget.split` derives the
per-shard budgets of a distributed run without mutating the global
one, and :class:`BudgetReport` is the read-only outcome attached to
run reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Valid enforcement policies, in documentation order.
BUDGET_POLICIES = ("raise", "freeze", "degrade")


class WriteBudgetExceededError(RuntimeError):
    """A ``policy="raise"`` budget saw one state change too many."""

    def __init__(self, limit: float, timestep: int) -> None:
        super().__init__(
            f"write budget of {limit:g} state changes exceeded at "
            f"stream position {timestep}"
        )
        self.limit = limit
        self.timestep = timestep

    def __reduce__(self):
        # Pickle as the constructor arguments, not the formatted
        # message: a budget tripping inside a process-pool worker must
        # unpickle cleanly in the parent or the pool hangs.
        return (type(self), (self.limit, self.timestep))


@dataclass(frozen=True)
class WriteBudget:
    """An enforceable cap on a run's internal state changes.

    Attributes
    ----------
    limit:
        Maximum admitted state changes; ``math.inf`` disables
        enforcement (useful for equivalence testing — an unlimited
        budget backend must audit identically to the other backends).
    policy:
        ``"raise"``, ``"freeze"``, or ``"degrade"`` (see module docs).
    """

    limit: float
    policy: str = "raise"

    def __post_init__(self) -> None:
        if self.policy not in BUDGET_POLICIES:
            raise ValueError(
                f"unknown budget policy {self.policy!r}; "
                f"choose from {BUDGET_POLICIES}"
            )
        limit = self.limit
        if limit != math.inf and (
            limit < 0 or int(limit) != limit
        ):
            raise ValueError(
                f"budget limit must be a non-negative integer or "
                f"math.inf: {limit!r}"
            )

    @property
    def unlimited(self) -> bool:
        """Whether this budget never denies anything."""
        return self.limit == math.inf

    def split(self, shards: int, how: str = "even") -> tuple["WriteBudget", ...]:
        """Per-shard budgets of a ``shards``-way distributed run.

        ``how="even"`` treats the limit as *global*: it is divided as
        evenly as possible (the first ``limit % shards`` shards get one
        extra state change), so the shard limits sum to the global
        limit exactly.  ``how="replicate"`` treats the limit as
        *per-device*: every shard receives the full limit (the NVM
        wear reading, where each shard lives on its own device).
        """
        if shards < 1:
            raise ValueError(f"need at least one shard: {shards}")
        if how == "replicate" or self.unlimited:
            return tuple(
                WriteBudget(self.limit, self.policy) for _ in range(shards)
            )
        if how != "even":
            raise ValueError(
                f"unknown budget split {how!r}; "
                f"choose from ('even', 'replicate')"
            )
        base, extra = divmod(int(self.limit), shards)
        return tuple(
            WriteBudget(base + (1 if index < extra else 0), self.policy)
            for index in range(shards)
        )

    def describe(self) -> str:
        """Short provenance string echoed in run reports."""
        limit = "inf" if self.unlimited else f"{int(self.limit)}"
        return f"budget({limit}, {self.policy})"


@dataclass(frozen=True)
class BudgetReport:
    """How one budgeted run spent its write budget.

    Attributes
    ----------
    limit / policy:
        The enforced budget (limits of merged shard reports add).
    state_changes:
        State changes actually admitted.
    denied:
        Updates (or direct writes) the policy turned away.
    exhausted:
        Whether the run hit its limit.
    """

    limit: float
    policy: str
    state_changes: int
    denied: int
    exhausted: bool

    @property
    def remaining(self) -> float:
        """State changes still admissible (``inf`` when unlimited)."""
        if self.limit == math.inf:
            return math.inf
        return max(0.0, self.limit - self.state_changes)

    def summary(self) -> str:
        """One-line human-readable budget outcome."""
        limit = "inf" if self.limit == math.inf else f"{int(self.limit)}"
        remaining = (
            "inf" if self.remaining == math.inf else f"{int(self.remaining)}"
        )
        return (
            f"budget={limit} ({self.policy}) "
            f"used={self.state_changes} remaining={remaining} "
            f"denied={self.denied} exhausted={self.exhausted}"
        )


__all__ = [
    "BUDGET_POLICIES",
    "BudgetReport",
    "WriteBudget",
    "WriteBudgetExceededError",
]
