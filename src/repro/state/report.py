"""Audit reports produced by the state-change accounting substrate.

The paper (Section 1.5) defines the cost measure reproduced here: for an
algorithm holding memory state ``sigma_t`` after stream update ``t``, the
indicator ``X_t = 1`` iff ``sigma_t != sigma_{t-1}``, and the *number of
internal state changes* is ``sum_t X_t``.  A *word* of space is
``O(log n + log m)`` bits.

:class:`StateChangeReport` is a frozen snapshot of everything the
:class:`~repro.state.tracker.StateTracker` measured; it is the common
currency of the experiment harness (Table 1, E1, E4, E7, A3).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class StateChangeReport:
    """Immutable audit of one algorithm run over one stream.

    Attributes
    ----------
    stream_length:
        Number of stream updates processed (the paper's ``m``).
    state_changes:
        Number of timesteps ``t`` with ``sigma_t != sigma_{t-1}`` — the
        paper's central complexity measure.
    total_writes:
        Number of *cell mutations* summed over the stream.  A single
        timestep may mutate many cells; ``total_writes >= state_changes``
        always holds.  This is the quantity that drives NVM wear.
    total_write_attempts:
        Number of write operations issued, including writes that stored
        a value identical to the previous contents (which do **not**
        count as state changes; e.g. NVM controllers skip them via
        read-before-write).
    peak_words:
        Maximum number of live memory words at any point in the run.
    current_words:
        Words live at the end of the run.
    cell_writes:
        Mapping ``cell id -> number of mutations`` of that cell; the
        per-cell wear histogram used by the NVM simulator.
    """

    stream_length: int
    state_changes: int
    total_writes: int
    total_write_attempts: int
    peak_words: int
    current_words: int
    cell_writes: dict[str, int] = field(default_factory=dict)

    @property
    def state_change_fraction(self) -> float:
        """Fraction of stream updates that mutated the state.

        A value of 1.0 means the algorithm writes on every update (the
        behaviour of classical sketches in Table 1); sublinear-state-
        change algorithms drive this toward 0 as ``m`` grows.
        """
        if self.stream_length == 0:
            return 0.0
        return self.state_changes / self.stream_length

    @property
    def max_cell_wear(self) -> int:
        """Largest number of mutations suffered by any single cell."""
        if not self.cell_writes:
            return 0
        return max(self.cell_writes.values())

    def summary(self) -> str:
        """One-line human-readable audit summary."""
        return (
            f"m={self.stream_length} state_changes={self.state_changes} "
            f"({self.state_change_fraction:.4f}/update) "
            f"writes={self.total_writes} peak_words={self.peak_words}"
        )
