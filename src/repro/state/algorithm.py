"""Common base class for every instrumented streaming algorithm.

:class:`Sketch` owns a :class:`~repro.state.tracker.StateTracker` and
enforces the paper's clock discipline: subclasses implement
``_update(item)``; the public :meth:`process` wraps it with a tracker
``tick()`` so that all mutations triggered by one stream update are
attributed to one potential state change ``X_t``.

The class also anchors the *unified query protocol*
(:mod:`repro.query`): a sketch declares the query kinds it answers in
the class-level ``supports`` frozenset and implements one ``_answer_*``
hook per declared kind; :meth:`query` dispatches typed queries to the
hooks and raises the typed ``UnsupportedQueryError`` for everything
else.  The historical per-family methods (``estimate``, ``estimates``,
``heavy_hitters``, ``f*_estimate``, …) survive as thin delegates of
:meth:`query`.

On top of the single-item stream interface the class defines the
*mergeable sketch protocol* that the sharded runtime
(:mod:`repro.runtime`) is built on:

* :meth:`process_many` — batched ingestion that still ticks the clock
  once per item (the cost model is unchanged) but amortizes the Python
  call overhead of :meth:`process`.
* :meth:`merge` — absorb another sketch of the same type built with
  the same randomness, so ``K`` hash-partitioned shards can be reduced
  to one summary whose estimates match a single-instance run.
* :meth:`to_state` / :meth:`from_state` — serialization hooks that
  round-trip a sketch (including its audit) through a plain dict of
  JSON-safe values, used for checkpointing.

Mergeable families override the three protected hooks
(:meth:`_merge_same_type`, :meth:`_config_state`,
:meth:`_payload_state`/:meth:`_load_payload`) and set
``mergeable = True``; everything else inherits defaults that raise the
typed errors below.

Merge semantics under the cost model: a merge is an *offline reduce*,
not a stream update, so the mutations it performs are applied through
the registers' untracked ``load`` path and are **not** charged as
writes or state changes.  Instead :meth:`merge` folds the absorbed
shard's full audit into this sketch's tracker via
:meth:`~repro.state.tracker.StateTracker.merge_child`, so the merged
:class:`~repro.state.report.StateChangeReport` equals the elementwise
sum of the shard reports.

``StreamAlgorithm`` remains as an alias for the pre-protocol name.
"""

from __future__ import annotations

import abc
import copy
import random
from typing import Any, ClassVar, Iterable

import numpy as np

from repro.query import (
    QUERY_HOOKS,
    Answer,
    MultiPointQuery,
    PointQuery,
    Query,
    QueryKind,
    UnsupportedQueryError,
)
from repro.state.report import StateChangeReport
from repro.state.tracker import StateTracker, tracker_from_state
from repro.streams.chunked import as_chunk


class NotMergeableError(TypeError):
    """Raised when :meth:`Sketch.merge` is unsupported for a sketch.

    Sampling-based algorithms (the ``SampleAndHold`` family) hold
    per-item counters whose occurrence sets may overlap between shards,
    so their partial summaries cannot be combined without bias — they
    raise this error instead of silently producing wrong estimates.
    """


class NotSerializableError(TypeError):
    """Raised when a sketch does not implement the state hooks."""


class ChunkAudit:
    """Per-chunk write accounting for vectorized kernels.

    A kernel that settles individual positions (sample-and-hold
    admissions, reservoir acceptances, Morris transitions) records each
    write attempt here instead of on the tracker; at the end of the
    chunk the accumulated counts feed one
    :meth:`~repro.state.tracker.TrackerBackend.record_chunk` call.  The
    per-position ``dirty`` mask makes ``state_changes`` exact: a chunk
    position with at least one mutating write (or structural mutation)
    is exactly an update a scalar run would have ticked with
    ``X_t = 1``.

    ``cells`` is populated only when the backend needs per-cell labels
    (the trace backend's wear histogram).
    """

    __slots__ = ("dirty", "writes", "attempts", "cells")

    def __init__(self, length: int, needs_cell_ids: bool) -> None:
        self.dirty = np.zeros(length, dtype=bool)
        self.writes = 0
        self.attempts = 0
        self.cells: dict[str, int] | None = {} if needs_cell_ids else None

    def write(self, cell_id: str, mutated: bool, position: int) -> None:
        """One write attempt against ``cell_id`` at chunk ``position``."""
        self.attempts += 1
        if mutated:
            self.writes += 1
            self.dirty[position] = True
            cells = self.cells
            if cells is not None:
                cells[cell_id] = cells.get(cell_id, 0) + 1

    def mark(self, position: int) -> None:
        """Structural mutation (no single-cell identity) at ``position``."""
        self.dirty[position] = True

    def commit(self, tracker, updates: int) -> None:
        """Flush the chunk's accounting in one ``record_chunk`` call."""
        tracker.record_chunk(
            updates,
            int(self.dirty.sum()),
            self.writes,
            self.attempts,
            self.cells,
        )


class Sketch(abc.ABC):
    """Abstract insertion-only streaming algorithm over universe ``[n]``.

    Subclasses must implement :meth:`_update`.  Items are integers in
    ``range(n)`` (the paper's ``[n]``, zero-indexed here).
    """

    #: Whether this sketch supports :meth:`merge` (class-level flag so
    #: the registry and the sharded runtime can check without a probe).
    mergeable: bool = False

    #: Query kinds this sketch answers via :meth:`query` (class-level
    #: declaration so the registry and the :class:`~repro.api.Engine`
    #: can enumerate capabilities without a probe).
    supports: ClassVar[frozenset[QueryKind]] = frozenset()

    #: kind → implementing function, resolved once per subclass from
    #: :attr:`supports` (see ``__init_subclass__``).
    _query_handlers: ClassVar[dict[QueryKind, Any]] = {}

    #: Instance-level kernel gate.  Families whose ``_update_chunk``
    #: only supports some configurations (the randomized families'
    #: kernels need the v2 coin protocol) set this False on instances
    #: that must take the scalar fallback.
    _chunk_kernel_enabled: bool = True

    #: Classes taking a ``coin_protocol`` constructor argument set
    #: this True; :meth:`from_state` then pins snapshots that predate
    #: the flag to the v1 sequential-coin protocol they were ingested
    #: under.
    _coin_protocol_aware: ClassVar[bool] = False

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        cls._query_handlers = {
            kind: getattr(cls, QUERY_HOOKS[kind]) for kind in cls.supports
        }

    def __init__(self, tracker: StateTracker | None = None) -> None:
        self.tracker = tracker if tracker is not None else StateTracker()
        self._items_processed = 0

    # ------------------------------------------------------------------
    # Stream interface
    # ------------------------------------------------------------------
    def process(self, item: int) -> None:
        """Feed one stream update and advance the state-change clock.

        Budget backends are consulted before the update runs: a denied
        update is skipped wholesale (no partially-applied mutations)
        while its tick still advances the stream clock with ``X_t = 0``.
        """
        admit = getattr(self.tracker, "admit_update", None)
        if admit is None or admit():
            self._update(item)
        self.tracker.tick()
        self._items_processed += 1

    def process_many(self, items: Iterable[int]) -> int:
        """Feed a batch of updates; returns the number consumed.

        The clock discipline is identical to calling :meth:`process` in
        a loop — one ``tick()`` per item — but the hot loop binds the
        update and tick callables once, which removes most of the
        per-item attribute-lookup and method-call overhead (see
        ``benchmarks/bench_throughput.py``).  Only budget backends
        define the update-admission gate, so the common backends pay
        nothing for enforcement.
        """
        if isinstance(items, np.ndarray):
            # Scalar kernels expect Python ints (arbitrary-precision
            # hashing, dict keys, JSON-safe payloads).
            items = items.tolist()
        update = self._update
        tracker = self.tracker
        tick = tracker.tick
        admit = getattr(tracker, "admit_update", None)
        count = 0
        # try/finally: a raise-policy abort mid-batch must not lose the
        # completed updates' accounting (the aborting update itself is
        # never counted — its tick never ran).
        try:
            if admit is None:
                for item in items:
                    update(item)
                    tick()
                    count += 1
            else:
                for item in items:
                    if admit():
                        update(item)
                    tick()
                    count += 1
        finally:
            self._items_processed += count
        return count

    def process_stream(self, stream: Iterable[int]) -> None:
        """Feed every update of ``stream`` in order.

        Columnar sources — ``np.ndarray`` chunks or a
        :class:`~repro.streams.chunked.ChunkedStream` — route through
        :meth:`process_chunk` (bit-identical, usually much faster);
        anything else takes the scalar :meth:`process_many` loop.
        """
        chunks = getattr(stream, "chunks", None)
        if chunks is not None:
            for chunk in chunks():
                self.process_chunk(chunk)
        elif isinstance(stream, np.ndarray):
            self.process_chunk(stream)
        else:
            self.process_many(stream)

    # ------------------------------------------------------------------
    # Columnar (chunked) ingestion
    # ------------------------------------------------------------------
    def process_chunk(self, chunk) -> int:
        """Feed one columnar chunk (``int64`` array-like); returns the
        number of updates consumed.

        **Contract: bit-identical to the scalar path.**  For every
        family, backend, and chunk size, ``process_chunk`` over any
        chunking of a stream produces exactly the payload, audit, and
        answers of :meth:`process_many` over the same items
        (``tests/test_chunked_ingest.py`` sweeps this with Hypothesis).

        Families with a vectorized kernel override
        :meth:`_update_chunk` and account each sub-chunk in bulk
        (:meth:`~repro.state.tracker.TrackerBackend.record_chunk`);
        everything else — and every run with write listeners attached,
        whose per-write callbacks a bulk kernel cannot replay — falls
        back to the scalar loop, coercing items to Python ints at this
        boundary so downstream hashes and dict keys never see
        ``np.int64``.

        Budget backends gate the kernel through
        :meth:`~repro.state.tracker.TrackerBackend.bulk_admit`: the
        kernel runs only over prefixes where no denial can trigger,
        and the remainder of the chunk is replayed through the scalar
        per-update gate — so freeze/degrade/raise cut over at the
        exact update index, not the chunk edge.
        """
        chunk = as_chunk(chunk)
        total = len(chunk)
        if total == 0:
            return 0
        tracker = self.tracker
        if (
            type(self)._update_chunk is Sketch._update_chunk
            or not self._chunk_kernel_enabled
            or tracker.has_listeners
        ):
            return self.process_many(chunk.tolist())
        consumed = 0
        while consumed < total:
            admitted = tracker.bulk_admit(total - consumed)
            if admitted <= 0:
                # Budget exhausted: the scalar gate implements the
                # policy (freeze/degrade/raise) update by update.
                consumed += self.process_many(chunk[consumed:].tolist())
                break
            self._update_chunk(chunk[consumed:consumed + admitted])
            self._items_processed += admitted
            consumed += admitted
        return consumed

    def _update_chunk(self, chunk: np.ndarray) -> None:
        """Vectorized kernel hook: ingest one pre-admitted chunk.

        Overrides must (a) apply register mutations through the
        untracked ``load`` path, (b) account the chunk in bulk via
        ``self.tracker.record_chunk(...)`` — exactly the counts the
        scalar loop would have produced, including per-cell histogram
        entries when ``tracker.needs_cell_ids`` — and (c) leave
        ``self._items_processed`` alone (:meth:`process_chunk` owns
        it).  Individual structural updates inside the chunk may be
        delegated to :meth:`_scalar_step`.

        The base implementation is deliberately not a fallback:
        :meth:`process_chunk` checks ``is Sketch._update_chunk`` to
        decide whether a kernel exists.
        """
        raise NotImplementedError

    def _scalar_step(self, item: int) -> None:
        """One scalar update inside a chunk kernel: identical write
        path and clock discipline to :meth:`process`, but without the
        items-processed bump (the kernel's caller accounts it)."""
        admit = getattr(self.tracker, "admit_update", None)
        if admit is None or admit():
            self._update(item)
        self.tracker.tick()

    @abc.abstractmethod
    def _update(self, item: int) -> None:
        """Handle one stream update (mutations go through tracked cells)."""

    # ------------------------------------------------------------------
    # Unified query protocol
    # ------------------------------------------------------------------
    def query(self, q: Query) -> Answer:
        """Answer a typed query (see :mod:`repro.query`).

        Dispatches on ``q.kind`` to the family's ``_answer_*`` hook.
        The supported kinds are declared in :attr:`supports`; asking
        for anything else raises the typed
        :class:`~repro.query.UnsupportedQueryError`, so callers can
        branch on capabilities (via :attr:`supports` or the registry's
        :class:`~repro.registry.SketchSpec`) instead of ``hasattr``
        probes.

        Queries are pure reads: they never mutate tracked state and are
        free under the paper's cost model.
        """
        handler = self._query_handlers.get(q.kind)
        if handler is None:
            raise UnsupportedQueryError(
                type(self).__name__, q.kind, self.supports
            )
        return handler(self, q)

    def query_many(self, q: MultiPointQuery) -> tuple[Answer, ...]:
        """Answer a batch of point queries in one call.

        **Contract: bit-identical to the scalar loop.**  For every
        family and configuration, ``query_many(MultiPointQuery(items))``
        returns exactly ``tuple(self.query(PointQuery(i)) for i in
        items)`` — same values, same answer types, same errors
        (``tests/test_query_many.py`` sweeps this with Hypothesis).
        Families with a vectorized :meth:`_answer_point_many` kernel
        (CountMin/CountSketch gather whole item arrays through the
        chunked hash paths; the dict-backed summaries answer via one
        bulk lookup; the sample-and-hold families materialize their
        estimate map once per batch instead of once per item) only
        change the wall clock; everything else takes the scalar-loop
        fallback.

        The capability is :attr:`~repro.query.QueryKind.POINT` — a
        sketch that answers point queries answers batches of them, and
        one that does not raises the same typed
        :class:`~repro.query.UnsupportedQueryError`.

        Like :meth:`query`, batch queries are pure reads: they never
        mutate tracked state and are free under the paper's cost model.
        """
        if QueryKind.POINT not in self.supports:
            raise UnsupportedQueryError(
                type(self).__name__, QueryKind.POINT, self.supports
            )
        return self._answer_point_many(q)

    def _answer_point_many(
        self, q: MultiPointQuery
    ) -> tuple[Answer, ...]:
        """Batch point-query hook: the scalar-loop fallback.

        Overrides must preserve the bit-identity contract of
        :meth:`query_many`; the base implementation *is* the contract
        (minus the per-item dispatch overhead, which is behavioral
        no-op).
        """
        answer_point = self._query_handlers[QueryKind.POINT]
        return tuple(
            answer_point(self, PointQuery(item)) for item in q.items
        )

    # One hook per QueryKind.  A subclass declaring a kind in
    # ``supports`` must override the matching hook; reaching a base
    # hook means the declaration and the implementation disagree.
    def _answer_point(self, q: Query) -> Answer:
        raise NotImplementedError(
            f"{type(self).__name__} declares {q.kind!s} support but "
            f"does not implement {QUERY_HOOKS[q.kind]}"
        )

    _answer_all_estimates = _answer_point
    _answer_heavy_hitters = _answer_point
    _answer_moment = _answer_point
    _answer_entropy = _answer_point
    _answer_distinct = _answer_point

    # ------------------------------------------------------------------
    # Mergeable sketch protocol
    # ------------------------------------------------------------------
    def merge(self, other: "Sketch") -> "Sketch":
        """Absorb ``other`` (same type, same randomness) into this sketch.

        After the call this sketch summarizes the concatenation of both
        input streams and its tracker carries the combined audit; the
        absorbed sketch must be discarded.  Returns ``self`` so merges
        chain in a reduce.

        Raises
        ------
        NotMergeableError
            When the family does not support merging, or ``other`` is a
            different type.
        ValueError
            When the two sketches are configuration-incompatible (e.g.
            different widths or hash seeds), share a tracker, or are
            the same object.
        """
        if other is self:
            raise ValueError("cannot merge a sketch with itself")
        if type(other) is not type(self):
            raise NotMergeableError(
                f"cannot merge {type(other).__name__} into "
                f"{type(self).__name__}"
            )
        if other.tracker is self.tracker:
            raise ValueError(
                "cannot merge sketches sharing a StateTracker; shards "
                "need independent trackers for a well-defined audit"
            )
        self._merge_same_type(other)
        self.tracker.merge_child(other.tracker)
        self._items_processed += other._items_processed
        return self

    def _merge_same_type(self, other: "Sketch") -> None:
        """Family-specific merge; ``other`` is the same type as ``self``.

        Overrides must validate configuration compatibility and apply
        mutations through the registers' untracked ``load`` path (the
        audit is combined separately by :meth:`merge`).
        """
        raise NotMergeableError(
            f"{type(self).__name__} does not support merging"
        )

    # ------------------------------------------------------------------
    # Clone protocol
    # ------------------------------------------------------------------
    def clone(self) -> "Sketch":
        """Independent copy: same payload, audit, and randomness.

        **Contract: bit-identical to the serialization round trip.**
        For serializable families ``clone()`` produces exactly
        ``type(self).from_state(self.to_state())`` — same payload,
        same audit counters, same answers — and never shares mutable
        state with the original.  Write listeners are not carried over
        (a restored sketch starts unobserved), matching restore
        semantics.

        The default path *is* the round trip (or ``copy.deepcopy`` for
        families without the state hooks) — correct everywhere but
        paying the dict serialization tax.  Families whose registers
        are plain arrays and dicts override :meth:`_clone_registers`
        and take the fast path: a shallow copy sharing the immutable
        configuration (hash functions, sizing), a
        :meth:`~repro.state.tracker.TrackerBackend.clone` of the audit,
        and direct register copies via
        :meth:`~repro.state.registers.TrackedArray.clone_to`.
        """
        if type(self)._clone_registers is not Sketch._clone_registers:
            dup = copy.copy(self)
            dup.tracker = self.tracker.clone()
            dup._clone_registers(dup.tracker)
            return dup
        if type(self)._config_state is not Sketch._config_state:
            return type(self).from_state(self.to_state())
        return copy.deepcopy(self)

    def _clone_registers(self, tracker: StateTracker) -> None:
        """Fast-path hook: rebind register attributes onto ``tracker``.

        Called on the shallow copy, with the cloned tracker already
        installed as ``self.tracker``.  Overrides must replace every
        mutable attribute — each tracked register via its ``clone_to``
        (no re-allocation; the cloned tracker's word counters already
        cover them) and any plain containers by copy — so the clone
        shares nothing writable with the original.  Immutable
        configuration (hash families, sizes) stays shared.

        The base implementation is deliberately not a fallback:
        :meth:`clone` checks ``is Sketch._clone_registers`` to decide
        whether a fast path exists.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Serialization protocol
    # ------------------------------------------------------------------
    def to_state(self) -> dict[str, Any]:
        """Snapshot the sketch into a dict of JSON-safe values.

        The snapshot contains the constructor configuration, the raw
        register payload, and the full tracker audit, so
        :meth:`from_state` reproduces both the estimates and the
        state-change report exactly.  Sketches holding a coin-flip RNG
        in ``self._rng`` (Morris-counter families) also snapshot its
        exact generator state, so a restored sketch resumes the
        *original* coin sequence — required for the process executor's
        bit-identical guarantee, where a merge after restoration must
        flip the same coins a serial run would have.
        """
        state = {
            "algorithm": type(self).__name__,
            "config": self._config_state(),
            "payload": self._payload_state(),
            "items_processed": self._items_processed,
            "audit": self.tracker.to_state(),
        }
        rng = getattr(self, "_rng", None)
        if isinstance(rng, random.Random):
            version, internal, gauss_next = rng.getstate()
            state["rng"] = [version, list(internal), gauss_next]
        return state

    @classmethod
    def from_state(
        cls, state: dict[str, Any], tracker: StateTracker | None = None
    ) -> "Sketch":
        """Rebuild a sketch from a :meth:`to_state` snapshot.

        With the default ``tracker=None`` the restored sketch's audit
        is overwritten with the snapshot's, making the round trip
        exact.  When an external ``tracker`` is supplied (a sketch
        embedded in a larger algorithm) the audit restore is skipped —
        the caller owns the accounting.

        Randomness: hash functions are rebuilt from the stored seeds
        and match the original exactly; a coin-flip RNG held in
        ``self._rng`` (Morris counters) is restored to its snapshotted
        generator state, so post-restore coin flips *resume* the
        original sequence bit for bit.

        Accounting backends round-trip too: with ``tracker=None`` the
        restored sketch runs on the same backend the snapshot came
        from (aggregate / trace / budget, including the budget's
        remaining headroom), rebuilt via
        :func:`~repro.state.tracker.tracker_from_state`.
        """
        algorithm = state.get("algorithm")
        if algorithm != cls.__name__:
            raise ValueError(
                f"state is for {algorithm!r}, not {cls.__name__!r}"
            )
        base_words = tracker.current_words if tracker is not None else 0
        own_tracker = tracker
        if own_tracker is None and state.get("audit") is not None:
            own_tracker = tracker_from_state(state["audit"])
        config = dict(state["config"])
        if cls._coin_protocol_aware and "coin_protocol" not in config:
            # Snapshots from before the v2 coin protocol were ingested
            # under sequential coins; restoring them as v2 would splice
            # two incompatible coin sequences into one run.
            config["coin_protocol"] = "v1"
        instance = cls(tracker=own_tracker, **config)
        instance._load_payload(state["payload"])
        instance._items_processed = int(state.get("items_processed", 0))
        rng_state = state.get("rng")
        rng = getattr(instance, "_rng", None)
        if rng_state is not None and isinstance(rng, random.Random):
            version, internal, gauss_next = rng_state
            rng.setstate((version, tuple(internal), gauss_next))
        audit = state.get("audit")
        if audit is not None:
            if tracker is None:
                instance.tracker.load_state(audit)
            else:
                # The payload load bypasses allocate(), but the
                # external tracker must still account the restored
                # live words or later frees (dict evictions) underflow.
                # The snapshot's current_words covers constructor
                # registers + payload; the constructor's own share was
                # just charged, so reconcile the difference.
                constructed = tracker.current_words - base_words
                delta = int(audit["current_words"]) - constructed
                if delta > 0:
                    tracker.allocate(delta)
                elif delta < 0:
                    tracker.free(-delta)
        return instance

    def _config_state(self) -> dict[str, Any]:
        """Constructor kwargs that rebuild an empty compatible sketch."""
        raise NotSerializableError(
            f"{type(self).__name__} does not support serialization"
        )

    def _payload_state(self) -> dict[str, Any]:
        """JSON-safe snapshot of the sketch's register contents."""
        raise NotSerializableError(
            f"{type(self).__name__} does not support serialization"
        )

    def _load_payload(self, payload: dict[str, Any]) -> None:
        """Load a :meth:`_payload_state` snapshot (untracked)."""
        raise NotSerializableError(
            f"{type(self).__name__} does not support serialization"
        )

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------
    @property
    def items_processed(self) -> int:
        """Number of stream updates consumed so far."""
        return self._items_processed

    @property
    def state_changes(self) -> int:
        """Total state changes so far (the paper's ``sum_t X_t``)."""
        return self.tracker.state_changes

    def report(self) -> StateChangeReport:
        """Snapshot the run's full state-change audit."""
        return self.tracker.report()


#: Pre-protocol name, kept so existing imports and subclasses work.
StreamAlgorithm = Sketch
