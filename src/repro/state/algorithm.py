"""Common base class for every instrumented streaming algorithm.

:class:`StreamAlgorithm` owns a :class:`~repro.state.tracker.StateTracker`
and enforces the paper's clock discipline: subclasses implement
``_update(item)``; the public :meth:`process` wraps it with a tracker
``tick()`` so that all mutations triggered by one stream update are
attributed to one potential state change ``X_t``.
"""

from __future__ import annotations

import abc
from typing import Iterable

from repro.state.report import StateChangeReport
from repro.state.tracker import StateTracker


class StreamAlgorithm(abc.ABC):
    """Abstract insertion-only streaming algorithm over universe ``[n]``.

    Subclasses must implement :meth:`_update`.  Items are integers in
    ``range(n)`` (the paper's ``[n]``, zero-indexed here).
    """

    def __init__(self, tracker: StateTracker | None = None) -> None:
        self.tracker = tracker if tracker is not None else StateTracker()
        self._items_processed = 0

    # ------------------------------------------------------------------
    # Stream interface
    # ------------------------------------------------------------------
    def process(self, item: int) -> None:
        """Feed one stream update and advance the state-change clock."""
        self._update(item)
        self.tracker.tick()
        self._items_processed += 1

    def process_stream(self, stream: Iterable[int]) -> None:
        """Feed every update of ``stream`` in order."""
        for item in stream:
            self.process(item)

    @abc.abstractmethod
    def _update(self, item: int) -> None:
        """Handle one stream update (mutations go through tracked cells)."""

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------
    @property
    def items_processed(self) -> int:
        """Number of stream updates consumed so far."""
        return self._items_processed

    @property
    def state_changes(self) -> int:
        """Total state changes so far (the paper's ``sum_t X_t``)."""
        return self.tracker.state_changes

    def report(self) -> StateChangeReport:
        """Snapshot the run's full state-change audit."""
        return self.tracker.report()
