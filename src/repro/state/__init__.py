"""State-change accounting substrate (the paper's Section 1.5 cost model).

All algorithms in :mod:`repro` keep their working memory in tracked
registers bound to a tracker backend, so that the number of internal
state changes, the per-cell write histogram, and the peak space in
words are measured uniformly across the paper's algorithms and the
Table 1 baselines.

Accounting is pluggable (:mod:`repro.state.tracker`): the
:class:`AggregateBackend` fast path keeps scalar counters only, the
:class:`TraceBackend` (historically ``StateTracker``) adds the
per-cell wear histogram and write listeners, and the
:class:`BudgetBackend` enforces a :class:`WriteBudget` over the run's
state changes (:mod:`repro.state.budget`).
"""

from repro.state.algorithm import (
    NotMergeableError,
    NotSerializableError,
    Sketch,
    StreamAlgorithm,
)
from repro.state.budget import (
    BUDGET_POLICIES,
    BudgetReport,
    WriteBudget,
    WriteBudgetExceededError,
)
from repro.state.registers import TrackedArray, TrackedDict, TrackedValue
from repro.state.report import StateChangeReport
from repro.state.tracker import (
    TRACKING_MODES,
    AggregateBackend,
    BudgetBackend,
    StateTracker,
    TraceBackend,
    TrackerBackend,
    make_tracker,
    tracker_from_state,
)

__all__ = [
    "AggregateBackend",
    "BUDGET_POLICIES",
    "BudgetBackend",
    "BudgetReport",
    "NotMergeableError",
    "NotSerializableError",
    "Sketch",
    "StateChangeReport",
    "StateTracker",
    "StreamAlgorithm",
    "TRACKING_MODES",
    "TraceBackend",
    "TrackedArray",
    "TrackedDict",
    "TrackedValue",
    "TrackerBackend",
    "WriteBudget",
    "WriteBudgetExceededError",
    "make_tracker",
    "tracker_from_state",
]
