"""State-change accounting substrate (the paper's Section 1.5 cost model).

All algorithms in :mod:`repro` keep their working memory in tracked
registers bound to a :class:`StateTracker`, so that the number of
internal state changes, the per-cell write histogram, and the peak space
in words are measured uniformly across the paper's algorithms and the
Table 1 baselines.
"""

from repro.state.algorithm import (
    NotMergeableError,
    NotSerializableError,
    Sketch,
    StreamAlgorithm,
)
from repro.state.registers import TrackedArray, TrackedDict, TrackedValue
from repro.state.report import StateChangeReport
from repro.state.tracker import StateTracker

__all__ = [
    "NotMergeableError",
    "NotSerializableError",
    "Sketch",
    "StateChangeReport",
    "StateTracker",
    "StreamAlgorithm",
    "TrackedArray",
    "TrackedDict",
    "TrackedValue",
]
