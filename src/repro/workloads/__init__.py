"""Workload subsystem: named, seeded, reproducible stream scenarios.

* :mod:`repro.workloads.spec` — the frozen :class:`Workload` value.
* :mod:`repro.workloads.registry` — name → generator registry.
* :mod:`repro.workloads.scenarios` — the built-in scenarios (imported
  here for registration).

Any scenario × any sketch × any shard count is one call::

    from repro.api import Engine
    from repro.workloads import Workload

    report = Engine("count-min", shards=4).run(
        workload=Workload("bursty", n=4096, m=65536, seed=7)
    )
"""

from repro.workloads.registry import (
    ScenarioSpec,
    generate,
    register_scenario,
    scenario_names,
    scenario_spec,
)
from repro.workloads.spec import Workload

import repro.workloads.scenarios  # noqa: E402,F401  (registers built-ins)

__all__ = [
    "ScenarioSpec",
    "Workload",
    "generate",
    "register_scenario",
    "scenario_names",
    "scenario_spec",
]
