"""The frozen :class:`Workload` spec: a named, seeded, reproducible stream.

A ``Workload`` pins everything needed to regenerate a stream —
scenario name, universe size, stream length, seed, and scenario
parameters — in one hashable value.  Two equal ``Workload`` objects
materialize the identical stream, which is what makes "any scenario ×
any sketch × any shard count" a single reproducible call: the spec is
the experiment's provenance record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.streams.chunked import ChunkedStream
from repro.workloads.registry import generate, scenario_spec


@dataclass(frozen=True)
class Workload:
    """A fully-specified workload: scenario + sizing + seed + params.

    ``params`` accepts a plain mapping for ergonomics and is frozen
    into a sorted item tuple, so specs are hashable and equal exactly
    when they generate the same stream.  The scenario name and every
    parameter name are validated at construction against the workload
    registry — a bad spec fails where it is written, not where it is
    eventually materialized.
    """

    scenario: str
    n: int = 4096
    m: int = 65536
    seed: int = 0
    params: tuple[tuple[str, Any], ...] = field(default=())

    def __post_init__(self) -> None:
        params = self.params
        if isinstance(params, Mapping):
            params = tuple(sorted(params.items()))
            object.__setattr__(self, "params", params)
        spec = scenario_spec(self.scenario)  # raises on bad name
        known = set(spec.param_names)
        for key, _ in params:
            if key not in known:
                raise TypeError(
                    f"workload {self.scenario!r} has no parameter "
                    f"{key!r}; tunable parameters: "
                    f"{list(spec.param_names) or 'none'}"
                )
        if self.n <= 0 or self.m < 0:
            raise ValueError(
                f"need n > 0 and m >= 0: n={self.n}, m={self.m}"
            )

    def materialize(self) -> ChunkedStream:
        """Generate the stream this spec describes.

        The stream comes back columnar
        (:class:`~repro.streams.chunked.ChunkedStream`) so the engine
        and runtime ingest it chunk-wise; iterate it, compare it to
        lists, or call ``.materialize()`` on it for the historical
        ``list[int]`` form.
        """
        return generate(
            self.scenario,
            n=self.n,
            m=self.m,
            seed=self.seed,
            **dict(self.params),
        )

    def describe(self) -> str:
        """One-line human-readable spec summary."""
        knobs = "".join(
            f" {key}={value}" for key, value in self.params
        )
        return (
            f"{self.scenario}(n={self.n}, m={self.m}, "
            f"seed={self.seed}){knobs}"
        )
