"""Name → generator registry of workload scenarios.

Mirrors :mod:`repro.registry` (the sketch registry) on the stream side:
every scenario is registered once, under one name, with one uniform
generator signature ::

    generate("bursty", n=4096, m=65536, seed=0, burst_intensity=0.8)

where ``n`` is the universe size, ``m`` the stream length, ``seed`` the
randomness seed, and any remaining keyword parameters are
scenario-specific knobs with registered defaults.  The CLI, the
:class:`~repro.api.Engine`, and the experiment harness all name
workloads through this registry, so a scenario × sketch × shard-count
sweep is one reproducible call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.streams.chunked import ChunkedStream

#: Uniform generator signature:
#: ``fn(n, m, seed, **params) -> ChunkedStream`` (columnar; iterates
#: as Python ints and compares equal to the historical ``list[int]``).
ScenarioGenerator = Callable[..., "ChunkedStream"]


@dataclass(frozen=True)
class ScenarioSpec:
    """One registered workload scenario.

    ``defaults`` documents the scenario's tunable parameters and their
    default values; :func:`generate` merges caller overrides on top.
    """

    name: str
    generator: ScenarioGenerator
    summary: str
    defaults: tuple[tuple[str, Any], ...] = ()

    @property
    def param_names(self) -> tuple[str, ...]:
        """Names of the scenario's tunable parameters."""
        return tuple(name for name, _ in self.defaults)


_SCENARIOS: dict[str, ScenarioSpec] = {}


def register_scenario(
    name: str,
    generator: ScenarioGenerator,
    summary: str = "",
    **defaults: Any,
) -> None:
    """Add a scenario to the registry (rejects duplicate names)."""
    if name in _SCENARIOS:
        raise ValueError(f"workload {name!r} is already registered")
    _SCENARIOS[name] = ScenarioSpec(
        name=name,
        generator=generator,
        summary=summary,
        defaults=tuple(sorted(defaults.items())),
    )


def scenario_names() -> list[str]:
    """Sorted names of every registered workload scenario."""
    return sorted(_SCENARIOS)


def scenario_spec(name: str) -> ScenarioSpec:
    """Look up one registered scenario by name."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {scenario_names()}"
        ) from None


def generate(
    name: str,
    n: int = 4096,
    m: int = 65536,
    seed: int = 0,
    **params: Any,
) -> "ChunkedStream":
    """Materialize a named scenario with uniform sizing arguments.

    Unknown parameter names are rejected up front (against the
    scenario's registered defaults), so a typo fails with the valid
    knob list instead of a generic ``TypeError`` from deep inside the
    generator.
    """
    spec = scenario_spec(name)
    kwargs = dict(spec.defaults)
    for key, value in params.items():
        if key not in kwargs:
            raise TypeError(
                f"workload {name!r} has no parameter {key!r}; "
                f"tunable parameters: {list(spec.param_names) or 'none'}"
            )
        kwargs[key] = value
    return spec.generator(n=n, m=m, seed=seed, **kwargs)
