"""The built-in workload scenarios.

Importing this module registers every scenario with
:mod:`repro.workloads.registry`.  The classical distributions wrap the
raw generators in :mod:`repro.streams.generators`; the newer scenarios
cover the dynamics the static laws miss:

* ``bursty`` — flash crowds: windows where one item dominates,
  stressing eviction policies and per-shard write budgets.
* ``phase-shift`` — the Zipf ranking is reshuffled mid-stream, so the
  heavy set changes identity while the frequency profile stays put.
* ``trace-replay`` — replay an external integer trace file (one item
  per line, :mod:`repro.streams.traceio` format), so packet logs and
  query logs run through the same registry as synthetic laws.
* ``budget-stress`` — a distinct-heavy churn prefix (every update hits
  a fresh item, so naive algorithms change state every step) followed
  by a skewed tail: the adversarial shape for enforced write budgets,
  which it exhausts as early as possible.
* ``adversarial`` — the Section 1.4 pseudo-heavy counterexample
  (:func:`repro.streams.adversarial.amplified_counterexample`):
  concentrated pseudo-heavy bursts followed by a trickled true heavy
  hitter, the stream that defeats global-eviction counter maintenance.
"""

from __future__ import annotations

import random

import numpy as np

from repro.streams.adversarial import amplified_counterexample
from repro.streams.chunked import ChunkedStream
from repro.streams.generators import (
    bursty_stream,
    permutation_stream,
    phase_shift_stream,
    planted_heavy_hitter_stream,
    round_robin_stream,
    uniform_stream,
    zipf_stream,
)
from repro.streams.traceio import read_trace_chunks
from repro.workloads.registry import register_scenario


def _zipf(n: int, m: int, seed: int, skew: float) -> ChunkedStream:
    return zipf_stream(n, m, skew=skew, seed=seed)


def _uniform(n: int, m: int, seed: int) -> ChunkedStream:
    return uniform_stream(n, m, seed=seed)


def _permutation(n: int, m: int, seed: int) -> ChunkedStream:
    """``m`` items drawn as back-to-back random permutations of ``[n]``.

    Every window of ``n`` updates hits each item exactly once (a fresh
    shuffle per window), preserving the flat frequency profile of the
    lower-bound instances at any stream length.
    """
    windows: list[np.ndarray] = []
    length = 0
    window = 0
    while length < m:
        windows.append(
            permutation_stream(
                n, seed=None if seed is None else seed + window
            ).to_array()
        )
        length += n
        window += 1
    if not windows:
        return ChunkedStream(np.empty(0, dtype=np.int64))
    return ChunkedStream(np.concatenate(windows)[:m])


def _round_robin(n: int, m: int, seed: int) -> ChunkedStream:
    del seed  # deterministic by construction
    return round_robin_stream(n, m)


def _planted_hh(
    n: int,
    m: int,
    seed: int,
    num_heavy: int,
    heavy_fraction: float,
    background: str,
) -> list[int]:
    """Uniform/Zipf background with ``num_heavy`` planted heavy items.

    The heavy items are drawn from the universe by the seed and share
    ``heavy_fraction`` of the stream equally, so their true counts are
    exact by construction.
    """
    if not 0 < num_heavy <= n:
        raise ValueError(f"need 0 < num_heavy <= n: {num_heavy}")
    if not 0.0 < heavy_fraction < 1.0:
        raise ValueError(
            f"heavy_fraction must be in (0, 1): {heavy_fraction}"
        )
    rng = random.Random(None if seed is None else seed + 0x9E37)
    items = rng.sample(range(n), num_heavy)
    count = max(1, int(m * heavy_fraction / num_heavy))
    heavy_items = {item: count for item in items}
    return planted_heavy_hitter_stream(
        n, m, heavy_items, background=background, seed=seed
    )


def _bursty(
    n: int,
    m: int,
    seed: int,
    num_bursts: int,
    burst_fraction: float,
    burst_intensity: float,
    background_skew: float,
) -> list[int]:
    return bursty_stream(
        n,
        m,
        num_bursts=num_bursts,
        burst_fraction=burst_fraction,
        burst_intensity=burst_intensity,
        background_skew=background_skew,
        seed=seed,
    )


def _phase_shift(
    n: int, m: int, seed: int, phases: int, skew: float
) -> list[int]:
    return phase_shift_stream(n, m, phases=phases, skew=skew, seed=seed)


def _budget_stress(
    n: int, m: int, seed: int, churn_fraction: float, skew: float
) -> ChunkedStream:
    """Churn prefix + skewed tail: the write-budget stress shape.

    The first ``churn_fraction`` of the stream is back-to-back random
    permutations of ``[n]`` — every update is a first (or freshly
    re-shuffled) occurrence, maximizing early state changes — and the
    remainder is a Zipf tail, where a budget-frugal algorithm can
    coast on its established summary.  Running this scenario under
    ``Engine.run(budget=...)`` shows each policy's character: ``raise``
    aborts in the prefix, ``freeze`` answers from a prefix-shaped
    summary, ``degrade`` tracks the tail loosely.
    """
    if not 0.0 <= churn_fraction <= 1.0:
        raise ValueError(
            f"churn_fraction must be in [0, 1]: {churn_fraction}"
        )
    churn = int(m * churn_fraction)
    prefix = _permutation(n, churn, seed).to_array()
    if m > churn:
        tail = zipf_stream(
            n,
            m - churn,
            skew=skew,
            seed=None if seed is None else seed + 0xB5,
        ).to_array()
        return ChunkedStream(np.concatenate([prefix, tail]))
    return ChunkedStream(prefix)


def _adversarial(
    n: int,
    m: int,
    seed: int,
    num_pseudo: int,
    pseudo_frequency: int,
    trickle_gap: int,
) -> ChunkedStream:
    """Section 1.4 counterexample sized to the ``m`` hint.

    Phase 1 (``num_pseudo * pseudo_frequency`` updates) plants the
    concentrated pseudo-heavy bursts; the rest of the stream trickles
    the single true heavy hitter (item 0) one occurrence every
    ``trickle_gap`` updates, so its final frequency is the remaining
    budget divided by the gap.  ``n`` is ignored — the construction
    allocates fresh light items as it goes, and all sketches here
    accept arbitrary integer items.
    """
    del n
    phase1 = num_pseudo * pseudo_frequency
    heavy_frequency = (m - phase1) // trickle_gap
    if heavy_frequency <= pseudo_frequency:
        raise ValueError(
            f"m={m} too short for the counterexample: the trickled "
            f"heavy hitter gets {max(0, heavy_frequency)} occurrences "
            f"but must dominate pseudo_frequency={pseudo_frequency}; "
            f"need m >= "
            f"{phase1 + (pseudo_frequency + 1) * trickle_gap}"
        )
    instance = amplified_counterexample(
        num_pseudo=num_pseudo,
        pseudo_frequency=pseudo_frequency,
        heavy_frequency=heavy_frequency,
        trickle_gap=trickle_gap,
        seed=seed,
    )
    return ChunkedStream(np.asarray(instance.stream[:m], dtype=np.int64))


def _trace_replay(n: int, m: int, seed: int, path: str) -> ChunkedStream:
    """Replay an external trace file, truncated to at most ``m`` items
    (``m=0`` replays the whole trace).

    ``seed`` is ignored (a trace is already fixed); items must fit the
    universe hint ``n`` so downstream sketches are sized correctly.
    The stream stays lazy: the file is read chunk-wise with ``m`` as
    the ``max_items`` guard and each chunk is universe-checked as it
    is produced, so a multi-gigabyte trace replays in constant memory
    (an out-of-universe item aborts the ingest mid-read rather than
    at materialization time).
    """
    del seed
    if not path:
        raise ValueError(
            "trace-replay needs a file: params={'path': '<trace file>'}"
        )

    def checked_chunks():
        for chunk in read_trace_chunks(path, max_items=m if m else None):
            oversized = chunk[chunk >= n]
            if len(oversized):
                raise ValueError(
                    f"trace item {int(oversized[0])} outside universe "
                    f"[0, {n}); raise the n hint to at least "
                    f"{int(oversized[0]) + 1}"
                )
            yield chunk

    return ChunkedStream(checked_chunks)


register_scenario(
    "zipf",
    _zipf,
    "i.i.d. Zipf draws — the paper's motivating skewed workload",
    skew=1.2,
)
register_scenario(
    "uniform",
    _uniform,
    "i.i.d. uniform draws — the no-skew control",
)
register_scenario(
    "permutation",
    _permutation,
    "back-to-back random permutations — flat frequencies, Fp = n per pass",
)
register_scenario(
    "round-robin",
    _round_robin,
    "deterministic cyclic stream — the no-heavy-hitter control",
)
register_scenario(
    "planted-hh",
    _planted_hh,
    "background noise with exact-count planted heavy hitters",
    num_heavy=4,
    heavy_fraction=0.2,
    background="uniform",
)
register_scenario(
    "bursty",
    _bursty,
    "flash crowds: windows where one item dominates the stream",
    num_bursts=4,
    burst_fraction=0.25,
    burst_intensity=0.9,
    background_skew=1.1,
)
register_scenario(
    "phase-shift",
    _phase_shift,
    "Zipf whose heavy set changes identity at each phase boundary",
    phases=3,
    skew=1.3,
)
register_scenario(
    "budget-stress",
    _budget_stress,
    "distinct-heavy churn prefix that burns write budgets, then a "
    "skewed tail",
    churn_fraction=0.5,
    skew=1.2,
)
register_scenario(
    "adversarial",
    _adversarial,
    "Section 1.4 pseudo-heavy counterexample: concentrated bursts, "
    "then a trickled true heavy hitter",
    num_pseudo=60,
    pseudo_frequency=60,
    trickle_gap=100,
)
register_scenario(
    "trace-replay",
    _trace_replay,
    "replay an external one-item-per-line trace file",
    path="",
)
