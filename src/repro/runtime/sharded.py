"""Sharded batch-ingest runtime over the mergeable sketch protocol.

:class:`ShardedRunner` partitions one logical stream across ``K``
independent sketch shards — each with its own
:class:`~repro.state.tracker.StateTracker` — ingests through the
batched :meth:`~repro.state.algorithm.Sketch.process_many` fast path,
and reduces the shards with a binary merge tree.  Because the mergeable
families combine losslessly (linear sketches) or within their summable
error bounds (Misra-Gries/SpaceSaving), the reduced sketch answers
queries like a single instance that saw the whole stream, while the
merged tracker reports the distributed run's aggregate audit (the
elementwise sum of the shard reports).

Two partitioners are provided:

* ``"hash"`` — items are routed by a pairwise-independent hash of
  their identity, so every occurrence of an item lands on one shard.
  This is the partitioning that preserves per-item error bounds for
  the summary-based families (a Misra-Gries shard sees *all* of its
  items' occurrences) and is the production choice.
* ``"round-robin"`` — updates are dealt cyclically, which balances
  load perfectly but splits an item's occurrences across shards; fine
  for linear sketches, where merge is exact addition.

Per-shard write budgets: the paper's state-change accounting extends
naturally to shards — each shard's tracker measures its own
``sum_t X_t``, and :attr:`ShardedRunResult.shard_reports` exposes them
so a deployment can bound per-device wear, not just the total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro import registry
from repro.hashing.prime_field import KWiseHash
from repro.state.algorithm import NotMergeableError, Sketch
from repro.state.report import StateChangeReport

#: Builds the shard with the given index; shards must be mutually
#: merge-compatible (same type, same hash seeds, separate trackers).
ShardFactory = Callable[[int], Sketch]

_PARTITIONS = ("hash", "round-robin")


@dataclass(frozen=True)
class ShardedRunResult:
    """Outcome of one sharded run after the merge reduce.

    Attributes
    ----------
    merged:
        The reduced sketch; query it like a single-instance run.
    merged_report:
        Its audit — the elementwise sum of ``shard_reports``.
    shard_reports:
        Per-shard audits (per-shard write budgets live here).
    shard_items:
        Updates routed to each shard.
    skew:
        Load imbalance: max over shards of ``items / mean items``
        (1.0 = perfectly balanced).
    """

    num_shards: int
    partition: str
    merged: Sketch
    merged_report: StateChangeReport
    shard_reports: tuple[StateChangeReport, ...]
    shard_items: tuple[int, ...]
    skew: float

    def summary(self) -> str:
        """One-line human-readable run summary."""
        return (
            f"shards={self.num_shards} ({self.partition}) "
            f"skew={self.skew:.2f} "
            f"state_changes={self.merged_report.state_changes} "
            f"peak_words={self.merged_report.peak_words}"
        )


class ShardedRunner:
    """Partition a stream over ``K`` sketch shards and merge-reduce.

    Parameters
    ----------
    factory:
        ``factory(shard_index) -> Sketch``.  All shards must be built
        with the *same* hash seeds (merge compatibility) but must not
        share a tracker.  Use :meth:`from_registry` for the common
        case.
    num_shards:
        Number of shards ``K >= 1``.
    partition:
        ``"hash"`` (default) or ``"round-robin"``; see module docs.
    seed:
        Seeds the partitioning hash (independent of the sketch seeds).
    batch_size:
        Items buffered per shard before a ``process_many`` flush.
    """

    def __init__(
        self,
        factory: ShardFactory,
        num_shards: int,
        partition: str = "hash",
        seed: int = 0,
        batch_size: int = 1024,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"need at least one shard: {num_shards}")
        if partition not in _PARTITIONS:
            raise ValueError(
                f"unknown partition {partition!r}; choose from {_PARTITIONS}"
            )
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1: {batch_size}")
        self.num_shards = num_shards
        self.partition = partition
        self.batch_size = batch_size
        self._shards: list[Sketch] = [factory(i) for i in range(num_shards)]
        trackers = {id(shard.tracker) for shard in self._shards}
        if len(trackers) != num_shards:
            raise ValueError(
                "shards must not share StateTrackers; give each shard "
                "its own tracker so per-shard audits are well defined"
            )
        if num_shards > 1 and not self._shards[0].mergeable:
            raise NotMergeableError(
                f"{type(self._shards[0]).__name__} does not support "
                f"merging; it cannot be sharded"
            )
        # Route by item identity so all occurrences co-locate.
        self._route = KWiseHash(2, seed=seed + 0x5A5A)
        self._cursor = 0  # round-robin position
        self._buffers: list[list[int]] = [[] for _ in range(num_shards)]
        self._shard_items = [0] * num_shards
        self._merged: Sketch | None = None
        self._premerge_reports: tuple[StateChangeReport, ...] = ()

    @classmethod
    def from_registry(
        cls,
        name: str,
        num_shards: int,
        n: int = 4096,
        m: int = 65536,
        epsilon: float = 0.5,
        seed: int = 0,
        partition: str = "hash",
        batch_size: int = 1024,
    ) -> "ShardedRunner":
        """Runner whose shards come from :mod:`repro.registry`.

        Every shard is built with the *same* ``seed`` so the shards
        share hash functions and merge losslessly.
        """
        return cls(
            lambda index: registry.create(
                name, n=n, m=m, epsilon=epsilon, seed=seed
            ),
            num_shards=num_shards,
            partition=partition,
            seed=seed,
            batch_size=batch_size,
        )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def shard_of(self, item: int) -> int:
        """Shard index the next occurrence of ``item`` is routed to.

        Pure query: under round-robin it peeks at the current cursor
        without advancing it, so inspecting routing never perturbs
        where :meth:`ingest` actually places items.
        """
        if self.partition == "hash":
            return self._route.bucket(item, self.num_shards)
        return self._cursor

    def _next_shard(self, item: int) -> int:
        """Routing used by :meth:`ingest`; advances the round-robin."""
        shard = self.shard_of(item)
        if self.partition == "round-robin":
            self._cursor = (shard + 1) % self.num_shards
        return shard

    def ingest(self, stream: Iterable[int]) -> int:
        """Route ``stream`` to the shards; returns items consumed.

        Items are buffered per shard and flushed through
        ``process_many`` in ``batch_size`` chunks, so the per-item
        Python overhead is amortized even when the caller feeds one
        long iterable.
        """
        if self._merged is not None:
            raise RuntimeError(
                "runner is already merged; create a new ShardedRunner"
            )
        buffers = self._buffers
        threshold = self.batch_size
        count = 0
        for item in stream:
            shard = self._next_shard(item)
            buffer = buffers[shard]
            buffer.append(item)
            count += 1
            if len(buffer) >= threshold:
                self._flush(shard)
        for shard in range(self.num_shards):
            self._flush(shard)
        return count

    def _flush(self, shard: int) -> None:
        buffer = self._buffers[shard]
        if buffer:
            self._shard_items[shard] += self._shards[shard].process_many(
                buffer
            )
            buffer.clear()

    # ------------------------------------------------------------------
    # Reduce
    # ------------------------------------------------------------------
    def merge(self) -> Sketch:
        """Reduce the shards with a binary merge tree; returns the root.

        After the reduce the shards are consumed (their state has been
        absorbed) and further :meth:`ingest` calls are rejected.  The
        tree shape halves the number of summaries per round, matching
        how a distributed reduce would combine partial sketches.
        """
        if self._merged is None:
            # Snapshot the per-shard audits first: the reduce folds
            # every other tracker into the surviving shard's, after
            # which live reports would double-count.
            self._premerge_reports = tuple(
                shard.report() for shard in self._shards
            )
            level = list(self._shards)
            while len(level) > 1:
                merged_level = []
                for i in range(0, len(level) - 1, 2):
                    merged_level.append(level[i].merge(level[i + 1]))
                if len(level) % 2:
                    merged_level.append(level[-1])
                level = merged_level
            self._merged = level[0]
        return self._merged

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    @property
    def shards(self) -> tuple[Sketch, ...]:
        """The live shards (pre-merge)."""
        return tuple(self._shards)

    @property
    def shard_items(self) -> tuple[int, ...]:
        """Updates ingested per shard so far."""
        return tuple(self._shard_items)

    def shard_reports(self) -> tuple[StateChangeReport, ...]:
        """Per-shard state-change audits (per-shard write budgets).

        After :meth:`merge` this returns the audits snapshotted just
        before the reduce — the live trackers have been folded into
        the merge root by then and would double-count.
        """
        if self._merged is not None:
            return self._premerge_reports
        return tuple(shard.report() for shard in self._shards)

    def skew(self) -> float:
        """Max-over-mean shard load (1.0 = perfectly balanced)."""
        total = sum(self._shard_items)
        if total == 0:
            return 1.0
        mean = total / self.num_shards
        return max(self._shard_items) / mean

    def run(self, stream: Iterable[int]) -> ShardedRunResult:
        """Ingest ``stream``, reduce, and package the full result."""
        self.ingest(stream)
        shard_reports = self.shard_reports()
        shard_items = self.shard_items
        skew = self.skew()
        merged = self.merge()
        return ShardedRunResult(
            num_shards=self.num_shards,
            partition=self.partition,
            merged=merged,
            merged_report=merged.report(),
            shard_reports=shard_reports,
            shard_items=shard_items,
            skew=skew,
        )
